//! Plane-oblivious block allocation, as DFTL and FAST use it.
//!
//! Neither baseline knows about planes; they just take "the next free
//! block". Two policies model the behaviours the paper describes:
//!
//! * **Round-robin** — data and log blocks come from successive planes.
//!   Pages are still written *sequentially within one active block*, so a
//!   burst of writes serialises on whichever plane hosts the current block
//!   (§V.B: "DFTL always picks up free blocks from the same plane to write
//!   sequentially, which could be a problem if several of such requests
//!   come in a row because the queuing delay quickly increases on that
//!   particular plane") — but over time blocks rotate.
//! * **Sticky** — prefer one plane while it has free blocks. DFTL's
//!   *translation* blocks use this with plane 0 (§V.D: "DFTL initially
//!   stores its page mapping information in the first few blocks of
//!   plane 0 … these mapping information blocks are accessed more
//!   frequently from plane 0, which increases the contention").

use dloop_nand::{BlockAddr, FlashState, PlaneId};

/// Plane-oblivious block source.
#[derive(Debug, Clone)]
pub struct SeqAllocator {
    cursor: PlaneId,
    planes: u32,
    /// Blocks allocated (observability).
    pub allocated: u64,
    /// Emergency in-place erases performed when every pool was dry.
    pub emergency_erases: u64,
}

impl SeqAllocator {
    /// An allocator over `planes` planes, starting at plane 0.
    pub fn new(planes: u32) -> Self {
        SeqAllocator {
            cursor: 0,
            planes,
            allocated: 0,
            emergency_erases: 0,
        }
    }

    /// The plane the round-robin cursor will try next.
    pub fn cursor(&self) -> PlaneId {
        self.cursor
    }

    /// Total free blocks across the device.
    pub fn total_free(&self, flash: &FlashState) -> u64 {
        (0..self.planes).map(|p| flash.free_blocks(p) as u64).sum()
    }

    /// Round-robin allocation: take a block from the cursor plane (first
    /// plane with a free block, scanning forward) and advance the cursor.
    pub fn allocate_rr(&mut self, flash: &mut FlashState, exclude: &[BlockAddr]) -> BlockAddr {
        for step in 0..self.planes {
            let plane = (self.cursor + step) % self.planes;
            if flash.free_blocks(plane) > 0 {
                self.cursor = (plane + 1) % self.planes;
                let index = flash
                    .allocate_free_block(plane)
                    .expect("pool emptied between check and pop");
                self.allocated += 1;
                return BlockAddr { plane, index };
            }
        }
        self.emergency(flash, exclude)
    }

    /// Sticky allocation: prefer `home` while it has free blocks, then
    /// scan forward from it.
    pub fn allocate_sticky(
        &mut self,
        home: PlaneId,
        flash: &mut FlashState,
        exclude: &[BlockAddr],
    ) -> BlockAddr {
        for step in 0..self.planes {
            let plane = (home + step) % self.planes;
            if flash.free_blocks(plane) > 0 {
                let index = flash
                    .allocate_free_block(plane)
                    .expect("pool emptied between check and pop");
                self.allocated += 1;
                return BlockAddr { plane, index };
            }
        }
        self.emergency(flash, exclude)
    }

    /// Every pool is dry: reclaim a fully invalid block in place (never
    /// one in `exclude`).
    fn emergency(&mut self, flash: &mut FlashState, exclude: &[BlockAddr]) -> BlockAddr {
        for plane in 0..self.planes {
            // An erase failure retires the candidate (grown bad) instead of
            // pooling it; retired blocks are pristine and drop out of the
            // search, so keep scanning until one survives.
            loop {
                let found = flash
                    .plane(plane)
                    .blocks()
                    .find(|(i, b)| {
                        !b.is_pristine()
                            && b.valid_pages() == 0
                            && !exclude.contains(&BlockAddr { plane, index: *i })
                    })
                    .map(|(i, _)| i);
                let Some(index) = found else { break };
                let pooled = flash
                    .erase_and_pool(BlockAddr { plane, index })
                    .expect("emergency erase failed");
                self.emergency_erases += 1;
                if !pooled {
                    continue;
                }
                let index = flash
                    .allocate_free_block(plane)
                    .expect("pool empty after emergency erase");
                self.allocated += 1;
                return BlockAddr { plane, index };
            }
        }
        panic!("device overfull: no free and no fully-invalid block anywhere");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dloop_nand::Geometry;

    fn flash() -> FlashState {
        // 4 planes, small blocks.
        let mut g = Geometry::build_with_hierarchy(1, 2, 5.0, 2, 1, 1, 1, 2);
        g.data_blocks_per_plane = 4;
        g.blocks_per_plane = 6;
        FlashState::new(g)
    }

    #[test]
    fn round_robin_rotates_planes() {
        let mut f = flash();
        let mut a = SeqAllocator::new(4);
        let planes: Vec<u32> = (0..8).map(|_| a.allocate_rr(&mut f, &[]).plane).collect();
        assert_eq!(planes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(a.allocated, 8);
    }

    #[test]
    fn round_robin_skips_dry_planes() {
        let mut f = flash();
        let mut a = SeqAllocator::new(4);
        // Drain plane 1 completely.
        for _ in 0..6 {
            f.allocate_free_block(1).unwrap();
        }
        let planes: Vec<u32> = (0..4).map(|_| a.allocate_rr(&mut f, &[]).plane).collect();
        assert_eq!(planes, vec![0, 2, 3, 0]);
    }

    #[test]
    fn sticky_prefers_home_until_dry() {
        let mut f = flash();
        let mut a = SeqAllocator::new(4);
        for i in 0..6 {
            let b = a.allocate_sticky(0, &mut f, &[]);
            assert_eq!(b.plane, 0, "allocation {i}");
        }
        let b = a.allocate_sticky(0, &mut f, &[]);
        assert_eq!(b.plane, 1, "plane 0 exhausted, falls through");
    }

    #[test]
    fn emergency_erase_when_all_dry() {
        let mut f = flash();
        let mut a = SeqAllocator::new(4);
        let blocks: Vec<_> = (0..24).map(|_| a.allocate_rr(&mut f, &[])).collect();
        // Make one block fully invalid.
        let target = blocks[5];
        let addr = f.program_next(target).unwrap();
        f.invalidate(f.geometry().ppn_of(addr)).unwrap();
        let b = a.allocate_rr(&mut f, &[]);
        assert_eq!(b, target);
        assert_eq!(a.emergency_erases, 1);
    }

    #[test]
    #[should_panic(expected = "device overfull")]
    fn panics_when_truly_full() {
        let mut f = flash();
        let mut a = SeqAllocator::new(4);
        for _ in 0..24 {
            let b = a.allocate_rr(&mut f, &[]);
            f.program_next(b).unwrap();
        }
        a.allocate_rr(&mut f, &[]);
    }

    #[test]
    fn total_free_counts_all_planes() {
        let mut f = flash();
        let a = SeqAllocator::new(4);
        assert_eq!(a.total_free(&f), 24);
        let mut a2 = SeqAllocator::new(4);
        a2.allocate_rr(&mut f, &[]);
        assert_eq!(a2.total_free(&f), 23);
    }
}

//! # dloop-baselines
//!
//! The FTL schemes the DLOOP paper compares against, plus an idealised
//! bound for ablations:
//!
//! * [`dftl::DftlFtl`] — DFTL (Gupta et al., ASPLOS'09): demand-cached
//!   page mapping with plane-oblivious sequential allocation.
//! * [`fast::FastFtl`] — FAST (Lee et al., TECS'07): log-block hybrid with
//!   fully-associative sector translation and switch/partial/full merges.
//! * [`pagemap::IdealPageMapFtl`] — page mapping with unlimited SRAM and
//!   DLOOP's plane-aware placement (not in the paper; bounds the cost of
//!   demand caching).
//! * [`seqalloc::SeqAllocator`] — the sequential, plane-oblivious block
//!   source shared by DFTL and FAST (the root of their plane imbalance).

pub mod dftl;
pub mod fast;
pub mod pagemap;
pub mod seqalloc;

pub use dftl::DftlFtl;
pub use fast::FastFtl;
pub use pagemap::IdealPageMapFtl;
pub use seqalloc::SeqAllocator;

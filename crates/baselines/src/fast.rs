//! FAST (Lee et al., TECS 2007): the fully-associative log-block hybrid
//! FTL the paper uses as its classical baseline.
//!
//! Data blocks are block-mapped (LBN → physical block, page offset fixed);
//! updates go to a small set of page-mapped *log blocks*: one **SW** log
//! block absorbing sequential writes starting at offset 0, and a pool of
//! fully-associative **RW** log blocks absorbing everything else. When the
//! RW pool is exhausted, the oldest log block is reclaimed by **full
//! merges** — for every LBN with live pages in it, the newest version of
//! each offset (from logs or the data block) is copied into a fresh block.
//! Full merges are the scheme's downfall on random-write workloads (§II.A:
//! "the most expensive one among the three"), and they cross planes over
//! the external bus, which is why FAST trails DLOOP everywhere in Figs.
//! 8-10.
//!
//! Switch merges (SW block complete and clean → becomes the data block)
//! and partial merges (SW retired early → top up from the data block, then
//! switch) are implemented exactly as §II.A describes. FAST keeps its
//! block- and page-level tables in SRAM, so unlike DLOOP/DFTL it has no
//! translation-page traffic.

use crate::seqalloc::SeqAllocator;
use dloop_ftl_kit::config::SsdConfig;
use dloop_ftl_kit::dir::{PageDirectory, PageOwner};
use dloop_ftl_kit::ftl::{FlashStep, Ftl, FtlContext, FtlCounters};
use dloop_nand::{BlockAddr, FlashState, Geometry, Lpn, PageState, Ppn};
use std::collections::{HashMap, VecDeque};

/// The sequential (SW) log block state.
#[derive(Debug, Clone, Copy)]
struct SwLog {
    lbn: u64,
    block: BlockAddr,
    /// Next offset expected for a sequential append.
    next_off: u32,
    /// False once any page in the SW block has been superseded.
    clean: bool,
}

/// The FAST baseline.
pub struct FastFtl {
    geometry: Geometry,
    alloc: SeqAllocator,
    data_map: Vec<Option<BlockAddr>>,
    log_map: HashMap<Lpn, Ppn>,
    sw: Option<SwLog>,
    rw_blocks: VecDeque<BlockAddr>,
    rw_limit: usize,
    counters: FtlCounters,
}

impl FastFtl {
    /// Build from a device configuration. The RW log pool is funded by the
    /// device's extra blocks, minus the free-pool slack GC needs.
    pub fn new(config: &SsdConfig) -> Self {
        let geometry = config.geometry();
        let planes = geometry.total_planes();
        let total_extra = geometry.extra_blocks_per_plane() as u64 * planes as u64;
        let slack = config.gc_threshold as u64 * planes as u64;
        let rw_limit = total_extra.saturating_sub(slack).max(2) as usize;
        let lbns = geometry.user_pages() / geometry.pages_per_block as u64;
        FastFtl {
            alloc: SeqAllocator::new(planes),
            data_map: vec![None; lbns as usize],
            log_map: HashMap::new(),
            sw: None,
            rw_blocks: VecDeque::new(),
            rw_limit,
            counters: FtlCounters::default(),
            geometry,
        }
    }

    /// Configured RW log block limit.
    pub fn rw_limit(&self) -> usize {
        self.rw_limit
    }

    fn ppb(&self) -> u32 {
        self.geometry.pages_per_block
    }

    /// Block-mapped zone layout: logical block `lbn` belongs to the plane
    /// holding its zone, as in classic block-mapping FTLs where physical
    /// placement is a linear function of the LBN. Hot logical regions
    /// therefore hammer specific planes — the source of FAST's plane
    /// imbalance (and poor SDRPP) in the paper's figures.
    fn home_plane(&self, lbn: u64) -> dloop_nand::PlaneId {
        let lbns_per_plane = self.geometry.data_blocks_per_plane.max(1) as u64;
        ((lbn / lbns_per_plane) % self.geometry.total_planes() as u64) as dloop_nand::PlaneId
    }

    fn split(&self, lpn: Lpn) -> (u64, u32) {
        (lpn / self.ppb() as u64, (lpn % self.ppb() as u64) as u32)
    }

    /// Every block the allocator's emergency path must not erase.
    fn exclusions(&self) -> Vec<BlockAddr> {
        let mut v: Vec<BlockAddr> = self.rw_blocks.iter().copied().collect();
        if let Some(sw) = self.sw {
            v.push(sw.block);
        }
        v
    }

    /// The newest version of `lpn`, if any.
    fn current_ppn(&self, lpn: Lpn, flash: &FlashState) -> Option<Ppn> {
        if let Some(&p) = self.log_map.get(&lpn) {
            return Some(p);
        }
        let (lbn, off) = self.split(lpn);
        let db = self.data_map[lbn as usize]?;
        let b = flash.plane(db.plane).block(db.index);
        (off < b.len() && b.state(off) == PageState::Valid).then(|| {
            self.geometry.ppn_of(dloop_nand::PageAddr {
                plane: db.plane,
                block: db.index,
                page: off,
            })
        })
    }

    /// Invalidate the version of `lpn` that lived at `ppn` *during a
    /// merge*: the log-map entry (if it pointed there) goes away too.
    fn invalidate_version(&mut self, lpn: Lpn, ppn: Ppn, ctx: &mut FtlContext<'_>) {
        ctx.flash.invalidate(ppn).expect("stale version not valid");
        ctx.dir.clear(ppn);
        if self.log_map.get(&lpn) == Some(&ppn) {
            self.log_map.remove(&lpn);
        }
        self.mark_sw_dirty_if_hit(ppn);
    }

    /// Invalidate a superseded version *after* the new one has already
    /// been installed in the log map — must not clobber the new entry.
    fn invalidate_stale(&mut self, lpn: Lpn, old_ppn: Ppn, ctx: &mut FtlContext<'_>) {
        debug_assert_ne!(self.log_map.get(&lpn), Some(&old_ppn));
        ctx.flash
            .invalidate(old_ppn)
            .expect("stale version not valid");
        ctx.dir.clear(old_ppn);
        self.mark_sw_dirty_if_hit(old_ppn);
    }

    /// If the superseded page sat in the SW block, the SW block is no
    /// longer clean and can only retire through a full merge.
    fn mark_sw_dirty_if_hit(&mut self, ppn: Ppn) {
        if let Some(sw) = &mut self.sw {
            if self.geometry.addr_of(ppn).block_addr() == sw.block {
                sw.clean = false;
            }
        }
    }

    /// Try to program the next page of `block` for `lpn`: on success
    /// install the log-map entry and push the write step. A program
    /// failure consumes the page (charged as an extra write) and returns
    /// `None` — the caller decides where the data goes instead.
    fn try_program_log_page(
        &mut self,
        block: BlockAddr,
        lpn: Lpn,
        ctx: &mut FtlContext<'_>,
    ) -> Option<Ppn> {
        let attempt = ctx.flash.program_page(block).expect("log block full");
        ctx.drain_failed_programs(FlashStep::Write { plane: block.plane });
        if attempt.failed {
            return None;
        }
        let ppn = self.geometry.ppn_of(attempt.addr);
        ctx.dir.set_data(ppn, lpn);
        ctx.push(FlashStep::Write { plane: block.plane });
        self.log_map.insert(lpn, ppn);
        Some(ppn)
    }

    /// The RW tail block with a free page, never reclaiming: safe to call
    /// mid-merge, where a nested merge would be unsound. May transiently
    /// push the pool past `rw_limit`; it shrinks back at the next
    /// rotation.
    fn rw_tail_no_reclaim(&mut self, ctx: &mut FtlContext<'_>) -> BlockAddr {
        let need_new = match self.rw_blocks.back() {
            None => true,
            Some(b) => ctx.flash.plane(b.plane).block(b.index).is_full(),
        };
        if need_new {
            let exclude = self.exclusions();
            let blk = self.alloc.allocate_rr(ctx.flash, &exclude);
            self.rw_blocks.push_back(blk);
        }
        *self.rw_blocks.back().expect("rw tail just ensured")
    }

    /// Make sure the RW tail block has a free page, rotating/merging as
    /// needed. May relocate arbitrary pages (merges), so callers must
    /// recompute any `current_ppn` taken before this call.
    fn ensure_rw_block(&mut self, ctx: &mut FtlContext<'_>) -> BlockAddr {
        let need_new = match self.rw_blocks.back() {
            None => true,
            Some(b) => ctx.flash.plane(b.plane).block(b.index).is_full(),
        };
        if need_new && self.rw_blocks.len() >= self.rw_limit {
            ctx.in_gc_phase(|ctx| self.reclaim_oldest_rw(ctx));
        }
        self.rw_tail_no_reclaim(ctx)
    }

    /// Append the newest version of `lpn` to the RW log, invalidating the
    /// superseded version. Retries past program failures (each consumes
    /// one log page, rolling to a fresh block when the tail fills).
    fn append_rw(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) {
        loop {
            let blk = self.ensure_rw_block(ctx);
            // ensure_rw_block may have merged this LBN; recompute.
            let old = self.current_ppn(lpn, ctx.flash);
            if self.try_program_log_page(blk, lpn, ctx).is_some() {
                if let Some(old_ppn) = old {
                    self.invalidate_stale(lpn, old_ppn, ctx);
                }
                return;
            }
        }
    }

    /// A merge-destination program failed, consuming the aligned slot:
    /// the newest version of `lpn` (still at `src`) moves into the RW log
    /// instead. Never reclaims — we are mid-merge.
    fn relocate_failed_merge_page(&mut self, lpn: Lpn, src: Ppn, ctx: &mut FtlContext<'_>) {
        loop {
            let blk = self.rw_tail_no_reclaim(ctx);
            if self.try_program_log_page(blk, lpn, ctx).is_some() {
                self.invalidate_stale(lpn, src, ctx);
                return;
            }
        }
    }

    /// Merge away every LBN with live pages in the oldest RW block, then
    /// erase it.
    fn reclaim_oldest_rw(&mut self, ctx: &mut FtlContext<'_>) {
        let victim = self.rw_blocks.pop_front().expect("rw pool empty");
        loop {
            // Find one LBN still alive in the victim and full-merge it;
            // repeat until the victim holds no valid page.
            let first_live = ctx
                .flash
                .plane(victim.plane)
                .block(victim.index)
                .valid_offsets()
                .next();
            let Some(off) = first_live else { break };
            let ppn = self.geometry.ppn_of(dloop_nand::PageAddr {
                plane: victim.plane,
                block: victim.index,
                page: off,
            });
            let lbn = match ctx.dir.owner(ppn) {
                PageOwner::Data(lpn) => lpn / self.ppb() as u64,
                other => unreachable!("FAST log page owned by {other:?}"),
            };
            self.full_merge(lbn, ctx);
        }
        ctx.push(FlashStep::Erase {
            plane: victim.plane,
        });
        ctx.flash.erase_and_pool(victim).expect("rw erase failed");
    }

    /// Full merge of one LBN (§II.A): newest version of every offset is
    /// copied into a fresh block; the old data block is erased.
    fn full_merge(&mut self, lbn: u64, ctx: &mut FtlContext<'_>) {
        self.counters.full_merges += 1;
        self.counters.gc_invocations += 1;
        let exclude = self.exclusions();
        let home = self.home_plane(lbn);
        let dest = self.alloc.allocate_sticky(home, ctx.flash, &exclude);
        let ppb = self.ppb();
        for off in 0..ppb {
            let lpn = lbn * ppb as u64 + off as u64;
            match self.current_ppn(lpn, ctx.flash) {
                Some(src) => {
                    let src_plane = self.geometry.plane_of_ppn(src);
                    let attempt = ctx.flash.program_page(dest).expect("merge dest full");
                    if attempt.failed {
                        // The aligned slot was consumed by the failed
                        // program (alignment holds for the remaining
                        // offsets); divert this page to the RW log.
                        ctx.drain_failed_programs(FlashStep::InterPlaneCopy {
                            src: src_plane,
                            dst: dest.plane,
                        });
                        self.relocate_failed_merge_page(lpn, src, ctx);
                        continue;
                    }
                    debug_assert_eq!(attempt.addr.page, off, "merge lost offset alignment");
                    let new_ppn = self.geometry.ppn_of(attempt.addr);
                    self.counters.external_moves += 1;
                    ctx.push(FlashStep::InterPlaneCopy {
                        src: src_plane,
                        dst: dest.plane,
                    });
                    self.invalidate_version(lpn, src, ctx);
                    ctx.dir.set_data(new_ppn, lpn);
                }
                None => {
                    // Keep offset alignment across the hole.
                    ctx.flash.skip_next(dest).expect("merge dest full");
                }
            }
        }
        // The old data block now holds no live pages.
        if let Some(old) = self.data_map[lbn as usize] {
            debug_assert_eq!(ctx.flash.plane(old.plane).block(old.index).valid_pages(), 0);
            ctx.push(FlashStep::Erase { plane: old.plane });
            ctx.flash
                .erase_and_pool(old)
                .expect("old data erase failed");
        }
        self.data_map[lbn as usize] = Some(dest);
        // If the SW block belonged to this LBN it is now fully invalid.
        if let Some(sw) = self.sw {
            if sw.lbn == lbn {
                let b = ctx.flash.plane(sw.block.plane).block(sw.block.index);
                if b.valid_pages() == 0 {
                    ctx.push(FlashStep::Erase {
                        plane: sw.block.plane,
                    });
                    ctx.flash.erase_and_pool(sw.block).expect("sw erase failed");
                    self.sw = None;
                }
            }
        }
        // Drop RW blocks (other than the active tail) that died entirely.
        let mut kept = VecDeque::with_capacity(self.rw_blocks.len());
        let active = self.rw_blocks.back().copied();
        for blk in std::mem::take(&mut self.rw_blocks) {
            let b = ctx.flash.plane(blk.plane).block(blk.index);
            let is_active = Some(blk) == active;
            if !is_active && b.is_full() && b.valid_pages() == 0 {
                ctx.push(FlashStep::Erase { plane: blk.plane });
                ctx.flash.erase_and_pool(blk).expect("dead rw erase failed");
            } else {
                kept.push_back(blk);
            }
        }
        self.rw_blocks = kept;
    }

    /// Retire the current SW block: switch merge if complete and clean,
    /// partial merge if clean but incomplete, full merge otherwise.
    fn retire_sw(&mut self, ctx: &mut FtlContext<'_>) {
        let Some(sw) = self.sw else {
            return;
        };
        if !sw.clean {
            // Some SW pages were superseded: only a full merge can sort it
            // out (which also erases the SW block).
            self.full_merge(sw.lbn, ctx);
            self.sw = None;
            return;
        }
        let ppb = self.ppb();
        if sw.next_off == ppb {
            self.switch_merge(sw, ctx);
        } else {
            self.partial_merge(sw, ctx);
        }
        self.sw = None;
    }

    /// Switch merge (§II.A): the complete, clean SW block simply becomes
    /// the data block; the old data block is erased.
    fn switch_merge(&mut self, sw: SwLog, ctx: &mut FtlContext<'_>) {
        self.counters.switch_merges += 1;
        self.counters.gc_invocations += 1;
        self.promote_sw(sw, ctx);
    }

    /// Partial merge (§II.A): copy the not-yet-written tail offsets from
    /// the old data block into the SW block, then switch.
    ///
    /// When no data block exists yet (a brand-new LBN written partially
    /// sequentially), the SW block is promoted as-is with its write
    /// pointer mid-block — later sequential appends can then continue
    /// in place.
    fn partial_merge(&mut self, sw: SwLog, ctx: &mut FtlContext<'_>) {
        self.counters.partial_merges += 1;
        self.counters.gc_invocations += 1;
        if self.data_map[sw.lbn as usize].is_none() {
            self.promote_sw(sw, ctx);
            return;
        }
        let ppb = self.ppb();
        for off in sw.next_off..ppb {
            let lpn = sw.lbn * ppb as u64 + off as u64;
            match self.current_ppn(lpn, ctx.flash) {
                Some(src) => {
                    let src_plane = self.geometry.plane_of_ppn(src);
                    let attempt = ctx.flash.program_page(sw.block).expect("sw full");
                    if attempt.failed {
                        // Aligned slot consumed; divert to the RW log (the
                        // promoted block keeps a hole at this offset).
                        ctx.drain_failed_programs(FlashStep::InterPlaneCopy {
                            src: src_plane,
                            dst: sw.block.plane,
                        });
                        self.relocate_failed_merge_page(lpn, src, ctx);
                        continue;
                    }
                    debug_assert_eq!(attempt.addr.page, off);
                    let new_ppn = self.geometry.ppn_of(attempt.addr);
                    self.counters.external_moves += 1;
                    ctx.push(FlashStep::InterPlaneCopy {
                        src: src_plane,
                        dst: sw.block.plane,
                    });
                    self.invalidate_version(lpn, src, ctx);
                    ctx.dir.set_data(new_ppn, lpn);
                    self.log_map.remove(&lpn);
                }
                None => {
                    ctx.flash.skip_next(sw.block).expect("sw full");
                }
            }
        }
        self.promote_sw(sw, ctx);
    }

    /// Make the SW block the data block for its LBN; clean up log entries
    /// and the superseded data block.
    fn promote_sw(&mut self, sw: SwLog, ctx: &mut FtlContext<'_>) {
        let ppb = self.ppb();
        // Log entries pointing into the SW block are now served by the
        // data-block path.
        for off in 0..ppb {
            let lpn = sw.lbn * ppb as u64 + off as u64;
            if let Some(&p) = self.log_map.get(&lpn) {
                if self.geometry.addr_of(p).block_addr() == sw.block {
                    self.log_map.remove(&lpn);
                }
            }
        }
        if let Some(old) = self.data_map[sw.lbn as usize] {
            debug_assert_eq!(
                ctx.flash.plane(old.plane).block(old.index).valid_pages(),
                0,
                "old data block still live after switch"
            );
            ctx.push(FlashStep::Erase { plane: old.plane });
            ctx.flash
                .erase_and_pool(old)
                .expect("old data erase failed");
        }
        self.data_map[sw.lbn as usize] = Some(sw.block);
    }
}

impl Ftl for FastFtl {
    fn name(&self) -> &'static str {
        "FAST"
    }

    fn read(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) {
        if let Some(ppn) = self.current_ppn(lpn, ctx.flash) {
            ctx.read_page(ppn);
        }
    }

    fn write(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) {
        let (lbn, off) = self.split(lpn);

        // 1. In-place append into the data block when the offset lines up
        //    with its write pointer (covers continuations of partially
        //    filled data blocks promoted by partial merges).
        let in_place = self.data_map[lbn as usize].filter(|db| {
            let b = ctx.flash.plane(db.plane).block(db.index);
            !b.is_full() && b.next_free_page() == Some(off)
        });
        if let Some(db) = in_place {
            let old = self.current_ppn(lpn, ctx.flash);
            let attempt = ctx.flash.program_page(db).expect("data block full");
            ctx.drain_failed_programs(FlashStep::Write { plane: db.plane });
            if attempt.failed {
                // The aligned slot was consumed by a failed program: the
                // data block keeps a hole there and the write goes to the
                // RW log instead.
                self.append_rw(lpn, ctx);
                return;
            }
            let new_ppn = self.geometry.ppn_of(attempt.addr);
            ctx.push(FlashStep::Write { plane: db.plane });
            if let Some(old_ppn) = old {
                // The old version necessarily sits in a log block (the data
                // block's slot `off` was still free), so the log-map entry
                // must go away with it.
                self.invalidate_version(lpn, old_ppn, ctx);
            }
            ctx.dir.set_data(new_ppn, lpn);
            return;
        }

        // 2. Offset 0 starts a fresh SW log block (retiring the old one).
        if off == 0 {
            ctx.in_gc_phase(|ctx| self.retire_sw(ctx));
            // retire_sw may have merged this very LBN; recompute.
            let old = self.current_ppn(lpn, ctx.flash);
            let exclude = self.exclusions();
            let home = self.home_plane(lbn);
            let blk = self.alloc.allocate_sticky(home, ctx.flash, &exclude);
            self.sw = Some(SwLog {
                lbn,
                block: blk,
                next_off: 1,
                clean: true,
            });
            if self.try_program_log_page(blk, lpn, ctx).is_none() {
                // Page 0 was consumed by a failed program: the block cannot
                // host a clean sequential run. Keep it as a dirty SW block
                // (a full merge will retire it) and log the page instead.
                self.sw.as_mut().expect("sw just set").clean = false;
                self.append_rw(lpn, ctx);
                return;
            }
            if let Some(old_ppn) = old {
                self.invalidate_stale(lpn, old_ppn, ctx);
            }
            return;
        }

        // 3. Sequential continuation of the SW block.
        let sw_append = self
            .sw
            .is_some_and(|s| s.lbn == lbn && s.clean && s.next_off == off);
        if sw_append {
            let old = self.current_ppn(lpn, ctx.flash);
            let sw = self.sw.expect("just checked");
            if self.try_program_log_page(sw.block, lpn, ctx).is_none() {
                // The aligned slot was consumed by a failed program: the
                // SW block can no longer switch cleanly. Degrade it (a
                // full merge will retire it) and log the page instead.
                self.sw.as_mut().expect("sw").clean = false;
                self.append_rw(lpn, ctx);
                return;
            }
            if let Some(old_ppn) = old {
                self.invalidate_stale(lpn, old_ppn, ctx);
            }
            let sw = self.sw.as_mut().expect("sw");
            sw.next_off += 1;
            if sw.next_off == self.geometry.pages_per_block {
                ctx.in_gc_phase(|ctx| self.retire_sw(ctx));
            }
            return;
        }

        // 4. Everything else goes to the fully-associative RW log.
        self.append_rw(lpn, ctx);
    }

    fn mapped_ppn(&self, lpn: Lpn) -> Option<Ppn> {
        // Tests call this through the device, which holds the flash; FAST
        // needs flash access for the data-block path, so only the log map
        // is visible here. `current_ppn` is exercised via reads instead.
        self.log_map.get(&lpn).copied()
    }

    fn counters(&self) -> FtlCounters {
        self.counters
    }

    fn audit(&self, flash: &FlashState, dir: &PageDirectory) -> Result<(), String> {
        // Every log-map entry points at a valid page owned by that LPN.
        for (&lpn, &ppn) in &self.log_map {
            if flash.page_state(ppn) != PageState::Valid {
                return Err(format!("log entry lpn {lpn} at dead ppn {ppn}"));
            }
            if dir.owner(ppn) != PageOwner::Data(lpn) {
                return Err(format!("log entry lpn {lpn} owner mismatch"));
            }
        }
        // Every valid page of a data block either belongs to its offset's
        // LPN and is the newest version (no log entry), or is stale junk —
        // stale junk would be a bug, so check ownership strictly.
        let ppb = self.geometry.pages_per_block as u64;
        let mut live = self.log_map.len() as u64;
        for (lbn, db) in self.data_map.iter().enumerate() {
            let Some(db) = db else { continue };
            let b = flash.plane(db.plane).block(db.index);
            for off in b.valid_offsets() {
                let lpn = lbn as u64 * ppb + off as u64;
                let ppn = self.geometry.ppn_of(dloop_nand::PageAddr {
                    plane: db.plane,
                    block: db.index,
                    page: off,
                });
                if dir.owner(ppn) != PageOwner::Data(lpn) {
                    return Err(format!("data block {lbn} page {off} owner mismatch"));
                }
                if self.log_map.contains_key(&lpn) {
                    return Err(format!("lpn {lpn} valid in data block but shadowed by log"));
                }
                live += 1;
            }
        }
        // SW/RW log pages not in log_map would leak; count them.
        let mut log_pages = 0u64;
        let mut log_blocks: Vec<BlockAddr> = self.rw_blocks.iter().copied().collect();
        if let Some(sw) = self.sw {
            log_blocks.push(sw.block);
        }
        for blk in log_blocks {
            log_pages += flash.plane(blk.plane).block(blk.index).valid_pages() as u64;
        }
        if log_pages != self.log_map.len() as u64 {
            return Err(format!(
                "{log_pages} live log pages but {} log entries",
                self.log_map.len()
            ));
        }
        if live != flash.total_valid_pages() {
            return Err(format!(
                "accounted {live} live pages, flash reports {}",
                flash.total_valid_pages()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dloop_ftl_kit::dir::PageDirectory;
    use dloop_ftl_kit::ftl::{OpChain, Phase};

    struct Rig {
        flash: FlashState,
        dir: PageDirectory,
        host: OpChain,
        gc: OpChain,
        scan: OpChain,
        ftl: FastFtl,
        config: SsdConfig,
    }

    impl Rig {
        fn new() -> Self {
            let config = SsdConfig::micro_gc_test();
            Rig {
                flash: FlashState::new(config.geometry()),
                dir: PageDirectory::new(&config.geometry()),
                host: OpChain::new(),
                gc: OpChain::new(),
                scan: OpChain::new(),
                ftl: FastFtl::new(&config),
                config,
            }
        }

        fn write(&mut self, lpn: Lpn) {
            self.host.clear();
            self.gc.clear();
            self.scan.clear();
            let mut ctx = FtlContext {
                flash: &mut self.flash,
                dir: &mut self.dir,
                host_chain: &mut self.host,
                gc_chain: &mut self.gc,
                scan_chain: &mut self.scan,
                phase: Phase::Host,
            };
            self.ftl.write(lpn, &mut ctx);
        }
    }

    #[test]
    fn rw_limit_is_funded_by_extras() {
        let rig = Rig::new();
        let g = rig.config.geometry();
        let extras = g.extra_blocks_per_plane() as u64 * g.total_planes() as u64;
        assert!(rig.ftl.rw_limit() as u64 <= extras);
        assert!(rig.ftl.rw_limit() >= 2);
    }

    #[test]
    fn sequential_block_switch_merges_without_copies() {
        let mut rig = Rig::new();
        let ppb = rig.config.geometry().pages_per_block as u64;
        for lpn in 0..ppb {
            rig.write(lpn);
        }
        assert_eq!(rig.ftl.counters().switch_merges, 1);
        assert_eq!(rig.ftl.counters().external_moves, 0);
        rig.ftl.audit(&rig.flash, &rig.dir).unwrap();
    }

    #[test]
    fn off_zero_restart_retires_sw() {
        let mut rig = Rig::new();
        let ppb = rig.config.geometry().pages_per_block as u64;
        rig.write(0);
        rig.write(1);
        // Restarting at another block's offset 0 retires the SW block.
        rig.write(ppb);
        let c = rig.ftl.counters();
        assert_eq!(c.partial_merges, 1, "{c:?}");
        rig.ftl.audit(&rig.flash, &rig.dir).unwrap();
    }

    #[test]
    fn random_offsets_go_to_rw_log() {
        let mut rig = Rig::new();
        // Non-zero offsets with no data block: all to the RW log.
        for lpn in [5u64, 130, 7, 200, 9] {
            rig.write(lpn);
        }
        let c = rig.ftl.counters();
        assert_eq!(c.switch_merges + c.partial_merges + c.full_merges, 0);
        // They are page-mapped in the log.
        for lpn in [5u64, 130, 7, 200, 9] {
            assert!(
                rig.ftl.mapped_ppn(lpn).is_some(),
                "lpn {lpn} not in log map"
            );
        }
        rig.ftl.audit(&rig.flash, &rig.dir).unwrap();
    }

    #[test]
    fn dirty_sw_forces_full_merge_on_retire() {
        let mut rig = Rig::new();
        let ppb = rig.config.geometry().pages_per_block as u64;
        rig.write(0); // SW for lbn 0
        rig.write(1);
        rig.write(1); // random update of an SW page -> SW dirty (to RW)
        rig.write(ppb); // retire SW
        let c = rig.ftl.counters();
        assert_eq!(c.full_merges, 1, "{c:?}");
        assert_eq!(c.partial_merges, 0, "{c:?}");
        rig.ftl.audit(&rig.flash, &rig.dir).unwrap();
    }
}

//! An idealised page-mapping FTL: the whole mapping table lives in SRAM.
//!
//! Not part of the paper's comparison — it exists as an *ablation bound*:
//! it uses DLOOP's placement and copy-back GC but pays zero translation
//! traffic, so the gap between `IDEAL` and `DLOOP` isolates the cost of
//! demand-caching the mapping table, and the gap between `IDEAL` and
//! `DFTL` bounds what any page-mapping FTL could gain from plane-aware
//! placement.

use dloop::alloc::{BlockClass, PlaneAllocator};
use dloop_ftl_kit::config::SsdConfig;
use dloop_ftl_kit::dir::{PageDirectory, PageOwner};
use dloop_ftl_kit::ftl::{FlashStep, Ftl, FtlContext, FtlCounters};
use dloop_nand::{BlockAddr, FlashState, Geometry, Lpn, PageAddr, PageState, PlaneId, Ppn};

const UNMAPPED: Ppn = Ppn::MAX;

/// Page mapping with unlimited SRAM.
pub struct IdealPageMapFtl {
    geometry: Geometry,
    map: Vec<Ppn>,
    alloc: PlaneAllocator,
    counters: FtlCounters,
    gc_threshold: u32,
    copyback: bool,
}

impl IdealPageMapFtl {
    /// Build from a device configuration.
    pub fn new(config: &SsdConfig) -> Self {
        let geometry = config.geometry();
        let planes = geometry.total_planes();
        IdealPageMapFtl {
            map: vec![UNMAPPED; geometry.user_pages() as usize],
            alloc: PlaneAllocator::new(planes),
            counters: FtlCounters::default(),
            gc_threshold: config.gc_threshold,
            copyback: config.copyback_enabled,
            geometry,
        }
    }

    fn plane_of_lpn(&self, lpn: Lpn) -> PlaneId {
        self.geometry.dloop_plane_of_lpn(lpn)
    }

    fn maybe_gc(&mut self, ctx: &mut FtlContext<'_>) {
        loop {
            let touched = self.alloc.take_touched();
            if touched.is_empty() {
                break;
            }
            for plane in touched {
                while ctx.flash.free_blocks(plane) < self.gc_threshold {
                    if !self.collect_one(plane, ctx) {
                        break;
                    }
                }
            }
        }
    }

    fn collect_one(&mut self, plane: PlaneId, ctx: &mut FtlContext<'_>) -> bool {
        let exclude = self.alloc.exclusions(plane);
        // Free sweep first (see dloop::gc for the rationale).
        let full_invalid: Vec<u32> = ctx
            .flash
            .plane(plane)
            .blocks()
            .filter(|(i, b)| {
                !exclude.contains(i)
                    && !ctx.flash.plane(plane).in_free_pool(*i)
                    && !b.is_pristine()
                    && b.valid_pages() == 0
            })
            .map(|(i, _)| i)
            .collect();
        if !full_invalid.is_empty() {
            self.counters.gc_invocations += 1;
            for index in full_invalid {
                ctx.push(FlashStep::Erase { plane });
                ctx.flash
                    .erase_and_pool(BlockAddr { plane, index })
                    .expect("sweep erase failed");
            }
            return true;
        }
        let Some(victim) = ctx.flash.plane(plane).victim_with_max_invalid(&exclude) else {
            return false;
        };
        if ctx.flash.plane(plane).block(victim).invalid_pages() == 0 {
            return false;
        }
        self.counters.gc_invocations += 1;
        let offsets: Vec<u32> = ctx
            .flash
            .plane(plane)
            .block(victim)
            .valid_offsets()
            .collect();
        // Parity-aware move ordering (see dloop::gc).
        let mut queues: [std::collections::VecDeque<u32>; 2] =
            [Default::default(), Default::default()];
        for off in offsets {
            queues[(off & 1) as usize].push_back(off);
        }
        let mut waste_budget = self.geometry.pages_per_block / 8;
        while queues.iter().any(|q| !q.is_empty()) {
            let (off, forced_external) = if self.copyback {
                let want = self.alloc.next_parity(plane, BlockClass::Data, ctx.flash) as usize;
                match queues[want].pop_front() {
                    Some(off) => (off, false),
                    None => {
                        let off = queues[want ^ 1].pop_front().expect("non-empty");
                        if waste_budget > 0 {
                            waste_budget -= 1;
                            (off, false)
                        } else {
                            (off, true)
                        }
                    }
                }
            } else {
                let q = if queues[0].is_empty() { 1 } else { 0 };
                (queues[q].pop_front().expect("non-empty"), true)
            };
            let old_ppn = self.geometry.ppn_of(PageAddr {
                plane,
                block: victim,
                page: off,
            });
            let PageOwner::Data(lpn) = ctx.dir.owner(old_ppn) else {
                unreachable!("ideal page map owns only data pages");
            };
            let new_addr = if forced_external {
                self.counters.external_moves += 1;
                ctx.push(FlashStep::InterPlaneCopy {
                    src: plane,
                    dst: plane,
                });
                let addr = self.alloc.place(plane, BlockClass::Data, ctx.flash);
                ctx.drain_failed_programs(FlashStep::InterPlaneCopy {
                    src: plane,
                    dst: plane,
                });
                addr
            } else {
                self.counters.copyback_moves += 1;
                ctx.push(FlashStep::CopyBack { plane });
                let addr =
                    self.alloc
                        .place_with_parity(plane, BlockClass::Data, off & 1, ctx.flash);
                ctx.drain_failed_programs(FlashStep::CopyBack { plane });
                addr
            };
            let new_ppn = self.geometry.ppn_of(new_addr);
            self.map[lpn as usize] = new_ppn;
            ctx.dir.set_data(new_ppn, lpn);
            ctx.flash.invalidate(old_ppn).expect("GC source not valid");
            ctx.dir.clear(old_ppn);
        }
        ctx.push(FlashStep::Erase { plane });
        ctx.flash
            .erase_and_pool(BlockAddr {
                plane,
                index: victim,
            })
            .expect("victim erase failed");
        true
    }
}

impl Ftl for IdealPageMapFtl {
    fn name(&self) -> &'static str {
        "IDEAL"
    }

    fn read(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) {
        let ppn = self.map[lpn as usize];
        if ppn != UNMAPPED {
            ctx.read_page(ppn);
        }
    }

    fn write(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) {
        let plane = self.plane_of_lpn(lpn);
        let addr = self.alloc.place(plane, BlockClass::Data, ctx.flash);
        let new_ppn = self.geometry.ppn_of(addr);
        ctx.push_program(plane);
        let old = self.map[lpn as usize];
        if old != UNMAPPED {
            ctx.flash.invalidate(old).expect("stale mapping on update");
            ctx.dir.clear(old);
        }
        self.map[lpn as usize] = new_ppn;
        ctx.dir.set_data(new_ppn, lpn);
        ctx.in_gc_phase(|ctx| self.maybe_gc(ctx));
    }

    fn mapped_ppn(&self, lpn: Lpn) -> Option<Ppn> {
        let p = self.map[lpn as usize];
        (p != UNMAPPED).then_some(p)
    }

    fn counters(&self) -> FtlCounters {
        let mut c = self.counters;
        c.parity_skips = self.alloc.parity_skips;
        c
    }

    fn audit(&self, flash: &FlashState, dir: &PageDirectory) -> Result<(), String> {
        let mut live = 0u64;
        for (lpn, &ppn) in self.map.iter().enumerate() {
            if ppn == UNMAPPED {
                continue;
            }
            if flash.page_state(ppn) != PageState::Valid {
                return Err(format!("lpn {lpn} maps to non-valid ppn {ppn}"));
            }
            if dir.owner(ppn) != PageOwner::Data(lpn as Lpn) {
                return Err(format!("directory disagrees for lpn {lpn}"));
            }
            live += 1;
        }
        if live != flash.total_valid_pages() {
            return Err(format!(
                "accounted {live} live pages, flash reports {}",
                flash.total_valid_pages()
            ));
        }
        Ok(())
    }
}

//! DFTL (Gupta, Kim, Urgaonkar — ASPLOS'09), as the paper evaluates it.
//!
//! DFTL is a pure page-mapping FTL with demand-cached mappings: the same
//! CMT/GTD machinery DLOOP inherits ([`DemandMap`]), but **plane-oblivious
//! placement**:
//!
//! * one global *data* active block and one global *translation* active
//!   block, both fed by the sequential allocator — so bursts of writes
//!   serialise on whichever plane currently hosts the data block, and the
//!   mapping blocks initially cluster on plane 0 (§V.B, §V.D);
//! * garbage collection picks the most-invalid block device-wide and moves
//!   valid pages **over the external bus** to the current active blocks
//!   (no copy-back — DFTL does not exploit plane-level parallelism).

use crate::seqalloc::SeqAllocator;
use dloop_ftl_kit::config::SsdConfig;
use dloop_ftl_kit::demand::DemandMap;
use dloop_ftl_kit::dir::{PageDirectory, PageOwner};
use dloop_ftl_kit::ftl::{FlashStep, Ftl, FtlContext, FtlCounters};
use dloop_nand::{BlockAddr, FlashState, Geometry, Lpn, PageState, Ppn};

/// The DFTL baseline.
pub struct DftlFtl {
    geometry: Geometry,
    dm: DemandMap,
    alloc: SeqAllocator,
    data_active: Option<BlockAddr>,
    trans_active: Option<BlockAddr>,
    counters: FtlCounters,
    /// GC triggers when total free blocks fall below this (aggregate slack
    /// equal to DLOOP's per-plane threshold for a fair comparison).
    gc_threshold_total: u64,
}

impl DftlFtl {
    /// Build from a device configuration.
    pub fn new(config: &SsdConfig) -> Self {
        let geometry = config.geometry();
        let planes = geometry.total_planes();
        DftlFtl {
            dm: DemandMap::new(&geometry, config.cmt_capacity),
            alloc: SeqAllocator::new(planes),
            data_active: None,
            trans_active: None,
            counters: FtlCounters::default(),
            gc_threshold_total: config.gc_threshold as u64 * planes as u64,
            geometry,
        }
    }

    /// CMT hit/miss statistics.
    pub fn cmt_stats(&self) -> (u64, u64) {
        self.dm.cmt_stats()
    }

    fn exclusions(&self) -> Vec<BlockAddr> {
        self.data_active
            .iter()
            .chain(self.trans_active.iter())
            .copied()
            .collect()
    }

    /// Program the next page of the chosen active block, rolling to a new
    /// block when full. Data blocks rotate round-robin across planes;
    /// translation blocks stick to plane 0 (paper §V.D).
    fn place(
        alloc: &mut SeqAllocator,
        active: &mut Option<BlockAddr>,
        sticky_home: Option<dloop_nand::PlaneId>,
        exclude: &[BlockAddr],
        flash: &mut FlashState,
    ) -> Ppn {
        loop {
            let need_new = match *active {
                None => true,
                Some(b) => flash.plane(b.plane).block(b.index).is_full(),
            };
            if need_new {
                *active = Some(match sticky_home {
                    Some(home) => alloc.allocate_sticky(home, flash, exclude),
                    None => alloc.allocate_rr(flash, exclude),
                });
            }
            let blk = active.expect("active block just ensured");
            let attempt = flash.program_page(blk).expect("active block full");
            if !attempt.failed {
                return flash.geometry().ppn_of(attempt.addr);
            }
            // Program-status failure: the page is consumed; retry on the
            // next sequential page (rolling to a new block when full).
        }
    }

    fn place_translation_page(
        alloc: &mut SeqAllocator,
        trans_active: &mut Option<BlockAddr>,
        data_active: Option<BlockAddr>,
        ctx: &mut FtlContext<'_>,
        tvpn: u64,
    ) -> Ppn {
        let exclude: Vec<BlockAddr> = data_active.into_iter().collect();
        let ppn = Self::place(alloc, trans_active, Some(0), &exclude, ctx.flash);
        ctx.dir.set_translation(ppn, tvpn);
        let plane = ctx.flash.geometry().plane_of_ppn(ppn);
        ctx.push_program(plane);
        ppn
    }

    fn ensure_cached(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) -> Option<Ppn> {
        let alloc = &mut self.alloc;
        let trans_active = &mut self.trans_active;
        let data_active = self.data_active;
        let mut place = |ctx: &mut FtlContext<'_>, tvpn: u64| {
            Self::place_translation_page(alloc, trans_active, data_active, ctx, tvpn)
        };
        self.dm.ensure_cached(lpn, ctx, &mut place)
    }

    /// Device-wide GC: sweep fully-invalid blocks, then move-based collect
    /// of the most-invalid block. All moves cross the external bus.
    fn maybe_gc(&mut self, ctx: &mut FtlContext<'_>) {
        let mut guard = 0;
        while self.alloc.total_free(ctx.flash) < self.gc_threshold_total {
            if !self.collect_one(ctx) {
                break;
            }
            guard += 1;
            assert!(guard < 100_000, "DFTL GC failed to converge");
        }
    }

    fn collect_one(&mut self, ctx: &mut FtlContext<'_>) -> bool {
        let exclude = self.exclusions();
        // Sweep: erase every fully-invalid block device-wide.
        let mut swept = false;
        for plane in self.geometry.planes() {
            let hits: Vec<u32> = ctx
                .flash
                .plane(plane)
                .blocks()
                .filter(|(i, b)| {
                    !exclude.contains(&BlockAddr { plane, index: *i })
                        && !ctx.flash.plane(plane).in_free_pool(*i)
                        && !b.is_pristine()
                        && b.valid_pages() == 0
                })
                .map(|(i, _)| i)
                .collect();
            for index in hits {
                ctx.push(FlashStep::Erase { plane });
                // An erase failure retires the block instead of pooling it;
                // either way the block is gone from the victim set.
                let _ = ctx
                    .flash
                    .erase_and_pool(BlockAddr { plane, index })
                    .expect("sweep erase failed");
                swept = true;
            }
        }
        if swept {
            self.counters.gc_invocations += 1;
            return true;
        }

        // Most-invalid block anywhere.
        let mut best: Option<(u32, BlockAddr)> = None;
        for plane in self.geometry.planes() {
            let excl: Vec<u32> = exclude
                .iter()
                .filter(|b| b.plane == plane)
                .map(|b| b.index)
                .collect();
            if let Some(idx) = ctx.flash.plane(plane).victim_with_max_invalid(&excl) {
                let inv = ctx.flash.plane(plane).block(idx).invalid_pages();
                if best.is_none_or(|(bi, _)| inv > bi) {
                    best = Some((inv, BlockAddr { plane, index: idx }));
                }
            }
        }
        let Some((inv, victim)) = best else {
            return false;
        };
        if inv == 0 {
            return false;
        }
        self.counters.gc_invocations += 1;

        let geometry = self.geometry.clone();
        let offsets: Vec<u32> = ctx
            .flash
            .plane(victim.plane)
            .block(victim.index)
            .valid_offsets()
            .collect();
        let mut jobs = Vec::with_capacity(offsets.len());
        let mut rewrite_now: Vec<u64> = Vec::new();
        for off in offsets {
            let ppn = geometry.ppn_of(dloop_nand::PageAddr {
                plane: victim.plane,
                block: victim.index,
                page: off,
            });
            let owner = ctx.dir.owner(ppn);
            if let PageOwner::Translation(tvpn) = owner {
                // Pages with deferred updates are persisted (and thereby
                // relocated) by a read-modify-write instead of a copy.
                if self.dm.pending_count(tvpn) > 0 {
                    rewrite_now.push(tvpn);
                    continue;
                }
            }
            jobs.push((ppn, owner));
        }

        for (old_ppn, owner) in jobs {
            match owner {
                PageOwner::Data(lpn) => {
                    let exclude = self.exclusions();
                    let new_ppn = Self::place(
                        &mut self.alloc,
                        &mut self.data_active,
                        None,
                        &exclude,
                        ctx.flash,
                    );
                    self.counters.external_moves += 1;
                    let dst = geometry.plane_of_ppn(new_ppn);
                    ctx.drain_failed_programs(FlashStep::InterPlaneCopy {
                        src: victim.plane,
                        dst,
                    });
                    ctx.push(FlashStep::InterPlaneCopy {
                        src: victim.plane,
                        dst,
                    });
                    self.dm.gc_move(lpn, new_ppn);
                    ctx.dir.set_data(new_ppn, lpn);
                    ctx.flash.invalidate(old_ppn).expect("GC source not valid");
                    ctx.dir.clear(old_ppn);
                }
                PageOwner::Translation(tvpn) => {
                    let exclude: Vec<BlockAddr> = self.data_active.into_iter().collect();
                    let new_ppn = Self::place(
                        &mut self.alloc,
                        &mut self.trans_active,
                        Some(0),
                        &exclude,
                        ctx.flash,
                    );
                    self.counters.external_moves += 1;
                    let dst = geometry.plane_of_ppn(new_ppn);
                    ctx.drain_failed_programs(FlashStep::InterPlaneCopy {
                        src: victim.plane,
                        dst,
                    });
                    ctx.push(FlashStep::InterPlaneCopy {
                        src: victim.plane,
                        dst,
                    });
                    self.dm.gc_move_translation(tvpn, new_ppn);
                    ctx.dir.set_translation(new_ppn, tvpn);
                    ctx.flash.invalidate(old_ppn).expect("GC source not valid");
                    ctx.dir.clear(old_ppn);
                }
                PageOwner::None => unreachable!("valid page without owner"),
            }
        }

        // Rewrites reading the in-victim copy happen before the erase.
        for tvpn in rewrite_now {
            self.rewrite(tvpn, ctx);
        }
        ctx.push(FlashStep::Erase {
            plane: victim.plane,
        });
        // A failed victim erase retires the block (capacity shrinks), but
        // the collection itself completed: the valid pages moved out.
        let _ = ctx
            .flash
            .erase_and_pool(victim)
            .expect("victim erase failed");

        // Keep the deferred-update buffer within budget (only while some
        // plane can still absorb a write without emergency reclaim).
        let alloc = std::cell::RefCell::new(&mut self.alloc);
        let trans_active = std::cell::RefCell::new(&mut self.trans_active);
        let data_active = self.data_active;
        let mut can_place = |ctx: &FtlContext<'_>, _tvpn: u64| {
            alloc.borrow().total_free(ctx.flash) > 0
                || trans_active
                    .borrow()
                    .is_some_and(|b| !ctx.flash.plane(b.plane).block(b.index).is_full())
        };
        let mut place = |ctx: &mut FtlContext<'_>, tvpn: u64| {
            Self::place_translation_page(
                *alloc.borrow_mut(),
                *trans_active.borrow_mut(),
                data_active,
                ctx,
                tvpn,
            )
        };
        self.dm
            .flush_pending_over_budget(ctx, &mut can_place, &mut place);
        true
    }

    fn rewrite(&mut self, tvpn: u64, ctx: &mut FtlContext<'_>) {
        let alloc = &mut self.alloc;
        let trans_active = &mut self.trans_active;
        let data_active = self.data_active;
        let mut place = |ctx: &mut FtlContext<'_>, tvpn: u64| {
            Self::place_translation_page(alloc, trans_active, data_active, ctx, tvpn)
        };
        self.dm.rewrite_translation_page(tvpn, ctx, &mut place);
    }
}

impl Ftl for DftlFtl {
    fn name(&self) -> &'static str {
        "DFTL"
    }

    fn read(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) {
        let mapped = self.ensure_cached(lpn, ctx);
        if let Some(ppn) = mapped {
            ctx.read_page(ppn);
        }
        ctx.in_gc_phase(|ctx| self.maybe_gc(ctx));
    }

    fn write(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) {
        let old = self.ensure_cached(lpn, ctx);
        let exclude: Vec<BlockAddr> = self.trans_active.into_iter().collect();
        let new_ppn = Self::place(
            &mut self.alloc,
            &mut self.data_active,
            None,
            &exclude,
            ctx.flash,
        );
        ctx.push_program(self.geometry.plane_of_ppn(new_ppn));
        if let Some(old_ppn) = old {
            ctx.flash
                .invalidate(old_ppn)
                .expect("stale mapping on update");
            ctx.dir.clear(old_ppn);
        }
        ctx.dir.set_data(new_ppn, lpn);
        self.dm.commit_write(lpn, new_ppn);
        ctx.in_gc_phase(|ctx| self.maybe_gc(ctx));
    }

    fn mapped_ppn(&self, lpn: Lpn) -> Option<Ppn> {
        self.dm.mapped(lpn)
    }

    fn counters(&self) -> FtlCounters {
        let mut c = self.counters;
        c.translation_reads = self.dm.counters.translation_reads;
        c.translation_writes = self.dm.counters.translation_writes;
        c
    }

    fn audit(&self, flash: &FlashState, dir: &PageDirectory) -> Result<(), String> {
        self.dm.check()?;
        let mut live = 0u64;
        for (lpn, ppn) in self.dm.iter_mapped() {
            if flash.page_state(ppn) != PageState::Valid {
                return Err(format!("lpn {lpn} maps to non-valid ppn {ppn}"));
            }
            if dir.owner(ppn) != PageOwner::Data(lpn) {
                return Err(format!("directory disagrees for lpn {lpn}"));
            }
            live += 1;
        }
        for tvpn in 0..self.geometry.translation_page_count() {
            if let Some(tp) = self.dm.gtd().lookup(tvpn) {
                if flash.page_state(tp) != PageState::Valid {
                    return Err(format!("tvpn {tvpn} at dead ppn {tp}"));
                }
                if dir.owner(tp) != PageOwner::Translation(tvpn) {
                    return Err(format!("directory disagrees for tvpn {tvpn}"));
                }
                live += 1;
            }
        }
        if live != flash.total_valid_pages() {
            return Err(format!(
                "accounted {live} live pages, flash reports {}",
                flash.total_valid_pages()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dloop_ftl_kit::dir::PageDirectory;
    use dloop_ftl_kit::ftl::{OpChain, Phase};

    struct Rig {
        flash: FlashState,
        dir: PageDirectory,
        host: OpChain,
        gc: OpChain,
        scan: OpChain,
        ftl: DftlFtl,
    }

    impl Rig {
        fn new() -> Self {
            let config = SsdConfig::micro_gc_test();
            Rig {
                flash: FlashState::new(config.geometry()),
                dir: PageDirectory::new(&config.geometry()),
                host: OpChain::new(),
                gc: OpChain::new(),
                scan: OpChain::new(),
                ftl: DftlFtl::new(&config),
            }
        }

        fn write(&mut self, lpn: Lpn) {
            self.host.clear();
            self.gc.clear();
            self.scan.clear();
            let mut ctx = FtlContext {
                flash: &mut self.flash,
                dir: &mut self.dir,
                host_chain: &mut self.host,
                gc_chain: &mut self.gc,
                scan_chain: &mut self.scan,
                phase: Phase::Host,
            };
            self.ftl.write(lpn, &mut ctx);
        }

        fn read(&mut self, lpn: Lpn) {
            self.host.clear();
            self.gc.clear();
            self.scan.clear();
            let mut ctx = FtlContext {
                flash: &mut self.flash,
                dir: &mut self.dir,
                host_chain: &mut self.host,
                gc_chain: &mut self.gc,
                scan_chain: &mut self.scan,
                phase: Phase::Host,
            };
            self.ftl.read(lpn, &mut ctx);
        }
    }

    #[test]
    fn first_write_maps_and_pushes_one_write_step() {
        let mut rig = Rig::new();
        rig.write(7);
        assert!(rig.ftl.mapped_ppn(7).is_some());
        assert_eq!(
            rig.host
                .steps()
                .iter()
                .filter(|s| matches!(s, FlashStep::Write { .. }))
                .count(),
            1
        );
        rig.ftl.audit(&rig.flash, &rig.dir).unwrap();
    }

    #[test]
    fn update_relocates_and_invalidates() {
        let mut rig = Rig::new();
        rig.write(9);
        let old = rig.ftl.mapped_ppn(9).unwrap();
        rig.write(9);
        let new = rig.ftl.mapped_ppn(9).unwrap();
        assert_ne!(old, new);
        assert_ne!(rig.flash.page_state(old), PageState::Valid);
        rig.ftl.audit(&rig.flash, &rig.dir).unwrap();
    }

    #[test]
    fn writes_fill_one_block_before_moving_on() {
        let mut rig = Rig::new();
        let ppb = rig.flash.geometry().pages_per_block as u64;
        let mut planes = std::collections::BTreeSet::new();
        for lpn in 0..ppb {
            rig.write(lpn);
            let ppn = rig.ftl.mapped_ppn(lpn).unwrap();
            planes.insert(rig.flash.geometry().plane_of_ppn(ppn));
        }
        assert_eq!(
            planes.len(),
            1,
            "one active block serialises a block's worth"
        );
    }

    #[test]
    fn read_of_mapped_page_pushes_read_step() {
        let mut rig = Rig::new();
        rig.write(3);
        rig.read(3);
        assert!(rig
            .host
            .steps()
            .iter()
            .any(|s| matches!(s, FlashStep::Read { .. })));
    }

    #[test]
    fn cmt_stats_accumulate() {
        let mut rig = Rig::new();
        rig.write(1);
        rig.read(1); // hit
        rig.read(2); // miss (unmapped)
        let (hits, misses) = rig.ftl.cmt_stats();
        assert!(hits >= 1);
        assert!(misses >= 2);
    }
}

//! Behavioural integration tests for DFTL, FAST and the ideal page map,
//! driven through the full device stack.

use dloop_baselines::{DftlFtl, FastFtl, IdealPageMapFtl};
use dloop_ftl_kit::config::SsdConfig;
use dloop_ftl_kit::device::{RunConfig, SsdDevice};
use dloop_ftl_kit::request::{HostOp, HostRequest};
use dloop_simkit::{SimRng, SimTime};

fn w(at_us: u64, lpn: u64, pages: u32) -> HostRequest {
    HostRequest {
        arrival: SimTime::from_micros(at_us),
        lpn,
        pages,
        op: HostOp::Write,
        ..HostRequest::default()
    }
}

fn r(at_us: u64, lpn: u64, pages: u32) -> HostRequest {
    HostRequest {
        arrival: SimTime::from_micros(at_us),
        lpn,
        pages,
        op: HostOp::Read,
        ..HostRequest::default()
    }
}

fn random_write_trace(seed: u64, n: u64, space: u64, gap_us: u64) -> Vec<HostRequest> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|i| w(i * gap_us, rng.below(space), 1)).collect()
}

mod dftl {
    use super::*;

    fn device(config: &SsdConfig) -> SsdDevice {
        SsdDevice::new(config.clone(), Box::new(DftlFtl::new(config)))
    }

    #[test]
    fn write_read_round_trip() {
        let config = SsdConfig::tiny_test();
        let mut d = device(&config);
        let rep = d.run_with(&[w(0, 42, 1), r(1000, 42, 1)], RunConfig::open());
        assert_eq!(rep.pages_written, 1);
        assert_eq!(rep.hw.reads, 1);
        d.audit().unwrap();
    }

    #[test]
    fn writes_serialise_block_by_block() {
        let config = SsdConfig::tiny_test();
        let mut d = device(&config);
        let ppb = config.geometry().pages_per_block as u64;
        // The first block's worth of writes all land on one plane (the
        // single global active block) — DLOOP would stripe them.
        let reqs: Vec<_> = (0..ppb).map(|i| w(i * 300, i, 1)).collect();
        let rep = d.run_with(&reqs, RunConfig::open());
        assert_eq!(rep.plane_request_counts[0], ppb);
        let elsewhere: u64 = rep.plane_request_counts[1..].iter().sum();
        assert_eq!(
            elsewhere, 0,
            "first {ppb} DFTL writes must share one plane, got {:?}",
            rep.plane_request_counts
        );
        d.audit().unwrap();
    }

    #[test]
    fn sequential_write_is_serialised_unlike_dloop() {
        // The same 8-page write that DLOOP stripes: DFTL must be slower.
        let config = SsdConfig::tiny_test();
        let mut d = device(&config);
        let rep = d.run_with(&[w(0, 0, 8)], RunConfig::open());
        let one_write_ms = 0.2514;
        assert!(
            rep.mean_response_time_ms() > 4.0 * one_write_ms,
            "DFTL 8-page write too fast: {} ms",
            rep.mean_response_time_ms()
        );
    }

    #[test]
    fn translation_traffic_on_cmt_thrash() {
        let mut config = SsdConfig::micro_gc_test();
        config.cmt_capacity = 16;
        let mut d = device(&config);
        let user = d.flash().geometry().user_pages();
        let mut reqs = Vec::new();
        for i in 0..400u64 {
            reqs.push(w(i * 300, (i * 13) % user, 1));
        }
        let rep = d.run_with(&reqs, RunConfig::open());
        assert!(rep.ftl.translation_writes > 0);
        d.audit().unwrap();
    }

    #[test]
    fn gc_under_pressure_moves_over_bus() {
        let config = SsdConfig::micro_gc_test();
        let mut d = device(&config);
        let user = d.flash().geometry().user_pages();
        let rep = d.run_with(
            &random_write_trace(3, 12_000, user / 2, 50),
            RunConfig::open(),
        );
        assert!(rep.ftl.gc_invocations > 0, "GC never ran");
        assert!(rep.ftl.external_moves > 0, "DFTL moves must cross the bus");
        assert_eq!(rep.ftl.copyback_moves, 0, "DFTL never uses copy-back");
        d.audit().unwrap();
    }

    #[test]
    fn deterministic() {
        let mk = || random_write_trace(5, 3000, 2000, 100);
        let mut a = device(&SsdConfig::micro_gc_test());
        let mut b = device(&SsdConfig::micro_gc_test());
        let ra = a.run_with(&mk(), RunConfig::open());
        let rb = b.run_with(&mk(), RunConfig::open());
        assert_eq!(ra.mean_response_time_ms(), rb.mean_response_time_ms());
        assert_eq!(ra.total_erases, rb.total_erases);
    }
}

mod fast {
    use super::*;

    fn device(config: &SsdConfig) -> SsdDevice {
        SsdDevice::new(config.clone(), Box::new(FastFtl::new(config)))
    }

    #[test]
    fn write_read_round_trip() {
        let config = SsdConfig::tiny_test();
        let mut d = device(&config);
        let rep = d.run_with(&[w(0, 7, 1), r(1000, 7, 1)], RunConfig::open());
        assert_eq!(rep.hw.reads, 1);
        d.audit().unwrap();
    }

    #[test]
    fn read_of_unwritten_page_touches_nothing() {
        let config = SsdConfig::tiny_test();
        let mut d = device(&config);
        let rep = d.run_with(&[r(0, 99, 1)], RunConfig::open());
        assert_eq!(rep.hw.reads, 0);
    }

    #[test]
    fn full_block_sequential_write_switch_merges() {
        let config = SsdConfig::tiny_test();
        let ppb = config.geometry().pages_per_block as u64;
        let mut d = device(&config);
        // Write one full logical block sequentially, twice (second pass
        // re-triggers SW + switch).
        let mut reqs = Vec::new();
        let mut t = 0;
        for _pass in 0..2 {
            for off in 0..ppb {
                reqs.push(w(t, off, 1));
                t += 300;
            }
        }
        let rep = d.run_with(&reqs, RunConfig::open());
        assert!(
            rep.ftl.switch_merges >= 2,
            "expected switch merges, got {:?}",
            rep.ftl
        );
        assert_eq!(
            rep.ftl.full_merges, 0,
            "sequential load must not full-merge"
        );
        d.audit().unwrap();
    }

    #[test]
    fn partial_sequential_then_restart_partial_merges() {
        let config = SsdConfig::tiny_test();
        let mut d = device(&config);
        let ppb = config.geometry().pages_per_block as u64;
        let mut reqs = Vec::new();
        let mut t = 0;
        // Half a block sequentially, then a new offset-0 write of another
        // block retires the SW log via a partial merge.
        for off in 0..ppb / 2 {
            reqs.push(w(t, off, 1));
            t += 300;
        }
        reqs.push(w(t, ppb, 1)); // lbn 1, offset 0
        let rep = d.run_with(&reqs, RunConfig::open());
        assert_eq!(rep.ftl.partial_merges, 1, "{:?}", rep.ftl);
        d.audit().unwrap();
    }

    #[test]
    fn in_place_append_continues_partial_block() {
        let config = SsdConfig::tiny_test();
        let mut d = device(&config);
        let ppb = config.geometry().pages_per_block as u64;
        let mut reqs = Vec::new();
        let mut t = 0;
        for off in 0..ppb / 2 {
            reqs.push(w(t, off, 1));
            t += 300;
        }
        reqs.push(w(t, ppb, 1)); // retire SW -> partial merge promotes lbn 0
        t += 300;
        // Continue writing lbn 0 sequentially: in-place appends, no merges.
        let merges_before_continuation = 1;
        for off in ppb / 2..ppb {
            reqs.push(w(t, off, 1));
            t += 300;
        }
        let rep = d.run_with(&reqs, RunConfig::open());
        assert_eq!(
            rep.ftl.partial_merges + rep.ftl.full_merges + rep.ftl.switch_merges,
            merges_before_continuation,
            "{:?}",
            rep.ftl
        );
        // All lbn-0 pages readable.
        let mut d2_reqs = Vec::new();
        for off in 0..ppb {
            d2_reqs.push(r(t, off, 1));
            t += 300;
        }
        let rep = d.run_with(&d2_reqs, RunConfig::open());
        assert_eq!(rep.hw.reads, ppb);
        d.audit().unwrap();
    }

    #[test]
    fn random_updates_force_full_merges() {
        let config = SsdConfig::micro_gc_test();
        let mut d = device(&config);
        let user = d.flash().geometry().user_pages();
        let rep = d.run_with(
            &random_write_trace(9, 12_000, user / 2, 50),
            RunConfig::open(),
        );
        assert!(
            rep.ftl.full_merges > 0,
            "random writes must exhaust the RW log: {:?}",
            rep.ftl
        );
        assert!(rep.ftl.external_moves > 0);
        d.audit().unwrap();
    }

    #[test]
    fn reads_after_random_updates_hit_latest_version() {
        let config = SsdConfig::micro_gc_test();
        let mut d = device(&config);
        let user = d.flash().geometry().user_pages();
        let mut rng = SimRng::new(21);
        let mut reqs = Vec::new();
        let mut t = 0u64;
        for _ in 0..8000 {
            reqs.push(w(t, rng.below(user / 4), 1));
            t += 60;
        }
        // Read back a swath; every previously written LPN must be served.
        d.run_with(&reqs, RunConfig::open());
        d.audit().unwrap();
        let mut read_reqs = Vec::new();
        for lpn in 0..200u64 {
            read_reqs.push(r(t, lpn, 1));
            t += 60;
        }
        let rep = d.run_with(&read_reqs, RunConfig::open());
        assert!(rep.hw.reads > 0);
        d.audit().unwrap();
    }

    #[test]
    fn deterministic() {
        let mk = || random_write_trace(33, 4000, 1500, 80);
        let mut a = device(&SsdConfig::micro_gc_test());
        let mut b = device(&SsdConfig::micro_gc_test());
        let ra = a.run_with(&mk(), RunConfig::open());
        let rb = b.run_with(&mk(), RunConfig::open());
        assert_eq!(ra.mean_response_time_ms(), rb.mean_response_time_ms());
        assert_eq!(ra.ftl, rb.ftl);
    }
}

mod ideal {
    use super::*;

    fn device(config: &SsdConfig) -> SsdDevice {
        SsdDevice::new(config.clone(), Box::new(IdealPageMapFtl::new(config)))
    }

    #[test]
    fn basic_round_trip_and_striping() {
        let config = SsdConfig::tiny_test();
        let mut d = device(&config);
        let planes = d.flash().geometry().total_planes() as u64;
        d.run_with(&[w(0, 0, 2 * planes as u32)], RunConfig::open());
        for lpn in 0..2 * planes {
            let ppn = d.ftl().mapped_ppn(lpn).unwrap();
            assert_eq!(d.flash().geometry().plane_of_ppn(ppn) as u64, lpn % planes);
        }
        d.audit().unwrap();
    }

    #[test]
    fn no_translation_traffic_ever() {
        let config = SsdConfig::micro_gc_test();
        let mut d = device(&config);
        let user = d.flash().geometry().user_pages();
        let rep = d.run_with(
            &random_write_trace(11, 10_000, user / 2, 50),
            RunConfig::open(),
        );
        assert_eq!(rep.ftl.translation_reads, 0);
        assert_eq!(rep.ftl.translation_writes, 0);
        assert!(rep.ftl.gc_invocations > 0);
        d.audit().unwrap();
    }

    #[test]
    fn ideal_is_at_least_as_fast_as_dloop() {
        let mk = || random_write_trace(17, 8000, 1500, 120);
        let config = SsdConfig::micro_gc_test();
        let mut ideal = device(&config);
        let ri = ideal.run_with(&mk(), RunConfig::open());
        let mut dl = SsdDevice::new(config.clone(), Box::new(dloop::DloopFtl::new(&config)));
        let rd = dl.run_with(&mk(), RunConfig::open());
        assert!(
            ri.mean_response_time_ms() <= rd.mean_response_time_ms() * 1.05,
            "IDEAL {} ms should not lose to DLOOP {} ms",
            ri.mean_response_time_ms(),
            rd.mean_response_time_ms()
        );
    }
}

mod ordering {
    use super::*;

    /// A hot/cold random-write trace with enterprise-like locality: 80 %
    /// of writes hit the hottest 10 % of the space.
    fn hot_cold_trace(seed: u64, n: u64, space: u64, gap_us: u64) -> Vec<HostRequest> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|i| {
                let lpn = if rng.chance(0.8) {
                    rng.below(space / 10) * 7 % space
                } else {
                    rng.below(space)
                };
                w(i * gap_us, lpn, 1)
            })
            .collect()
    }

    /// The paper's headline shape on a localised random-write workload:
    /// DLOOP < DFTL < FAST in mean response time. The arrival gap keeps
    /// the micro device out of open-loop overload so queueing reflects GC
    /// efficiency rather than collapse dynamics; the locality matches the
    /// enterprise traces the paper replays (uniform-random updates over a
    /// tiny device is the one regime where DFTL's device-wide victim
    /// selection can edge out per-plane selection).
    #[test]
    fn paper_ordering_on_random_writes() {
        let mk = || hot_cold_trace(77, 30_000, 6000, 400);
        let mut config = SsdConfig::micro_gc_test();
        config.blocks_per_plane_override = Some((48, 4));
        config.cmt_capacity = 512;

        let mut dl = SsdDevice::new(config.clone(), Box::new(dloop::DloopFtl::new(&config)));
        let r_dloop = dl.run_with(&mk(), RunConfig::open());
        dl.audit().unwrap();

        let mut df = SsdDevice::new(config.clone(), Box::new(DftlFtl::new(&config)));
        let r_dftl = df.run_with(&mk(), RunConfig::open());
        df.audit().unwrap();

        let mut fa = SsdDevice::new(config.clone(), Box::new(FastFtl::new(&config)));
        let r_fast = fa.run_with(&mk(), RunConfig::open());
        fa.audit().unwrap();

        let (d, t, f) = (
            r_dloop.mean_response_time_ms(),
            r_dftl.mean_response_time_ms(),
            r_fast.mean_response_time_ms(),
        );
        assert!(d < t, "DLOOP {d} ms must beat DFTL {t} ms");
        assert!(d < f, "DLOOP {d} ms must beat FAST {f} ms");
        // SDRPP: DLOOP spreads best.
        assert!(
            r_dloop.sdrpp() <= r_dftl.sdrpp(),
            "DLOOP sdrpp {} vs DFTL {}",
            r_dloop.sdrpp(),
            r_dftl.sdrpp()
        );
    }
}

//! A Zipf(θ) rank sampler for skewed ("hot/cold") address popularity.
//!
//! Enterprise traces exhibit strong temporal locality (the reason DFTL's
//! and DLOOP's mapping caches work, §II.A); the synthetic generators model
//! it with a Zipf-distributed choice over hot extents. Implementation:
//! the classic quantile approximation of Gray et al. (SIGMOD'94), exact
//! for θ→0 (uniform) and accurate for the θ ∈ [0.5, 1.2] range we use.

use dloop_simkit::SimRng;

/// Zipf sampler over ranks `0..n`.
///
/// ```
/// use dloop_simkit::SimRng;
/// use dloop_workloads::Zipf;
///
/// let z = Zipf::new(1_000, 0.99);
/// let mut rng = SimRng::new(7);
/// let hits = (0..10_000).filter(|_| z.sample(&mut rng) < 10).count();
/// assert!(hits > 2_000); // the top 1% of ranks draws >20% of samples
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// A sampler over `n` items with skew `theta` (0 = uniform; 0.99 ≈
    /// classic YCSB hot-spot skew). `n` must be ≥ 1.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1);
        assert!((0.0..2.0).contains(&theta) && (theta - 1.0).abs() > 1e-9);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; Euler-Maclaurin tail for large n.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫_{10000}^{n} x^-θ dx + correction terms.
            let a = 10_000f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
                + 0.5 * (b.powf(-theta) - a.powf(-theta))
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `0..n`, rank 0 being the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.theta == 0.0 {
            return rng.below(self.n);
        }
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) && self.n >= 2 {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The ζ(2,θ)/ζ(n,θ) ratio (diagnostics).
    pub fn head_mass(&self) -> f64 {
        self.zeta2 / self.zetan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(100, 0.0);
        let mut rng = SimRng::new(1);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.5, "uniform sampler too skewed: {min}..{max}");
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = SimRng::new(2);
        let mut head = 0u64;
        let n = 100_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99, the top 1% of ranks should receive a large
        // share (>40%) of accesses.
        assert!(
            head as f64 / n as f64 > 0.4,
            "head share {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn samples_stay_in_range() {
        for theta in [0.0, 0.5, 0.9, 1.2] {
            let z = Zipf::new(37, theta);
            let mut rng = SimRng::new(3);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < 37);
            }
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 0.9);
        let mut rng = SimRng::new(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zeta_large_n_is_finite_and_monotone() {
        let a = Zipf::zeta(10_000, 0.9);
        let b = Zipf::zeta(1_000_000, 0.9);
        assert!(b > a);
        assert!(b.is_finite());
    }
}

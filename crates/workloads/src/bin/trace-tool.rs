//! `trace-tool` — inspect, convert, and generate I/O traces.
//!
//! ```text
//! trace-tool stats <file> [spc|disksim]
//! trace-tool convert <in> <spc|disksim> <out.spc>
//! trace-tool generate <financial1|financial2|tpcc|exchange|build> <out.spc> [requests] [seed]
//! ```

use dloop_workloads::spc::write_spc;
use dloop_workloads::{parse_disksim, parse_spc, Trace, WorkloadProfile};
use std::process::ExitCode;

const PAGE: u32 = 2048;

fn load(path: &str, format: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    match format {
        "spc" => parse_spc(&text, path, PAGE, None).map_err(|e| e.to_string()),
        "disksim" => parse_disksim(&text, path, PAGE, None).map_err(|e| e.to_string()),
        other => Err(format!("unknown format {other:?} (expected spc|disksim)")),
    }
}

fn profile(name: &str) -> Result<WorkloadProfile, String> {
    Ok(match name {
        "financial1" => WorkloadProfile::financial1(),
        "financial2" => WorkloadProfile::financial2(),
        "tpcc" => WorkloadProfile::tpcc(),
        "exchange" => WorkloadProfile::exchange(),
        "build" => WorkloadProfile::build(),
        other => return Err(format!("unknown profile {other:?}")),
    })
}

fn print_stats(trace: &Trace) {
    let s = trace.stats(PAGE);
    println!("trace      : {}", trace.name);
    println!("requests   : {}", trace.len());
    println!("writes     : {} ({:.1}%)", s.writes, s.write_pct);
    println!("reads      : {}", s.reads);
    println!("avg size   : {:.2} KB", s.avg_size_kb);
    println!("rate       : {:.1} req/s", s.rate_per_sec);
    println!("duration   : {:.1} s", s.duration.as_secs_f64());
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("stats") => {
            let path = args.get(1).ok_or("stats needs a file")?;
            let format = args.get(2).map(String::as_str).unwrap_or("spc");
            print_stats(&load(path, format)?);
            Ok(())
        }
        Some("convert") => {
            let [_, input, format, output] = &args[..] else {
                return Err("convert <in> <spc|disksim> <out.spc>".into());
            };
            let trace = load(input, format)?;
            std::fs::write(output, write_spc(&trace, PAGE))
                .map_err(|e| format!("write {output}: {e}"))?;
            println!("wrote {} requests to {output}", trace.len());
            Ok(())
        }
        Some("generate") => {
            let name = args.get(1).ok_or("generate needs a profile")?;
            let output = args.get(2).ok_or("generate needs an output path")?;
            let requests: u64 = args
                .get(3)
                .map(|s| s.parse().map_err(|_| "bad request count"))
                .transpose()?
                .unwrap_or(100_000);
            let seed: u64 = args
                .get(4)
                .map(|s| s.parse().map_err(|_| "bad seed"))
                .transpose()?
                .unwrap_or(42);
            let trace = profile(name)?.generate_scaled(seed, PAGE, requests);
            std::fs::write(output, write_spc(&trace, PAGE))
                .map_err(|e| format!("write {output}: {e}"))?;
            print_stats(&trace);
            println!("wrote {output}");
            Ok(())
        }
        _ => Err("usage: trace-tool <stats|convert|generate> ...".into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Multi-tenant workload composition for the QoS experiments.
//!
//! A multi-tenant trace is a deterministic merge of per-tenant sub-traces:
//! each [`TenantSpec`] names a host stream (tenant id), the synthetic
//! profile that drives it, how many requests it contributes, and an
//! optional per-request deadline budget for the EDF policy. The merge is a
//! *stable* sort by arrival time, so same-instant arrivals keep spec
//! order and the whole composition is seed-replayable — the same
//! `(specs, seed)` pair always produces the same byte-identical trace,
//! which is what the QoS determinism tests in `tests/replay_modes.rs`
//! lean on.
//!
//! [`qos_mix`] is the canonical three-tenant contention mix used by the
//! `qos` experiment sweep and the C12 claim: a latency-sensitive
//! read-dominant stream with deadlines, a throughput-oriented write-heavy
//! stream, and a background bulk stream.

use crate::synth::WorkloadProfile;
use crate::trace::Trace;
use dloop_ftl_kit::request::TenantId;
use dloop_simkit::SimDuration;

/// How a tenant's access pattern interacts with a host page cache (the
/// `dloop-host` write-back cache). The bias is applied to the tenant's
/// profile at generation time, so the same knob works for any base
/// profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheBias {
    /// The profile as-is (the pre-host-stack behaviour).
    #[default]
    Neutral,
    /// Cache-friendly: the footprint shrinks to an eighth, popularity
    /// skew rises and sequential runs lengthen — a hot working set that
    /// mostly fits in a host cache.
    Friendly,
    /// Cache-hostile: popularity flattens to uniform and sequential
    /// locality disappears — a scan-like stream that churns any cache it
    /// touches.
    Hostile,
}

impl CacheBias {
    /// Short display name for tables and docs.
    pub fn name(self) -> &'static str {
        match self {
            CacheBias::Neutral => "neutral",
            CacheBias::Friendly => "cache-friendly",
            CacheBias::Hostile => "cache-hostile",
        }
    }

    /// Apply the bias to `profile`.
    pub fn apply(self, mut profile: WorkloadProfile) -> WorkloadProfile {
        match self {
            CacheBias::Neutral => {}
            CacheBias::Friendly => {
                profile.footprint_bytes = (profile.footprint_bytes / 8).max(1);
                profile.zipf_theta = profile.zipf_theta.max(1.1);
                profile.seq_prob = profile.seq_prob.max(0.5);
            }
            CacheBias::Hostile => {
                profile.zipf_theta = 0.0;
                profile.seq_prob = 0.0;
            }
        }
        profile
    }
}

/// One tenant's contribution to a multi-tenant trace.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Host stream id carried on every generated request (use non-zero
    /// ids: 0 is the untagged/neutral stream).
    pub tenant: TenantId,
    /// Synthetic profile driving this tenant's sub-trace.
    pub profile: WorkloadProfile,
    /// Requests this tenant contributes.
    pub requests: u64,
    /// Per-request deadline budget (arrival + budget), for the EDF
    /// policy. `None` leaves requests best-effort.
    pub deadline: Option<SimDuration>,
    /// Host-cache interaction bias, applied to `profile` at generation
    /// time. [`CacheBias::Neutral`] (the default) leaves the profile
    /// untouched, so pre-existing compositions are byte-identical.
    pub cache_bias: CacheBias,
}

impl TenantSpec {
    /// A best-effort tenant: `requests` drawn from `profile`, no deadline.
    pub fn new(tenant: TenantId, profile: WorkloadProfile, requests: u64) -> Self {
        TenantSpec {
            tenant,
            profile,
            requests,
            deadline: None,
            cache_bias: CacheBias::Neutral,
        }
    }

    /// Attach a per-request deadline budget.
    pub fn with_deadline(mut self, budget: SimDuration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Bias this tenant's access pattern for or against a host cache.
    pub fn with_cache_bias(mut self, bias: CacheBias) -> Self {
        self.cache_bias = bias;
        self
    }
}

/// Per-tenant seed derivation: decorrelate the sub-traces without losing
/// determinism (SplitMix64's odd multiplier over the tenant id).
fn tenant_seed(seed: u64, tenant: TenantId) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tenant as u64 + 1)
}

/// Merge per-tenant sub-traces into one tenant-tagged [`Trace`].
///
/// Each spec generates its sub-trace with a tenant-decorrelated seed,
/// tags every request with the spec's tenant id (and deadline budget, if
/// any), and the union is stable-sorted by arrival. Deterministic: same
/// specs + seed, same trace.
pub fn multi_tenant(name: &str, specs: &[TenantSpec], seed: u64, page_size: u32) -> Trace {
    let mut requests = Vec::new();
    for spec in specs {
        let profile = spec.cache_bias.apply(spec.profile.clone());
        let sub = profile.generate_scaled(tenant_seed(seed, spec.tenant), page_size, spec.requests);
        for r in sub.requests {
            let mut r = r.with_tenant(spec.tenant);
            if let Some(budget) = spec.deadline {
                r = r.with_deadline_after(budget);
            }
            requests.push(r);
        }
    }
    // Stable by arrival: simultaneous arrivals keep spec order.
    requests.sort_by_key(|r| r.arrival);
    Trace::new(name, requests)
}

/// The canonical three-tenant QoS contention mix.
///
/// | tenant | stream | profile | deadline |
/// |---|---|---|---|
/// | 1 | latency-sensitive, read-dominant | Financial2 | 5 ms |
/// | 2 | throughput-oriented, write-heavy | Financial1 | — |
/// | 3 | background bulk, large transfers | Build | — |
///
/// Every profile's footprint is clamped to `footprint_bytes` so the mix
/// fits whatever device the caller replays it on (the Table II footprints
/// are tens of gigabytes; scaled experiment devices are much smaller).
pub fn qos_mix(seed: u64, page_size: u32, requests_per_tenant: u64, footprint_bytes: u64) -> Trace {
    let clamp = |mut p: WorkloadProfile| {
        p.footprint_bytes = p.footprint_bytes.min(footprint_bytes);
        p
    };
    let specs = [
        TenantSpec::new(1, clamp(WorkloadProfile::financial2()), requests_per_tenant)
            .with_deadline(SimDuration::from_millis(5)),
        TenantSpec::new(2, clamp(WorkloadProfile::financial1()), requests_per_tenant),
        TenantSpec::new(3, clamp(WorkloadProfile::build()), requests_per_tenant),
    ];
    multi_tenant("qos-mix", &specs, seed, page_size)
}

/// The canonical host-cache contention mix for the `dloop-host` stack.
///
/// | tenant | stream | profile | cache bias |
/// |---|---|---|---|
/// | 1 | hot-set reader, mostly cache-resident | Financial2 | friendly |
/// | 2 | write-heavy OLTP, fills the write-back cache | Financial1 | neutral |
/// | 3 | scan-like churn, evicts everyone else | Build | hostile |
///
/// Tenant 1's hits collapse once tenant 3's uniform scan starts evicting
/// the hot set — the cache-contention scenario the `host` experiment
/// sweeps. Footprints are clamped to `footprint_bytes` like
/// [`qos_mix`].
pub fn host_mix(
    seed: u64,
    page_size: u32,
    requests_per_tenant: u64,
    footprint_bytes: u64,
) -> Trace {
    let clamp = |mut p: WorkloadProfile| {
        p.footprint_bytes = p.footprint_bytes.min(footprint_bytes);
        p
    };
    let specs = [
        TenantSpec::new(1, clamp(WorkloadProfile::financial2()), requests_per_tenant)
            .with_cache_bias(CacheBias::Friendly),
        TenantSpec::new(2, clamp(WorkloadProfile::financial1()), requests_per_tenant),
        TenantSpec::new(3, clamp(WorkloadProfile::build()), requests_per_tenant)
            .with_cache_bias(CacheBias::Hostile),
    ];
    multi_tenant("host-mix", &specs, seed, page_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_sorted_tagged_and_deadlined() {
        let t = qos_mix(7, 2048, 50, 1 << 26);
        assert_eq!(t.len(), 150);
        assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for r in &t.requests {
            assert!((1..=3).contains(&r.tenant));
            match r.tenant {
                1 => {
                    let d = r.deadline.expect("tenant 1 carries deadlines");
                    assert_eq!(d, r.arrival + SimDuration::from_millis(5));
                }
                _ => assert!(r.deadline.is_none()),
            }
        }
        // All three streams actually show up.
        for tenant in 1..=3u16 {
            assert!(t.requests.iter().any(|r| r.tenant == tenant));
        }
    }

    #[test]
    fn composition_is_deterministic_and_seed_sensitive() {
        let a = qos_mix(11, 2048, 40, 1 << 26);
        let b = qos_mix(11, 2048, 40, 1 << 26);
        assert_eq!(a.requests, b.requests);
        let c = qos_mix(12, 2048, 40, 1 << 26);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn footprint_clamp_bounds_the_address_space() {
        let t = qos_mix(3, 2048, 60, 1 << 22); // 4 MB = 2048 pages
        let pages = (1u64 << 22) / 2048;
        assert!(t.requests.iter().all(|r| r.lpn < pages));
    }

    #[test]
    fn neutral_bias_is_the_identity() {
        let p = WorkloadProfile::financial1();
        let biased = CacheBias::Neutral.apply(p.clone());
        assert_eq!(biased.footprint_bytes, p.footprint_bytes);
        assert_eq!(biased.zipf_theta, p.zipf_theta);
        assert_eq!(biased.seq_prob, p.seq_prob);
        // And a spec built without the knob behaves exactly as before.
        let spec = TenantSpec::new(1, p, 10);
        assert_eq!(spec.cache_bias, CacheBias::Neutral);
    }

    #[test]
    fn biases_reshape_the_access_pattern() {
        let p = WorkloadProfile::financial2();
        let friendly = CacheBias::Friendly.apply(p.clone());
        assert!(friendly.footprint_bytes < p.footprint_bytes);
        assert!(friendly.zipf_theta >= 1.1);
        assert!(friendly.seq_prob >= 0.5);
        let hostile = CacheBias::Hostile.apply(p.clone());
        assert_eq!(hostile.zipf_theta, 0.0);
        assert_eq!(hostile.seq_prob, 0.0);
        assert_eq!(hostile.footprint_bytes, p.footprint_bytes);
    }

    #[test]
    fn host_mix_is_deterministic_and_biased() {
        let a = host_mix(9, 2048, 50, 1 << 26);
        let b = host_mix(9, 2048, 50, 1 << 26);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.len(), 150);
        for tenant in 1..=3u16 {
            assert!(a.requests.iter().any(|r| r.tenant == tenant));
        }
        // The friendly tenant's addresses concentrate in a footprint an
        // eighth the size of the hostile tenant's.
        let max_lpn = |t: u16| {
            a.requests
                .iter()
                .filter(|r| r.tenant == t)
                .map(|r| r.lpn)
                .max()
                .unwrap()
        };
        assert!(max_lpn(1) < max_lpn(3) / 2);
        // Distinct from the QoS mix: no deadlines anywhere.
        assert!(a.requests.iter().all(|r| r.deadline.is_none()));
    }
}

//! Multi-tenant workload composition for the QoS experiments.
//!
//! A multi-tenant trace is a deterministic merge of per-tenant sub-traces:
//! each [`TenantSpec`] names a host stream (tenant id), the synthetic
//! profile that drives it, how many requests it contributes, and an
//! optional per-request deadline budget for the EDF policy. The merge is a
//! *stable* sort by arrival time, so same-instant arrivals keep spec
//! order and the whole composition is seed-replayable — the same
//! `(specs, seed)` pair always produces the same byte-identical trace,
//! which is what the QoS determinism tests in `tests/replay_modes.rs`
//! lean on.
//!
//! [`qos_mix`] is the canonical three-tenant contention mix used by the
//! `qos` experiment sweep and the C12 claim: a latency-sensitive
//! read-dominant stream with deadlines, a throughput-oriented write-heavy
//! stream, and a background bulk stream.

use crate::synth::WorkloadProfile;
use crate::trace::Trace;
use dloop_ftl_kit::request::TenantId;
use dloop_simkit::SimDuration;

/// One tenant's contribution to a multi-tenant trace.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Host stream id carried on every generated request (use non-zero
    /// ids: 0 is the untagged/neutral stream).
    pub tenant: TenantId,
    /// Synthetic profile driving this tenant's sub-trace.
    pub profile: WorkloadProfile,
    /// Requests this tenant contributes.
    pub requests: u64,
    /// Per-request deadline budget (arrival + budget), for the EDF
    /// policy. `None` leaves requests best-effort.
    pub deadline: Option<SimDuration>,
}

impl TenantSpec {
    /// A best-effort tenant: `requests` drawn from `profile`, no deadline.
    pub fn new(tenant: TenantId, profile: WorkloadProfile, requests: u64) -> Self {
        TenantSpec {
            tenant,
            profile,
            requests,
            deadline: None,
        }
    }

    /// Attach a per-request deadline budget.
    pub fn with_deadline(mut self, budget: SimDuration) -> Self {
        self.deadline = Some(budget);
        self
    }
}

/// Per-tenant seed derivation: decorrelate the sub-traces without losing
/// determinism (SplitMix64's odd multiplier over the tenant id).
fn tenant_seed(seed: u64, tenant: TenantId) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tenant as u64 + 1)
}

/// Merge per-tenant sub-traces into one tenant-tagged [`Trace`].
///
/// Each spec generates its sub-trace with a tenant-decorrelated seed,
/// tags every request with the spec's tenant id (and deadline budget, if
/// any), and the union is stable-sorted by arrival. Deterministic: same
/// specs + seed, same trace.
pub fn multi_tenant(name: &str, specs: &[TenantSpec], seed: u64, page_size: u32) -> Trace {
    let mut requests = Vec::new();
    for spec in specs {
        let sub =
            spec.profile
                .generate_scaled(tenant_seed(seed, spec.tenant), page_size, spec.requests);
        for r in sub.requests {
            let mut r = r.with_tenant(spec.tenant);
            if let Some(budget) = spec.deadline {
                r = r.with_deadline_after(budget);
            }
            requests.push(r);
        }
    }
    // Stable by arrival: simultaneous arrivals keep spec order.
    requests.sort_by_key(|r| r.arrival);
    Trace::new(name, requests)
}

/// The canonical three-tenant QoS contention mix.
///
/// | tenant | stream | profile | deadline |
/// |---|---|---|---|
/// | 1 | latency-sensitive, read-dominant | Financial2 | 5 ms |
/// | 2 | throughput-oriented, write-heavy | Financial1 | — |
/// | 3 | background bulk, large transfers | Build | — |
///
/// Every profile's footprint is clamped to `footprint_bytes` so the mix
/// fits whatever device the caller replays it on (the Table II footprints
/// are tens of gigabytes; scaled experiment devices are much smaller).
pub fn qos_mix(seed: u64, page_size: u32, requests_per_tenant: u64, footprint_bytes: u64) -> Trace {
    let clamp = |mut p: WorkloadProfile| {
        p.footprint_bytes = p.footprint_bytes.min(footprint_bytes);
        p
    };
    let specs = [
        TenantSpec::new(1, clamp(WorkloadProfile::financial2()), requests_per_tenant)
            .with_deadline(SimDuration::from_millis(5)),
        TenantSpec::new(2, clamp(WorkloadProfile::financial1()), requests_per_tenant),
        TenantSpec::new(3, clamp(WorkloadProfile::build()), requests_per_tenant),
    ];
    multi_tenant("qos-mix", &specs, seed, page_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_sorted_tagged_and_deadlined() {
        let t = qos_mix(7, 2048, 50, 1 << 26);
        assert_eq!(t.len(), 150);
        assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for r in &t.requests {
            assert!((1..=3).contains(&r.tenant));
            match r.tenant {
                1 => {
                    let d = r.deadline.expect("tenant 1 carries deadlines");
                    assert_eq!(d, r.arrival + SimDuration::from_millis(5));
                }
                _ => assert!(r.deadline.is_none()),
            }
        }
        // All three streams actually show up.
        for tenant in 1..=3u16 {
            assert!(t.requests.iter().any(|r| r.tenant == tenant));
        }
    }

    #[test]
    fn composition_is_deterministic_and_seed_sensitive() {
        let a = qos_mix(11, 2048, 40, 1 << 26);
        let b = qos_mix(11, 2048, 40, 1 << 26);
        assert_eq!(a.requests, b.requests);
        let c = qos_mix(12, 2048, 40, 1 << 26);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn footprint_clamp_bounds_the_address_space() {
        let t = qos_mix(3, 2048, 60, 1 << 22); // 4 MB = 2048 pages
        let pages = (1u64 << 22) / 2048;
        assert!(t.requests.iter().all(|r| r.lpn < pages));
    }
}

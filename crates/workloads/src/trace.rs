//! The trace container: an ordered sequence of host requests plus summary
//! statistics (the rows of the paper's Table II).

use dloop_ftl_kit::request::{HostOp, HostRequest};
use dloop_simkit::SimDuration;

/// A named request trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Trace name (e.g. "Financial1").
    pub name: String,
    /// Requests in non-decreasing arrival order.
    pub requests: Vec<HostRequest>,
}

/// Summary statistics in the shape of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of write requests.
    pub writes: u64,
    /// Number of read requests.
    pub reads: u64,
    /// Write percentage.
    pub write_pct: f64,
    /// Mean request size in KB (pages × page size).
    pub avg_size_kb: f64,
    /// Mean arrival rate in requests/second.
    pub rate_per_sec: f64,
    /// Trace duration.
    pub duration: SimDuration,
}

impl Trace {
    /// Build a trace, asserting arrival monotonicity.
    pub fn new(name: impl Into<String>, requests: Vec<HostRequest>) -> Self {
        debug_assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace arrivals must be sorted"
        );
        Trace {
            name: name.into(),
            requests,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Table-II-style statistics, given the page size the trace was
    /// aligned to.
    pub fn stats(&self, page_size: u32) -> TraceStats {
        let mut writes = 0u64;
        let mut reads = 0u64;
        let mut pages = 0u64;
        for r in &self.requests {
            match r.op {
                HostOp::Write => writes += 1,
                HostOp::Read => reads += 1,
            }
            pages += r.pages as u64;
        }
        let total = writes + reads;
        let duration = match (self.requests.first(), self.requests.last()) {
            (Some(a), Some(b)) => b.arrival.saturating_since(a.arrival),
            _ => SimDuration::ZERO,
        };
        let secs = duration.as_secs_f64();
        TraceStats {
            writes,
            reads,
            write_pct: if total == 0 {
                0.0
            } else {
                writes as f64 / total as f64 * 100.0
            },
            avg_size_kb: if total == 0 {
                0.0
            } else {
                pages as f64 * page_size as f64 / total as f64 / 1024.0
            },
            rate_per_sec: if secs > 0.0 { total as f64 / secs } else { 0.0 },
            duration,
        }
    }

    /// Keep only the first `n` requests (harness scaling).
    pub fn truncated(mut self, n: usize) -> Self {
        self.requests.truncate(n);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dloop_simkit::SimTime;

    fn req(at_ms: u64, op: HostOp, pages: u32) -> HostRequest {
        HostRequest {
            arrival: SimTime::from_millis(at_ms),
            lpn: 0,
            pages,
            op,
            ..HostRequest::default()
        }
    }

    #[test]
    fn stats_match_hand_computation() {
        let t = Trace::new(
            "t",
            vec![
                req(0, HostOp::Write, 2),
                req(500, HostOp::Read, 1),
                req(1000, HostOp::Write, 3),
            ],
        );
        let s = t.stats(2048);
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert!((s.write_pct - 66.666).abs() < 0.01);
        // 6 pages * 2 KB / 3 requests = 4 KB average.
        assert!((s.avg_size_kb - 4.0).abs() < 1e-9);
        // 3 requests over 1 second.
        assert!((s.rate_per_sec - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = Trace::new("e", vec![]);
        let s = t.stats(2048);
        assert_eq!(s.writes + s.reads, 0);
        assert_eq!(s.rate_per_sec, 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn truncation() {
        let t = Trace::new(
            "t",
            (0..10)
                .map(|i| req(i * 10, HostOp::Write, 1))
                .collect::<Vec<_>>(),
        );
        assert_eq!(t.truncated(4).len(), 4);
    }
}

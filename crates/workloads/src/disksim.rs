//! Parser for DiskSim 3.0 ASCII trace files — the native input format of
//! the simulator the paper extends (Fig. 7: "DiskSim first reads the trace
//! file").
//!
//! Each line: `TIME DEVNO BLKNO BCOUNT FLAGS`, whitespace-separated —
//! arrival time in milliseconds (float), device number, starting block
//! (512-byte sectors), block count, and flags where bit 0 set means READ.

use crate::trace::Trace;
use dloop_ftl_kit::request::{HostOp, HostRequest};
use dloop_simkit::SimTime;
use std::fmt;

/// Sector size DiskSim block numbers are expressed in.
pub const DISKSIM_SECTOR: u64 = 512;

/// A line-level parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskSimParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for DiskSimParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for DiskSimParseError {}

/// Parse DiskSim ASCII trace text into a page-aligned [`Trace`].
///
/// `dev_filter` keeps only one device's requests (the paper: "We only use
/// requests going to one device"); `None` keeps everything.
pub fn parse_disksim(
    text: &str,
    name: &str,
    page_size: u32,
    dev_filter: Option<u32>,
) -> Result<Trace, DiskSimParseError> {
    let mut requests = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| DiskSimParseError {
            line: i + 1,
            reason: reason.to_string(),
        };
        let mut parts = line.split_whitespace();
        let time_ms: f64 = parts
            .next()
            .ok_or_else(|| err("missing time"))?
            .parse()
            .map_err(|_| err("bad time"))?;
        let devno: u32 = parts
            .next()
            .ok_or_else(|| err("missing devno"))?
            .parse()
            .map_err(|_| err("bad devno"))?;
        let blkno: u64 = parts
            .next()
            .ok_or_else(|| err("missing blkno"))?
            .parse()
            .map_err(|_| err("bad blkno"))?;
        let bcount: u64 = parts
            .next()
            .ok_or_else(|| err("missing bcount"))?
            .parse()
            .map_err(|_| err("bad bcount"))?;
        let flags: u32 = parts
            .next()
            .ok_or_else(|| err("missing flags"))?
            .parse()
            .map_err(|_| err("bad flags"))?;
        if let Some(want) = dev_filter {
            if devno != want {
                continue;
            }
        }
        let op = if flags & 1 == 1 {
            HostOp::Read
        } else {
            HostOp::Write
        };
        requests.push(
            HostRequest::from_bytes(
                SimTime::from_secs_f64(time_ms / 1e3),
                blkno * DISKSIM_SECTOR,
                bcount * DISKSIM_SECTOR,
                op,
                page_size,
            )
            // Device number doubles as the tenant id: multi-device
            // DiskSim traces replayed without a filter become multi-tenant
            // host streams for the QoS policies.
            .with_tenant(devno as u16),
        );
    }
    requests.sort_by_key(|r| r.arrival);
    Ok(Trace::new(name, requests))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
0.000000 0 10240 8 0
5.250000 0 512 16 1
7.000000 1 99 4 1
";

    #[test]
    fn parses_times_ops_and_extents() {
        let t = parse_disksim(SAMPLE, "ds", 2048, None).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests[0].op, HostOp::Write);
        assert_eq!(t.requests[1].op, HostOp::Read);
        // 8 sectors of 512 B = 4 KB = 2 pages of 2 KB from sector 10240.
        assert_eq!(t.requests[0].pages, 2);
        assert_eq!(t.requests[0].lpn, 10240 * 512 / 2048);
        assert_eq!(t.requests[1].arrival, SimTime::from_secs_f64(0.00525));
        // Device number becomes the tenant id.
        assert_eq!(t.requests[0].tenant, 0);
        assert_eq!(t.requests[2].tenant, 1);
    }

    #[test]
    fn device_filter() {
        let t = parse_disksim(SAMPLE, "ds", 2048, Some(0)).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn error_carries_line() {
        let e = parse_disksim("1.0 0 x 8 0", "ds", 2048, None).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.reason.contains("blkno"));
    }
}

//! Synthetic enterprise workloads reproducing the paper's Table II.
//!
//! The five traces the paper replays (Financial1, Financial2, TPC-C,
//! Exchange, Build) are proprietary SPC/SNIA artifacts that cannot be
//! redistributed, so this module generates statistically matched
//! substitutes: same request counts, read/write mix, mean request size and
//! arrival intensity, with the qualitative access structure the paper
//! relies on — Financial1 "random-write-dominant", Financial2
//! "random-read-dominant", TPC-C "very intensive … mostly random",
//! Exchange a mail-server mix, Build a large-transfer
//! compile-server workload. Real trace files can still be replayed via
//! [`crate::spc`] / [`crate::disksim`].
//!
//! The generator combines three classic ingredients:
//!
//! * Poisson arrivals at the trace's mean rate;
//! * request sizes exponentially distributed around the trace mean
//!   (clamped to `[1, 256]` pages);
//! * addresses drawn either sequentially (continuing per-stream runs) or
//!   from a Zipf-popular extent, giving the temporal locality that demand
//!   caching exploits (§II.A). Hot extents are scattered across the
//!   address space with a multiplicative hash so "hot" does not mean
//!   "low addresses".

use crate::trace::Trace;
use crate::zipf::Zipf;
use dloop_ftl_kit::request::{HostOp, HostRequest};
use dloop_simkit::{SimRng, SimTime};

/// Pages per locality extent (256 KB at 2 KB pages).
const EXTENT_PAGES: u64 = 128;

/// Statistical profile of one workload (a Table II row).
///
/// ```
/// use dloop_workloads::WorkloadProfile;
///
/// let trace = WorkloadProfile::financial1().generate_scaled(42, 2048, 1_000);
/// assert_eq!(trace.len(), 1_000);
/// let stats = trace.stats(2048);
/// assert!(stats.write_pct > 70.0); // random-write-dominant OLTP
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Trace name.
    pub name: &'static str,
    /// Total requests in the full-size trace.
    pub total_requests: u64,
    /// Fraction of requests that are writes.
    pub write_ratio: f64,
    /// Mean request size in KB.
    pub avg_size_kb: f64,
    /// Mean arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Probability a request continues the current sequential stream.
    pub seq_prob: f64,
    /// Zipf skew of the random-access extent popularity (0 = uniform).
    pub zipf_theta: f64,
    /// Logical footprint the trace addresses, in bytes.
    pub footprint_bytes: u64,
    /// Arrival burstiness in [0, 1]: 0 keeps plain Poisson arrivals; above
    /// that, a two-state ON/OFF modulation compresses bursts (rate x4) and
    /// stretches lulls, preserving the long-run mean rate.
    pub burstiness: f64,
}

impl WorkloadProfile {
    /// Financial1 — OLTP at a large financial institution:
    /// random-write-dominant, small requests, strong locality.
    pub fn financial1() -> Self {
        WorkloadProfile {
            name: "Financial1",
            total_requests: 5_334_985,
            write_ratio: 0.768,
            avg_size_kb: 3.5,
            rate_per_sec: 122.0,
            seq_prob: 0.10,
            zipf_theta: 0.99,
            footprint_bytes: 17 << 30,
            burstiness: 0.0,
        }
    }

    /// Financial2 — OLTP, random-read-dominant.
    pub fn financial2() -> Self {
        WorkloadProfile {
            name: "Financial2",
            total_requests: 3_699_194,
            write_ratio: 0.177,
            avg_size_kb: 2.5,
            rate_per_sec: 92.0,
            seq_prob: 0.10,
            zipf_theta: 0.95,
            footprint_bytes: 8 << 30,
            burstiness: 0.0,
        }
    }

    /// TPC-C — SQL Server over SAN: very intensive, mostly random, little
    /// reuse locality.
    pub fn tpcc() -> Self {
        WorkloadProfile {
            name: "TPC-C",
            total_requests: 560_000,
            write_ratio: 0.65,
            avg_size_kb: 8.0,
            rate_per_sec: 466.0,
            seq_prob: 0.02,
            zipf_theta: 0.30,
            footprint_bytes: 20 << 30,
            burstiness: 0.0,
        }
    }

    /// Exchange — Microsoft Exchange mail server, 15-minute interval.
    pub fn exchange() -> Self {
        WorkloadProfile {
            name: "Exchange",
            total_requests: 750_000,
            write_ratio: 0.626,
            avg_size_kb: 12.0,
            rate_per_sec: 833.0,
            seq_prob: 0.25,
            zipf_theta: 0.80,
            footprint_bytes: 24 << 30,
            burstiness: 0.0,
        }
    }

    /// Build — Windows build server: read-leaning, large transfers, long
    /// sequential runs.
    pub fn build() -> Self {
        WorkloadProfile {
            name: "Build",
            total_requests: 638_000,
            write_ratio: 0.314,
            avg_size_kb: 28.0,
            rate_per_sec: 709.0,
            seq_prob: 0.55,
            zipf_theta: 0.60,
            footprint_bytes: 30 << 30,
            burstiness: 0.0,
        }
    }

    /// The five paper workloads, in figure order.
    pub fn all_paper() -> Vec<WorkloadProfile> {
        vec![
            Self::financial1(),
            Self::financial2(),
            Self::tpcc(),
            Self::exchange(),
            Self::build(),
        ]
    }

    /// Generate the full trace.
    pub fn generate(&self, seed: u64, page_size: u32) -> Trace {
        self.generate_scaled(seed, page_size, self.total_requests)
    }

    /// Generate at most `max_requests` requests (same arrival intensity,
    /// shorter duration) — the harness's scaling knob.
    pub fn generate_scaled(&self, seed: u64, page_size: u32, max_requests: u64) -> Trace {
        let n = self.total_requests.min(max_requests);
        let mut rng = SimRng::new(seed ^ fxmix(self.name));
        let footprint_pages = (self.footprint_bytes / page_size as u64).max(EXTENT_PAGES);
        let extents = (footprint_pages / EXTENT_PAGES).max(1);
        let zipf = Zipf::new(extents, self.zipf_theta);
        let mean_gap_us = 1e6 / self.rate_per_sec;
        let avg_pages = (self.avg_size_kb * 1024.0 / page_size as f64).max(1.0);

        let mut t_us = 0.0f64;
        let mut stream_lpn: u64 = 0;
        let mut requests = Vec::with_capacity(n as usize);
        // Two-state ON/OFF arrival modulation (burstiness > 0): bursts run
        // 4x faster, lulls slower, tuned to preserve the long-run rate.
        let mut in_burst = false;
        for _ in 0..n {
            let gap = if self.burstiness > 0.0 {
                if rng.chance(0.01) {
                    in_burst = !in_burst;
                }
                let b = self.burstiness.clamp(0.0, 1.0);
                // E[factor] = 0.5*(1/4) + 0.5*slow = 1  =>  slow = 7/4.
                let factor = if in_burst {
                    1.0 - b * 0.75
                } else {
                    1.0 + b * 0.75
                };
                mean_gap_us * factor
            } else {
                mean_gap_us
            };
            t_us += rng.exponential(gap);
            let op = if rng.chance(self.write_ratio) {
                HostOp::Write
            } else {
                HostOp::Read
            };
            let pages = sample_pages(&mut rng, avg_pages);
            let lpn = if rng.chance(self.seq_prob) {
                // Continue the stream.
                stream_lpn % footprint_pages
            } else {
                // Jump to a Zipf-popular extent, scattered by a
                // multiplicative hash so hot extents are spread out.
                let rank = zipf.sample(&mut rng);
                let extent = (rank.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % extents;
                extent * EXTENT_PAGES + rng.below(EXTENT_PAGES)
            };
            stream_lpn = lpn + pages as u64;
            requests.push(HostRequest {
                arrival: SimTime::from_secs_f64(t_us / 1e6),
                lpn,
                pages,
                op,
                ..HostRequest::default()
            });
        }
        Trace::new(self.name, requests)
    }
}

/// Exponentially distributed page count around `avg`, in `[1, 256]`.
fn sample_pages(rng: &mut SimRng, avg: f64) -> u32 {
    (rng.exponential(avg).round() as u32).clamp(1, 256)
}

fn fxmix(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Parameters for the plain uniform-random generator (tests, benches).
#[derive(Debug, Clone)]
pub struct UniformParams {
    /// Number of requests.
    pub requests: u64,
    /// Fraction of writes.
    pub write_ratio: f64,
    /// Pages per request.
    pub pages_per_req: u32,
    /// Address space in pages.
    pub space_pages: u64,
    /// Arrival rate (requests per second).
    pub rate_per_sec: f64,
}

impl Default for UniformParams {
    fn default() -> Self {
        UniformParams {
            requests: 10_000,
            write_ratio: 0.7,
            pages_per_req: 1,
            space_pages: 1 << 20,
            rate_per_sec: 1000.0,
        }
    }
}

/// Generate a uniform-random trace.
pub fn uniform_random(params: &UniformParams, seed: u64) -> Trace {
    let mut rng = SimRng::new(seed);
    let gap_us = 1e6 / params.rate_per_sec;
    let mut t_us = 0.0;
    let requests = (0..params.requests)
        .map(|_| {
            t_us += rng.exponential(gap_us);
            HostRequest {
                arrival: SimTime::from_secs_f64(t_us / 1e6),
                lpn: rng.below(params.space_pages),
                pages: params.pages_per_req,
                op: if rng.chance(params.write_ratio) {
                    HostOp::Write
                } else {
                    HostOp::Read
                },
                ..HostRequest::default()
            }
        })
        .collect();
    Trace::new("uniform", requests)
}

/// A sequential fill of the first `fraction` of `user_pages`, used to age
/// the device to GC steady state before measuring (the paper's traces run
/// against used drives).
pub fn sequential_fill(user_pages: u64, fraction: f64, chunk_pages: u32) -> Trace {
    let target = (user_pages as f64 * fraction.clamp(0.0, 1.0)) as u64;
    let mut requests = Vec::new();
    let mut lpn = 0u64;
    let mut t = 0u64;
    while lpn < target {
        let pages = chunk_pages.min((target - lpn) as u32);
        requests.push(HostRequest {
            arrival: SimTime(t),
            lpn,
            pages,
            op: HostOp::Write,
            ..HostRequest::default()
        });
        lpn += pages as u64;
        t += 1_000; // 1 µs apart: fill as fast as the device allows
    }
    Trace::new("fill", requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_statistics_are_respected() {
        let p = WorkloadProfile::financial1();
        let t = p.generate_scaled(1, 2048, 50_000);
        let s = t.stats(2048);
        assert_eq!(s.writes + s.reads, 50_000);
        assert!((s.write_pct - 76.8).abs() < 2.0, "write% {}", s.write_pct);
        assert!(
            (s.avg_size_kb - 3.5).abs() < 1.0,
            "avg size {} KB",
            s.avg_size_kb
        );
        assert!(
            (s.rate_per_sec - 122.0).abs() / 122.0 < 0.1,
            "rate {}",
            s.rate_per_sec
        );
    }

    #[test]
    fn financial2_is_read_dominant() {
        let t = WorkloadProfile::financial2().generate_scaled(2, 2048, 20_000);
        let s = t.stats(2048);
        assert!(s.write_pct < 25.0);
    }

    #[test]
    fn build_has_big_requests() {
        let t = WorkloadProfile::build().generate_scaled(3, 2048, 20_000);
        let s = t.stats(2048);
        assert!(s.avg_size_kb > 15.0, "avg {} KB", s.avg_size_kb);
    }

    #[test]
    fn arrivals_are_sorted_and_positive_rate() {
        for p in WorkloadProfile::all_paper() {
            let t = p.generate_scaled(4, 2048, 5_000);
            assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
            assert!(t.stats(2048).rate_per_sec > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = WorkloadProfile::tpcc();
        let a = p.generate_scaled(9, 2048, 3000);
        let b = p.generate_scaled(9, 2048, 3000);
        assert_eq!(a.requests, b.requests);
        let c = p.generate_scaled(10, 2048, 3000);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn hot_extents_receive_disproportionate_traffic() {
        let p = WorkloadProfile::financial1();
        let t = p.generate_scaled(5, 2048, 40_000);
        let mut counts = std::collections::HashMap::new();
        for r in &t.requests {
            *counts.entry(r.lpn / EXTENT_PAGES).or_insert(0u64) += 1;
        }
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = v.iter().take(10).sum();
        let total: u64 = v.iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.2,
            "top-10 extent share {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn uniform_generator_covers_space() {
        let t = uniform_random(
            &UniformParams {
                requests: 10_000,
                space_pages: 100,
                ..UniformParams::default()
            },
            7,
        );
        let distinct: std::collections::HashSet<u64> = t.requests.iter().map(|r| r.lpn).collect();
        assert!(distinct.len() > 95);
    }

    #[test]
    fn sequential_fill_covers_prefix() {
        let t = sequential_fill(1000, 0.5, 64);
        let mut covered = 0u64;
        for r in &t.requests {
            assert_eq!(r.op, HostOp::Write);
            covered += r.pages as u64;
        }
        assert_eq!(covered, 500);
        assert_eq!(t.requests.first().unwrap().lpn, 0);
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;

    /// Squared coefficient of variation of interarrival gaps.
    fn cv2(t: &Trace) -> f64 {
        let gaps: Vec<f64> = t
            .requests
            .windows(2)
            .map(|w| w[1].arrival.saturating_since(w[0].arrival).as_micros_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        var / (mean * mean)
    }

    #[test]
    fn burstiness_raises_interarrival_variability() {
        let mut p = WorkloadProfile::tpcc();
        p.burstiness = 0.0;
        let smooth = cv2(&p.generate_scaled(5, 2048, 20_000));
        p.burstiness = 1.0;
        let bursty = cv2(&p.generate_scaled(5, 2048, 20_000));
        // Poisson gaps have CV^2 ~ 1; ON/OFF modulation pushes it higher.
        assert!((smooth - 1.0).abs() < 0.2, "smooth cv2 {smooth}");
        assert!(bursty > smooth * 1.1, "bursty {bursty} vs smooth {smooth}");
    }

    #[test]
    fn burstiness_preserves_mean_rate() {
        let mut p = WorkloadProfile::tpcc();
        p.burstiness = 1.0;
        let t = p.generate_scaled(9, 2048, 30_000);
        let rate = t.stats(2048).rate_per_sec;
        assert!(
            (rate - p.rate_per_sec).abs() / p.rate_per_sec < 0.15,
            "rate {rate} vs nominal {}",
            p.rate_per_sec
        );
    }
}

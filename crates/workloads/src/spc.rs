//! Parser for SPC-format trace files (the UMass/SPC "Financial1" and
//! "Financial2" traces use it).
//!
//! Each line: `ASU,LBA,SIZE,OPCODE,TIMESTAMP` — application storage unit,
//! logical block address (in 512-byte sectors), request size in bytes,
//! `r`/`R` or `w`/`W`, and a float timestamp in seconds. If you have the
//! real SPC trace files, this parser feeds them straight into the
//! simulator; otherwise the synthetic generators in [`crate::synth`]
//! stand in.

use crate::trace::Trace;
use dloop_ftl_kit::request::{HostOp, HostRequest};
use dloop_simkit::SimTime;
use std::fmt;

/// Sector size SPC LBAs are expressed in.
pub const SPC_SECTOR: u64 = 512;

/// A line-level parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpcParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for SpcParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for SpcParseError {}

/// Parse SPC trace text into a page-aligned [`Trace`].
///
/// * `page_size` — device page size for alignment.
/// * `asu_filter` — keep only this ASU (the paper "only uses requests
///   going to one device"); `None` keeps everything.
pub fn parse_spc(
    text: &str,
    name: &str,
    page_size: u32,
    asu_filter: Option<u32>,
) -> Result<Trace, SpcParseError> {
    let mut requests = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',').map(str::trim);
        let err = |reason: &str| SpcParseError {
            line: i + 1,
            reason: reason.to_string(),
        };
        let asu: u32 = parts
            .next()
            .ok_or_else(|| err("missing ASU"))?
            .parse()
            .map_err(|_| err("bad ASU"))?;
        let lba: u64 = parts
            .next()
            .ok_or_else(|| err("missing LBA"))?
            .parse()
            .map_err(|_| err("bad LBA"))?;
        let size: u64 = parts
            .next()
            .ok_or_else(|| err("missing size"))?
            .parse()
            .map_err(|_| err("bad size"))?;
        let op = match parts.next().ok_or_else(|| err("missing opcode"))? {
            "r" | "R" => HostOp::Read,
            "w" | "W" => HostOp::Write,
            other => return Err(err(&format!("bad opcode {other:?}"))),
        };
        let ts: f64 = parts
            .next()
            .ok_or_else(|| err("missing timestamp"))?
            .parse()
            .map_err(|_| err("bad timestamp"))?;
        if let Some(want) = asu_filter {
            if asu != want {
                continue;
            }
        }
        requests.push(
            HostRequest::from_bytes(
                SimTime::from_secs_f64(ts),
                lba * SPC_SECTOR,
                size,
                op,
                page_size,
            )
            // The ASU is the natural tenant boundary in SPC traces: each
            // application storage unit is a distinct host stream, so QoS
            // policies can arbitrate between them directly.
            .with_tenant(asu as u16),
        );
    }
    requests.sort_by_key(|r| r.arrival);
    Ok(Trace::new(name, requests))
}

/// Serialise a trace back to SPC text (inverse of [`parse_spc`] up to
/// page alignment), so synthetic workloads can be exported and replayed
/// by other tools.
pub fn write_spc(trace: &Trace, page_size: u32) -> String {
    let mut out = String::with_capacity(trace.len() * 32);
    for r in &trace.requests {
        let lba = r.lpn * page_size as u64 / SPC_SECTOR;
        let bytes = r.pages as u64 * page_size as u64;
        let op = match r.op {
            HostOp::Read => 'R',
            HostOp::Write => 'W',
        };
        out.push_str(&format!(
            "{},{lba},{bytes},{op},{:.6}\n",
            r.tenant,
            r.arrival.as_secs_f64()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
0,20941264,8192,W,0.551706
0,20939840,8192,W,0.554041
1,3436288,15872,r,1.129403
# comment line
0,6447161,4096,R,2.000000
";

    #[test]
    fn parses_ops_sizes_and_times() {
        let t = parse_spc(SAMPLE, "sample", 2048, None).unwrap();
        assert_eq!(t.len(), 4);
        let s = t.stats(2048);
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 2);
        // 8192-byte request = 4 pages of 2 KB.
        assert_eq!(t.requests[0].pages, 4);
        assert_eq!(t.requests[0].arrival, SimTime::from_secs_f64(0.551706));
        // LBA 20941264 sectors * 512 / 2048 = page 5235316.
        assert_eq!(t.requests[0].lpn, 20941264 * 512 / 2048);
        // ASU becomes the tenant id.
        assert_eq!(t.requests[0].tenant, 0);
        assert_eq!(t.requests[2].tenant, 1);
    }

    #[test]
    fn asu_filter_drops_other_units() {
        let t = parse_spc(SAMPLE, "sample", 2048, Some(0)).unwrap();
        assert_eq!(t.len(), 3);
        let t1 = parse_spc(SAMPLE, "sample", 2048, Some(1)).unwrap();
        assert_eq!(t1.len(), 1);
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let e = parse_spc("0,xyz,8,W,0.1", "bad", 2048, None).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.reason.contains("LBA"));
    }

    #[test]
    fn rejects_unknown_opcode() {
        let e = parse_spc("0,1,8,Q,0.1", "bad", 2048, None).unwrap_err();
        assert!(e.reason.contains("opcode"));
    }

    #[test]
    fn write_then_parse_round_trips() {
        let t = parse_spc(SAMPLE, "sample", 2048, None).unwrap();
        let text = write_spc(&t, 2048);
        let t2 = parse_spc(&text, "again", 2048, None).unwrap();
        assert_eq!(t.requests, t2.requests);
    }

    #[test]
    fn unsorted_timestamps_are_sorted() {
        let text = "0,100,512,W,2.0\n0,200,512,W,1.0\n";
        let t = parse_spc(text, "s", 2048, None).unwrap();
        assert!(t.requests[0].arrival < t.requests[1].arrival);
    }
}

//! # dloop-workloads
//!
//! Workloads for the DLOOP evaluation.
//!
//! * [`synth`] — synthetic generators reproducing the statistics of the
//!   paper's five enterprise traces (Table II): Financial1, Financial2,
//!   TPC-C, Exchange, Build — plus a uniform generator and a sequential
//!   device-fill helper for aging.
//! * [`spc`] / [`disksim`] — parsers for the real SPC and DiskSim trace
//!   file formats, for users who have the original (non-redistributable)
//!   traces.
//! * [`tenants`] — multi-tenant composition: merge per-tenant sub-traces
//!   into one tenant-tagged trace for the QoS policies, plus the
//!   canonical three-tenant [`tenants::qos_mix`].
//! * [`trace`] — the [`trace::Trace`] container with Table-II-style
//!   statistics.
//! * [`zipf`] — the skewed-popularity sampler behind the generators.

pub mod disksim;
pub mod spc;
pub mod synth;
pub mod tenants;
pub mod trace;
pub mod zipf;

pub use disksim::parse_disksim;
pub use spc::parse_spc;
pub use synth::{sequential_fill, uniform_random, UniformParams, WorkloadProfile};
pub use tenants::{host_mix, multi_tenant, qos_mix, CacheBias, TenantSpec};
pub use trace::{Trace, TraceStats};
pub use zipf::Zipf;

//! Parallel channel-group replay engine behind [`RunConfig::shards`].
//!
//! The sequential arrival-reserving loop ([`SsdDevice::run_reserving`])
//! interleaves three kinds of work per page operation: FTL *translation*
//! (flash/directory state effects), timeline *playback* (booking the
//! chain's steps on plane/channel/die availabilities), and *stats folding*
//! (response/wait/service accumulators). DLOOP's geometry splits both the
//! hardware timelines *and* — in the right regime — the FTL state cleanly
//! along plane boundaries, which this module exploits at two levels:
//!
//! 1. **The plane-local fast path** ([`run_plane_local`]): when the FTL
//!    attests that every operation's state effects stay on its LPN's home
//!    plane ([`Ftl::shard_translation_ready`] — for DLOOP: fully resident
//!    CMT, no materialised translation pages, no pending GC updates, all
//!    pools at or above the GC threshold, no media-fault model), each
//!    worker thread receives a *full fork* of the flash state, page
//!    directory, FTL and hardware model, and runs translation + playback
//!    for the operations routed to its plane range. The coordinator
//!    merges each worker's owned planes back (`shard_absorb` across every
//!    layer) and folds statistics canonically. Workers re-verify
//!    plane-locality after every operation ([`Ftl::shard_op_pure`]); any
//!    violation discards all forks — the authoritative state was never
//!    touched — and the run falls back to the windowed engine below.
//!    This parallelises ~all of the per-op work and is where the
//!    `BENCH_shard.json` speedup comes from.
//!
//! 2. **The windowed engine** ([`Engine`]): the general fallback for
//!    closed mode and for configurations the fast path cannot attest
//!    (thrashing CMT, materialised translation pages, media faults). The
//!    coordinator translates requests in canonical `(arrival, index)`
//!    order, batches the resulting page jobs into windows, and plays each
//!    window's jobs on per-shard [`HardwareModel`] forks
//!    ([`HardwareModel::shard_clone`]) under [`std::thread::scope`], one
//!    worker per channel group.
//!
//! # Determinism rules (DESIGN.md §3f)
//!
//! The engine is *bit-identical* to the sequential loop (claim C15), not
//! merely statistically equivalent:
//!
//! * **Translation order** is canonical: requests sorted by `(arrival,
//!   index)` — exactly the [`EventQueue`](dloop_simkit::EventQueue) pop
//!   order — and page ops in request order. The FTL, flash state and media
//!   fault counters therefore see the identical op sequence.
//! * **Playback partitions**: a job whose chains touch a single shard's
//!   planes is played by that shard's worker, in translation order within
//!   the shard. Two jobs on different shards share no timeline entries, so
//!   their relative execution order is immaterial — each shard's timelines
//!   evolve exactly as in the sequential run.
//! * **Cross-shard jobs** (a chain naming planes of two channel groups —
//!   e.g. an inter-plane copy across channels) are *barriers*: the window
//!   is split at the job, the halves run parallel, and the coordinator
//!   plays the crossing job itself after importing the foreign planes'
//!   timeline state ([`HardwareModel::sync_plane_state_from`]) and
//!   exporting it back afterwards.
//! * **Folding order** is canonical: wait/service/GC-block samples,
//!   queue-probe entries and completions are pushed per job / per request
//!   in translation order once a window's playback finishes, so every
//!   order-sensitive float accumulation matches the sequential run
//!   bit-for-bit. Per-shard activity deltas (op counters, busy time) are
//!   summed into the parent model at end of run
//!   ([`HardwareModel::absorb_activity`]) — each op executed exactly once,
//!   so the totals are exact, and the final availability timelines are
//!   imported per plane from their owning shard.
//! * **Spans** are recorded into a per-shard [`BufferSink`] and forwarded
//!   to the device's real sink in job translation order after each window,
//!   reproducing the sequential span stream exactly.
//!
//! # Closed-mode admission
//!
//! Closed mode gates admission on completions the window hasn't computed
//! yet. The coordinator keeps the completion heap of all *flushed*
//! requests (`known`) plus a count of admitted-but-unplayed requests in
//! the current window (`unknown`). While `known.len() + unknown < depth`,
//! even the most pessimistic outcome leaves a free slot, so `issue =
//! arrival` exactly as in the sequential run. Otherwise the window is
//! flushed first, making the heap exact, and the sequential pop rule is
//! applied verbatim. Arrivals are processed in nondecreasing order, so
//! deferring the drain of completed entries is exact as well.
//!
//! Only the arrival-reserving modes (`Open`, `Closed`) parallelise: the
//! gated/NCQ/QoS schedulers make globally-coupled issue decisions every
//! simulated instant and fall back to the sequential engine regardless of
//! the configured shard count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;

use crate::device::{ReplayStats, SsdDevice};
use crate::dir::PageDirectory;
use crate::ftl::{FlashStep, Ftl, FtlContext, OpChain, Phase};
use crate::metrics::{RunReport, ShardTiming};
use crate::request::{HostOp, HostRequest, TenantId};
use dloop_nand::{FlashState, HardwareModel, PlaneId};
use dloop_simkit::trace::{BufferSink, SpanPhase};
use dloop_simkit::SimTime;

/// Maximum page jobs buffered before a window is flushed. Large enough to
/// amortise the per-window thread spawn, small enough to keep the job
/// buffer cache-resident.
const WINDOW_JOB_CAP: usize = 8192;

/// Host threads worth running at once: `available_parallelism`, or 1 when
/// the platform cannot report it (single-threaded is always safe).
///
/// This is the *one* place the host core count is consulted. The engine
/// sizes its task pool from it, and the bench harness reports the same
/// number as `host_cpus` — so a speedup table row where `shards >
/// host_parallelism()` is visibly cap-saturated rather than silently
/// pretending one core (the old bench fallback) or N cores exist.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Segments smaller than this play inline on the coordinator: the result
/// is identical (same models, same order), the thread spawn is not worth
/// it.
const PARALLEL_MIN_JOBS: usize = 192;

/// One translated page operation awaiting playback.
struct Job {
    /// Stable host-request id (index in the replayed slice), for spans.
    req: u64,
    lpn: u64,
    issue: SimTime,
    host: OpChain,
    gc: OpChain,
    scan: OpChain,
    /// Executing shard: the home shard for local jobs, the smallest
    /// touched shard for crossing jobs (played by the coordinator).
    shard: usize,
    crossing: bool,
}

/// Playback result of one job.
#[derive(Clone, Copy)]
struct JobOut {
    host_start: SimTime,
    host_done: SimTime,
    /// The page op's response instant: `host_done` under background GC,
    /// the GC chain's release under synchronous GC.
    done: SimTime,
    /// Span range `[from, to)` in the executing shard's buffer sink.
    span_from: u64,
    span_to: u64,
}

const IDLE_OUT: JobOut = JobOut {
    host_start: SimTime::ZERO,
    host_done: SimTime::ZERO,
    done: SimTime::ZERO,
    span_from: 0,
    span_to: 0,
};

/// One admitted request in the current window.
struct Entry {
    /// Index in the replayed slice.
    req: usize,
    arrival: SimTime,
    issue: SimTime,
    tenant: TenantId,
    pages: u32,
    /// This request's jobs in the window buffer.
    jobs: Range<usize>,
}

/// Static plane → shard geometry: shards are contiguous channel groups,
/// hence contiguous plane ranges.
struct ShardMap {
    nshards: usize,
    channels: usize,
    planes_per_channel: usize,
    /// Per shard: first owned plane (inclusive).
    plane_lo: Vec<usize>,
    /// Per shard: last owned plane (exclusive).
    plane_hi: Vec<usize>,
}

impl ShardMap {
    fn new(nshards: usize, channels: usize, planes_per_channel: usize) -> Self {
        debug_assert!(nshards >= 1 && nshards <= channels);
        let mut plane_lo = Vec::with_capacity(nshards);
        let mut plane_hi = Vec::with_capacity(nshards);
        for s in 0..nshards {
            let c_lo = (s * channels).div_ceil(nshards);
            let c_hi = ((s + 1) * channels).div_ceil(nshards);
            plane_lo.push(c_lo * planes_per_channel);
            plane_hi.push(c_hi * planes_per_channel);
        }
        ShardMap {
            nshards,
            channels,
            planes_per_channel,
            plane_lo,
            plane_hi,
        }
    }

    fn of_plane(&self, plane: PlaneId) -> usize {
        (plane as usize / self.planes_per_channel) * self.nshards / self.channels
    }

    /// Classify a job's chains: `(executing shard, crosses shards)`. Jobs
    /// with empty chains (pure cache hits) are assigned to shard 0 — they
    /// play nothing and touch no timelines.
    fn assign(&self, host: &OpChain, gc: &OpChain, scan: &OpChain) -> (usize, bool) {
        let mut shard: Option<usize> = None;
        let mut crossing = false;
        for chain in [host, gc, scan] {
            for step in chain.steps() {
                let (p, q) = step.planes();
                for plane in [Some(p), q].into_iter().flatten() {
                    let s = self.of_plane(plane);
                    match shard {
                        None => shard = Some(s),
                        Some(prev) if prev != s => {
                            crossing = true;
                            if s < prev {
                                shard = Some(s);
                            }
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        (shard.unwrap_or(0), crossing)
    }
}

/// Pop every completion at or before `now` — the sequential drain,
/// deferred to admission points (exact because arrivals are
/// nondecreasing).
fn drain_completed(known: &mut BinaryHeap<Reverse<SimTime>>, now: SimTime) {
    while known.peek().is_some_and(|&Reverse(t)| t <= now) {
        known.pop();
    }
}

/// Spans recorded so far by `model`'s sink (0 when untraced).
fn recorded_spans(model: &HardwareModel) -> u64 {
    model.sink().map_or(0, |s| s.recorded())
}

/// Play one job on `model`, mirroring `SsdDevice::serve_page_op` exactly:
/// scan chain unchained at issue, host chain chained at issue, GC chain at
/// the host completion (unchained under background GC, chained and
/// response-extending otherwise). `counts` is the plane-op histogram
/// slice starting at plane `base`.
fn play_job(
    model: &mut HardwareModel,
    counts: &mut [u64],
    base: usize,
    job: &Job,
    background_gc: bool,
) -> JobOut {
    play_op(
        model,
        counts,
        base,
        job.req,
        job.lpn,
        job.issue,
        &job.scan,
        &job.host,
        &job.gc,
        background_gc,
    )
}

/// [`play_job`] over explicit fields — shared with the plane-local fast
/// path, whose workers hold their chains outside a [`Job`].
#[allow(clippy::too_many_arguments)]
fn play_op(
    model: &mut HardwareModel,
    counts: &mut [u64],
    base: usize,
    req: u64,
    lpn: u64,
    issue: SimTime,
    scan: &OpChain,
    host: &OpChain,
    gc: &OpChain,
    background_gc: bool,
) -> JobOut {
    let span_from = recorded_spans(model);
    model.set_span_context(SpanPhase::Scan, Some(lpn), Some(req));
    play_chain(model, counts, base, scan, issue, false);
    model.set_span_context(SpanPhase::Host, Some(lpn), Some(req));
    let (host_start, host_done) = play_chain(model, counts, base, host, issue, true);
    model.set_span_context(SpanPhase::Gc, Some(lpn), Some(req));
    let done = if background_gc {
        play_chain(model, counts, base, gc, host_done, false);
        host_done
    } else {
        play_chain(model, counts, base, gc, host_done, true).1
    };
    JobOut {
        host_start,
        host_done,
        done,
        span_from,
        span_to: recorded_spans(model),
    }
}

/// The worker-side twin of `SsdDevice::play_chain_spans`, executing
/// against an explicit shard model. Returns `(first_start, release)`
/// under the same contract.
fn play_chain(
    model: &mut HardwareModel,
    counts: &mut [u64],
    base: usize,
    chain: &OpChain,
    at: SimTime,
    chained: bool,
) -> (SimTime, SimTime) {
    let mut t = at;
    let mut last = at;
    let mut first_start: Option<SimTime> = None;
    for step in chain.steps() {
        let issue = if chained { t } else { at };
        let completion = match *step {
            FlashStep::Read { plane } => model.exec_read(plane, issue),
            FlashStep::ReadRetry { plane, steps } => model.exec_read_retry(plane, issue, steps),
            FlashStep::Write { plane } => model.exec_write(plane, issue),
            FlashStep::Erase { plane } => model.exec_erase(plane, issue),
            FlashStep::CopyBack { plane } => model.exec_copyback(plane, issue),
            FlashStep::InterPlaneCopy { src, dst } => model.exec_interplane_copy(src, dst, issue),
        };
        first_start = Some(match first_start {
            Some(f) => f.min(completion.start),
            None => completion.start,
        });
        let (p, q) = step.planes();
        counts[p as usize - base] += 1;
        if let Some(q) = q {
            counts[q as usize - base] += 1;
        }
        t = completion.end;
        last = last.max(completion.end);
    }
    let first_start = first_start.unwrap_or(at);
    if chained {
        (first_start, t)
    } else {
        (first_start, last)
    }
}

/// Disjoint `(mutable, shared)` access to two distinct models.
fn pair_mut(
    models: &mut [HardwareModel],
    a: usize,
    b: usize,
) -> (&mut HardwareModel, &HardwareModel) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = models.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = models.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

/// Window/shard state of one sharded replay.
struct Engine {
    map: ShardMap,
    models: Vec<HardwareModel>,
    entries: Vec<Entry>,
    jobs: Vec<Job>,
    outs: Vec<JobOut>,
    /// Recycled chain allocations, handed back to the device before each
    /// translation (the sequential loop gets this reuse for free).
    pool: Vec<OpChain>,
    tracing: bool,
    background_gc: bool,
    closed: bool,
}

impl Engine {
    /// Play and fold the buffered window; push its completions into
    /// `known`.
    fn flush(
        &mut self,
        dev: &mut SsdDevice,
        stats: &mut ReplayStats,
        known: &mut BinaryHeap<Reverse<SimTime>>,
    ) {
        if self.entries.is_empty() {
            return;
        }
        self.outs.clear();
        self.outs.resize(self.jobs.len(), IDLE_OUT);

        // Playback: parallel segments between cross-shard barriers.
        let mut seg_start = 0;
        for j in 0..self.jobs.len() {
            if self.jobs[j].crossing {
                self.run_segment(dev, seg_start..j);
                self.play_crossing(dev, j);
                seg_start = j + 1;
            }
        }
        self.run_segment(dev, seg_start..self.jobs.len());

        if self.tracing {
            self.merge_spans(dev);
        }

        // Fold in canonical order — every order-sensitive accumulation
        // happens here, exactly as the sequential loop would have.
        for entry in &self.entries {
            let mut req_done = entry.issue;
            for j in entry.jobs.clone() {
                let out = self.outs[j];
                let job = &self.jobs[j];
                if !job.host.is_empty() {
                    dev.wait_ms
                        .push(out.host_start.saturating_since(job.issue).as_millis_f64());
                    dev.service_ms.push(
                        out.host_done
                            .saturating_since(out.host_start)
                            .as_millis_f64(),
                    );
                }
                if !self.background_gc && !job.gc.is_empty() {
                    dev.gc_block_ms
                        .push(out.done.saturating_since(out.host_done).as_millis_f64());
                }
                req_done = req_done.max(out.done);
            }
            if self.closed && entry.pages > 0 {
                known.push(Reverse(req_done));
            }
            stats
                .queue
                .track(entry.tenant, entry.arrival, entry.issue, req_done);
            stats.complete(entry.req as u64, entry.arrival, req_done);
        }

        self.entries.clear();
        for job in self.jobs.drain(..) {
            self.pool.push(job.host);
            self.pool.push(job.gc);
            self.pool.push(job.scan);
        }
    }

    /// Play `range` (no crossing jobs inside): one worker per shard with
    /// jobs, or inline on the coordinator when the segment is too small
    /// to pay for a spawn — bit-identical either way, since each job runs
    /// on its shard's model in translation order.
    fn run_segment(&mut self, dev: &mut SsdDevice, range: Range<usize>) {
        if range.is_empty() {
            return;
        }
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.map.nshards];
        for j in range.clone() {
            per_shard[self.jobs[j].shard].push(j);
        }
        let busy = per_shard.iter().filter(|v| !v.is_empty()).count();
        if busy <= 1 || range.len() < PARALLEL_MIN_JOBS {
            for j in range {
                let job = &self.jobs[j];
                self.outs[j] = play_job(
                    &mut self.models[job.shard],
                    &mut dev.plane_counts,
                    0,
                    job,
                    self.background_gc,
                );
            }
            return;
        }

        let jobs: &[Job] = &self.jobs;
        let bg = self.background_gc;
        let map = &self.map;
        let outs = &mut self.outs;
        let mut models_rest: &mut [HardwareModel] = &mut self.models;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(busy);
            for (s, idxs) in per_shard.into_iter().enumerate() {
                let (model, mrest) = models_rest.split_first_mut().expect("one model per shard");
                models_rest = mrest;
                let width = map.plane_hi[s] - map.plane_lo[s];
                if idxs.is_empty() {
                    continue;
                }
                let base = map.plane_lo[s];
                // Workers accumulate plane counts locally: the shard
                // slices of `dev.plane_counts` are contiguous u64s, so
                // in-place increments from several threads would
                // false-share cache lines and serialize the fleet on
                // coherence traffic. The local deltas merge below —
                // addition commutes, so the fold stays bit-identical.
                handles.push(scope.spawn(move || {
                    let mut counts = vec![0u64; width as usize];
                    let outs: Vec<(usize, JobOut)> = idxs
                        .into_iter()
                        .map(|j| (j, play_job(model, &mut counts, base, &jobs[j], bg)))
                        .collect();
                    (base, counts, outs)
                }));
            }
            for handle in handles {
                let (base, counts, shard_outs) = handle.join().expect("shard worker panicked");
                for (off, c) in counts.into_iter().enumerate() {
                    dev.plane_counts[base as usize + off] += c;
                }
                for (j, out) in shard_outs {
                    outs[j] = out;
                }
            }
        });
    }

    /// Play a cross-shard job on the coordinator: import the foreign
    /// planes' timeline state into the executing shard's model, play, and
    /// export the updated state back to the owners.
    fn play_crossing(&mut self, dev: &mut SsdDevice, j: usize) {
        let job = &self.jobs[j];
        let exec = job.shard;
        let mut planes: Vec<PlaneId> = Vec::new();
        for chain in [&job.host, &job.gc, &job.scan] {
            for step in chain.steps() {
                let (p, q) = step.planes();
                for plane in [Some(p), q].into_iter().flatten() {
                    if !planes.contains(&plane) {
                        planes.push(plane);
                    }
                }
            }
        }
        for &p in &planes {
            let owner = self.map.of_plane(p);
            if owner != exec {
                let (dst, src) = pair_mut(&mut self.models, exec, owner);
                dst.sync_plane_state_from(src, p);
            }
        }
        self.outs[j] = play_job(
            &mut self.models[exec],
            &mut dev.plane_counts,
            0,
            job,
            self.background_gc,
        );
        for &p in &planes {
            let owner = self.map.of_plane(p);
            if owner != exec {
                let (dst, src) = pair_mut(&mut self.models, owner, exec);
                dst.sync_plane_state_from(src, p);
            }
        }
    }

    /// Forward the window's spans from the per-shard buffers to the
    /// device's real sink, in job translation order — the exact sequential
    /// span stream.
    fn merge_spans(&mut self, dev: &mut SsdDevice) {
        let models = &self.models;
        if let Some(sink) = dev.hw.sink_mut() {
            for (j, job) in self.jobs.iter().enumerate() {
                let out = self.outs[j];
                if out.span_from == out.span_to {
                    continue;
                }
                let buf = models[job.shard]
                    .sink()
                    .and_then(|s| s.as_any().downcast_ref::<BufferSink>())
                    .expect("shard models trace into BufferSinks");
                for span in &buf.spans()[out.span_from as usize..out.span_to as usize] {
                    sink.record(span);
                }
            }
        }
        for model in &mut self.models {
            if let Some(buf) = model
                .sink_mut()
                .and_then(|s| s.as_any_mut().downcast_mut::<BufferSink>())
            {
                buf.clear();
            }
        }
    }
}

/// One page operation routed to its home-plane shard (fast path).
struct PlaneJob {
    /// Stable host-request id (index in the replayed slice).
    req: u64,
    lpn: u64,
    issue: SimTime,
    op: HostOp,
}

/// Worker-side playback result of one fast-path job.
struct PlaneOut {
    out: JobOut,
    host_empty: bool,
    gc_empty: bool,
}

/// Everything a fast-path worker hands back for the merge commit.
struct ShardRun {
    flash: FlashState,
    dir: PageDirectory,
    ftl: Box<dyn Ftl + Send>,
    model: HardwareModel,
    counts: Vec<u64>,
    outs: Vec<PlaneOut>,
    /// False when a job violated plane-locality: the fork is garbage past
    /// that job and the whole run must fall back.
    pure: bool,
}

/// Do all of `chains`' steps stay inside the worker's plane range?
fn chains_within(chains: [&OpChain; 2], planes: &Range<usize>) -> bool {
    chains.iter().all(|chain| {
        chain.steps().iter().all(|step| {
            let (p, q) = step.planes();
            planes.contains(&(p as usize)) && q.is_none_or(|q| planes.contains(&(q as usize)))
        })
    })
}

/// One fast-path worker: translate *and* play this shard's jobs, in the
/// canonical order of the jobs routed to it, against full private forks.
/// After every job the worker re-verifies plane-locality — non-empty scan
/// chain (a foreign plane dipped below the GC threshold), a chain step
/// naming a plane outside the shard, or the FTL's own post-op check —
/// and aborts on the first violation.
fn run_plane_worker(
    mut flash: FlashState,
    mut dir: PageDirectory,
    mut ftl: Box<dyn Ftl + Send>,
    mut model: HardwareModel,
    jobs: &[PlaneJob],
    planes: Range<usize>,
    background_gc: bool,
) -> ShardRun {
    let mut host = OpChain::new();
    let mut gc = OpChain::new();
    let mut scan = OpChain::new();
    let mut counts = vec![0u64; planes.len()];
    let mut outs = Vec::with_capacity(jobs.len());
    let base = planes.start;
    let mut pure = true;
    for job in jobs {
        host.clear();
        gc.clear();
        scan.clear();
        let mut ctx = FtlContext {
            flash: &mut flash,
            dir: &mut dir,
            host_chain: &mut host,
            gc_chain: &mut gc,
            scan_chain: &mut scan,
            phase: Phase::Host,
        };
        match job.op {
            HostOp::Read => ftl.read(job.lpn, &mut ctx),
            HostOp::Write => ftl.write(job.lpn, &mut ctx),
        }
        if !scan.is_empty()
            || !chains_within([&host, &gc], &planes)
            || !ftl.shard_op_pure(&flash, job.lpn)
        {
            pure = false;
            break;
        }
        let out = play_op(
            &mut model,
            &mut counts,
            base,
            job.req,
            job.lpn,
            job.issue,
            &scan,
            &host,
            &gc,
            background_gc,
        );
        outs.push(PlaneOut {
            out,
            host_empty: host.is_empty(),
            gc_empty: gc.is_empty(),
        });
    }
    ShardRun {
        flash,
        dir,
        ftl,
        model,
        counts,
        outs,
        pure,
    }
}

/// The plane-local fast path: open-mode replay with translation *and*
/// playback sharded. Page operations are routed to the shard owning
/// their home plane; each worker runs the full per-op pipeline on
/// private forks of every state layer, and the coordinator commits the
/// owned planes back and folds statistics in canonical `(arrival,
/// index)` order — bit-identical to the sequential run by the same
/// argument as the windowed engine, plus plane-locality of translation
/// (attested up front by [`Ftl::shard_translation_ready`], re-verified
/// per op by the workers).
///
/// Returns `None` when any worker hit an impurity: the authoritative
/// device state was never touched, so the caller simply replays
/// sequentially (or through the windowed engine).
fn run_plane_local(
    dev: &mut SsdDevice,
    requests: &[HostRequest],
    map: &ShardMap,
) -> Option<RunReport> {
    let lpn_space = dev.flash.geometry().user_pages();
    let nshards = map.nshards;
    let t_start = std::time::Instant::now();

    // Canonical replay order (see `run_sharded`).
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| requests[i].arrival);

    // Route every page op to its home shard, preserving canonical order
    // within each shard; `job_refs` remembers each op's (shard, slot) so
    // the fold can walk results in global canonical order.
    let mut stats = ReplayStats::new();
    let mut shard_jobs: Vec<Vec<PlaneJob>> = (0..nshards).map(|_| Vec::new()).collect();
    let mut job_refs: Vec<(u32, u32)> = Vec::new();
    let mut entries: Vec<Entry> = Vec::with_capacity(order.len());
    for &idx in &order {
        let req = &requests[idx];
        // Open mode: admission is the arrival itself.
        let issue = req.arrival;
        let from = job_refs.len();
        for lpn in req.wrapped_page_ops(lpn_space) {
            stats.count_page(req.op);
            let s = map.of_plane(dev.ftl.shard_home_plane(lpn));
            job_refs.push((s as u32, shard_jobs[s].len() as u32));
            shard_jobs[s].push(PlaneJob {
                req: idx as u64,
                lpn,
                issue,
                op: req.op,
            });
        }
        entries.push(Entry {
            req: idx,
            arrival: req.arrival,
            issue,
            tenant: req.tenant,
            pages: req.pages,
            jobs: from..job_refs.len(),
        });
    }

    let partition_ms = t_start.elapsed().as_secs_f64() * 1e3;
    let tracing = dev.hw.sink().is_some();
    let background_gc = dev.config.background_gc;

    // Shard tasks: one per non-empty shard, each carrying its pre-cloned
    // hardware model (the model's trace sink is a plain trait object, so
    // the clone stays on the coordinator). Forking the *simulation* state
    // happens inside the task, from shared references to the
    // authoritative device (`Ftl: Send + Sync` exists for this): the fork
    // cost — dominated by rebuilding the owned slice of the cached
    // mapping table — parallelises instead of serialising here.
    //
    // Tasks run on a pool of at most `available_parallelism` threads
    // rather than one thread per shard: oversubscribing cores buys
    // nothing (shards share no state, so there is nothing to overlap
    // with) and makes each task's wall time meaningless. On the pool,
    // each task's time approximates its isolated cost, which is what
    // `ShardTiming` reports.
    struct ShardTask<'a> {
        s: usize,
        jobs: &'a [PlaneJob],
        model: HardwareModel,
        planes: Range<usize>,
    }
    let tasks: Vec<std::sync::Mutex<Option<ShardTask<'_>>>> = shard_jobs
        .iter()
        .enumerate()
        .filter(|(_, jobs)| !jobs.is_empty())
        .map(|(s, jobs)| {
            let mut model = dev.hw.shard_clone();
            if tracing {
                model.attach_sink(Box::new(BufferSink::new()));
            }
            std::sync::Mutex::new(Some(ShardTask {
                s,
                jobs,
                model,
                planes: map.plane_lo[s]..map.plane_hi[s],
            }))
        })
        .collect();
    let pool = host_parallelism().min(tasks.len()).max(1);

    let ppp = dev.flash.geometry().pages_per_plane();
    let flash_src = &dev.flash;
    let dir_src = &dev.dir;
    let ftl_src: &dyn Ftl = dev.ftl.as_ref();
    let mut runs: Vec<Option<ShardRun>> = (0..nshards).map(|_| None).collect();
    let mut fork_ms = vec![0.0f64; nshards];
    let mut worker_ms = vec![0.0f64; nshards];
    {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let done = std::sync::Mutex::new(Vec::with_capacity(tasks.len()));
        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(slot) = tasks.get(i) else { break };
                    let task = slot.lock().unwrap().take().expect("task claimed twice");
                    // Fork and replay are timed separately: fork cost is
                    // pure overhead that scales with device size, replay
                    // with work. The directory fork copies only the
                    // shard's owned plane-major PPN range — the purity
                    // attestation guarantees nothing else is read, and
                    // the merge absorbs only that range back.
                    let tf = std::time::Instant::now();
                    let flash = flash_src.shard_fork();
                    let dir = dir_src
                        .shard_fork(task.planes.start as u64 * ppp..task.planes.end as u64 * ppp);
                    let ftl = ftl_src
                        .shard_fork(task.planes.start as PlaneId..task.planes.end as PlaneId)
                        .expect("a ready FTL must fork");
                    let forked = tf.elapsed().as_secs_f64() * 1e3;
                    let tw = std::time::Instant::now();
                    let run = run_plane_worker(
                        flash,
                        dir,
                        ftl,
                        task.model,
                        task.jobs,
                        task.planes,
                        background_gc,
                    );
                    let ms = tw.elapsed().as_secs_f64() * 1e3;
                    done.lock().unwrap().push((task.s, run, forked, ms));
                });
            }
        });
        for (s, run, forked, ms) in done.into_inner().unwrap() {
            runs[s] = Some(run);
            fork_ms[s] = forked;
            worker_ms[s] = ms;
        }
    }

    if runs.iter().flatten().any(|r| !r.pure) {
        return None;
    }
    let t_merge = std::time::Instant::now();

    // Commit: adopt each worker's owned planes across every state layer
    // (plane-major PPN layout makes the directory range contiguous), and
    // add activity deltas — forks were counter-zeroed, so each op is
    // counted exactly once.
    for (s, run) in runs.iter().enumerate() {
        let Some(run) = run else { continue };
        let (lo, hi) = (map.plane_lo[s], map.plane_hi[s]);
        dev.flash
            .shard_absorb(&run.flash, lo as PlaneId..hi as PlaneId);
        dev.dir
            .absorb_range(&run.dir, lo as u64 * ppp..hi as u64 * ppp);
        dev.ftl
            .shard_absorb(run.ftl.as_ref(), lo as PlaneId..hi as PlaneId);
        for p in lo as PlaneId..hi as PlaneId {
            dev.hw.sync_plane_state_from(&run.model, p);
        }
        dev.hw.absorb_activity(&run.model);
        for (off, c) in run.counts.iter().enumerate() {
            dev.plane_counts[lo + off] += c;
        }
    }

    // Forward spans in canonical job order — the sequential span stream.
    if tracing {
        if let Some(sink) = dev.hw.sink_mut() {
            for entry in &entries {
                for &(s, k) in &job_refs[entry.jobs.clone()] {
                    let run = runs[s as usize]
                        .as_ref()
                        .expect("job routed to empty shard");
                    let po = &run.outs[k as usize];
                    if po.out.span_from == po.out.span_to {
                        continue;
                    }
                    let buf = run
                        .model
                        .sink()
                        .and_then(|s| s.as_any().downcast_ref::<BufferSink>())
                        .expect("fast-path workers trace into BufferSinks");
                    for span in &buf.spans()[po.out.span_from as usize..po.out.span_to as usize] {
                        sink.record(span);
                    }
                }
            }
        }
    }

    // Fold in canonical order — bit-identical float accumulation.
    for entry in &entries {
        let mut req_done = entry.issue;
        for &(s, k) in &job_refs[entry.jobs.clone()] {
            let run = runs[s as usize]
                .as_ref()
                .expect("job routed to empty shard");
            let po = &run.outs[k as usize];
            if !po.host_empty {
                dev.wait_ms.push(
                    po.out
                        .host_start
                        .saturating_since(entry.issue)
                        .as_millis_f64(),
                );
                dev.service_ms.push(
                    po.out
                        .host_done
                        .saturating_since(po.out.host_start)
                        .as_millis_f64(),
                );
            }
            if !background_gc && !po.gc_empty {
                dev.gc_block_ms.push(
                    po.out
                        .done
                        .saturating_since(po.out.host_done)
                        .as_millis_f64(),
                );
            }
            req_done = req_done.max(po.out.done);
        }
        stats
            .queue
            .track(entry.tenant, entry.arrival, entry.issue, req_done);
        stats.complete(entry.req as u64, entry.arrival, req_done);
    }

    let mut report = dev.finish_report(requests.len() as u64, stats);
    report.shard_timing = Some(ShardTiming {
        partition_ms,
        fork_ms,
        worker_ms,
        merge_ms: t_merge.elapsed().as_secs_f64() * 1e3,
    });
    Some(report)
}

/// The sharded arrival-reserving replay. Entered from
/// `SsdDevice::run_with` when more than one shard is requested and the
/// geometry has more than one channel; `queue_depth` selects open
/// (`None`) or closed (`Some(d)`) admission, exactly as in
/// `SsdDevice::run_reserving`.
pub(crate) fn run_sharded(
    dev: &mut SsdDevice,
    requests: &[HostRequest],
    queue_depth: Option<usize>,
    shards: usize,
) -> RunReport {
    let geometry = dev.flash.geometry();
    let channels = geometry.channels as usize;
    let total_planes = geometry.total_planes() as usize;
    let planes_per_die = geometry.planes_per_die as usize;
    let lpn_space = geometry.user_pages();
    let planes_per_channel = total_planes / channels;
    let nshards = shards.min(channels);
    debug_assert!(nshards > 1, "dispatcher guarantees a parallel request");
    // A die straddling a channel boundary would alias one die timeline
    // across two shards; no geometry constructor produces that, but fall
    // back to the sequential engine rather than assume.
    if dev.config.die_serialized && planes_per_channel % planes_per_die != 0 {
        return dev.run_reserving(requests, queue_depth);
    }

    let map = ShardMap::new(nshards, channels, planes_per_channel);

    // Take the plane-local fast path when the FTL attests plane-locality:
    // translation itself shards, which the windowed engine below cannot
    // offer. A media model makes read outcomes depend on the global op
    // order, so it disqualifies the fast path outright. `None` means a
    // worker detected an impurity mid-run and every fork was discarded —
    // the device is untouched and the windowed engine replays from
    // scratch.
    if queue_depth.is_none()
        && !dev.flash.has_media()
        && dev.ftl.shard_translation_ready(&dev.flash)
    {
        if let Some(report) = run_plane_local(dev, requests, &map) {
            return report;
        }
    }

    let tracing = dev.hw.sink().is_some();
    let mut engine = Engine {
        map,
        models: (0..nshards)
            .map(|_| {
                let mut m = dev.hw.shard_clone();
                if tracing {
                    m.attach_sink(Box::new(BufferSink::new()));
                }
                m
            })
            .collect(),
        entries: Vec::new(),
        jobs: Vec::with_capacity(WINDOW_JOB_CAP),
        outs: Vec::with_capacity(WINDOW_JOB_CAP),
        pool: Vec::new(),
        tracing,
        background_gc: dev.config.background_gc,
        closed: queue_depth.is_some(),
    };

    // Canonical replay order: (arrival, index) — the EventQueue pop order
    // of the sequential loop (its FIFO tie-break is push order, and
    // requests are pushed in index order).
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| requests[i].arrival);

    let mut stats = ReplayStats::new();
    let mut known: BinaryHeap<Reverse<SimTime>> = BinaryHeap::new();
    let mut unknown: usize = 0;

    for &idx in &order {
        let req = &requests[idx];
        let mut issue = req.arrival;
        if req.pages > 0 {
            if let Some(depth) = queue_depth {
                drain_completed(&mut known, req.arrival);
                if known.len() + unknown >= depth {
                    // The pessimistic bound hit the gate: resolve the
                    // window so the heap is exact, then apply the
                    // sequential admission rule verbatim.
                    if unknown > 0 {
                        engine.flush(dev, &mut stats, &mut known);
                        unknown = 0;
                        drain_completed(&mut known, req.arrival);
                    }
                    if known.len() >= depth {
                        let Reverse(freed) = known.pop().expect("queue depth at least 1");
                        issue = issue.max(freed);
                    }
                }
            }
        }
        let jobs_from = engine.jobs.len();
        for lpn in req.wrapped_page_ops(lpn_space) {
            if engine.pool.len() >= 3 {
                let (h, g, s) = (
                    engine.pool.pop().expect("len checked"),
                    engine.pool.pop().expect("len checked"),
                    engine.pool.pop().expect("len checked"),
                );
                dev.prime_chains(h, g, s);
            }
            let (host, gc, scan) = dev.translate_page_op(lpn, req.op);
            stats.count_page(req.op);
            let (shard, crossing) = engine.map.assign(&host, &gc, &scan);
            engine.jobs.push(Job {
                req: idx as u64,
                lpn,
                issue,
                host,
                gc,
                scan,
                shard,
                crossing,
            });
        }
        engine.entries.push(Entry {
            req: idx,
            arrival: req.arrival,
            issue,
            tenant: req.tenant,
            pages: req.pages,
            jobs: jobs_from..engine.jobs.len(),
        });
        if req.pages > 0 && queue_depth.is_some() {
            unknown += 1;
        }
        if engine.jobs.len() >= WINDOW_JOB_CAP {
            engine.flush(dev, &mut stats, &mut known);
            unknown = 0;
        }
    }
    engine.flush(dev, &mut stats, &mut known);

    // Fold the shard models back into the parent: availability timelines
    // from each plane's owner, activity deltas summed (each op executed
    // exactly once across the fleet).
    for p in 0..total_planes as u32 {
        let owner = engine.map.of_plane(p);
        dev.hw.sync_plane_state_from(&engine.models[owner], p);
    }
    for model in &engine.models {
        dev.hw.absorb_activity(model);
    }

    dev.finish_report(requests.len() as u64, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_ranges_agree_with_plane_lookup() {
        for (channels, nshards, ppc) in [(8, 4, 4), (8, 3, 2), (5, 2, 8), (16, 16, 1), (7, 5, 3)] {
            let map = ShardMap::new(nshards, channels, ppc);
            assert_eq!(map.plane_lo[0], 0);
            assert_eq!(map.plane_hi[nshards - 1], channels * ppc);
            for s in 1..nshards {
                assert_eq!(map.plane_hi[s - 1], map.plane_lo[s], "ranges tile");
            }
            for p in 0..(channels * ppc) as u32 {
                let s = map.of_plane(p);
                assert!(
                    (map.plane_lo[s]..map.plane_hi[s]).contains(&(p as usize)),
                    "plane {p} maps into its shard's range"
                );
            }
        }
    }

    #[test]
    fn shard_map_balances_channels() {
        // No shard may own more than ceil(channels/nshards) channels.
        for (channels, nshards) in [(8, 4), (9, 4), (16, 5), (3, 2)] {
            let map = ShardMap::new(nshards, channels, 2);
            let cap = channels.div_ceil(nshards);
            for s in 0..nshards {
                let owned = (map.plane_hi[s] - map.plane_lo[s]) / 2;
                assert!(owned <= cap, "shard {s} owns {owned} > {cap} channels");
                assert!(owned >= 1, "every shard owns at least one channel");
            }
        }
    }
}

//! The FTL abstraction: how a translation layer turns one page-level host
//! operation into a chain of timed flash operations.
//!
//! An FTL mutates the flash *state* eagerly (mappings, block contents, GC)
//! while appending the corresponding *timed steps* to an [`OpChain`]. The
//! device controller then plays the chain against the hardware model:
//! steps of one chain run back-to-back (translation lookup before data
//! access, GC before the write it makes room for), while chains of
//! different host operations interleave freely across planes and channels.
//! This mirrors the paper's simulator, where address translation decides
//! up-front whether a copy can use the copy-back path and the timing
//! advances accordingly (§IV.B).

use crate::dir::PageDirectory;
use dloop_nand::{FlashState, Lpn, MediaOutcome, PlaneId, Ppn};

/// One timed flash operation within a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashStep {
    /// Page read on `plane` (array + bus out).
    Read {
        /// Target plane.
        plane: PlaneId,
    },
    /// Page program on `plane` (bus in + array).
    Write {
        /// Target plane.
        plane: PlaneId,
    },
    /// Block erase on `plane`.
    Erase {
        /// Target plane.
        plane: PlaneId,
    },
    /// Page read on `plane` that needed `steps` read-retry ladder steps
    /// (each re-senses the array and re-runs soft ECC decode; the plane
    /// stays busy for the extra time but the bus transfers once).
    ReadRetry {
        /// Target plane.
        plane: PlaneId,
        /// Retry ladder steps charged on top of the base read (≥ 1).
        steps: u32,
    },
    /// Intra-plane copy-back on `plane` — no bus traffic.
    CopyBack {
        /// Target plane.
        plane: PlaneId,
    },
    /// Traditional inter-plane copy.
    InterPlaneCopy {
        /// Source plane.
        src: PlaneId,
        /// Destination plane.
        dst: PlaneId,
    },
}

impl FlashStep {
    /// Planes this step loads (both ends of an inter-plane copy).
    pub fn planes(&self) -> (PlaneId, Option<PlaneId>) {
        match *self {
            FlashStep::Read { plane }
            | FlashStep::ReadRetry { plane, .. }
            | FlashStep::Write { plane }
            | FlashStep::Erase { plane }
            | FlashStep::CopyBack { plane } => (plane, None),
            FlashStep::InterPlaneCopy { src, dst } => (src, Some(dst)),
        }
    }
}

/// The ordered steps serving one page-level host operation.
#[derive(Debug, Clone, Default)]
pub struct OpChain {
    steps: Vec<FlashStep>,
}

impl OpChain {
    /// An empty chain.
    pub fn new() -> Self {
        OpChain { steps: Vec::new() }
    }

    /// Append a step.
    pub fn push(&mut self, step: FlashStep) {
        self.steps.push(step);
    }

    /// The steps in execution order.
    pub fn steps(&self) -> &[FlashStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the chain is empty (e.g. a read of a never-written LPN —
    /// served from the controller without touching flash).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Drop all steps, keeping the allocation (chains are reused per op).
    pub fn clear(&mut self) {
        self.steps.clear();
    }
}

/// Cross-FTL event counters (each FTL fills in what applies to it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlCounters {
    /// Garbage collections invoked.
    pub gc_invocations: u64,
    /// Valid pages moved by intra-plane copy-back.
    pub copyback_moves: u64,
    /// Valid pages moved over the external bus.
    pub external_moves: u64,
    /// Free pages deliberately wasted to honour the same-parity policy.
    pub parity_skips: u64,
    /// Translation pages read from flash (CMT misses).
    pub translation_reads: u64,
    /// Translation pages written to flash (dirty evictions, GC updates).
    pub translation_writes: u64,
    /// Hybrid-FTL merge counts.
    pub full_merges: u64,
    /// Partial merges.
    pub partial_merges: u64,
    /// Switch merges.
    pub switch_merges: u64,
}

impl FtlCounters {
    /// Counter deltas accumulated since `baseline` was captured — used by
    /// the device to report only the measured window after a warm-up, the
    /// same way flash totals and media counters are baselined.
    pub fn since(&self, baseline: &FtlCounters) -> FtlCounters {
        FtlCounters {
            gc_invocations: self.gc_invocations - baseline.gc_invocations,
            copyback_moves: self.copyback_moves - baseline.copyback_moves,
            external_moves: self.external_moves - baseline.external_moves,
            parity_skips: self.parity_skips - baseline.parity_skips,
            translation_reads: self.translation_reads - baseline.translation_reads,
            translation_writes: self.translation_writes - baseline.translation_writes,
            full_merges: self.full_merges - baseline.full_merges,
            partial_merges: self.partial_merges - baseline.partial_merges,
            switch_merges: self.switch_merges - baseline.switch_merges,
        }
    }
}

/// Which chain a pushed step belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Work the host request waits for (translation lookups, the data
    /// read/program itself).
    Host,
    /// Reclamation caused by this operation (GC on the written plane,
    /// merges, erases, GC-driven translation rewrites). In the default
    /// synchronous mode the triggering request pays for it, as in the
    /// paper's simulator.
    Gc,
    /// Housekeeping for *other* planes (the pre-operation threshold scan).
    /// It occupies planes and buses — delaying subsequent operations — but
    /// never gates the current request: the paper charges a request only
    /// for the collection its own write provoked.
    Scan,
}

/// Mutable context handed to the FTL for one page operation.
pub struct FtlContext<'a> {
    /// The flash array state (mappings of blocks/pages, pools).
    pub flash: &'a mut FlashState,
    /// The reverse page directory (ppn → owner).
    pub dir: &'a mut PageDirectory,
    /// Steps the host response waits for.
    pub host_chain: &'a mut OpChain,
    /// Reclamation caused by this operation.
    pub gc_chain: &'a mut OpChain,
    /// Housekeeping for unrelated planes.
    pub scan_chain: &'a mut OpChain,
    /// Where [`FtlContext::push`] routes.
    pub phase: Phase,
}

impl FtlContext<'_> {
    /// Append a step to the chain selected by the current phase.
    pub fn push(&mut self, step: FlashStep) {
        match self.phase {
            Phase::Host => self.host_chain.push(step),
            Phase::Gc => self.gc_chain.push(step),
            Phase::Scan => self.scan_chain.push(step),
        }
    }

    /// Read the flash page behind `ppn` and push the matching timed step:
    /// a plain [`FlashStep::Read`] for a clean first-try read, a
    /// [`FlashStep::ReadRetry`] when the media needed the retry ladder
    /// (uncorrectable reads charge the full ladder — the controller tried
    /// every step before giving up). Returns the media outcome so callers
    /// can account data-loss events; without attached media this is
    /// exactly the old `read_check` + `push(Read)` sequence.
    ///
    /// Panics on a `NandError`: reading an invalid page is an FTL logic
    /// bug regardless of the fault plan.
    pub fn read_page(&mut self, ppn: Ppn) -> MediaOutcome {
        let outcome = self
            .flash
            .read_page(ppn)
            .expect("FTL read of an unreadable page");
        let plane = self.flash.geometry().plane_of_ppn(ppn);
        let steps = match outcome {
            MediaOutcome::Uncorrectable => self.flash.max_retry_steps(),
            o => o.retry_steps(),
        };
        if steps == 0 {
            self.push(FlashStep::Read { plane });
        } else {
            self.push(FlashStep::ReadRetry { plane, steps });
        }
        outcome
    }

    /// Push the program step for a just-completed
    /// [`FlashState::program_page`], first charging one extra write per
    /// failed attempt the allocator retried through (a failed program
    /// occupies the plane and bus just like a successful one).
    pub fn push_program(&mut self, plane: PlaneId) {
        self.drain_failed_programs(FlashStep::Write { plane });
        self.push(FlashStep::Write { plane });
    }

    /// Charge program-status failures accumulated in the flash state as
    /// extra copies of `step`. GC paths pass their own step kind
    /// (copy-back / inter-plane copy) so a failed GC move is billed at
    /// that operation's cost.
    pub fn drain_failed_programs(&mut self, step: FlashStep) {
        for _ in 0..self.flash.take_failed_attempts() {
            self.push(step);
        }
    }

    /// Run `f` with the phase forced to [`Phase::Gc`], restoring the
    /// previous phase afterwards.
    pub fn in_gc_phase<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.phase;
        self.phase = Phase::Gc;
        let r = f(self);
        self.phase = prev;
        r
    }

    /// Run `f` with the phase forced to [`Phase::Scan`].
    pub fn in_scan_phase<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.phase;
        self.phase = Phase::Scan;
        let r = f(self);
        self.phase = prev;
        r
    }
}

/// A flash translation layer.
///
/// The `Send + Sync` supertraits exist for the parallel engine: the
/// plane-local fast path forks the FTL *inside* each worker thread from
/// a shared `&dyn Ftl`, so the trait object must be shareable. Every FTL
/// here is plain owned data, so the bounds cost nothing.
pub trait Ftl: Send + Sync {
    /// Short scheme name ("DLOOP", "DFTL", "FAST", …).
    fn name(&self) -> &'static str;

    /// Serve a one-page host read of `lpn`.
    fn read(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>);

    /// Serve a one-page host write (or update) of `lpn`.
    fn write(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>);

    /// The physical page currently mapped to `lpn`, if any — for tests and
    /// audits; must not generate flash traffic.
    fn mapped_ppn(&self, lpn: Lpn) -> Option<Ppn>;

    /// Scheme-level counters.
    fn counters(&self) -> FtlCounters;

    /// Deep consistency audit against the flash state and directory.
    fn audit(&self, flash: &FlashState, dir: &PageDirectory) -> Result<(), String>;

    // --- Plane-sharded translation (the parallel engine's fast path) ---
    //
    // An FTL whose placement keeps every flash effect of a page operation
    // on one statically-known plane can opt into sharded *translation*:
    // worker threads run full state forks over disjoint plane ranges and
    // the coordinator merges the owned planes back. The defaults opt out;
    // the engine then falls back to coordinator-side translation.

    /// The plane every flash effect of an operation on `lpn` stays on,
    /// when [`Ftl::shard_translation_ready`] holds. Meaningless otherwise.
    fn shard_home_plane(&self, lpn: Lpn) -> PlaneId {
        let _ = lpn;
        0
    }

    /// Whether the FTL's *current* state guarantees plane-locality: every
    /// subsequent operation's state effects and chain steps confined to
    /// [`Ftl::shard_home_plane`] of its LPN, barring conditions a worker
    /// detects per-op via [`Ftl::shard_op_pure`]. Checked once per run
    /// against the pre-run flash state.
    fn shard_translation_ready(&self, flash: &FlashState) -> bool {
        let _ = flash;
        false
    }

    /// A fork of the FTL for the worker owning `planes`, with scheme
    /// counters zeroed so the fork accumulates deltas. The fork needs to
    /// be authoritative only for LPNs whose [`Ftl::shard_home_plane`]
    /// lies in `planes` — translation state for foreign LPNs may be
    /// dropped, which keeps the fork (and the worker's working set)
    /// proportional to its owned share. `None` opts out of sharded
    /// translation. Called concurrently from worker threads.
    fn shard_fork(&self, planes: std::ops::Range<PlaneId>) -> Option<Box<dyn Ftl + Send>> {
        let _ = planes;
        None
    }

    /// Post-operation check on a worker's fork: did the operation on
    /// `lpn` leave the fork in a state where plane-locality still holds
    /// for future operations? A `false` aborts the worker and the run
    /// falls back to sequential translation.
    fn shard_op_pure(&self, flash: &FlashState, lpn: Lpn) -> bool {
        let _ = (flash, lpn);
        true
    }

    /// Merge a worker fork back into the authoritative FTL: adopt the
    /// state of the owned `planes` and add the fork's counter deltas.
    /// Only called when [`Ftl::shard_fork`] returned `Some`.
    fn shard_absorb(&mut self, worker: &dyn Ftl, planes: std::ops::Range<PlaneId>) {
        let _ = (worker, planes);
        unreachable!("shard_absorb on an FTL that does not fork");
    }

    /// Concrete-type escape hatch for [`Ftl::shard_absorb`] downcasts.
    /// FTLs that support sharded translation return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_accumulates_in_order() {
        let mut c = OpChain::new();
        assert!(c.is_empty());
        c.push(FlashStep::Read { plane: 1 });
        c.push(FlashStep::Write { plane: 2 });
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.steps(),
            &[FlashStep::Read { plane: 1 }, FlashStep::Write { plane: 2 }]
        );
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn step_planes() {
        assert_eq!(FlashStep::CopyBack { plane: 3 }.planes(), (3, None));
        assert_eq!(
            FlashStep::InterPlaneCopy { src: 1, dst: 4 }.planes(),
            (1, Some(4))
        );
    }
}

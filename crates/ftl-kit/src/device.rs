//! The SSD device controller: trace replay, request splitting, dispatch,
//! and metrics collection.
//!
//! This is the reproduction's version of FlashSim's top-level
//! "buffering/scheduling" function (paper Fig. 7): it receives host
//! requests from the trace reader, splits them into single-page operations,
//! asks the FTL to translate each into an [`OpChain`], and plays the chain
//! against the [`HardwareModel`]. Requests are processed in arrival order
//! through the event queue; chains of different operations interleave
//! across planes and channels through the resource timelines, which is the
//! same behaviour the paper's priority list produces (ready operations on
//! free resources proceed immediately, blocked ones wait FIFO on their
//! resource).

use crate::config::SsdConfig;
use crate::dir::{PageDirectory, PageOwner};
use crate::ftl::{FlashStep, Ftl, FtlContext, FtlCounters, OpChain, Phase};
use crate::metrics::RunReport;
use crate::request::{HostOp, HostRequest, TenantId};
use crate::sched::{NcqPolicy, QosCandidate, QosPolicy, QosSpec};
use dloop_nand::{FlashState, HardwareModel, MediaCounters, PageState};
use dloop_simkit::trace::{FlightRecorder, QueueDepthProbe, RingSink, SpanPhase, TraceSink};
use dloop_simkit::{EventQueue, Histogram, OnlineStats, PendingQueue, SimTime};

/// Default reorder-window size for [`ReplayMode::Ncq`] — SATA NCQ's
/// 32-entry command queue.
pub const DEFAULT_NCQ_DEPTH: usize = 32;

/// How a trace's host requests are admitted to the device during replay.
///
/// All five modes feed the same request-splitting, translation and
/// chain-playing machinery ([`SsdDevice::run`]); they differ only in *when*
/// a request's flash work may begin:
///
/// * [`ReplayMode::Open`] — open arrivals: every request books its flash
///   work at its trace arrival time. Resource timelines push the work into
///   the future under contention, so the backlog is unbounded (the classic
///   trace-replay model, and the mode the paper's figures use).
/// * [`ReplayMode::Gated`] — FlashSim's priority list (§IV.B): page
///   operations queue on arrival and are issued FIFO-with-skipping only
///   when the plane and channel their first step needs are both idle.
/// * [`ReplayMode::Closed { queue_depth }`](ReplayMode::Closed) — an
///   fio-style bounded host queue: at most `queue_depth` requests are
///   outstanding; request *i* issues at the later of its arrival and the
///   completion of request *i − queue_depth*.
/// * [`ReplayMode::Ncq { queue_depth }`](ReplayMode::Ncq) — NCQ-style
///   bounded reordering: among the oldest `queue_depth` queued page
///   operations, issue any whose first host step's plane and channel are
///   idle *now*, preferring the op whose target plane has been idle
///   longest (ties by arrival order; fully deterministic). Reordering can
///   only fill planes the FIFO would have left idle, which is exactly the
///   plane-level parallelism DLOOP's allocation spreads writes across.
/// * [`ReplayMode::Qos { queue_depth, policy }`](ReplayMode::Qos) — the
///   same reorder window, but the selection rule among issuable ops is a
///   pluggable [`QosPolicy`] described by a
///   [`QosSpec`]: priority classes, deadlines, or per-tenant fair shares.
///   `Qos` with [`QosSpec::Ncq`] is bit-identical to `Ncq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Open arrivals (unbounded backlog): resources are booked at arrival.
    Open,
    /// Issue-gated replay through the FlashSim priority list.
    Gated,
    /// Closed-loop replay with a bounded host queue of `queue_depth`.
    Closed {
        /// Maximum simultaneously outstanding requests (must be ≥ 1).
        queue_depth: usize,
    },
    /// NCQ-style replay: bounded reorder window over queued page ops.
    Ncq {
        /// Reorder-window size (must be ≥ 1); [`DEFAULT_NCQ_DEPTH`] is
        /// the conventional choice.
        queue_depth: usize,
    },
    /// NCQ window with a QoS selection policy arbitrating inside it. For
    /// a custom or stateful policy instance (e.g. to inspect token buckets
    /// afterwards), use [`SsdDevice::run_with_policy`] directly instead.
    Qos {
        /// Reorder-window size (must be ≥ 1).
        queue_depth: usize,
        /// Which selection policy arbitrates inside the window.
        policy: QosSpec,
    },
}

/// Builder-style description of one replay: the admission mode plus every
/// orthogonal knob that used to ride as a positional argument on a
/// per-mode entry point. Consumed by [`SsdDevice::run_with`].
///
/// ```
/// use dloop_ftl_kit::device::RunConfig;
/// use dloop_ftl_kit::sched::QosSpec;
///
/// let open = RunConfig::open();                     // ReplayMode::Open
/// let closed = RunConfig::closed(16);               // bounded host queue
/// let qos = RunConfig::qos(QosSpec::fair_share())   // QoS window…
///     .queue_depth(64)                              // …of 64 entries
///     .shards(4);                                   // parallel engine
/// # let _ = (open, closed, qos);
/// ```
///
/// The defaults reproduce [`ReplayMode::Open`] exactly (property-tested in
/// `tests/replay_modes.rs`): open arrivals, [`DEFAULT_NCQ_DEPTH`] queue
/// depth for the modes that use one, the neutral [`QosSpec::Ncq`] policy,
/// one shard (sequential engine), no sink change.
///
/// `shards` selects the parallel engine (see `DESIGN.md` §3f): the device
/// is partitioned into contiguous channel groups, each advancing on its
/// own worker thread, with a deterministic merge that keeps every report
/// field **bit-identical** to the sequential engine. Parallelism applies
/// to the arrival-reserving modes ([`ReplayMode::Open`], and
/// [`ReplayMode::Closed`] while its queue is under-subscribed); the
/// globally-coupled schedulers (gated/NCQ/QoS) accept the knob but run
/// sequentially, so identity holds trivially there.
#[derive(Debug)]
pub struct RunConfig {
    kind: ModeKind,
    queue_depth: usize,
    policy: QosSpec,
    shards: usize,
    sink: Option<Box<dyn TraceSink>>,
}

/// Admission-mode discriminant of a [`RunConfig`] (the mode's knobs live
/// as siblings on the config).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModeKind {
    Open,
    Gated,
    Closed,
    Ncq,
    Qos,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            kind: ModeKind::Open,
            queue_depth: DEFAULT_NCQ_DEPTH,
            policy: QosSpec::Ncq,
            shards: 1,
            sink: None,
        }
    }
}

impl RunConfig {
    /// Open arrivals — identical to the all-default config.
    pub fn open() -> Self {
        RunConfig::default()
    }

    /// Issue-gated replay (the FlashSim priority list).
    pub fn gated() -> Self {
        RunConfig {
            kind: ModeKind::Gated,
            ..RunConfig::default()
        }
    }

    /// Closed-loop replay with a bounded host queue of `queue_depth`.
    pub fn closed(queue_depth: usize) -> Self {
        RunConfig {
            kind: ModeKind::Closed,
            queue_depth,
            ..RunConfig::default()
        }
    }

    /// NCQ-style bounded reordering over a `queue_depth` window.
    pub fn ncq(queue_depth: usize) -> Self {
        RunConfig {
            kind: ModeKind::Ncq,
            queue_depth,
            ..RunConfig::default()
        }
    }

    /// QoS-arbitrated NCQ window under `policy`, at [`DEFAULT_NCQ_DEPTH`]
    /// unless overridden with [`RunConfig::queue_depth`].
    pub fn qos(policy: QosSpec) -> Self {
        RunConfig {
            kind: ModeKind::Qos,
            policy,
            ..RunConfig::default()
        }
    }

    /// Override the queue depth (must be ≥ 1 for the modes that use one:
    /// closed, NCQ, QoS).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Override the QoS selection policy (only the QoS mode consults it).
    pub fn policy(mut self, policy: QosSpec) -> Self {
        self.policy = policy;
        self
    }

    /// Run on `shards` parallel channel-group workers (clamped to the
    /// channel count; `1` = the sequential engine). Reports are
    /// bit-identical either way.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Attach `sink` to the device before the run (replacing any attached
    /// sink, exactly like [`SsdDevice::attach_sink`]; it stays attached
    /// afterwards so it can be inspected or detached).
    pub fn attach_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The shard count in force.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The equivalent [`ReplayMode`] (the mode-only view of this config —
    /// shard count and sink attachment have no `ReplayMode` spelling).
    pub fn replay_mode(&self) -> ReplayMode {
        match self.kind {
            ModeKind::Open => ReplayMode::Open,
            ModeKind::Gated => ReplayMode::Gated,
            ModeKind::Closed => ReplayMode::Closed {
                queue_depth: self.queue_depth,
            },
            ModeKind::Ncq => ReplayMode::Ncq {
                queue_depth: self.queue_depth,
            },
            ModeKind::Qos => ReplayMode::Qos {
                queue_depth: self.queue_depth,
                policy: self.policy,
            },
        }
    }
}

impl From<ReplayMode> for RunConfig {
    fn from(mode: ReplayMode) -> Self {
        match mode {
            ReplayMode::Open => RunConfig::open(),
            ReplayMode::Gated => RunConfig::gated(),
            ReplayMode::Closed { queue_depth } => RunConfig::closed(queue_depth),
            ReplayMode::Ncq { queue_depth } => RunConfig::ncq(queue_depth),
            ReplayMode::Qos {
                queue_depth,
                policy,
            } => RunConfig::qos(policy).queue_depth(queue_depth),
        }
    }
}

/// Per-replay measurement accumulator shared by every [`ReplayMode`]: the
/// response-time distribution, page counts and simulated end time that
/// [`SsdDevice::finish_report`] folds into the [`RunReport`]. Keeping a
/// single accumulator (and a single completion path) is what guarantees
/// the modes count requests identically.
pub(crate) struct ReplayStats {
    response_ms: OnlineStats,
    /// µs buckets up to ~2^39 µs.
    hist: Histogram,
    pages_read: u64,
    pages_written: u64,
    sim_end: SimTime,
    /// Per-request completion log: `(request index, arrival, done)`, in
    /// completion-record order. This is what lets a wrapping layer (the
    /// `dloop-host` stack) map each request of the slice it replayed to
    /// its exact completion instant.
    completions: Vec<(u64, SimTime, SimTime)>,
    /// Host-queue occupancy log: `(arrival, issue, done)` per admitted
    /// unit of work. Every driver records it (so Open ≡ Closed{∞} holds
    /// field-for-field); the arrival-reserving drivers track whole
    /// requests, the queueing drivers track page operations.
    pub(crate) queue: QueueDepthProbe,
}

impl ReplayStats {
    pub(crate) fn new() -> Self {
        ReplayStats {
            response_ms: OnlineStats::new(),
            hist: Histogram::new(1.0, 40),
            pages_read: 0,
            pages_written: 0,
            sim_end: SimTime::ZERO,
            completions: Vec::new(),
            queue: QueueDepthProbe::new(),
        }
    }

    /// Count one page operation of kind `op`.
    pub(crate) fn count_page(&mut self, op: HostOp) {
        match op {
            HostOp::Read => self.pages_read += 1,
            HostOp::Write => self.pages_written += 1,
        }
    }

    /// Record request `req` (its index in the replayed slice) arriving at
    /// `arrival` and finishing at `done`.
    pub(crate) fn complete(&mut self, req: u64, arrival: SimTime, done: SimTime) {
        self.sim_end = self.sim_end.max(done);
        self.completions.push((req, arrival, done));
        let resp = done.saturating_since(arrival);
        self.response_ms.push(resp.as_millis_f64());
        self.hist.record(resp.as_micros_f64());
    }
}

/// One translated page operation waiting in a queueing replay scheduler
/// (gated or NCQ): the chains the FTL produced at arrival time plus the
/// bookkeeping needed to finish its host request.
struct QueuedOp {
    req: usize,
    lpn: u64,
    host: OpChain,
    gc: OpChain,
    scan: OpChain,
    arrival: SimTime,
    /// The host stream of the parent request, for the per-tenant queue
    /// probe (the QoS policies rank by the richer
    /// [`QosCandidate`] built at enqueue time instead).
    tenant: TenantId,
}

/// A simulated SSD: flash state + hardware timing + one FTL.
pub struct SsdDevice {
    pub(crate) config: SsdConfig,
    pub(crate) flash: FlashState,
    pub(crate) dir: PageDirectory,
    pub(crate) hw: HardwareModel,
    pub(crate) ftl: Box<dyn Ftl>,
    pub(crate) plane_counts: Vec<u64>,
    host_chain: OpChain,
    gc_chain: OpChain,
    scan_chain: OpChain,
    /// Flash totals at the last measurement reset, so reports cover only
    /// the measured window (warm-up traffic is excluded).
    baseline: (u64, u64, u64),
    /// Media reliability counters at the last measurement reset.
    media_baseline: MediaCounters,
    /// FTL scheme counters at the last measurement reset, so reports cover
    /// only the measured window (like flash totals and media counters).
    ftl_baseline: FtlCounters,
    pub(crate) wait_ms: OnlineStats,
    pub(crate) service_ms: OnlineStats,
    pub(crate) gc_block_ms: OnlineStats,
}

impl SsdDevice {
    /// Build a device from a configuration and an FTL instance.
    pub fn new(config: SsdConfig, ftl: Box<dyn Ftl>) -> Self {
        let geometry = config.geometry();
        let mut flash = match config.erase_limit {
            Some(limit) => FlashState::with_endurance(geometry.clone(), limit),
            None => FlashState::new(geometry.clone()),
        };
        flash.attach_media(&config.fault);
        let dir = PageDirectory::new(&geometry);
        let hw = HardwareModel::new(&geometry, config.timing.clone(), config.die_serialized);
        let planes = geometry.total_planes() as usize;
        SsdDevice {
            config,
            flash,
            dir,
            hw,
            ftl,
            plane_counts: vec![0; planes],
            host_chain: OpChain::new(),
            gc_chain: OpChain::new(),
            scan_chain: OpChain::new(),
            baseline: (0, 0, 0),
            media_baseline: MediaCounters::default(),
            ftl_baseline: FtlCounters::default(),
            wait_ms: OnlineStats::new(),
            service_ms: OnlineStats::new(),
            gc_block_ms: OnlineStats::new(),
        }
    }

    /// Attach `sink` as the destination for op-level spans, replacing any
    /// previously attached sink. Recording is pure observation — every
    /// [`RunReport`] field is bit-identical with a sink attached or not
    /// (property-tested in `tests/trace_purity.rs`).
    pub fn attach_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.hw.attach_sink(sink);
    }

    /// Detach and return the span sink; the device stops tracing. A
    /// detached device is bit-identical to one that never traced.
    pub fn detach_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.hw.detach_sink()
    }

    /// The attached span sink, if any.
    pub fn sink(&self) -> Option<&dyn TraceSink> {
        self.hw.sink()
    }

    /// Convenience wrapper around [`SsdDevice::attach_sink`]: enable the
    /// classic bounded flight recorder with room for `capacity` spans
    /// (`None` detaches the sink and drops any recorded spans).
    pub fn set_tracing(&mut self, capacity: Option<usize>) {
        match capacity {
            Some(c) => self.attach_sink(Box::new(RingSink::new(c))),
            None => {
                self.detach_sink();
            }
        }
    }

    /// The flight recorder, when the attached sink is a [`RingSink`].
    pub fn trace(&self) -> Option<&FlightRecorder> {
        self.hw.recorder()
    }

    /// Detach and return the flight recorder (tracing stays enabled with a
    /// fresh, empty ring of the same capacity so subsequent runs keep
    /// recording). Returns `None` — without disturbing the sink — when the
    /// attached sink is not a [`RingSink`]; use [`SsdDevice::detach_sink`]
    /// for stream or tee sinks.
    pub fn take_trace(&mut self) -> Option<FlightRecorder> {
        let rec = self.hw.take_recorder()?;
        self.hw.enable_trace(rec.capacity());
        Some(rec)
    }

    /// The active configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The flash state (tests, audits).
    pub fn flash(&self) -> &FlashState {
        &self.flash
    }

    /// The page directory (tests, audits).
    pub fn dir(&self) -> &PageDirectory {
        &self.dir
    }

    /// The FTL (tests, audits).
    pub fn ftl(&self) -> &dyn Ftl {
        self.ftl.as_ref()
    }

    /// Media reliability counters accumulated since the last measurement
    /// reset (all zero for a device without an attached fault plan).
    fn media_delta(&self) -> MediaCounters {
        self.flash
            .media_counters()
            .map(|c| c.since(&self.media_baseline))
            .unwrap_or_default()
    }

    /// Replay `requests` under the admission policy `mode` and measure.
    /// Requests may be in any order; they are processed by arrival time
    /// (FIFO among equal arrivals). Equivalent to
    /// [`SsdDevice::run_with`] at the mode's default knobs — all five
    /// modes share the request-splitting, translation, chain-playing and
    /// report-assembly code, so they provably agree on the flash work
    /// performed (see `tests/replay_modes.rs`).
    pub fn run(&mut self, requests: &[HostRequest], mode: ReplayMode) -> RunReport {
        self.run_with(requests, RunConfig::from(mode))
    }

    /// Replay `requests` as described by `config` — the single
    /// fully-general replay entry point. The admission mode, queue depth,
    /// QoS policy, shard count and optional sink attachment all ride in
    /// the [`RunConfig`]; every legacy `run_trace*` entry point is a
    /// deprecated one-line shim over this (fingerprint-identical,
    /// property-tested in `tests/replay_modes.rs`).
    pub fn run_with(&mut self, requests: &[HostRequest], config: RunConfig) -> RunReport {
        let RunConfig {
            kind,
            queue_depth,
            policy,
            shards,
            sink,
        } = config;
        if let Some(sink) = sink {
            self.attach_sink(sink);
        }
        match kind {
            ModeKind::Open => self.run_reserving_sharded(requests, None, shards),
            ModeKind::Gated => self.run_gated(requests),
            ModeKind::Closed => {
                assert!(queue_depth >= 1, "queue depth must be at least 1");
                self.run_reserving_sharded(requests, Some(queue_depth), shards)
            }
            ModeKind::Ncq => {
                assert!(queue_depth >= 1, "queue depth must be at least 1");
                self.run_queued(requests, queue_depth, &mut NcqPolicy)
            }
            ModeKind::Qos => {
                assert!(queue_depth >= 1, "queue depth must be at least 1");
                self.run_queued(requests, queue_depth, policy.build().as_mut())
            }
        }
    }

    /// Replay `requests` through the QoS window with a caller-owned
    /// policy instance: like [`RunConfig::qos`], but the policy object
    /// outlives the run, so stateful policies (e.g.
    /// [`crate::sched::FairSharePolicy`]) can be inspected afterwards —
    /// token balances, issue counts — and custom [`QosPolicy`]
    /// implementations outside this crate can plug in. Only `config`'s
    /// queue depth and sink attachment are consulted; its mode and
    /// [`QosSpec`] are superseded by `policy`.
    pub fn run_with_policy(
        &mut self,
        requests: &[HostRequest],
        config: RunConfig,
        policy: &mut dyn QosPolicy,
    ) -> RunReport {
        let RunConfig {
            queue_depth, sink, ..
        } = config;
        if let Some(sink) = sink {
            self.attach_sink(sink);
        }
        assert!(queue_depth >= 1, "queue depth must be at least 1");
        self.run_queued(requests, queue_depth, policy)
    }

    /// Dispatch an arrival-reserving replay to the parallel channel-group
    /// engine when more than one shard is requested (and the geometry
    /// supports it), and to the sequential loop otherwise. The two
    /// engines are bit-identical on the full report fingerprint (claim
    /// C15).
    fn run_reserving_sharded(
        &mut self,
        requests: &[HostRequest],
        queue_depth: Option<usize>,
        shards: usize,
    ) -> RunReport {
        let channels = self.flash.geometry().channels as usize;
        if shards.min(channels) > 1 {
            crate::shard::run_sharded(self, requests, queue_depth, shards)
        } else {
            self.run_reserving(requests, queue_depth)
        }
    }

    /// Replay `requests` with open arrivals.
    #[deprecated(note = "use `run_with(requests, RunConfig::open())` instead")]
    pub fn run_trace(&mut self, requests: &[HostRequest]) -> RunReport {
        self.run(requests, ReplayMode::Open)
    }

    /// Arrival-reserving replay: every page operation books its resources
    /// the moment its request is admitted. With `queue_depth: None`
    /// admission is the trace arrival itself (open mode); with `Some(d)` a
    /// request waits until fewer than `d` earlier requests are in flight
    /// (closed mode). Open is exactly closed with an infinite queue — the
    /// shared loop keeps the two modes bit-identical where they overlap.
    pub(crate) fn run_reserving(
        &mut self,
        requests: &[HostRequest],
        queue_depth: Option<usize>,
    ) -> RunReport {
        let lpn_space = self.flash.geometry().user_pages();
        let mut queue: EventQueue<usize> = EventQueue::with_capacity(requests.len());
        for (i, r) in requests.iter().enumerate() {
            queue.push(r.arrival, i);
        }

        let mut stats = ReplayStats::new();
        // Completion times of in-flight requests, earliest first (closed
        // mode only).
        // Capacity capped at the request count: a `usize::MAX` depth is a
        // legal "unbounded" spelling, not an allocation request.
        let mut in_flight: std::collections::BinaryHeap<std::cmp::Reverse<SimTime>> =
            std::collections::BinaryHeap::with_capacity(
                queue_depth.unwrap_or(0).min(requests.len()),
            );

        while let Some(ev) = queue.pop() {
            let req = &requests[ev.event];
            let mut issue = req.arrival;
            if req.pages > 0 {
                if let Some(depth) = queue_depth {
                    // Requests already completed by this arrival no longer
                    // occupy queue slots: drain them first so the depth
                    // gate (and the occupancy the probe reports) sees the
                    // true in-flight count — a burst of zero-page requests
                    // interleaved with full-queue admissions must not
                    // observe a stale length. Draining never changes issue
                    // times: a freed slot `<= arrival` contributes
                    // `max(arrival, freed) = arrival` either way.
                    while in_flight
                        .peek()
                        .is_some_and(|&std::cmp::Reverse(t)| t <= req.arrival)
                    {
                        in_flight.pop();
                    }
                    // Zero-page requests do no flash work: they complete at
                    // arrival without occupying a queue slot.
                    if in_flight.len() >= depth {
                        let std::cmp::Reverse(freed) =
                            in_flight.pop().expect("queue depth at least 1");
                        issue = issue.max(freed);
                    }
                }
            }
            let mut req_done = issue;
            for lpn in req.wrapped_page_ops(lpn_space) {
                let done = self.serve_page_op(lpn, req.op, issue, ev.event as u64);
                req_done = req_done.max(done);
                stats.count_page(req.op);
            }
            if req.pages > 0 && queue_depth.is_some() {
                in_flight.push(std::cmp::Reverse(req_done));
            }
            stats.queue.track(req.tenant, req.arrival, issue, req_done);
            stats.complete(ev.event as u64, req.arrival, req_done);
        }

        self.finish_report(requests.len() as u64, stats)
    }

    /// Serve one page operation of host request `req`, arriving at
    /// `arrival`; returns the host completion time.
    /// The FTL's host chain gates the response; its GC
    /// chain is then played on the same resource timelines (delaying
    /// *later* operations on those planes/buses) without extending this
    /// request — the paper's Fig. 6 invokes GC after serving the write.
    fn serve_page_op(&mut self, lpn: u64, op: HostOp, arrival: SimTime, req: u64) -> SimTime {
        let (host_chain, gc_chain, scan_chain) = self.translate_page_op(lpn, op);
        // Housekeeping for unrelated planes first: it contends for
        // resources but never gates this response.
        self.hw
            .set_span_context(SpanPhase::Scan, Some(lpn), Some(req));
        self.play_chain(&scan_chain, arrival, false);
        self.scan_chain = scan_chain;
        self.hw
            .set_span_context(SpanPhase::Host, Some(lpn), Some(req));
        let (host_start, host_done) = self.play_chain_spans(&host_chain, arrival, true);
        if !host_chain.is_empty() {
            self.wait_ms
                .push(host_start.saturating_since(arrival).as_millis_f64());
            self.service_ms
                .push(host_done.saturating_since(host_start).as_millis_f64());
        }
        self.host_chain = host_chain;
        self.hw
            .set_span_context(SpanPhase::Gc, Some(lpn), Some(req));
        let response = if self.config.background_gc {
            // Background mode: GC steps are only ordered per resource — a
            // collection on plane A is independent of one on plane B, and
            // the per-plane/per-channel timelines already serialise
            // same-resource steps in chain order. The response does not
            // wait for them.
            self.play_chain(&gc_chain, host_done, false);
            host_done
        } else {
            // Paper-faithful synchronous mode: the triggering request pays
            // for the reclamation it caused (FlashSim semantics), which is
            // what makes FAST's full merges so visible in Figs. 8-10.
            let done = self.play_chain(&gc_chain, host_done, true);
            if !gc_chain.is_empty() {
                self.gc_block_ms
                    .push(done.saturating_since(host_done).as_millis_f64());
            }
            done
        };
        self.gc_chain = gc_chain;
        response
    }

    /// Hand previously-translated chains (with their allocations) back to
    /// the device so the next [`SsdDevice::translate_page_op`] can reuse
    /// them instead of allocating. The sequential drivers do this
    /// implicitly by re-storing the chains after playing them; the sharded
    /// engine moves chains into its job windows and recycles them here
    /// once a window is folded.
    pub(crate) fn prime_chains(&mut self, host: OpChain, gc: OpChain, scan: OpChain) {
        self.host_chain = host;
        self.gc_chain = gc;
        self.scan_chain = scan;
    }

    /// Translate one page operation through the FTL — state effects are
    /// immediate, as in FlashSim — and hand back the resulting
    /// `(host, gc, scan)` chains. Shared by every replay driver; the
    /// queueing drivers (gated, NCQ) defer *playing* the chains until
    /// their scheduler issues the op.
    pub(crate) fn translate_page_op(
        &mut self,
        lpn: u64,
        op: HostOp,
    ) -> (OpChain, OpChain, OpChain) {
        self.host_chain.clear();
        self.gc_chain.clear();
        self.scan_chain.clear();
        let mut ctx = FtlContext {
            flash: &mut self.flash,
            dir: &mut self.dir,
            host_chain: &mut self.host_chain,
            gc_chain: &mut self.gc_chain,
            scan_chain: &mut self.scan_chain,
            phase: Phase::Host,
        };
        match op {
            HostOp::Read => self.ftl.read(lpn, &mut ctx),
            HostOp::Write => self.ftl.write(lpn, &mut ctx),
        }
        (
            std::mem::take(&mut self.host_chain),
            std::mem::take(&mut self.gc_chain),
            std::mem::take(&mut self.scan_chain),
        )
    }

    /// Reserve resources for each step of `chain`, starting no earlier
    /// than `at`; returns the last completion. With `chained`, each step
    /// additionally waits for the previous one (host dependency order);
    /// without it, steps are issued together and only resource timelines
    /// order them.
    fn play_chain(&mut self, chain: &OpChain, at: SimTime, chained: bool) -> SimTime {
        self.play_chain_spans(chain, at, chained).1
    }

    /// Like [`Self::play_chain`] but also reports when the earliest step
    /// actually began (for queueing/service latency decomposition).
    ///
    /// Return contract: `(first_start, release)`, where `first_start` is
    /// the minimum `start` across the chain's steps — with `chained:
    /// false` steps are issued concurrently and step 0 need not begin
    /// earliest — and `release` is the chain's maximum resource-timeline
    /// end: every plane and channel the chain touched is free again at
    /// (or before) that time, so `release` is also the correct wake time
    /// for schedulers gating on those resources (the wake-event contract
    /// in DESIGN.md). An empty chain returns `(at, at)`.
    fn play_chain_spans(
        &mut self,
        chain: &OpChain,
        at: SimTime,
        chained: bool,
    ) -> (SimTime, SimTime) {
        let mut t = at;
        let mut last = at;
        let mut first_start: Option<SimTime> = None;
        for step in chain.steps() {
            let issue = if chained { t } else { at };
            let completion = match *step {
                FlashStep::Read { plane } => self.hw.exec_read(plane, issue),
                FlashStep::ReadRetry { plane, steps } => {
                    self.hw.exec_read_retry(plane, issue, steps)
                }
                FlashStep::Write { plane } => self.hw.exec_write(plane, issue),
                FlashStep::Erase { plane } => self.hw.exec_erase(plane, issue),
                FlashStep::CopyBack { plane } => self.hw.exec_copyback(plane, issue),
                FlashStep::InterPlaneCopy { src, dst } => {
                    self.hw.exec_interplane_copy(src, dst, issue)
                }
            };
            first_start = Some(match first_start {
                Some(f) => f.min(completion.start),
                None => completion.start,
            });
            let (p, q) = step.planes();
            self.plane_counts[p as usize] += 1;
            if let Some(q) = q {
                self.plane_counts[q as usize] += 1;
            }
            t = completion.end;
            last = last.max(completion.end);
        }
        // With `chained`, each step starts at the previous step's end, so
        // the final `t` is already the maximum resource release.
        let first_start = first_start.unwrap_or(at);
        if chained {
            (first_start, t)
        } else {
            (first_start, last)
        }
    }

    /// Issue-gated replay.
    #[deprecated(note = "use `run_with(requests, RunConfig::gated())` instead")]
    pub fn run_trace_gated(&mut self, requests: &[HostRequest]) -> RunReport {
        self.run(requests, ReplayMode::Gated)
    }

    /// Issue-gated replay — the literal FlashSim priority list (§IV.B):
    /// page operations are translated on arrival and queued; a queued
    /// operation is *issued* only when the plane and channel its first
    /// step needs are both idle, in FIFO order with skipping ("If the
    /// targeting channel and plane of the request are available, it will
    /// be immediately handed to the hardware module … Otherwise,
    /// [the scheduler] processes other requests until the channel and the
    /// plane turn to be free"). Unlike the arrival-reserving modes, which
    /// book resources into the future at admission, nothing here holds a
    /// resource before its work begins.
    fn run_gated(&mut self, requests: &[HostRequest]) -> RunReport {
        let lpn_space = self.flash.geometry().user_pages();
        let mut events: EventQueue<Option<usize>> = EventQueue::new();
        for (i, r) in requests.iter().enumerate() {
            events.push(r.arrival, Some(i));
        }

        let mut pending: PendingQueue<QueuedOp> = PendingQueue::new();
        let mut req_done: Vec<SimTime> = requests.iter().map(|r| r.arrival).collect();
        let mut req_ops_left: Vec<u32> = requests.iter().map(|r| r.pages).collect();

        let mut stats = ReplayStats::new();

        while let Some(ev) = events.pop() {
            let now = ev.at;
            if let Some(i) = ev.event {
                // Arrival: translate every page op now (state effects are
                // immediate, as in FlashSim) and queue its chains.
                let req = &requests[i];
                if req.pages == 0 {
                    // No page operations to queue: the request completes
                    // instantly at arrival with a zero response sample,
                    // exactly as the other replay modes count it (the
                    // per-op completion branch below would otherwise never
                    // fire and the request would vanish from the stats).
                    stats
                        .queue
                        .track(req.tenant, req.arrival, req.arrival, req.arrival);
                    stats.complete(i as u64, req.arrival, req.arrival);
                    continue;
                }
                for lpn in req.wrapped_page_ops(lpn_space) {
                    let (host, gc, scan) = self.translate_page_op(lpn, req.op);
                    stats.count_page(req.op);
                    pending.push_back(QueuedOp {
                        req: i,
                        lpn,
                        host,
                        gc,
                        scan,
                        arrival: req.arrival,
                        tenant: req.tenant,
                    });
                }
            }

            // Issue every queued op whose first host step's resources are
            // idle, FIFO with skipping.
            loop {
                let hw = &self.hw;
                let ready = |q: &QueuedOp| -> bool {
                    match q.host.steps().first() {
                        None => true, // empty chain (e.g. unmapped read)
                        Some(step) => {
                            let (p, q2) = step.planes();
                            let free = |plane| {
                                hw.plane_ready_at(plane) <= now && hw.channel_ready_at(plane) <= now
                            };
                            free(p) && q2.map(free).unwrap_or(true)
                        }
                    }
                };
                let Some(op) = pending.pop_first_ready(ready) else {
                    break;
                };
                self.issue_queued_op(
                    op,
                    now,
                    &mut stats,
                    &mut req_done,
                    &mut req_ops_left,
                    &mut events,
                );
            }
        }
        assert!(pending.is_empty(), "ops left unissued at end of trace");

        self.finish_report(requests.len() as u64, stats)
    }

    /// Issue one queued page operation at `now`: play its chains (host
    /// gates the response; scan and GC only contend), record latency
    /// attribution and the queue probe, finish the request when this was
    /// its last op, and schedule wakes. Shared by the gated and NCQ
    /// schedulers.
    ///
    /// Wake-event contract (DESIGN.md): **every resource-busy interval
    /// ends with a scheduled wake.** The host chain's resources are free
    /// by `done`, which gets a wake below; scan and background-GC chains
    /// keep planes and channels busy *past* `done`, so each gets its own
    /// wake at its resource-release time. (Historically only `done` was
    /// woken, so ops gated on a scanned/collected plane stalled until the
    /// next trace arrival — or tripped the end-of-trace assert when no
    /// arrival came.)
    ///
    /// Returns the instant the op's *last* resource hold ends (the
    /// latest of host completion, scan release, and GC release) — the
    /// horizon a throttling policy must track the op's power draw until.
    fn issue_queued_op(
        &mut self,
        op: QueuedOp,
        now: SimTime,
        stats: &mut ReplayStats,
        req_done: &mut [SimTime],
        req_ops_left: &mut [u32],
        events: &mut EventQueue<Option<usize>>,
    ) -> SimTime {
        self.hw
            .set_span_context(SpanPhase::Host, Some(op.lpn), Some(op.req as u64));
        let (host_start, host_done) = self.play_chain_spans(&op.host, now, true);
        if !op.host.is_empty() {
            // Queueing delay spans arrival → first flash step (the
            // pending-queue wait plus any residual resource wait),
            // mirroring the open-arrival mode's decomposition.
            self.wait_ms
                .push(host_start.saturating_since(op.arrival).as_millis_f64());
            self.service_ms
                .push(host_done.saturating_since(host_start).as_millis_f64());
        }
        self.hw
            .set_span_context(SpanPhase::Scan, Some(op.lpn), Some(op.req as u64));
        let scan_release = self.play_chain(&op.scan, now, false);
        if scan_release > now {
            events.push(scan_release, None);
        }
        self.hw
            .set_span_context(SpanPhase::Gc, Some(op.lpn), Some(op.req as u64));
        let mut release = scan_release;
        let done = if self.config.background_gc {
            let gc_release = self.play_chain(&op.gc, host_done, false);
            if gc_release > now {
                events.push(gc_release, None);
            }
            release = release.max(gc_release);
            host_done
        } else {
            let gc_done = self.play_chain(&op.gc, host_done, true);
            if !op.gc.is_empty() {
                self.gc_block_ms
                    .push(gc_done.saturating_since(host_done).as_millis_f64());
            }
            gc_done
        };
        stats.queue.track(op.tenant, op.arrival, now, done);
        req_done[op.req] = req_done[op.req].max(done);
        req_ops_left[op.req] -= 1;
        if req_ops_left[op.req] == 0 {
            stats.complete(op.req as u64, op.arrival, req_done[op.req]);
        }
        // Wake the scheduler when this op's work completes.
        if done > now {
            events.push(done, None);
        }
        release.max(done)
    }

    /// Upper bound on one queued op's instantaneous power draw, in µW,
    /// from its prepared chains — zero when energy accounting is off.
    ///
    /// A *chained* sequence (the host chain; synchronous GC) runs its
    /// steps back-to-back, and every step's internal phases hold at most
    /// one resource at a time (command/transfer on the channel, then the
    /// array — see the `exec_*` emitters), so its peak draw is one
    /// resource's worth: `max(array, bus)`. An *unchained* burst (scan;
    /// background GC) books all steps concurrently, so it is bounded by
    /// the per-step sum. The bound is what [`PowerCapPolicy`] admits
    /// against; actual instantaneous draw never exceeds it, which is what
    /// makes claim C16's per-bucket budget check sound.
    fn op_draw_uw(&self, host: &OpChain, gc: &OpChain, scan: &OpChain) -> u64 {
        let Some(e) = &self.config.energy else {
            return 0;
        };
        let step_uw = e.array_active_uw.max(e.bus_active_uw);
        let chained = |c: &OpChain| if c.is_empty() { 0 } else { step_uw };
        let unchained = |c: &OpChain| step_uw * c.len() as u64;
        let gc_uw = if self.config.background_gc {
            unchained(gc)
        } else {
            chained(gc)
        };
        chained(host) + unchained(scan) + gc_uw
    }

    /// NCQ-style replay.
    #[deprecated(note = "use `run_with(requests, RunConfig::ncq(queue_depth))` instead")]
    pub fn run_trace_ncq(&mut self, requests: &[HostRequest], queue_depth: usize) -> RunReport {
        self.run(requests, ReplayMode::Ncq { queue_depth })
    }

    /// QoS replay with a caller-owned policy instance.
    #[deprecated(
        note = "use `run_with_policy(requests, RunConfig::default().queue_depth(depth), policy)` \
                instead"
    )]
    pub fn run_qos(
        &mut self,
        requests: &[HostRequest],
        queue_depth: usize,
        policy: &mut dyn QosPolicy,
    ) -> RunReport {
        self.run_with_policy(
            requests,
            RunConfig::default().queue_depth(queue_depth),
            policy,
        )
    }

    /// NCQ-style reordering replay with a pluggable selection policy: page
    /// operations are translated on arrival (like [`Self::run_gated`])
    /// into a sequence-numbered pending list, but the scheduler may issue
    /// *any* of the oldest `queue_depth` pending ops whose first host
    /// step's plane and channel are idle now. Selection runs over a
    /// per-resource readiness index (one lane per plane, keyed by the
    /// first host step's primary plane, plus one lane for chain-less ops
    /// such as unmapped reads), so each scheduling decision is O(planes),
    /// not O(pending).
    ///
    /// The policy shapes exactly two things (see [`crate::sched`]):
    /// within-lane order — lanes are kept sorted by
    /// `(policy.lane_key, seq)` — and the cross-lane choice, ranked by
    /// `(policy.rank, plane_ready_at, seq)`. With [`NcqPolicy`] (constant
    /// rank, FIFO lanes) this is *exactly* the PR-5 NCQ scheduler: among
    /// issuable in-window ops, prefer the op whose target plane has been
    /// idle longest, ties by arrival order.
    ///
    /// Policy note: lanes are head-of-line in *key* order — each lane
    /// offers only its first in-window entry as a candidate, so an op
    /// blocked on its *secondary* resource (e.g. the far plane of an
    /// inter-plane copy) also blocks lower-ranked ops on the same lane.
    /// Reordering happens *across* planes, which is where the idle
    /// parallelism DLOOP's allocation creates actually lives; within a
    /// plane, the single sorted candidate is what keeps selection cheap,
    /// deterministic, and (for the deadline policy) inversion-free.
    ///
    /// Chain-less ops occupy no resources: the oldest one inside the
    /// window always issues immediately, bypassing the policy entirely
    /// (they are not ranked and not charged by `on_issue`).
    fn run_queued(
        &mut self,
        requests: &[HostRequest],
        queue_depth: usize,
        policy: &mut dyn QosPolicy,
    ) -> RunReport {
        /// A queued op plus its global arrival sequence number (the
        /// pending list stays sorted by it).
        struct NcqOp {
            seq: u64,
            op: QueuedOp,
        }
        /// A readiness-lane entry: the policy's lane sort key, the
        /// candidate view handed back to the policy at ranking time, and
        /// the first host step cached for the resource check.
        struct LaneEntry {
            key: u64,
            cand: QosCandidate,
            step: FlashStep,
        }

        let lpn_space = self.flash.geometry().user_pages();
        let planes = self.flash.geometry().total_planes() as usize;
        let mut events: EventQueue<Option<usize>> = EventQueue::new();
        for (i, r) in requests.iter().enumerate() {
            events.push(r.arrival, Some(i));
        }

        let mut pending: PendingQueue<NcqOp> = PendingQueue::new();
        // Readiness index: lane `p` holds the pending ops whose first host
        // step starts on plane `p`, sorted by `(lane_key, seq)`;
        // `chainless` holds ops with no host steps, which need no
        // resources at all.
        let mut lanes: Vec<Vec<LaneEntry>> = (0..planes).map(|_| Vec::new()).collect();
        let mut chainless: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut next_seq = 0u64;

        let mut req_done: Vec<SimTime> = requests.iter().map(|r| r.arrival).collect();
        let mut req_ops_left: Vec<u32> = requests.iter().map(|r| r.pages).collect();

        let mut stats = ReplayStats::new();

        while let Some(ev) = events.pop() {
            let now = ev.at;
            if let Some(i) = ev.event {
                let req = &requests[i];
                if req.pages == 0 {
                    stats
                        .queue
                        .track(req.tenant, req.arrival, req.arrival, req.arrival);
                    stats.complete(i as u64, req.arrival, req.arrival);
                    continue;
                }
                for lpn in req.wrapped_page_ops(lpn_space) {
                    let (host, gc, scan) = self.translate_page_op(lpn, req.op);
                    stats.count_page(req.op);
                    let draw_uw = self.op_draw_uw(&host, &gc, &scan);
                    match host.steps().first() {
                        None => chainless.push_back(next_seq),
                        Some(step) => {
                            let cand = QosCandidate {
                                seq: next_seq,
                                tenant: req.tenant,
                                op: req.op,
                                deadline: req.deadline,
                                arrival: req.arrival,
                                plane: step.planes().0,
                                draw_uw,
                            };
                            let key = policy.lane_key(&cand);
                            let lane = &mut lanes[step.planes().0 as usize];
                            let pos =
                                lane.partition_point(|e| (e.key, e.cand.seq) < (key, next_seq));
                            lane.insert(
                                pos,
                                LaneEntry {
                                    key,
                                    cand,
                                    step: *step,
                                },
                            );
                        }
                    }
                    pending.push_back(NcqOp {
                        seq: next_seq,
                        op: QueuedOp {
                            req: i,
                            lpn,
                            host,
                            gc,
                            scan,
                            arrival: req.arrival,
                            tenant: req.tenant,
                        },
                    });
                    next_seq += 1;
                }
            }

            // Issue every selectable op. The reorder window is the oldest
            // `queue_depth` pending ops; `horizon` is the youngest
            // sequence number inside it. Re-computed each iteration: an
            // issue shrinks the pending list and slides the window.
            policy.tick(now);
            loop {
                let window = pending.len().min(queue_depth);
                if window == 0 {
                    break;
                }
                let horizon = pending.get(window - 1).expect("window within pending").seq;
                // Chain-less ops need no resources: the oldest one inside
                // the window issues immediately.
                if let Some(&seq) = chainless.front() {
                    if seq <= horizon {
                        chainless.pop_front();
                        let idx = pending
                            .binary_search_by_key(&seq, |o| o.seq)
                            .expect("indexed op is pending");
                        let op = pending.remove_at(idx).expect("index in bounds").op;
                        self.issue_queued_op(
                            op,
                            now,
                            &mut stats,
                            &mut req_done,
                            &mut req_ops_left,
                            &mut events,
                        );
                        continue;
                    }
                }
                // Each lane offers its first in-window entry (in lane-key
                // order) whose first step's resources are all idle now;
                // among the offers, pick the lowest
                // `(rank, plane_ready_at, seq)`. Lanes are visited in
                // plane order and keys are totally ordered, so selection
                // is deterministic.
                let mut best: Option<((u64, u64, SimTime, u64), usize, usize)> = None;
                for (lane, entries) in lanes.iter().enumerate() {
                    let Some((pos, entry)) = entries
                        .iter()
                        .enumerate()
                        .find(|(_, e)| e.cand.seq <= horizon)
                    else {
                        continue;
                    };
                    let (p, p2) = entry.step.planes();
                    let free = |plane| {
                        self.hw.plane_ready_at(plane) <= now
                            && self.hw.channel_ready_at(plane) <= now
                    };
                    if !free(p) || !p2.map(free).unwrap_or(true) {
                        continue;
                    }
                    if !policy.admit(now, &entry.cand) {
                        continue;
                    }
                    let (r0, r1) = policy.rank(now, &entry.cand);
                    let key = (r0, r1, self.hw.plane_ready_at(p), entry.cand.seq);
                    if best.map_or(true, |(k, _, _)| key < k) {
                        best = Some((key, lane, pos));
                    }
                }
                let Some((_, lane, pos)) = best else {
                    break;
                };
                let entry = lanes[lane].remove(pos);
                policy.on_issue(now, &entry.cand);
                let idx = pending
                    .binary_search_by_key(&entry.cand.seq, |o| o.seq)
                    .expect("selected op is pending");
                let op = pending.remove_at(idx).expect("index in bounds").op;
                let release = self.issue_queued_op(
                    op,
                    now,
                    &mut stats,
                    &mut req_done,
                    &mut req_ops_left,
                    &mut events,
                );
                // Throttling policies track the committed draw until its
                // last resource hold ends (the release wake scheduled by
                // `issue_queued_op` guarantees a `tick` retires it).
                policy.note_release(now, &entry.cand, release);
            }
        }
        assert!(pending.is_empty(), "ops left unissued at end of trace");

        self.finish_report(requests.len() as u64, stats)
    }

    /// Closed-loop replay: at most `queue_depth` requests are outstanding
    /// at once — request *i* is issued at the later of its trace arrival
    /// and the completion of request *i − queue_depth*.
    #[deprecated(note = "use `run_with(requests, RunConfig::closed(queue_depth))` instead")]
    pub fn run_trace_closed(&mut self, requests: &[HostRequest], queue_depth: usize) -> RunReport {
        self.run(requests, ReplayMode::Closed { queue_depth })
    }

    /// Begin an incremental-submission session: the host/device
    /// interleaving surface. Instead of handing the device a complete
    /// request slice, a driver (the `dloop-host` event loop) feeds
    /// commands one at a time via [`CommandSession::submit`] and learns
    /// each command's completion instant immediately, so its own
    /// admission decisions (per-queue windows, completion-driven
    /// writeback) can react to completions before deciding what to
    /// submit next.
    ///
    /// Each submitted command books its flash work at its `issue` time,
    /// exactly as [`ReplayMode::Open`] books work at arrival — feeding an
    /// arrival-sorted slice with `issue == arrival` reproduces
    /// `run(requests, ReplayMode::Open)` bit-for-bit, report fingerprint
    /// included (the degeneracy leg of claim C13 rides on this).
    pub fn begin_commands(&mut self) -> CommandSession<'_> {
        let lpn_space = self.flash.geometry().user_pages();
        CommandSession {
            device: self,
            lpn_space,
            stats: ReplayStats::new(),
            submitted: 0,
            last_issue: SimTime::ZERO,
        }
    }

    /// Assemble the [`RunReport`] for a finished replay from the per-run
    /// accumulator plus the device-resident state (hardware counters,
    /// flash totals, latency decompositions) relative to the measurement
    /// baseline. Shared by every replay mode, so all reports are built
    /// identically.
    pub(crate) fn finish_report(&self, requests_completed: u64, stats: ReplayStats) -> RunReport {
        RunReport {
            ftl_name: self.ftl.name(),
            requests_completed,
            pages_read: stats.pages_read,
            pages_written: stats.pages_written,
            response_ms: stats.response_ms,
            response_hist_us: stats.hist,
            plane_request_counts: self.plane_counts.clone(),
            hw: self.hw.counters,
            ftl: self.ftl.counters().since(&self.ftl_baseline),
            total_erases: self.flash.total_erases() - self.baseline.0,
            total_programs: self.flash.total_programs() - self.baseline.1,
            total_skips: self.flash.total_skips() - self.baseline.2,
            wear: self.flash.wear_summary(),
            sim_end: stats.sim_end,
            plane_busy_ns: self.hw.plane_busy_ns().to_vec(),
            channel_busy_ns: self.hw.channel_busy_ns().to_vec(),
            wait_ms: self.wait_ms.clone(),
            service_ms: self.service_ms.clone(),
            gc_block_ms: self.gc_block_ms.clone(),
            media: self.media_delta(),
            retry_ns: self.hw.retry_ns(),
            completions: stats.completions,
            queue_log: stats.queue,
            shard_timing: None,
            energy: self
                .config
                .energy
                .as_ref()
                .map(|e| self.hw.energy_totals(e)),
        }
    }

    /// Age the device: replay `requests` with full state effects but throw
    /// away all timing and statistics afterwards. Used to reach GC steady
    /// state before measuring, like running a trace against a filled SSD.
    pub fn warm_up(&mut self, requests: &[HostRequest]) {
        let _ = self.run(requests, ReplayMode::Open);
        self.reset_measurements();
    }

    /// Forget timing and counters but keep flash/FTL state.
    pub fn reset_measurements(&mut self) {
        // Carry the sink across the hardware rebuild: warm-up spans are
        // measurements too, so rings are cleared (`TraceSink::reset`);
        // stream sinks keep their journal and simply continue appending.
        let sink = self.hw.detach_sink();
        let geometry = self.flash.geometry().clone();
        self.hw = HardwareModel::new(
            &geometry,
            self.config.timing.clone(),
            self.config.die_serialized,
        );
        if let Some(mut sink) = sink {
            sink.reset();
            self.hw.attach_sink(sink);
        }
        for c in &mut self.plane_counts {
            *c = 0;
        }
        self.baseline = (
            self.flash.total_erases(),
            self.flash.total_programs(),
            self.flash.total_skips(),
        );
        self.media_baseline = self.flash.media_counters().cloned().unwrap_or_default();
        self.ftl_baseline = self.ftl.counters();
        self.wait_ms = OnlineStats::new();
        self.service_ms = OnlineStats::new();
        self.gc_block_ms = OnlineStats::new();
    }

    /// Deep cross-layer audit: flash invariants, directory ↔ flash
    /// agreement, and the FTL's own consistency rules.
    pub fn audit(&self) -> Result<(), String> {
        self.flash.check()?;
        // Every valid flash page must have an owner; every owned page must
        // be valid; live counts must agree.
        let g = self.flash.geometry();
        let mut live = 0u64;
        for ppn in 0..g.total_physical_pages() {
            let valid = self.flash.page_state(ppn) == PageState::Valid;
            let owner = self.dir.owner(ppn);
            match (valid, owner) {
                (true, PageOwner::None) => {
                    return Err(format!("valid ppn {ppn} has no owner"));
                }
                (false, PageOwner::Data(l)) => {
                    return Err(format!("non-valid ppn {ppn} owned by data lpn {l}"));
                }
                (false, PageOwner::Translation(t)) => {
                    return Err(format!("non-valid ppn {ppn} owned by tpage {t}"));
                }
                (true, _) => live += 1,
                (false, PageOwner::None) => {}
            }
        }
        if live != self.flash.total_valid_pages() {
            return Err(format!(
                "directory live count {live} != flash valid count {}",
                self.flash.total_valid_pages()
            ));
        }
        self.ftl.audit(&self.flash, &self.dir)
    }
}

/// An in-progress incremental-submission run over an [`SsdDevice`]
/// (see [`SsdDevice::begin_commands`]). The session owns the per-run
/// measurement accumulator; [`CommandSession::finish`] assembles the
/// same [`RunReport`] every batch replay mode produces.
///
/// The driver is responsible for feeding commands in nondecreasing
/// `issue` order — the open-arrival booking model processes work in time
/// order, and the report's completion/occupancy logs are recorded in
/// submission order so that an arrival-order feed matches
/// [`ReplayMode::Open`] record-for-record.
pub struct CommandSession<'d> {
    device: &'d mut SsdDevice,
    lpn_space: u64,
    stats: ReplayStats,
    submitted: u64,
    last_issue: SimTime,
}

impl CommandSession<'_> {
    /// Submit one command (`id` is the caller's index for the completion
    /// log) whose flash work books at `issue`; returns the command's
    /// completion instant. `req.arrival` is when the command reached the
    /// device's doorbell — `issue >= arrival`, with the gap being
    /// admission delay (a full window), which the occupancy probe records
    /// as pending time. Zero-page commands complete at `issue` without
    /// flash work, like every other driver.
    pub fn submit(&mut self, req: &HostRequest, id: u64, issue: SimTime) -> SimTime {
        debug_assert!(
            issue >= req.arrival,
            "command issued before it reached the device: {issue} < {}",
            req.arrival
        );
        debug_assert!(
            issue >= self.last_issue,
            "commands must be submitted in nondecreasing issue order: {issue} < {}",
            self.last_issue
        );
        self.last_issue = issue;
        let mut req_done = issue;
        for lpn in req.wrapped_page_ops(self.lpn_space) {
            let done = self.device.serve_page_op(lpn, req.op, issue, id);
            req_done = req_done.max(done);
            self.stats.count_page(req.op);
        }
        self.stats
            .queue
            .track(req.tenant, req.arrival, issue, req_done);
        self.stats.complete(id, req.arrival, req_done);
        self.submitted += 1;
        req_done
    }

    /// Number of commands submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// End the session and assemble the [`RunReport`] (identical
    /// construction to the batch replay drivers).
    pub fn finish(self) -> RunReport {
        self.device.finish_report(self.submitted, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftl::FtlCounters;
    use dloop_nand::{BlockAddr, Lpn, Ppn};
    use std::collections::HashMap;

    /// Minimal in-SRAM page-map FTL used to exercise the device plumbing.
    struct ToyFtl {
        map: HashMap<Lpn, Ppn>,
        active: Option<BlockAddr>,
        /// Host writes served — reported as `translation_writes` so device
        /// tests can observe FTL-counter baselining across warm-up.
        writes: u64,
    }

    impl ToyFtl {
        fn new() -> Self {
            ToyFtl {
                map: HashMap::new(),
                active: None,
                writes: 0,
            }
        }
    }

    impl Ftl for ToyFtl {
        fn name(&self) -> &'static str {
            "TOY"
        }

        fn read(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) {
            if let Some(&ppn) = self.map.get(&lpn) {
                ctx.flash.read_check(ppn).unwrap();
                ctx.push(FlashStep::Read {
                    plane: ctx.flash.geometry().plane_of_ppn(ppn),
                });
            }
        }

        fn write(&mut self, lpn: Lpn, ctx: &mut FtlContext<'_>) {
            // Always plane 0, fresh blocks, no GC (tiny tests only).
            let need_new = match self.active {
                None => true,
                Some(b) => ctx.flash.plane(b.plane).block(b.index).is_full(),
            };
            if need_new {
                let idx = ctx.flash.allocate_free_block(0).unwrap();
                self.active = Some(BlockAddr {
                    plane: 0,
                    index: idx,
                });
            }
            let blk = self.active.unwrap();
            let addr = ctx.flash.program_next(blk).unwrap();
            let ppn = ctx.flash.geometry().ppn_of(addr);
            if let Some(old) = self.map.insert(lpn, ppn) {
                ctx.flash.invalidate(old).unwrap();
                ctx.dir.clear(old);
            }
            ctx.dir.set_data(ppn, lpn);
            ctx.push(FlashStep::Write { plane: 0 });
            self.writes += 1;
        }

        fn mapped_ppn(&self, lpn: Lpn) -> Option<Ppn> {
            self.map.get(&lpn).copied()
        }

        fn counters(&self) -> FtlCounters {
            FtlCounters {
                translation_writes: self.writes,
                ..FtlCounters::default()
            }
        }

        fn audit(&self, flash: &FlashState, dir: &PageDirectory) -> Result<(), String> {
            for (&lpn, &ppn) in &self.map {
                if flash.page_state(ppn) != PageState::Valid {
                    return Err(format!("lpn {lpn} maps to non-valid ppn {ppn}"));
                }
                if dir.owner(ppn) != PageOwner::Data(lpn) {
                    return Err(format!("directory disagrees for lpn {lpn}"));
                }
            }
            Ok(())
        }
    }

    fn device() -> SsdDevice {
        SsdDevice::new(SsdConfig::tiny_test(), Box::new(ToyFtl::new()))
    }

    fn write_req(at_us: u64, lpn: u64, pages: u32) -> HostRequest {
        HostRequest {
            arrival: SimTime::from_micros(at_us),
            lpn,
            pages,
            op: HostOp::Write,
            ..HostRequest::default()
        }
    }

    fn read_req(at_us: u64, lpn: u64, pages: u32) -> HostRequest {
        HostRequest {
            arrival: SimTime::from_micros(at_us),
            lpn,
            pages,
            op: HostOp::Read,
            ..HostRequest::default()
        }
    }

    #[test]
    fn single_write_latency() {
        let mut d = device();
        let report = d.run_with(&[write_req(0, 5, 1)], RunConfig::open());
        assert_eq!(report.requests_completed, 1);
        assert_eq!(report.pages_written, 1);
        // One write: cmd 0.2 + xfer 51.2 + program 200 = 251.4 us.
        assert!((report.mean_response_time_ms() - 0.2514).abs() < 1e-9);
        d.audit().unwrap();
    }

    #[test]
    fn command_session_matches_open_replay_record_for_record() {
        let requests = vec![
            write_req(0, 5, 2),
            write_req(10, 9, 1),
            read_req(300, 5, 2),
            read_req(300, 9, 1),
            write_req(900, 5, 1),
        ];
        let batch = device().run(&requests, ReplayMode::Open);
        let mut d = device();
        let mut session = d.begin_commands();
        for (i, r) in requests.iter().enumerate() {
            session.submit(r, i as u64, r.arrival);
        }
        let fed = session.finish();
        assert_eq!(fed.completions, batch.completions);
        assert_eq!(fed.queue_log, batch.queue_log);
        assert_eq!(fed.csv_row(), batch.csv_row());
        d.audit().unwrap();
    }

    #[test]
    fn command_session_delays_booking_to_the_issue_instant() {
        // The same command issued later finishes later: the session books
        // at `issue`, not at the request's doorbell arrival.
        let mut d = device();
        let mut session = d.begin_commands();
        let r = write_req(0, 5, 1);
        let done = session.submit(&r, 0, SimTime::from_micros(40));
        assert!(done >= SimTime::from_micros(40));
        let report = session.finish();
        // The probe saw the 40 µs admission delay as pending time.
        let &(_, arrival, issue, _) = &report.queue_log.tracked()[0];
        assert_eq!(arrival, SimTime::ZERO);
        assert_eq!(issue, SimTime::from_micros(40));
    }

    #[test]
    fn read_after_write_hits_mapped_page() {
        let mut d = device();
        let report = d.run_with(
            &[write_req(0, 9, 1), read_req(1000, 9, 1)],
            RunConfig::open(),
        );
        assert_eq!(report.pages_read, 1);
        assert_eq!(report.hw.reads, 1);
        d.audit().unwrap();
    }

    #[test]
    fn unmapped_read_touches_nothing() {
        let mut d = device();
        let report = d.run_with(&[read_req(0, 1234, 1)], RunConfig::open());
        assert_eq!(report.hw.reads, 0);
        assert_eq!(report.mean_response_time_ms(), 0.0);
    }

    #[test]
    fn out_of_order_arrivals_are_sorted() {
        let mut d = device();
        let report = d.run_with(
            &[write_req(5000, 1, 1), write_req(0, 0, 1)],
            RunConfig::open(),
        );
        assert_eq!(report.requests_completed, 2);
        d.audit().unwrap();
    }

    #[test]
    fn multi_page_request_counts_pages() {
        let mut d = device();
        let report = d.run_with(&[write_req(0, 0, 4)], RunConfig::open());
        assert_eq!(report.pages_written, 4);
        assert_eq!(report.requests_completed, 1);
        // All on plane 0 with the toy FTL.
        assert_eq!(report.plane_request_counts[0], 4);
    }

    #[test]
    fn updates_invalidate_old_pages() {
        let mut d = device();
        d.run_with(
            &[write_req(0, 7, 1), write_req(1000, 7, 1)],
            RunConfig::open(),
        );
        assert_eq!(d.flash().total_valid_pages(), 1);
        d.audit().unwrap();
    }

    #[test]
    fn warm_up_resets_measurements_but_keeps_state() {
        let mut d = device();
        d.warm_up(&[write_req(0, 3, 1)]);
        assert_eq!(d.flash().total_valid_pages(), 1);
        let report = d.run_with(&[read_req(0, 3, 1)], RunConfig::open());
        // The warm-up write is not in the counters.
        assert_eq!(report.hw.writes, 0);
        assert_eq!(report.hw.reads, 1);
        assert_eq!(report.plane_request_counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn lpn_wrapping_folds_large_addresses() {
        let mut d = device();
        let space = d.flash().geometry().user_pages();
        let report = d.run_with(
            &[write_req(0, space + 3, 1), read_req(1000, 3, 1)],
            RunConfig::open(),
        );
        // The read hits the wrapped write.
        assert_eq!(report.hw.reads, 1);
    }

    #[test]
    fn gated_queueing_reports_wait_samples() {
        // Regression: `run_trace_gated` used to clone the wait/service/
        // GC-block stats into its report without ever pushing samples, so
        // every gated report claimed a zero-sample latency decomposition.
        let mut d = device();
        // Two writes arriving together target the same plane (the toy FTL
        // always writes plane 0), so the second op queues behind the first.
        let report = d.run_with(
            &[write_req(0, 1, 1), write_req(0, 2, 1)],
            RunConfig::gated(),
        );
        assert_eq!(report.wait_ms.count(), 2);
        assert_eq!(report.service_ms.count(), 2);
        assert!(
            report.wait_ms.max().unwrap() > 0.0,
            "the queued op must report a non-zero wait"
        );
        d.audit().unwrap();
    }

    #[test]
    fn zero_page_requests_complete_in_every_replay_mode() {
        // Regression: gated replay never counted zero-page requests at all
        // (no per-op completion ever fired), and closed replay could charge
        // them a queue-slot wait. All three modes now record an instant
        // zero-latency completion.
        let reqs = [write_req(0, 1, 0)];
        let open = device().run_with(&reqs, RunConfig::open());
        let gated = device().run_with(&reqs, RunConfig::gated());
        let closed = device().run_with(&reqs, RunConfig::closed(1));
        for r in [&open, &gated, &closed] {
            assert_eq!(r.requests_completed, 1);
            assert_eq!(r.response_ms.count(), 1, "mode must count the request");
            assert_eq!(r.response_ms.mean(), 0.0);
            assert_eq!(r.pages_written, 0);
        }
        // Even with the bounded queue saturated by a slow write, a
        // zero-page request completes at arrival without taking a slot.
        let mut d = device();
        let r = d.run_with(
            &[write_req(0, 1, 1), write_req(10, 2, 0), write_req(20, 3, 1)],
            RunConfig::closed(1),
        );
        assert_eq!(r.response_ms.count(), 3);
        assert_eq!(r.response_ms.min().unwrap(), 0.0);
    }

    #[test]
    fn ncq_depth_one_matches_gated_on_single_plane_writes() {
        // With one lane of work (the toy FTL always writes plane 0) and a
        // reorder window of 1, NCQ degenerates to the gated FIFO: same
        // issue times, same response distribution.
        let reqs: Vec<HostRequest> = (0..8).map(|i| write_req(i * 50, i, 1)).collect();
        let gated = device().run_with(&reqs, RunConfig::gated());
        let ncq = device().run_with(&reqs, RunConfig::ncq(1));
        assert_eq!(ncq.requests_completed, gated.requests_completed);
        assert_eq!(ncq.pages_written, gated.pages_written);
        assert_eq!(ncq.response_ms.mean(), gated.response_ms.mean());
        assert_eq!(ncq.response_ms.max(), gated.response_ms.max());
        assert_eq!(ncq.queue_log.tracked(), gated.queue_log.tracked());
    }

    #[test]
    fn ncq_replay_is_deterministic() {
        let reqs: Vec<HostRequest> = (0..20).map(|i| write_req(i * 10, i % 7, 1)).collect();
        let a = device().run_with(&reqs, RunConfig::ncq(4));
        let b = device().run_with(&reqs, RunConfig::ncq(4));
        assert_eq!(a.response_ms.mean(), b.response_ms.mean());
        assert_eq!(a.queue_log.tracked(), b.queue_log.tracked());
        assert_eq!(a.sim_end, b.sim_end);
    }

    #[test]
    fn every_mode_records_the_queue_probe() {
        // 3 single-page requests + 1 zero-page request: each mode must log
        // one probe entry per admitted unit (requests for the reserving
        // modes, page ops for the queueing modes — equal counts here).
        let reqs = [
            write_req(0, 1, 1),
            write_req(100, 2, 1),
            write_req(200, 3, 0),
            read_req(5000, 1, 1),
        ];
        for mode in [
            ReplayMode::Open,
            ReplayMode::Gated,
            ReplayMode::Closed { queue_depth: 2 },
            ReplayMode::Ncq { queue_depth: 2 },
            ReplayMode::Qos {
                queue_depth: 2,
                policy: QosSpec::Priority,
            },
        ] {
            let r = device().run(&reqs, mode);
            assert_eq!(r.queue_log.len(), 4, "mode {mode:?}");
            // The zero-page request is an instant in-and-out.
            assert!(r
                .queue_log
                .tracked()
                .iter()
                .any(|&(_, a, i, d)| a == i && i == d && a == SimTime::from_micros(200)));
            let csv = r.queue_depth_csv(4);
            assert!(csv.starts_with("bucket_start_ms,"));
            assert_eq!(csv.lines().count(), 5);
        }
    }

    #[test]
    fn open_probe_issue_equals_arrival() {
        let reqs = [write_req(0, 1, 1), write_req(10, 2, 1)];
        let r = device().run_with(&reqs, RunConfig::open());
        for &(_, arrival, issue, _) in r.queue_log.tracked() {
            assert_eq!(arrival, issue, "open mode admits at arrival");
        }
    }

    #[test]
    fn reset_measurements_baselines_every_report_field() {
        // Contract: after a warm-up, every RunReport field covers only the
        // measured window — hardware counters, FTL scheme counters, flash
        // totals, and the latency decompositions alike.
        let mut d = device();
        d.warm_up(&[write_req(0, 1, 1), write_req(100, 2, 1)]);
        let report = d.run_with(
            &[write_req(0, 3, 1), read_req(1000, 3, 1)],
            RunConfig::open(),
        );
        assert_eq!(report.hw.writes, 1);
        assert_eq!(report.hw.reads, 1);
        // Not 3: the two warm-up writes are excluded by the baseline.
        assert_eq!(report.ftl.translation_writes, 1);
        assert_eq!(report.total_programs, 1);
        assert_eq!(report.wait_ms.count(), 2);
        assert_eq!(report.service_ms.count(), 2);
        assert_eq!(report.gc_block_ms.count(), 0);
        assert_eq!(report.response_ms.count(), 2);
        assert_eq!(report.plane_request_counts.iter().sum::<u64>(), 2);
        // A second reset starts the window fresh again.
        d.reset_measurements();
        let report = d.run_with(&[read_req(0, 3, 1)], RunConfig::open());
        assert_eq!(report.ftl.translation_writes, 0);
        assert_eq!(report.hw.reads, 1);
        assert_eq!(report.total_programs, 0);
    }

    #[test]
    fn tracing_records_one_span_per_flash_op() {
        let mut d = device();
        d.set_tracing(Some(1024));
        let report = d.run_with(
            &[write_req(0, 1, 1), read_req(1000, 1, 1)],
            RunConfig::open(),
        );
        let rec = d.trace().unwrap();
        assert_eq!(rec.recorded(), report.hw.reads + report.hw.writes);
        // Detaching hands back the spans and leaves a fresh recorder armed.
        let taken = d.take_trace().unwrap();
        assert_eq!(taken.len(), 2);
        assert_eq!(d.trace().unwrap().len(), 0);
        d.run_with(&[read_req(0, 1, 1)], RunConfig::open());
        assert_eq!(d.trace().unwrap().len(), 1);
        // A measurement reset discards warm-up spans too.
        d.reset_measurements();
        assert_eq!(d.trace().unwrap().len(), 0);
        // Disabling detaches the recorder entirely.
        d.set_tracing(None);
        assert!(d.trace().is_none());
    }

    #[test]
    fn audit_passes_after_mixed_burst() {
        let mut d = device();
        let mut reqs = Vec::new();
        for i in 0..200u64 {
            reqs.push(write_req(i * 10, i % 50, 1));
        }
        for i in 0..50u64 {
            reqs.push(read_req(3000 + i * 10, i, 1));
        }
        d.run_with(&reqs, RunConfig::open());
        d.audit().unwrap();
    }
}

//! The Global Translation Directory.
//!
//! DFTL (and DLOOP, which inherits the demand-caching machinery) stores the
//! full page-mapping table in flash as *translation pages*; the GTD is the
//! small SRAM directory saying where each translation page currently lives
//! (§III.D: "DLOOP consults the GTD to find the victim entry's
//! corresponding translation page on flash SSD … The corresponding GTD
//! entry is also updated to reflect the change").
//!
//! A translation page covers `page_size / 8` consecutive LPN mappings
//! (256 for a 2 KB page). The directory itself always fits in SRAM: one
//! slot per translation page.

use dloop_nand::{Geometry, Lpn, Ppn};

/// SRAM directory: virtual translation page number → flash location.
#[derive(Debug, Clone)]
pub struct Gtd {
    slots: Vec<Option<Ppn>>,
    mappings_per_tpage: u64,
}

impl Gtd {
    /// An empty directory for `geometry` — no translation page has been
    /// materialised yet.
    pub fn new(geometry: &Geometry) -> Self {
        Gtd {
            slots: vec![None; geometry.translation_page_count() as usize],
            mappings_per_tpage: geometry.mappings_per_translation_page(),
        }
    }

    /// Number of translation pages the LPN space needs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the directory is empty (zero-capacity device).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mappings per translation page.
    pub fn mappings_per_tpage(&self) -> u64 {
        self.mappings_per_tpage
    }

    /// The translation page covering `lpn`.
    pub fn tvpn_of(&self, lpn: Lpn) -> u64 {
        lpn / self.mappings_per_tpage
    }

    /// Where translation page `tvpn` lives, if it has been written.
    pub fn lookup(&self, tvpn: u64) -> Option<Ppn> {
        self.slots[tvpn as usize]
    }

    /// Record a new location for `tvpn`, returning the superseded one.
    pub fn update(&mut self, tvpn: u64, ppn: Ppn) -> Option<Ppn> {
        self.slots[tvpn as usize].replace(ppn)
    }

    /// Translation pages currently materialised on flash.
    pub fn materialised(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtd() -> Gtd {
        Gtd::new(&Geometry::paper_default())
    }

    #[test]
    fn sized_by_geometry() {
        let g = Geometry::paper_default();
        let d = gtd();
        assert_eq!(d.len() as u64, g.translation_page_count());
        assert_eq!(d.mappings_per_tpage(), 256);
    }

    #[test]
    fn tvpn_grouping() {
        let d = gtd();
        assert_eq!(d.tvpn_of(0), 0);
        assert_eq!(d.tvpn_of(255), 0);
        assert_eq!(d.tvpn_of(256), 1);
    }

    #[test]
    fn update_returns_old_location() {
        let mut d = gtd();
        assert_eq!(d.lookup(3), None);
        assert_eq!(d.update(3, 777), None);
        assert_eq!(d.lookup(3), Some(777));
        assert_eq!(d.update(3, 888), Some(777));
        assert_eq!(d.materialised(), 1);
    }
}

//! The demand-paged mapping engine shared by DLOOP and DFTL.
//!
//! Both schemes keep the authoritative page-mapping table in flash as
//! translation pages, cache hot entries in the [`CachedMappingTable`], and
//! find translation pages through the [`Gtd`]. The protocol (paper Fig. 6,
//! inherited from DFTL):
//!
//! 1. On a CMT miss, evict a segmented-LRU victim; if it is dirty, its
//!    translation page is read, updated, and re-written to a new flash
//!    location (batching every dirty sibling of the same translation page).
//! 2. The missing entry's translation page is then read and the entry
//!    loaded into the CMT.
//! 3. Host writes update the cached entry (dirty); GC moves update it in
//!    place without promotion and batch-rewrite affected translation pages.
//!
//! The *placement* of a freshly written translation page is the one thing
//! the schemes disagree on (DLOOP spreads by `tvpn % planes`, DFTL clusters
//! from plane 0), so it is supplied as a closure: `place(ctx, tvpn) -> Ppn`
//! must program a page somewhere, record it in the page directory, push the
//! corresponding [`FlashStep::Write`](crate::ftl::FlashStep::Write), and
//! return the new PPN.

use crate::cmt::CachedMappingTable;
use crate::ftl::FtlContext;
use crate::gtd::Gtd;
use dloop_nand::{Geometry, Lpn, Ppn};

/// Sentinel for "no physical page mapped".
pub const UNMAPPED: Ppn = Ppn::MAX;

/// Counters the engine maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemandCounters {
    /// Translation pages read from flash.
    pub translation_reads: u64,
    /// Translation pages written to flash.
    pub translation_writes: u64,
    /// CMT evictions that required a write-back.
    pub dirty_evictions: u64,
    /// GC mapping updates deferred into the pending buffer.
    pub deferred_updates: u64,
}

/// Authoritative mapping table + demand-caching traffic generator.
///
/// GC-driven mapping changes are not persisted one translation page per
/// victim: updates for uncached mappings accumulate in a small SRAM
/// *pending buffer* (per translation page) and are flushed in batch when
/// the buffer exceeds its budget or when the page is rewritten anyway
/// (dirty CMT eviction). This is the standard lazy-update optimisation of
/// demand-mapping FTLs — without it, schemes whose GC victims span many
/// translation pages pay one read-modify-write per page per victim and
/// the translation stream dwarfs the host stream.
#[derive(Debug, Clone)]
pub struct DemandMap {
    map: Vec<Ppn>,
    cmt: CachedMappingTable,
    gtd: Gtd,
    pending: std::collections::BTreeMap<u64, u32>,
    pending_total: u64,
    pub(crate) pending_budget: u64,
    /// Engine counters.
    pub counters: DemandCounters,
}

impl DemandMap {
    /// Build for a geometry with a CMT of `cmt_capacity` entries.
    pub fn new(geometry: &Geometry, cmt_capacity: usize) -> Self {
        DemandMap {
            map: vec![UNMAPPED; geometry.user_pages() as usize],
            cmt: CachedMappingTable::new(cmt_capacity, geometry.mappings_per_translation_page()),
            gtd: Gtd::new(geometry),
            pending: std::collections::BTreeMap::new(),
            pending_total: 0,
            pending_budget: cmt_capacity as u64,
            counters: DemandCounters::default(),
        }
    }

    /// The authoritative mapping for `lpn` (no traffic, no cache effects).
    pub fn mapped(&self, lpn: Lpn) -> Option<Ppn> {
        let p = self.map[lpn as usize];
        (p != UNMAPPED).then_some(p)
    }

    /// The translation page covering `lpn`.
    pub fn tvpn_of(&self, lpn: Lpn) -> u64 {
        self.gtd.tvpn_of(lpn)
    }

    /// CMT hit/miss statistics.
    pub fn cmt_stats(&self) -> (u64, u64) {
        self.cmt.hit_stats()
    }

    /// Shared view of the GTD (audits).
    pub fn gtd(&self) -> &Gtd {
        &self.gtd
    }

    /// Shared view of the CMT (audits).
    pub fn cmt(&self) -> &CachedMappingTable {
        &self.cmt
    }

    /// Whether the engine is in the *plane-pure* regime the sharded
    /// translation fast path requires: a fully resident CMT (inserts never
    /// evict, so no dirty write-backs), no materialised translation pages
    /// (misses generate no flash reads — pinned by the
    /// `miss_on_cold_unmapped_lpn_generates_no_reads` test), and no
    /// deferred GC updates awaiting a flush. In this regime every
    /// operation's flash effects stay on the data page's own plane.
    pub fn plane_pure(&self) -> bool {
        self.cmt.capacity() >= self.map.len()
            && self.gtd.materialised() == 0
            && self.pending_total == 0
    }

    /// A worker's fork for plane-sharded translation, authoritative only
    /// for the LPNs `owns` selects (the worker's home planes): the full
    /// mapping array is copied (a flat memcpy), but the cached-mapping
    /// table is rebuilt with owned entries only — the worker never looks
    /// up a foreign LPN, and carrying the full cache would multiply both
    /// the fork cost and the worker's random-access working set by the
    /// shard count. All counters start at zero, so the worker accumulates
    /// pure deltas for [`DemandMap::shard_absorb`].
    pub fn shard_fork(&self, owns: &dyn Fn(Lpn) -> bool) -> DemandMap {
        DemandMap {
            map: self.map.clone(),
            cmt: self.cmt.shard_fork_owned(owns),
            gtd: self.gtd.clone(),
            pending: self.pending.clone(),
            pending_total: self.pending_total,
            pending_budget: self.pending_budget,
            counters: DemandCounters::default(),
        }
    }

    /// Merge a [`DemandMap::shard_fork`] worker back: adopt authoritative
    /// mappings and cached entries for the LPNs `owns` selects (the
    /// worker's home planes), and add its hit/miss deltas. Only valid in
    /// the plane-pure regime, where the worker generated no translation
    /// traffic and cached-entry recency is never consulted.
    pub fn shard_absorb(&mut self, worker: &DemandMap, owns: &dyn Fn(Lpn) -> bool) {
        debug_assert_eq!(
            worker.counters,
            DemandCounters::default(),
            "plane-pure worker generated translation traffic"
        );
        debug_assert_eq!(worker.pending_total, 0);
        self.cmt.add_hit_stats(worker.cmt.hit_stats());
        for (lpn, ppn, dirty) in worker.cmt.iter_entries() {
            if owns(lpn) {
                self.map[lpn as usize] = worker.map[lpn as usize];
                self.cmt.adopt(lpn, ppn, dirty);
            }
        }
    }

    /// Make sure `lpn`'s mapping entry is cached, generating the miss
    /// traffic of paper Fig. 6 lines 4-14. Returns the mapping.
    pub fn ensure_cached(
        &mut self,
        lpn: Lpn,
        ctx: &mut FtlContext<'_>,
        place: &mut dyn FnMut(&mut FtlContext<'_>, u64) -> Ppn,
    ) -> Option<Ppn> {
        if self.cmt.lookup(lpn).is_some() {
            return self.mapped(lpn);
        }
        // Miss: insert (evicting if full), write back a dirty victim.
        let authoritative = self.map[lpn as usize];
        let evicted = self.cmt.insert(lpn, authoritative, false);
        if let Some(ev) = evicted {
            if ev.dirty {
                self.counters.dirty_evictions += 1;
                let victim_tvpn = self.gtd.tvpn_of(ev.lpn);
                self.rewrite_translation_page(victim_tvpn, ctx, place);
            }
        }
        // Load the requested entry's translation page (if materialised).
        let tvpn = self.gtd.tvpn_of(lpn);
        if let Some(tp) = self.gtd.lookup(tvpn) {
            ctx.read_page(tp);
            self.counters.translation_reads += 1;
        }
        self.mapped(lpn)
    }

    /// Commit a host write: `lpn` now lives at `new_ppn`. The entry must be
    /// cached (callers run [`Self::ensure_cached`] first).
    pub fn commit_write(&mut self, lpn: Lpn, new_ppn: Ppn) {
        self.map[lpn as usize] = new_ppn;
        self.cmt.update(lpn, new_ppn);
    }

    /// Record a GC data-page move: authoritative map changes; the cached
    /// entry (if any) is updated without promotion (persisted later by its
    /// dirty eviction), otherwise the update lands in the pending buffer
    /// for a batched flush.
    pub fn gc_move(&mut self, lpn: Lpn, new_ppn: Ppn) {
        self.map[lpn as usize] = new_ppn;
        if !self.cmt.update_in_place(lpn, new_ppn) {
            let tvpn = self.gtd.tvpn_of(lpn);
            *self.pending.entry(tvpn).or_insert(0) += 1;
            self.pending_total += 1;
            self.counters.deferred_updates += 1;
        }
    }

    /// Deferred (not yet persisted) mapping updates for `tvpn`.
    pub fn pending_count(&self, tvpn: u64) -> u32 {
        self.pending.get(&tvpn).copied().unwrap_or(0)
    }

    /// Total deferred updates across all translation pages.
    pub fn pending_total(&self) -> u64 {
        self.pending_total
    }

    /// Flush pending updates while the buffer exceeds its SRAM budget,
    /// largest translation page first (best amortisation per write). At
    /// most `max_flushes` pages are written per call: the budget is a soft
    /// SRAM bound, and an uncapped flush inside a GC pass could consume
    /// more free pages than the pass reclaims.
    pub fn flush_pending_over_budget(
        &mut self,
        ctx: &mut FtlContext<'_>,
        can_place: &mut dyn FnMut(&FtlContext<'_>, u64) -> bool,
        place: &mut dyn FnMut(&mut FtlContext<'_>, u64) -> Ppn,
    ) {
        let mut flushes = 0;
        while self.pending_total > self.pending_budget && flushes < 8 {
            flushes += 1;
            // Deterministic: highest count wins, lowest tvpn breaks ties —
            // among pages whose destination can absorb a write right now
            // (`can_place` keeps the flush away from planes that are
            // themselves waiting for GC).
            let Some((&tvpn, _)) = self
                .pending
                .iter()
                .filter(|(&tvpn, _)| can_place(ctx, tvpn))
                .max_by_key(|(&tvpn, &c)| (c, std::cmp::Reverse(tvpn)))
            else {
                break;
            };
            self.rewrite_translation_page(tvpn, ctx, place);
        }
    }

    /// Record a GC move of translation page `tvpn` itself to `new_ppn`.
    pub fn gc_move_translation(&mut self, tvpn: u64, new_ppn: Ppn) {
        let old = self.gtd.update(tvpn, new_ppn);
        debug_assert!(
            old.is_some(),
            "GC moved a translation page the GTD never placed"
        );
    }

    /// Read-modify-write translation page `tvpn`: read the current copy
    /// (when one exists), write an up-to-date copy via `place`, invalidate
    /// the old copy, update the GTD, and clean every dirty CMT sibling
    /// (the batch update). Generates the corresponding chain steps.
    pub fn rewrite_translation_page(
        &mut self,
        tvpn: u64,
        ctx: &mut FtlContext<'_>,
        place: &mut dyn FnMut(&mut FtlContext<'_>, u64) -> Ppn,
    ) {
        let old = self.gtd.lookup(tvpn);
        if let Some(old_ppn) = old {
            ctx.read_page(old_ppn);
            self.counters.translation_reads += 1;
        }
        let new_ppn = place(ctx, tvpn);
        self.counters.translation_writes += 1;
        if let Some(old_ppn) = old {
            ctx.flash
                .invalidate(old_ppn)
                .expect("stale GTD entry: old translation page not valid");
            ctx.dir.clear(old_ppn);
        }
        self.gtd.update(tvpn, new_ppn);
        // All dirty siblings and pending GC updates are persisted by this
        // write.
        let _ = self.cmt.flush_translation_page(tvpn);
        if let Some(c) = self.pending.remove(&tvpn) {
            self.pending_total -= c as u64;
        }
    }

    /// Whether translation page `tvpn` currently lives at `ppn` (GC asks
    /// before moving a translation page).
    pub fn translation_at(&self, tvpn: u64, ppn: Ppn) -> bool {
        self.gtd.lookup(tvpn) == Some(ppn)
    }

    /// Iterate every mapped (lpn, ppn) pair — O(LPN space), audits only.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (Lpn, Ppn)> + '_ {
        self.map
            .iter()
            .enumerate()
            .filter(|(_, &p)| p != UNMAPPED)
            .map(|(l, &p)| (l as Lpn, p))
    }

    /// Number of mapped LPNs — O(LPN space), audits only.
    pub fn mapped_count(&self) -> u64 {
        self.map.iter().filter(|&&p| p != UNMAPPED).count() as u64
    }

    /// Audit: cached entries agree with the authoritative map; GTD entries
    /// are internally consistent.
    pub fn check(&self) -> Result<(), String> {
        self.cmt.check()?;
        // Every cached entry must equal the authoritative mapping (we keep
        // them in lock-step; dirtiness only describes the on-flash copy).
        // Sampling the dirty set suffices for the cheap audit; integration
        // tests do full scans.
        for tvpn in self.cmt.dirty_tvpns() {
            if tvpn as usize >= self.gtd.len() {
                return Err(format!("dirty tvpn {tvpn} out of GTD range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::PageDirectory;
    use crate::ftl::{FlashStep, OpChain};
    use dloop_nand::{BlockAddr, FlashState};

    /// Harness: a tiny flash plus a trivial plane-0 sequential placer.
    struct Rig {
        flash: FlashState,
        dir: PageDirectory,
        chain: OpChain,
        gc_chain: OpChain,
        scan_chain: OpChain,
        dm: DemandMap,
        active: Option<BlockAddr>,
    }

    impl Rig {
        fn new(cmt_cap: usize) -> Self {
            let g = dloop_nand::Geometry::build_with_hierarchy(1, 2, 5.0, 2, 1, 1, 1, 2);
            Rig {
                flash: FlashState::new(g.clone()),
                dir: PageDirectory::new(&g),
                chain: OpChain::new(),
                gc_chain: OpChain::new(),
                scan_chain: OpChain::new(),
                dm: DemandMap::new(&g, cmt_cap),
                active: None,
            }
        }

        /// Run `f` with a context and the standard test placer.
        fn run<R>(
            &mut self,
            f: impl FnOnce(
                &mut DemandMap,
                &mut FtlContext<'_>,
                &mut dyn FnMut(&mut FtlContext<'_>, u64) -> Ppn,
            ) -> R,
        ) -> R {
            let mut ctx = FtlContext {
                flash: &mut self.flash,
                dir: &mut self.dir,
                host_chain: &mut self.chain,
                gc_chain: &mut self.gc_chain,
                scan_chain: &mut self.scan_chain,
                phase: crate::ftl::Phase::Host,
            };
            let active = &mut self.active;
            let mut place = move |ctx: &mut FtlContext<'_>, tvpn: u64| -> Ppn {
                let need_new = match *active {
                    None => true,
                    Some(b) => ctx.flash.plane(b.plane).block(b.index).is_full(),
                };
                if need_new {
                    let idx = ctx.flash.allocate_free_block(0).unwrap();
                    *active = Some(BlockAddr {
                        plane: 0,
                        index: idx,
                    });
                }
                let addr = ctx.flash.program_next(active.unwrap()).unwrap();
                let ppn = ctx.flash.geometry().ppn_of(addr);
                ctx.dir.set_translation(ppn, tvpn);
                ctx.push(FlashStep::Write { plane: 0 });
                ppn
            };
            f(&mut self.dm, &mut ctx, &mut place)
        }
    }

    #[test]
    fn miss_on_cold_unmapped_lpn_generates_no_reads() {
        let mut rig = Rig::new(4);
        let got = rig.run(|dm, ctx, place| dm.ensure_cached(7, ctx, place));
        assert_eq!(got, None);
        assert!(rig.chain.is_empty());
        assert_eq!(rig.dm.counters.translation_reads, 0);
    }

    #[test]
    fn write_then_reload_generates_read() {
        let mut rig = Rig::new(4);
        rig.run(|dm, ctx, place| {
            dm.ensure_cached(7, ctx, place);
            dm.commit_write(7, 42);
            // Force the dirty entry out by rewriting its page directly.
            dm.rewrite_translation_page(dm.tvpn_of(7), ctx, place);
        });
        assert_eq!(rig.dm.counters.translation_writes, 1);
        assert_eq!(rig.dm.mapped(7), Some(42));
        // Drop it from the CMT and re-ensure: the materialised page is read.
        rig.dm.cmt.remove(7);
        rig.chain.clear();
        rig.run(|dm, ctx, place| dm.ensure_cached(7, ctx, place));
        assert_eq!(rig.dm.counters.translation_reads, 1);
        assert_eq!(rig.chain.len(), 1);
    }

    #[test]
    fn dirty_eviction_writes_back_batched() {
        let mut rig = Rig::new(2);
        rig.run(|dm, ctx, place| {
            // Fill the CMT with two dirty entries on the same tvpn (0).
            dm.ensure_cached(1, ctx, place);
            dm.commit_write(1, 100);
            dm.ensure_cached(2, ctx, place);
            dm.commit_write(2, 200);
            // Third insert evicts lpn 1 (probation LRU), which is dirty ->
            // one translation-page write that also cleans lpn 2.
            dm.ensure_cached(3, ctx, place);
        });
        assert_eq!(rig.dm.counters.dirty_evictions, 1);
        assert_eq!(rig.dm.counters.translation_writes, 1);
        assert!(
            rig.dm.cmt.dirty_tvpns().is_empty(),
            "siblings must be clean"
        );
    }

    #[test]
    fn rewrite_invalidates_old_copy() {
        let mut rig = Rig::new(4);
        rig.run(|dm, ctx, place| {
            dm.ensure_cached(1, ctx, place);
            dm.commit_write(1, 5);
            dm.rewrite_translation_page(0, ctx, place);
            dm.rewrite_translation_page(0, ctx, place);
        });
        // Two writes, second one read the first.
        assert_eq!(rig.dm.counters.translation_writes, 2);
        assert_eq!(rig.dm.counters.translation_reads, 1);
        // Exactly one valid translation page remains.
        assert_eq!(rig.flash.total_valid_pages(), 1);
        rig.flash.check().unwrap();
    }

    #[test]
    fn gc_move_of_uncached_mapping_defers() {
        let mut rig = Rig::new(4);
        rig.run(|dm, ctx, place| {
            dm.ensure_cached(1, ctx, place);
            dm.commit_write(1, 5);
            // Persist and drop from the CMT so the mapping is uncached.
            dm.rewrite_translation_page(0, ctx, place);
        });
        rig.dm.cmt.remove(1);
        rig.dm.gc_move(1, 6);
        assert_eq!(rig.dm.mapped(1), Some(6));
        assert_eq!(rig.dm.pending_count(0), 1);
        assert_eq!(rig.dm.pending_total(), 1);
        assert_eq!(rig.dm.counters.deferred_updates, 1);
        // A rewrite clears the pending debt.
        rig.run(|dm, ctx, place| dm.rewrite_translation_page(0, ctx, place));
        assert_eq!(rig.dm.pending_total(), 0);
    }

    #[test]
    fn flush_respects_budget_and_filter() {
        let mut rig = Rig::new(4);
        // Shrink the budget for the test.
        rig.dm.pending_budget = 2;
        rig.run(|dm, ctx, place| {
            // Materialise three translation pages.
            for lpn in [0u64, 256, 512] {
                dm.ensure_cached(lpn, ctx, place);
                dm.commit_write(lpn, lpn + 1);
                dm.rewrite_translation_page(dm.tvpn_of(lpn), ctx, place);
            }
        });
        for lpn in [0u64, 256, 512] {
            rig.dm.cmt.remove(lpn);
        }
        // Defer updates: tvpn 1 gets two, tvpns 0 and 2 one each.
        rig.dm.gc_move(0, 100);
        rig.dm.gc_move(256, 101);
        rig.dm.gc_move(257, 102);
        rig.dm.gc_move(512, 103);
        assert_eq!(rig.dm.pending_total(), 4);

        // Flush with a filter that forbids tvpn 1: the flush must drain
        // other pages and stop (never violating the filter).
        rig.run(|dm, ctx, place| {
            let mut deny_one = |_: &FtlContext<'_>, tvpn: u64| tvpn != 1;
            dm.flush_pending_over_budget(ctx, &mut deny_one, place);
        });
        assert_eq!(rig.dm.pending_count(1), 2, "filtered page left alone");
        assert!(rig.dm.pending_total() <= 2 || rig.dm.pending_count(1) == 2);

        // Unfiltered flush drains to within budget (largest first).
        rig.run(|dm, ctx, place| {
            let mut allow = |_: &FtlContext<'_>, _: u64| true;
            dm.flush_pending_over_budget(ctx, &mut allow, place);
        });
        assert!(rig.dm.pending_total() <= 2);
    }

    #[test]
    fn gc_move_updates_map_without_promotion() {
        let mut rig = Rig::new(4);
        rig.run(|dm, ctx, place| {
            dm.ensure_cached(9, ctx, place);
            dm.commit_write(9, 50);
        });
        rig.dm.gc_move(9, 51);
        assert_eq!(rig.dm.mapped(9), Some(51));
        assert_eq!(rig.dm.cmt.peek(9), Some((51, true)));
        rig.dm.check().unwrap();
    }
}

//! # dloop-ftl-kit
//!
//! The FTL framework shared by the DLOOP reproduction's translation layers:
//!
//! * [`request`] — page-aligned host request model and splitting.
//! * [`ftl`] — the [`ftl::Ftl`] trait and the timed [`ftl::OpChain`]
//!   abstraction connecting FTL decisions to hardware timing.
//! * [`cmt`] — the segmented-LRU Cached Mapping Table (§III.D).
//! * [`demand`] — the demand-paged mapping engine (CMT+GTD protocol).
//! * [`gtd`] — the Global Translation Directory.
//! * [`dir`] — the reverse page directory (ppn → owner) used by GC.
//! * [`device`] — the SSD controller: trace replay, dispatch, audits.
//! * `shard` (internal) — the parallel channel-group replay engine
//!   behind [`device::RunConfig::shards`].
//! * [`sched`] — pluggable QoS policies for the NCQ reorder window.
//! * [`metrics`] — [`metrics::RunReport`]: mean response time, SDRPP, WAF…
//! * [`config`] — Table-I parameters as a value ([`config::SsdConfig`]).

pub mod cmt;
pub mod config;
pub mod demand;
pub mod device;
pub mod dir;
pub mod ftl;
pub mod gtd;
pub mod metrics;
pub mod request;
pub mod sched;
mod shard;

pub use shard::host_parallelism;

pub use cmt::{CachedMappingTable, Evicted};
pub use config::{FtlKind, SsdConfig};
pub use demand::{DemandCounters, DemandMap, UNMAPPED};
pub use device::{ReplayMode, RunConfig, SsdDevice, DEFAULT_NCQ_DEPTH};
pub use dir::{PageDirectory, PageOwner};
pub use ftl::{FlashStep, Ftl, FtlContext, FtlCounters, OpChain};
pub use gtd::Gtd;
pub use metrics::RunReport;
pub use request::{HostOp, HostRequest, TenantId};
pub use sched::{
    DeadlinePolicy, FairSharePolicy, NcqPolicy, PriorityPolicy, QosCandidate, QosPolicy, QosSpec,
    WindowFifoPolicy,
};

//! Host request model.
//!
//! The host issues byte-addressed requests; the controller aligns them on
//! page boundaries and splits them into single-page operations (§III.B:
//! "DLOOP always aligns each request on page boundary, the request will be
//! divided into four individual one-page write requests … the last request
//! is padded with zeros"). All FTLs in this workspace receive page-level
//! operations.

use dloop_nand::Lpn;
use dloop_simkit::{SimDuration, SimTime};

/// Direction of a host request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostOp {
    /// Read data.
    Read,
    /// Write (or update) data.
    Write,
}

/// Host stream / tenant identifier.
///
/// A production device multiplexes many host streams (NVMe submission
/// queues, cgroups, virtual machines); the QoS scheduling policies
/// ([`crate::sched`]) arbitrate between them inside the NCQ reorder
/// window. Tenant `0` is the conventional "untagged" stream — a trace
/// whose requests all carry tenant `0` behaves exactly like a
/// single-stream trace.
pub type TenantId = u16;

/// A page-aligned host request.
///
/// Beyond the classic trace fields (arrival, address, size, direction) a
/// request carries two QoS tags consumed only by the scheduling policies
/// in [`crate::sched`]: the [`tenant`](HostRequest::tenant) stream it
/// belongs to and an optional absolute completion
/// [`deadline`](HostRequest::deadline). Both default to the neutral
/// values (`0`, `None`), so `..HostRequest::default()` keeps untagged
/// construction terse and replay behaviour identical to the pre-QoS
/// request model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostRequest {
    /// Arrival time at the flash controller.
    pub arrival: SimTime,
    /// First logical page touched.
    pub lpn: Lpn,
    /// Number of consecutive pages touched (≥ 1).
    pub pages: u32,
    /// Read or write.
    pub op: HostOp,
    /// The host stream this request belongs to (`0` = untagged).
    pub tenant: TenantId,
    /// Absolute completion deadline, if the stream has one. Only the
    /// earliest-deadline-first policy reads it; `None` means best-effort
    /// and sorts after every finite deadline.
    pub deadline: Option<SimTime>,
}

impl Default for HostRequest {
    /// The neutral "blank" request: a zero-page untagged read at time
    /// zero. Exists so literals can splat the QoS tags —
    /// `HostRequest { arrival, lpn, pages, op, ..Default::default() }`.
    fn default() -> Self {
        HostRequest {
            arrival: SimTime::ZERO,
            lpn: 0,
            pages: 0,
            op: HostOp::Read,
            tenant: 0,
            deadline: None,
        }
    }
}

impl HostRequest {
    /// Build a request from byte-level trace fields, aligning to pages.
    ///
    /// `offset_bytes` is the starting byte address, `len_bytes` the request
    /// size (zero-length requests become one page — a bare command still
    /// touches the device). A request covering any part of a page touches
    /// the whole page.
    pub fn from_bytes(
        arrival: SimTime,
        offset_bytes: u64,
        len_bytes: u64,
        op: HostOp,
        page_size: u32,
    ) -> Self {
        let ps = page_size as u64;
        let first = offset_bytes / ps;
        let last = if len_bytes == 0 {
            first
        } else {
            (offset_bytes + len_bytes - 1) / ps
        };
        HostRequest {
            arrival,
            lpn: first,
            pages: (last - first + 1) as u32,
            op,
            ..HostRequest::default()
        }
    }

    /// Tag this request with a tenant/stream id (builder style).
    pub fn with_tenant(self, tenant: TenantId) -> Self {
        HostRequest { tenant, ..self }
    }

    /// Give this request an absolute completion deadline `rel` after its
    /// arrival (builder style).
    pub fn with_deadline_after(self, rel: SimDuration) -> Self {
        HostRequest {
            deadline: Some(self.arrival + rel),
            ..self
        }
    }

    /// Iterate the single-page operations this request splits into.
    pub fn page_ops(&self) -> impl Iterator<Item = Lpn> + '_ {
        (0..self.pages as u64).map(move |i| self.lpn + i)
    }

    /// Wrap all touched LPNs into `[0, lpn_space)` — traces address larger
    /// devices than some simulated capacities, so the device folds them.
    pub fn wrapped(&self, lpn_space: u64) -> HostRequest {
        debug_assert!(lpn_space > 0);
        HostRequest {
            lpn: self.lpn % lpn_space,
            ..*self
        }
    }

    /// Iterate the single-page operations with every LPN folded into
    /// `[0, lpn_space)`. This is what the replay drivers actually consume:
    /// folding only the base LPN ([`HostRequest::wrapped`]) is not enough,
    /// because `lpn + i` can cross the space boundary mid-request, so each
    /// page op needs its own fold.
    pub fn wrapped_page_ops(&self, lpn_space: u64) -> impl Iterator<Item = Lpn> + '_ {
        debug_assert!(lpn_space > 0);
        (0..self.pages as u64).map(move |i| (self.lpn + i) % lpn_space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_alignment_splits_to_pages() {
        // 12 KB write starting at byte 0, 2 KB pages -> LPNs 0..=5.
        let r = HostRequest::from_bytes(SimTime::ZERO, 0, 12 * 1024, HostOp::Write, 2048);
        assert_eq!(r.lpn, 0);
        assert_eq!(r.pages, 6);
        assert_eq!(r.page_ops().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn unaligned_request_touches_straddled_pages() {
        // 1 byte at offset 2047 touches only page 0; 2 bytes touch pages 0-1.
        let a = HostRequest::from_bytes(SimTime::ZERO, 2047, 1, HostOp::Read, 2048);
        assert_eq!((a.lpn, a.pages), (0, 1));
        let b = HostRequest::from_bytes(SimTime::ZERO, 2047, 2, HostOp::Read, 2048);
        assert_eq!((b.lpn, b.pages), (0, 2));
    }

    #[test]
    fn zero_length_is_one_page() {
        let r = HostRequest::from_bytes(SimTime::ZERO, 4096, 0, HostOp::Read, 2048);
        assert_eq!((r.lpn, r.pages), (2, 1));
    }

    #[test]
    fn mid_page_start() {
        // 4 KB at offset 3 KB with 2 KB pages: touches pages 1,2,3.
        let r = HostRequest::from_bytes(SimTime::ZERO, 3 * 1024, 4 * 1024, HostOp::Write, 2048);
        assert_eq!((r.lpn, r.pages), (1, 3));
    }

    #[test]
    fn wrapped_page_ops_fold_each_page() {
        // Base LPN 998 with 4 pages in a 1000-page space: the request
        // crosses the boundary mid-stream, so per-page folding matters.
        let r = HostRequest {
            arrival: SimTime::ZERO,
            lpn: 998,
            pages: 4,
            op: HostOp::Write,
            ..HostRequest::default()
        };
        assert_eq!(
            r.wrapped_page_ops(1000).collect::<Vec<_>>(),
            [998, 999, 0, 1]
        );
        // Folding the base first makes no difference.
        assert_eq!(
            r.wrapped(1000).wrapped_page_ops(1000).collect::<Vec<_>>(),
            [998, 999, 0, 1]
        );
    }

    #[test]
    fn wrapping_folds_lpn() {
        let r = HostRequest {
            arrival: SimTime::ZERO,
            lpn: 1_000_005,
            pages: 2,
            op: HostOp::Write,
            ..HostRequest::default()
        };
        let w = r.wrapped(1000);
        assert_eq!(w.lpn, 5);
        assert_eq!(w.pages, 2);
    }

    #[test]
    fn qos_tags_default_to_neutral_and_survive_wrapping() {
        let r = HostRequest::from_bytes(SimTime::ZERO, 0, 4096, HostOp::Write, 2048);
        assert_eq!(r.tenant, 0);
        assert_eq!(r.deadline, None);
        let tagged = r
            .with_tenant(7)
            .with_deadline_after(SimDuration::from_micros(500));
        assert_eq!(tagged.tenant, 7);
        assert_eq!(
            tagged.deadline,
            Some(SimTime::ZERO + SimDuration::from_micros(500))
        );
        // Address folding keeps the QoS tags intact.
        let w = tagged.wrapped(1);
        assert_eq!((w.tenant, w.deadline), (tagged.tenant, tagged.deadline));
    }
}

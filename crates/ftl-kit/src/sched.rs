//! Pluggable QoS scheduling policies for the NCQ reorder window.
//!
//! [`ReplayMode::Ncq`](crate::device::ReplayMode::Ncq) (PR 5) reorders the
//! oldest `queue_depth` pending page operations through per-plane readiness
//! lanes, treating every operation equally. Real devices multiplex many
//! host streams with different needs — latency-sensitive reads, deadline
//! IO, throughput tenants — so this module makes the *selection rule*
//! inside that window pluggable while keeping the window mechanics (lanes,
//! horizon, wake events) fixed in the driver.
//!
//! # How a policy plugs in
//!
//! The unified driver ([`SsdDevice::run`](crate::device::SsdDevice::run))
//! keeps one readiness lane per plane. A [`QosPolicy`] influences exactly
//! two decisions, through exactly two pure functions:
//!
//! 1. **Within-lane order** — [`QosPolicy::lane_key`] assigns each enqueued
//!    operation a `u64` key; the lane is kept sorted by `(lane_key, seq)`.
//!    The default key is the arrival sequence number `seq`, i.e. FIFO; the
//!    earliest-deadline-first policy sorts by deadline instead, which is
//!    what guarantees two same-plane deadlines are never inverted.
//! 2. **Across-lane choice** — among the lanes' first in-window candidates
//!    whose resources are idle, [`QosPolicy::rank`] returns a `(u64, u64)`
//!    prefix key; lower wins. The driver always appends the NCQ key
//!    `(plane_ready_at, seq)` as the universal tie-break, so any policy
//!    that ranks all candidates equally — like [`NcqPolicy`] — degenerates
//!    to plain NCQ *bit-identically* (property-tested in
//!    `tests/replay_modes.rs`).
//!
//! Two optional hooks carry state: [`QosPolicy::tick`] runs once per
//! scheduler wake (before any selection), and [`QosPolicy::on_issue`] runs
//! after each selected operation (the fair-share policy charges its token
//! bucket there).
//!
//! # Determinism rules
//!
//! Every policy decision must be a pure function of `(now, candidate,
//! policy state)`, and policy state may change only inside `tick` /
//! `on_issue`, both of which the driver calls at deterministic points.
//! Policies must not read wall-clock time, random sources, or iteration
//! order of unordered containers. Under these rules a replay is a pure
//! function of `(trace, config, mode)` — rerunning it reproduces every
//! report field bit-for-bit, which is what the determinism property tests
//! pin.
//!
//! # Choosing a policy
//!
//! | Policy | Rank key (before tie-break) | Use it for |
//! |---|---|---|
//! | [`NcqPolicy`] | constant | plain NCQ; the QoS no-op |
//! | [`WindowFifoPolicy`] | `seq` | the naive in-order bound (claims C11/C12) |
//! | [`PriorityPolicy`] | reads before writes | read-latency-sensitive mixes |
//! | [`DeadlinePolicy`] | earliest absolute deadline | per-request deadlines (EDF) |
//! | [`FairSharePolicy`] | token-bucket deficit | per-tenant fair sharing |

use crate::request::{HostOp, TenantId};
use dloop_simkit::SimTime;

/// A page operation offered to a [`QosPolicy`] for ranking or lane
/// placement: the scheduling-relevant fields of the queued op, copied out
/// so policies never touch driver internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosCandidate {
    /// Global arrival sequence number (ties and FIFO order).
    pub seq: u64,
    /// The host stream the operation belongs to (`0` = untagged).
    pub tenant: TenantId,
    /// Read or write.
    pub op: HostOp,
    /// Absolute completion deadline, if the request carries one.
    pub deadline: Option<SimTime>,
    /// Trace arrival time of the parent request.
    pub arrival: SimTime,
    /// Primary plane of the operation's first flash step.
    pub plane: u32,
}

/// A scheduling policy for the NCQ reorder window. See the
/// [module docs](self) for the contract; implement [`QosPolicy::rank`]
/// (and optionally the other hooks) to define a policy.
///
/// All hooks take `&mut self` so stateful policies (token buckets) work,
/// but `rank` and `lane_key` must behave as pure functions of their
/// arguments and current state.
pub trait QosPolicy {
    /// Short stable name for reports and CSV labels.
    fn name(&self) -> &'static str;

    /// Rank an issuable candidate; lower sorts first. The driver appends
    /// `(plane_ready_at, seq)` after this prefix, so returning a constant
    /// reproduces plain NCQ exactly.
    fn rank(&mut self, now: SimTime, c: &QosCandidate) -> (u64, u64);

    /// Within-lane sort key, assigned once when the operation is enqueued;
    /// lanes are kept sorted by `(lane_key, seq)`. The default (FIFO)
    /// returns `seq`.
    fn lane_key(&mut self, c: &QosCandidate) -> u64 {
        c.seq
    }

    /// Called once per scheduler wake at simulated time `now`, before any
    /// candidate is ranked.
    fn tick(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Called after the driver issues `c` at `now` (charge accounting
    /// here).
    fn on_issue(&mut self, now: SimTime, c: &QosCandidate) {
        let _ = (now, c);
    }
}

/// The QoS no-op: ranks every candidate equally, so the driver's appended
/// `(plane_ready_at, seq)` tie-break *is* the whole key — bit-identical to
/// [`ReplayMode::Ncq`](crate::device::ReplayMode::Ncq).
#[derive(Debug, Clone, Copy, Default)]
pub struct NcqPolicy;

impl QosPolicy for NcqPolicy {
    fn name(&self) -> &'static str {
        "ncq"
    }

    fn rank(&mut self, _now: SimTime, _c: &QosCandidate) -> (u64, u64) {
        (0, 0)
    }
}

/// Strict arrival order inside the window: always issue the oldest
/// issuable operation, never exploiting an idle plane further down the
/// queue. This is the *naive bound* the QoS claims (C12) compare against —
/// the window still skips blocked heads, but it never reorders for
/// plane idleness.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowFifoPolicy;

impl QosPolicy for WindowFifoPolicy {
    fn name(&self) -> &'static str {
        "window-fifo"
    }

    fn rank(&mut self, _now: SimTime, c: &QosCandidate) -> (u64, u64) {
        (c.seq, 0)
    }
}

/// Priority classes: reads overtake writes inside the window (a read's
/// latency is host-visible; a write's is absorbed by buffering), ties by
/// the plain NCQ key.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityPolicy;

impl QosPolicy for PriorityPolicy {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn rank(&mut self, _now: SimTime, c: &QosCandidate) -> (u64, u64) {
        let class = match c.op {
            HostOp::Read => 0,
            HostOp::Write => 1,
        };
        (class, 0)
    }
}

/// Earliest-deadline-first: candidates with earlier absolute deadlines
/// rank first; best-effort operations (no deadline) sort after every
/// finite deadline. Lanes are kept sorted by deadline too
/// ([`QosPolicy::lane_key`]), so two operations on the *same* plane are
/// also issued in deadline order — the EDF invariant pinned in
/// `tests/replay_modes.rs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlinePolicy;

/// Encode a deadline as a totally ordered `u64` (`None` = best-effort =
/// after everything).
fn deadline_key(d: Option<SimTime>) -> u64 {
    d.map_or(u64::MAX, |t| t.as_nanos())
}

impl QosPolicy for DeadlinePolicy {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn rank(&mut self, _now: SimTime, c: &QosCandidate) -> (u64, u64) {
        (deadline_key(c.deadline), 0)
    }

    fn lane_key(&mut self, c: &QosCandidate) -> u64 {
        deadline_key(c.deadline)
    }
}

/// One token = this many bucket units. With this scale, a refill rate of
/// `r` tokens per millisecond is exactly `r` units per nanosecond, so the
/// lazy refill (`Δns × r`) is integer-exact — no rounding, no drift, and
/// the conservation invariant below holds with `==`, not `≈`.
pub const TOKEN_UNITS: u64 = 1_000_000;

/// Per-tenant token-bucket state: balance plus the counters that make the
/// conservation law checkable from outside.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Current balance in units; negative when the work-conserving
    /// fallback issued on an empty bucket.
    balance: i64,
    /// Last lazy-refill time.
    refilled_at: SimTime,
    /// Total units ever added by refill (after the burst cap).
    refilled: u64,
    /// Operations issued for this tenant.
    issued: u64,
    /// Relative refill weight.
    weight: u32,
}

/// Per-tenant fair sharing by deterministic token buckets.
///
/// Every tenant owns a bucket that refills at `weight × refill_per_ms`
/// tokens per simulated millisecond (lazily, on inspection) up to a cap of
/// `burst` tokens, and is charged one token per issued operation. Ranking
/// is two-tier:
///
/// * tier 0 — tenants holding at least one token; among them, the tenant
///   with the *largest* balance (the most under-served) goes first;
/// * tier 1 — tenants that have overdrawn their bucket. The scheduler is
///   work-conserving: when no tier-0 candidate is issuable, a tier-1
///   operation runs anyway (idle planes are never parked to punish a
///   tenant), driving its balance negative until refill pays the debt off.
///
/// All arithmetic is integer (see [`TOKEN_UNITS`]), so the **conservation
/// law** holds exactly for every tenant:
/// `initial + refilled − issued × TOKEN_UNITS == balance`
/// (checkable via the public accessors; pinned in
/// `tests/replay_modes.rs`).
///
/// Buckets are created on first sight of a tenant, full (`burst` tokens)
/// with weight 1 unless pre-registered via [`FairSharePolicy::with_weight`].
#[derive(Debug, Clone)]
pub struct FairSharePolicy {
    /// Tokens per millisecond per unit of weight.
    refill_per_ms: u32,
    /// Bucket capacity in tokens.
    burst: u32,
    /// Buckets, sorted by tenant id (binary-searched; deterministic).
    buckets: Vec<(TenantId, Bucket)>,
}

impl FairSharePolicy {
    /// A fair-share policy refilling `refill_per_ms` tokens per simulated
    /// millisecond (per unit of weight) into buckets capped at `burst`
    /// tokens. Both must be ≥ 1.
    pub fn new(refill_per_ms: u32, burst: u32) -> Self {
        assert!(refill_per_ms >= 1, "refill rate must be at least 1");
        assert!(burst >= 1, "burst must be at least 1");
        FairSharePolicy {
            refill_per_ms,
            burst,
            buckets: Vec::new(),
        }
    }

    /// Pre-register `tenant` with a relative refill `weight` (builder
    /// style). Unregistered tenants get weight 1 on first sight.
    pub fn with_weight(mut self, tenant: TenantId, weight: u32) -> Self {
        assert!(weight >= 1, "weight must be at least 1");
        let full = (self.burst as i64) * TOKEN_UNITS as i64;
        match self.buckets.binary_search_by_key(&tenant, |b| b.0) {
            Ok(i) => self.buckets[i].1.weight = weight,
            Err(i) => self.buckets.insert(
                i,
                (
                    tenant,
                    Bucket {
                        balance: full,
                        refilled_at: SimTime::ZERO,
                        refilled: 0,
                        issued: 0,
                        weight,
                    },
                ),
            ),
        }
        self
    }

    /// The bucket index for `tenant`, creating a full bucket (weight 1) on
    /// first sight at time `now`.
    fn bucket_index(&mut self, tenant: TenantId, now: SimTime) -> usize {
        match self.buckets.binary_search_by_key(&tenant, |b| b.0) {
            Ok(i) => i,
            Err(i) => {
                self.buckets.insert(
                    i,
                    (
                        tenant,
                        Bucket {
                            balance: (self.burst as i64) * TOKEN_UNITS as i64,
                            refilled_at: now,
                            refilled: 0,
                            issued: 0,
                            weight: 1,
                        },
                    ),
                );
                i
            }
        }
    }

    /// Lazily refill one bucket up to `now`; integer-exact.
    fn refill(refill_per_ms: u32, burst: u32, bucket: &mut Bucket, now: SimTime) {
        let delta_ns = now.as_nanos().saturating_sub(bucket.refilled_at.as_nanos());
        bucket.refilled_at = now;
        if delta_ns == 0 {
            return;
        }
        // `refill_per_ms` tokens/ms × TOKEN_UNITS units/token ÷ 1e6 ns/ms
        // = `refill_per_ms` units per nanosecond, times the weight.
        let earned = (delta_ns as i128) * (refill_per_ms as i128) * (bucket.weight as i128);
        let cap = (burst as i128) * TOKEN_UNITS as i128;
        let added = earned.min(cap - bucket.balance as i128).max(0);
        bucket.balance += added as i64;
        bucket.refilled += added as u64;
    }

    /// Current balance of `tenant`'s bucket in units (negative = overdrawn
    /// by the work-conserving fallback); `None` if the tenant was never
    /// seen. Not refreshed to any later time — this is the balance as of
    /// the bucket's last interaction.
    pub fn balance(&self, tenant: TenantId) -> Option<i64> {
        self.buckets
            .binary_search_by_key(&tenant, |b| b.0)
            .ok()
            .map(|i| self.buckets[i].1.balance)
    }

    /// Total units ever refilled into `tenant`'s bucket.
    pub fn refilled(&self, tenant: TenantId) -> Option<u64> {
        self.buckets
            .binary_search_by_key(&tenant, |b| b.0)
            .ok()
            .map(|i| self.buckets[i].1.refilled)
    }

    /// Operations issued for `tenant` (each charged one token).
    pub fn issued(&self, tenant: TenantId) -> Option<u64> {
        self.buckets
            .binary_search_by_key(&tenant, |b| b.0)
            .ok()
            .map(|i| self.buckets[i].1.issued)
    }

    /// Tenant ids with a bucket, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.buckets.iter().map(|b| b.0).collect()
    }

    /// Bucket capacity in units (`burst × TOKEN_UNITS`) — the initial
    /// balance of every bucket, and the term `initial` in the conservation
    /// law.
    pub fn initial_units(&self) -> i64 {
        (self.burst as i64) * TOKEN_UNITS as i64
    }
}

impl QosPolicy for FairSharePolicy {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn rank(&mut self, now: SimTime, c: &QosCandidate) -> (u64, u64) {
        let (rate, burst) = (self.refill_per_ms, self.burst);
        let i = self.bucket_index(c.tenant, now);
        Self::refill(rate, burst, &mut self.buckets[i].1, now);
        let balance = self.buckets[i].1.balance;
        let tier = if balance >= TOKEN_UNITS as i64 { 0 } else { 1 };
        // Within a tier, larger balance (more under-served) sorts first:
        // map balance ∈ [−∞, cap] monotonically *decreasing* onto u64.
        let deficit = ((burst as i128) * TOKEN_UNITS as i128 - balance as i128).max(0) as u64;
        (tier, deficit)
    }

    fn on_issue(&mut self, now: SimTime, c: &QosCandidate) {
        let (rate, burst) = (self.refill_per_ms, self.burst);
        let i = self.bucket_index(c.tenant, now);
        Self::refill(rate, burst, &mut self.buckets[i].1, now);
        self.buckets[i].1.balance -= TOKEN_UNITS as i64;
        self.buckets[i].1.issued += 1;
    }
}

/// A `Copy` description of a QoS policy, embeddable in
/// [`ReplayMode::Qos`](crate::device::ReplayMode::Qos) (which must stay
/// `Copy + Eq` like every other replay mode). [`QosSpec::build`] turns it
/// into a boxed policy instance; for custom or inspectable policies, call
/// [`SsdDevice::run_with_policy`](crate::device::SsdDevice::run_with_policy)
/// with your own instance instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosSpec {
    /// Plain NCQ ([`NcqPolicy`]).
    Ncq,
    /// Strict in-window arrival order ([`WindowFifoPolicy`]).
    WindowFifo,
    /// Reads before writes ([`PriorityPolicy`]).
    Priority,
    /// Earliest deadline first ([`DeadlinePolicy`]).
    Deadline,
    /// Equal-weight token buckets ([`FairSharePolicy`]).
    FairShare {
        /// Tokens per simulated millisecond per tenant.
        refill_per_ms: u32,
        /// Bucket capacity in tokens.
        burst: u32,
    },
}

impl QosSpec {
    /// The conventional fair-share parameters: 4 tokens/ms, burst 32 —
    /// roughly one page op per 250 µs of steady-state budget per tenant,
    /// with a burst absorbing a queue-depth's worth of backlog.
    pub fn fair_share() -> QosSpec {
        QosSpec::FairShare {
            refill_per_ms: 4,
            burst: 32,
        }
    }

    /// All specs worth sweeping, in presentation order (the `qos`
    /// experiment iterates this).
    pub fn all() -> [QosSpec; 5] {
        [
            QosSpec::WindowFifo,
            QosSpec::Ncq,
            QosSpec::Priority,
            QosSpec::Deadline,
            QosSpec::fair_share(),
        ]
    }

    /// Stable name, matching [`QosPolicy::name`] of the built policy.
    pub fn name(&self) -> &'static str {
        match self {
            QosSpec::Ncq => "ncq",
            QosSpec::WindowFifo => "window-fifo",
            QosSpec::Priority => "priority",
            QosSpec::Deadline => "deadline",
            QosSpec::FairShare { .. } => "fair-share",
        }
    }

    /// Parse a policy name as spelled by [`QosSpec::name`] (CLI flag
    /// syntax; `fair-share` uses the conventional parameters).
    pub fn parse(s: &str) -> Option<QosSpec> {
        match s {
            "ncq" => Some(QosSpec::Ncq),
            "window-fifo" | "fifo" => Some(QosSpec::WindowFifo),
            "priority" => Some(QosSpec::Priority),
            "deadline" | "edf" => Some(QosSpec::Deadline),
            "fair-share" | "fair" => Some(QosSpec::fair_share()),
            _ => None,
        }
    }

    /// Instantiate the described policy.
    pub fn build(&self) -> Box<dyn QosPolicy> {
        match *self {
            QosSpec::Ncq => Box::new(NcqPolicy),
            QosSpec::WindowFifo => Box::new(WindowFifoPolicy),
            QosSpec::Priority => Box::new(PriorityPolicy),
            QosSpec::Deadline => Box::new(DeadlinePolicy),
            QosSpec::FairShare {
                refill_per_ms,
                burst,
            } => Box::new(FairSharePolicy::new(refill_per_ms, burst)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dloop_simkit::SimDuration;

    fn cand(seq: u64, tenant: TenantId, op: HostOp, deadline: Option<SimTime>) -> QosCandidate {
        QosCandidate {
            seq,
            tenant,
            op,
            deadline,
            arrival: SimTime::ZERO,
            plane: 0,
        }
    }

    #[test]
    fn ncq_ranks_everything_equal_and_fifo_by_seq() {
        let now = SimTime::ZERO;
        let mut ncq = NcqPolicy;
        assert_eq!(
            ncq.rank(now, &cand(3, 0, HostOp::Read, None)),
            ncq.rank(now, &cand(9, 5, HostOp::Write, None))
        );
        let mut fifo = WindowFifoPolicy;
        assert!(
            fifo.rank(now, &cand(3, 0, HostOp::Write, None))
                < fifo.rank(now, &cand(9, 0, HostOp::Read, None))
        );
    }

    #[test]
    fn priority_puts_reads_first() {
        let now = SimTime::ZERO;
        let mut p = PriorityPolicy;
        assert!(
            p.rank(now, &cand(9, 0, HostOp::Read, None))
                < p.rank(now, &cand(1, 0, HostOp::Write, None))
        );
    }

    #[test]
    fn deadline_orders_lanes_and_ranks_best_effort_last() {
        let mut edf = DeadlinePolicy;
        let soon = Some(SimTime::from_micros(10));
        let late = Some(SimTime::from_micros(500));
        let now = SimTime::ZERO;
        assert!(
            edf.rank(now, &cand(9, 0, HostOp::Read, soon))
                < edf.rank(now, &cand(1, 0, HostOp::Read, late))
        );
        assert!(
            edf.rank(now, &cand(9, 0, HostOp::Read, late))
                < edf.rank(now, &cand(1, 0, HostOp::Read, None))
        );
        assert!(
            edf.lane_key(&cand(9, 0, HostOp::Read, soon))
                < edf.lane_key(&cand(1, 0, HostOp::Read, late))
        );
    }

    #[test]
    fn fair_share_conserves_tokens_exactly() {
        let mut fs = FairSharePolicy::new(2, 8);
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        // Burn tenant 1's whole burst at t=0, then let it refill 1 ms.
        for i in 0..10 {
            let c = cand(i, 1, HostOp::Write, None);
            fs.on_issue(t(0), &c);
        }
        assert_eq!(fs.balance(1), Some(-2 * TOKEN_UNITS as i64));
        // rank() refills lazily: 1 ms at 2 tokens/ms = 2 tokens back.
        let (tier, _) = fs.rank(t(1000), &cand(10, 1, HostOp::Write, None));
        assert_eq!(tier, 1, "balance 0 < 1 token: overdrawn tier");
        assert_eq!(fs.balance(1), Some(0));
        // Conservation: initial + refilled − issued×TOKEN == balance.
        let b = fs.balance(1).unwrap();
        let law = fs.initial_units() + fs.refilled(1).unwrap() as i64
            - fs.issued(1).unwrap() as i64 * TOKEN_UNITS as i64;
        assert_eq!(law, b);
        // A fresh tenant starts full, tier 0, and ranks ahead of the
        // overdrawn one.
        let fresh = fs.rank(t(1000), &cand(11, 2, HostOp::Write, None));
        let broke = fs.rank(t(1000), &cand(10, 1, HostOp::Write, None));
        assert!(fresh < broke);
        // Refill never exceeds the burst cap.
        let _ = fs.rank(t(1_000_000), &cand(12, 2, HostOp::Write, None));
        assert_eq!(fs.balance(2), Some(fs.initial_units()));
    }

    #[test]
    fn fair_share_weights_scale_refill() {
        let mut fs = FairSharePolicy::new(1, 100).with_weight(7, 3);
        let drain = |fs: &mut FairSharePolicy, tenant, n| {
            for i in 0..n {
                fs.on_issue(SimTime::ZERO, &cand(i, tenant, HostOp::Write, None));
            }
        };
        drain(&mut fs, 7, 100);
        drain(&mut fs, 8, 100);
        let at = SimTime::ZERO + SimDuration::from_micros(10_000);
        let _ = fs.rank(at, &cand(200, 7, HostOp::Write, None));
        let _ = fs.rank(at, &cand(201, 8, HostOp::Write, None));
        // 10 ms at 1 token/ms: weight 3 refills 3× as much as weight 1.
        assert_eq!(fs.refilled(7), Some(30 * TOKEN_UNITS));
        assert_eq!(fs.refilled(8), Some(10 * TOKEN_UNITS));
    }

    #[test]
    fn spec_round_trips_names_and_builds() {
        for spec in QosSpec::all() {
            assert_eq!(QosSpec::parse(spec.name()), Some(spec));
            assert_eq!(spec.build().name(), spec.name());
        }
        assert_eq!(QosSpec::parse("edf"), Some(QosSpec::Deadline));
        assert_eq!(QosSpec::parse("nope"), None);
    }
}

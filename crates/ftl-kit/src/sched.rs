//! Pluggable QoS scheduling policies for the NCQ reorder window.
//!
//! [`ReplayMode::Ncq`](crate::device::ReplayMode::Ncq) (PR 5) reorders the
//! oldest `queue_depth` pending page operations through per-plane readiness
//! lanes, treating every operation equally. Real devices multiplex many
//! host streams with different needs — latency-sensitive reads, deadline
//! IO, throughput tenants — so this module makes the *selection rule*
//! inside that window pluggable while keeping the window mechanics (lanes,
//! horizon, wake events) fixed in the driver.
//!
//! # How a policy plugs in
//!
//! The unified driver ([`SsdDevice::run`](crate::device::SsdDevice::run))
//! keeps one readiness lane per plane. A [`QosPolicy`] influences exactly
//! two decisions, through exactly two pure functions:
//!
//! 1. **Within-lane order** — [`QosPolicy::lane_key`] assigns each enqueued
//!    operation a `u64` key; the lane is kept sorted by `(lane_key, seq)`.
//!    The default key is the arrival sequence number `seq`, i.e. FIFO; the
//!    earliest-deadline-first policy sorts by deadline instead, which is
//!    what guarantees two same-plane deadlines are never inverted.
//! 2. **Across-lane choice** — among the lanes' first in-window candidates
//!    whose resources are idle, [`QosPolicy::rank`] returns a `(u64, u64)`
//!    prefix key; lower wins. The driver always appends the NCQ key
//!    `(plane_ready_at, seq)` as the universal tie-break, so any policy
//!    that ranks all candidates equally — like [`NcqPolicy`] — degenerates
//!    to plain NCQ *bit-identically* (property-tested in
//!    `tests/replay_modes.rs`).
//!
//! Two optional hooks carry state: [`QosPolicy::tick`] runs once per
//! scheduler wake (before any selection), and [`QosPolicy::on_issue`] runs
//! after each selected operation (the fair-share policy charges its token
//! bucket there).
//!
//! # Determinism rules
//!
//! Every policy decision must be a pure function of `(now, candidate,
//! policy state)`, and policy state may change only inside `tick` /
//! `on_issue`, both of which the driver calls at deterministic points.
//! Policies must not read wall-clock time, random sources, or iteration
//! order of unordered containers. Under these rules a replay is a pure
//! function of `(trace, config, mode)` — rerunning it reproduces every
//! report field bit-for-bit, which is what the determinism property tests
//! pin.
//!
//! # Choosing a policy
//!
//! | Policy | Rank key (before tie-break) | Use it for |
//! |---|---|---|
//! | [`NcqPolicy`] | constant | plain NCQ; the QoS no-op |
//! | [`WindowFifoPolicy`] | `seq` | the naive in-order bound (claims C11/C12) |
//! | [`PriorityPolicy`] | reads before writes | read-latency-sensitive mixes |
//! | [`DeadlinePolicy`] | earliest absolute deadline | per-request deadlines (EDF) |
//! | [`FairSharePolicy`] | token-bucket deficit | per-tenant fair sharing |
//! | [`PowerCapPolicy`] | constant (gates *admission* instead) | power budgets (claim C16) |

use crate::request::{HostOp, TenantId};
use dloop_simkit::SimTime;

/// A page operation offered to a [`QosPolicy`] for ranking or lane
/// placement: the scheduling-relevant fields of the queued op, copied out
/// so policies never touch driver internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosCandidate {
    /// Global arrival sequence number (ties and FIFO order).
    pub seq: u64,
    /// The host stream the operation belongs to (`0` = untagged).
    pub tenant: TenantId,
    /// Read or write.
    pub op: HostOp,
    /// Absolute completion deadline, if the request carries one.
    pub deadline: Option<SimTime>,
    /// Trace arrival time of the parent request.
    pub arrival: SimTime,
    /// Primary plane of the operation's first flash step.
    pub plane: u32,
    /// Upper bound on the operation's instantaneous power draw in µW,
    /// computed by the driver from the operation's prepared flash chains
    /// (see `dloop_nand::energy`): a chained sequence holds at most one
    /// resource at a time, so its bound is `array + bus`; an unchained
    /// burst is bounded by the sum of its steps' draws. Zero when energy
    /// accounting is disabled — the [`PowerCapPolicy`] then admits freely.
    pub draw_uw: u64,
}

/// A scheduling policy for the NCQ reorder window. See the
/// [module docs](self) for the contract; implement [`QosPolicy::rank`]
/// (and optionally the other hooks) to define a policy.
///
/// All hooks take `&mut self` so stateful policies (token buckets) work,
/// but `rank` and `lane_key` must behave as pure functions of their
/// arguments and current state.
pub trait QosPolicy {
    /// Short stable name for reports and CSV labels.
    fn name(&self) -> &'static str;

    /// Rank an issuable candidate; lower sorts first. The driver appends
    /// `(plane_ready_at, seq)` after this prefix, so returning a constant
    /// reproduces plain NCQ exactly.
    fn rank(&mut self, now: SimTime, c: &QosCandidate) -> (u64, u64);

    /// Within-lane sort key, assigned once when the operation is enqueued;
    /// lanes are kept sorted by `(lane_key, seq)`. The default (FIFO)
    /// returns `seq`.
    fn lane_key(&mut self, c: &QosCandidate) -> u64 {
        c.seq
    }

    /// Called once per scheduler wake at simulated time `now`, before any
    /// candidate is ranked.
    fn tick(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Called after the driver issues `c` at `now` (charge accounting
    /// here).
    fn on_issue(&mut self, now: SimTime, c: &QosCandidate) {
        let _ = (now, c);
    }

    /// May `c` be issued at all right now? Checked by the driver alongside
    /// plane readiness when collecting each lane's first in-window
    /// candidate; a `false` leaves the operation queued in its lane for a
    /// later wake. The default admits everything — only throttling
    /// policies ([`PowerCapPolicy`]) override this. Like `rank`, this must
    /// be a pure function of `(now, candidate, policy state)`.
    fn admit(&mut self, now: SimTime, c: &QosCandidate) -> bool {
        let _ = (now, c);
        true
    }

    /// Called right after an issued operation's flash work is booked,
    /// with the simulated instant its last resource hold ends. Throttling
    /// policies track `(candidate, release)` pairs here to know the load
    /// they have committed; paired with [`QosPolicy::tick`] retiring
    /// entries whose release has passed.
    fn note_release(&mut self, now: SimTime, c: &QosCandidate, release: SimTime) {
        let _ = (now, c, release);
    }
}

/// The QoS no-op: ranks every candidate equally, so the driver's appended
/// `(plane_ready_at, seq)` tie-break *is* the whole key — bit-identical to
/// [`ReplayMode::Ncq`](crate::device::ReplayMode::Ncq).
#[derive(Debug, Clone, Copy, Default)]
pub struct NcqPolicy;

impl QosPolicy for NcqPolicy {
    fn name(&self) -> &'static str {
        "ncq"
    }

    fn rank(&mut self, _now: SimTime, _c: &QosCandidate) -> (u64, u64) {
        (0, 0)
    }
}

/// Strict arrival order inside the window: always issue the oldest
/// issuable operation, never exploiting an idle plane further down the
/// queue. This is the *naive bound* the QoS claims (C12) compare against —
/// the window still skips blocked heads, but it never reorders for
/// plane idleness.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowFifoPolicy;

impl QosPolicy for WindowFifoPolicy {
    fn name(&self) -> &'static str {
        "window-fifo"
    }

    fn rank(&mut self, _now: SimTime, c: &QosCandidate) -> (u64, u64) {
        (c.seq, 0)
    }
}

/// Priority classes: reads overtake writes inside the window (a read's
/// latency is host-visible; a write's is absorbed by buffering), ties by
/// the plain NCQ key.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityPolicy;

impl QosPolicy for PriorityPolicy {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn rank(&mut self, _now: SimTime, c: &QosCandidate) -> (u64, u64) {
        let class = match c.op {
            HostOp::Read => 0,
            HostOp::Write => 1,
        };
        (class, 0)
    }
}

/// Earliest-deadline-first: candidates with earlier absolute deadlines
/// rank first; best-effort operations (no deadline) sort after every
/// finite deadline. Lanes are kept sorted by deadline too
/// ([`QosPolicy::lane_key`]), so two operations on the *same* plane are
/// also issued in deadline order — the EDF invariant pinned in
/// `tests/replay_modes.rs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlinePolicy;

/// Encode a deadline as a totally ordered `u64` (`None` = best-effort =
/// after everything).
fn deadline_key(d: Option<SimTime>) -> u64 {
    d.map_or(u64::MAX, |t| t.as_nanos())
}

impl QosPolicy for DeadlinePolicy {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn rank(&mut self, _now: SimTime, c: &QosCandidate) -> (u64, u64) {
        (deadline_key(c.deadline), 0)
    }

    fn lane_key(&mut self, c: &QosCandidate) -> u64 {
        deadline_key(c.deadline)
    }
}

/// One token = this many bucket units. With this scale, a refill rate of
/// `r` tokens per millisecond is exactly `r` units per nanosecond, so the
/// lazy refill (`Δns × r`) is integer-exact — no rounding, no drift, and
/// the conservation invariant below holds with `==`, not `≈`.
pub const TOKEN_UNITS: u64 = 1_000_000;

/// Per-tenant token-bucket state: balance plus the counters that make the
/// conservation law checkable from outside.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Current balance in units; negative when the work-conserving
    /// fallback issued on an empty bucket.
    balance: i64,
    /// Last lazy-refill time.
    refilled_at: SimTime,
    /// Total units ever added by refill (after the burst cap).
    refilled: u64,
    /// Operations issued for this tenant.
    issued: u64,
    /// Relative refill weight.
    weight: u32,
}

/// Per-tenant fair sharing by deterministic token buckets.
///
/// Every tenant owns a bucket that refills at `weight × refill_per_ms`
/// tokens per simulated millisecond (lazily, on inspection) up to a cap of
/// `burst` tokens, and is charged one token per issued operation. Ranking
/// is two-tier:
///
/// * tier 0 — tenants holding at least one token; among them, the tenant
///   with the *largest* balance (the most under-served) goes first;
/// * tier 1 — tenants that have overdrawn their bucket. The scheduler is
///   work-conserving: when no tier-0 candidate is issuable, a tier-1
///   operation runs anyway (idle planes are never parked to punish a
///   tenant), driving its balance negative until refill pays the debt off.
///
/// All arithmetic is integer (see [`TOKEN_UNITS`]), so the **conservation
/// law** holds exactly for every tenant:
/// `initial + refilled − issued × TOKEN_UNITS == balance`
/// (checkable via the public accessors; pinned in
/// `tests/replay_modes.rs`).
///
/// Buckets are created on first sight of a tenant, full (`burst` tokens)
/// with weight 1 unless pre-registered via [`FairSharePolicy::with_weight`].
#[derive(Debug, Clone)]
pub struct FairSharePolicy {
    /// Tokens per millisecond per unit of weight.
    refill_per_ms: u32,
    /// Bucket capacity in tokens.
    burst: u32,
    /// Buckets, sorted by tenant id (binary-searched; deterministic).
    buckets: Vec<(TenantId, Bucket)>,
}

impl FairSharePolicy {
    /// A fair-share policy refilling `refill_per_ms` tokens per simulated
    /// millisecond (per unit of weight) into buckets capped at `burst`
    /// tokens. Both must be ≥ 1.
    pub fn new(refill_per_ms: u32, burst: u32) -> Self {
        assert!(refill_per_ms >= 1, "refill rate must be at least 1");
        assert!(burst >= 1, "burst must be at least 1");
        FairSharePolicy {
            refill_per_ms,
            burst,
            buckets: Vec::new(),
        }
    }

    /// Pre-register `tenant` with a relative refill `weight` (builder
    /// style). Unregistered tenants get weight 1 on first sight.
    pub fn with_weight(mut self, tenant: TenantId, weight: u32) -> Self {
        assert!(weight >= 1, "weight must be at least 1");
        let full = (self.burst as i64) * TOKEN_UNITS as i64;
        match self.buckets.binary_search_by_key(&tenant, |b| b.0) {
            Ok(i) => self.buckets[i].1.weight = weight,
            Err(i) => self.buckets.insert(
                i,
                (
                    tenant,
                    Bucket {
                        balance: full,
                        refilled_at: SimTime::ZERO,
                        refilled: 0,
                        issued: 0,
                        weight,
                    },
                ),
            ),
        }
        self
    }

    /// The bucket index for `tenant`, creating a full bucket (weight 1) on
    /// first sight at time `now`.
    fn bucket_index(&mut self, tenant: TenantId, now: SimTime) -> usize {
        match self.buckets.binary_search_by_key(&tenant, |b| b.0) {
            Ok(i) => i,
            Err(i) => {
                self.buckets.insert(
                    i,
                    (
                        tenant,
                        Bucket {
                            balance: (self.burst as i64) * TOKEN_UNITS as i64,
                            refilled_at: now,
                            refilled: 0,
                            issued: 0,
                            weight: 1,
                        },
                    ),
                );
                i
            }
        }
    }

    /// Lazily refill one bucket up to `now`; integer-exact.
    fn refill(refill_per_ms: u32, burst: u32, bucket: &mut Bucket, now: SimTime) {
        let delta_ns = now.as_nanos().saturating_sub(bucket.refilled_at.as_nanos());
        bucket.refilled_at = now;
        if delta_ns == 0 {
            return;
        }
        // `refill_per_ms` tokens/ms × TOKEN_UNITS units/token ÷ 1e6 ns/ms
        // = `refill_per_ms` units per nanosecond, times the weight.
        let earned = (delta_ns as i128) * (refill_per_ms as i128) * (bucket.weight as i128);
        let cap = (burst as i128) * TOKEN_UNITS as i128;
        let added = earned.min(cap - bucket.balance as i128).max(0);
        bucket.balance += added as i64;
        bucket.refilled += added as u64;
    }

    /// Current balance of `tenant`'s bucket in units (negative = overdrawn
    /// by the work-conserving fallback); `None` if the tenant was never
    /// seen. Not refreshed to any later time — this is the balance as of
    /// the bucket's last interaction.
    pub fn balance(&self, tenant: TenantId) -> Option<i64> {
        self.buckets
            .binary_search_by_key(&tenant, |b| b.0)
            .ok()
            .map(|i| self.buckets[i].1.balance)
    }

    /// Total units ever refilled into `tenant`'s bucket.
    pub fn refilled(&self, tenant: TenantId) -> Option<u64> {
        self.buckets
            .binary_search_by_key(&tenant, |b| b.0)
            .ok()
            .map(|i| self.buckets[i].1.refilled)
    }

    /// Operations issued for `tenant` (each charged one token).
    pub fn issued(&self, tenant: TenantId) -> Option<u64> {
        self.buckets
            .binary_search_by_key(&tenant, |b| b.0)
            .ok()
            .map(|i| self.buckets[i].1.issued)
    }

    /// Tenant ids with a bucket, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.buckets.iter().map(|b| b.0).collect()
    }

    /// Bucket capacity in units (`burst × TOKEN_UNITS`) — the initial
    /// balance of every bucket, and the term `initial` in the conservation
    /// law.
    pub fn initial_units(&self) -> i64 {
        (self.burst as i64) * TOKEN_UNITS as i64
    }
}

impl QosPolicy for FairSharePolicy {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn rank(&mut self, now: SimTime, c: &QosCandidate) -> (u64, u64) {
        let (rate, burst) = (self.refill_per_ms, self.burst);
        let i = self.bucket_index(c.tenant, now);
        Self::refill(rate, burst, &mut self.buckets[i].1, now);
        let balance = self.buckets[i].1.balance;
        let tier = if balance >= TOKEN_UNITS as i64 { 0 } else { 1 };
        // Within a tier, larger balance (more under-served) sorts first:
        // map balance ∈ [−∞, cap] monotonically *decreasing* onto u64.
        let deficit = ((burst as i128) * TOKEN_UNITS as i128 - balance as i128).max(0) as u64;
        (tier, deficit)
    }

    fn on_issue(&mut self, now: SimTime, c: &QosCandidate) {
        let (rate, burst) = (self.refill_per_ms, self.burst);
        let i = self.bucket_index(c.tenant, now);
        Self::refill(rate, burst, &mut self.buckets[i].1, now);
        self.buckets[i].1.balance -= TOKEN_UNITS as i64;
        self.buckets[i].1.issued += 1;
    }
}

/// Power-cap admission control over the readiness lanes.
///
/// The policy tracks every in-flight operation's declared draw bound
/// ([`QosCandidate::draw_uw`]) until its release instant and refuses to
/// admit a candidate that would push the committed total above
/// `budget_uw` — with one work-conserving exception: when *nothing* is in
/// flight the head candidate is always admitted, so a budget below a
/// single operation's draw throttles to serial execution instead of
/// deadlocking. The bound this enforces is therefore exact: at every
/// simulated instant the summed draw of in-flight operations is at most
/// `max(budget_uw, largest single admitted draw)`, and because per-op
/// instantaneous power never exceeds its declared bound, no power-timeline
/// bucket can average above that either (claim C16's integer check).
///
/// Ranking is the NCQ no-op — the cap changes *when* work may start, never
/// *which* ready work is preferred — so an unlimited budget reproduces
/// plain NCQ bit-identically.
///
/// Determinism: in-flight entries live in an insertion-ordered `Vec`,
/// retired by [`QosPolicy::tick`] with a stable `retain`; no unordered
/// containers, no clocks.
#[derive(Debug, Clone)]
pub struct PowerCapPolicy {
    budget_uw: u64,
    /// Committed operations: `(release instant, draw bound µW)`.
    inflight: Vec<(SimTime, u64)>,
    /// Sum of the in-flight draw bounds (kept incrementally).
    inflight_uw: u64,
    admitted: u64,
    deferrals: u64,
}

impl PowerCapPolicy {
    /// A cap enforcing `budget_uw` (µW) over concurrent admissions.
    pub fn new(budget_uw: u64) -> Self {
        assert!(budget_uw >= 1, "power budget must be at least 1 µW");
        PowerCapPolicy {
            budget_uw,
            inflight: Vec::new(),
            inflight_uw: 0,
            admitted: 0,
            deferrals: 0,
        }
    }

    /// The configured budget in µW.
    pub fn budget_uw(&self) -> u64 {
        self.budget_uw
    }

    /// Summed draw bound of operations currently committed (as of the
    /// last `tick`).
    pub fn inflight_uw(&self) -> u64 {
        self.inflight_uw
    }

    /// Operations issued under this policy.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Admission refusals (one per *offer*, not per operation — a queued
    /// op deferred across `n` scheduling rounds counts `n` times). A
    /// nonzero value is the witness that the cap actually throttled.
    pub fn deferrals(&self) -> u64 {
        self.deferrals
    }
}

impl QosPolicy for PowerCapPolicy {
    fn name(&self) -> &'static str {
        "power-cap"
    }

    fn rank(&mut self, _now: SimTime, _c: &QosCandidate) -> (u64, u64) {
        (0, 0)
    }

    fn tick(&mut self, now: SimTime) {
        // Retire releases that have passed; an op releasing exactly at
        // `now` no longer draws (holds are end-exclusive).
        self.inflight.retain(|&(release, draw)| {
            if release > now {
                true
            } else {
                self.inflight_uw -= draw;
                false
            }
        });
    }

    fn admit(&mut self, _now: SimTime, c: &QosCandidate) -> bool {
        let fits = self.inflight_uw == 0
            || self
                .inflight_uw
                .checked_add(c.draw_uw)
                .is_some_and(|sum| sum <= self.budget_uw);
        if !fits {
            self.deferrals += 1;
        }
        fits
    }

    fn on_issue(&mut self, _now: SimTime, _c: &QosCandidate) {
        self.admitted += 1;
    }

    fn note_release(&mut self, now: SimTime, c: &QosCandidate, release: SimTime) {
        if release > now {
            self.inflight.push((release, c.draw_uw));
            self.inflight_uw = self
                .inflight_uw
                .checked_add(c.draw_uw)
                .expect("power-cap overflow: in-flight µW sum exceeds u64");
        }
    }
}

/// A `Copy` description of a QoS policy, embeddable in
/// [`ReplayMode::Qos`](crate::device::ReplayMode::Qos) (which must stay
/// `Copy + Eq` like every other replay mode). [`QosSpec::build`] turns it
/// into a boxed policy instance; for custom or inspectable policies, call
/// [`SsdDevice::run_with_policy`](crate::device::SsdDevice::run_with_policy)
/// with your own instance instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosSpec {
    /// Plain NCQ ([`NcqPolicy`]).
    Ncq,
    /// Strict in-window arrival order ([`WindowFifoPolicy`]).
    WindowFifo,
    /// Reads before writes ([`PriorityPolicy`]).
    Priority,
    /// Earliest deadline first ([`DeadlinePolicy`]).
    Deadline,
    /// Equal-weight token buckets ([`FairSharePolicy`]).
    FairShare {
        /// Tokens per simulated millisecond per tenant.
        refill_per_ms: u32,
        /// Bucket capacity in tokens.
        burst: u32,
    },
    /// Concurrent-admission throttling under a power budget
    /// ([`PowerCapPolicy`]). Requires [`crate::SsdConfig::energy`] to be
    /// set for candidates to carry nonzero draw bounds; without it every
    /// bound is zero and the cap admits freely.
    PowerCap {
        /// Admission budget in µW.
        budget_uw: u64,
    },
}

impl QosSpec {
    /// The conventional fair-share parameters: 4 tokens/ms, burst 32 —
    /// roughly one page op per 250 µs of steady-state budget per tenant,
    /// with a burst absorbing a queue-depth's worth of backlog.
    pub fn fair_share() -> QosSpec {
        QosSpec::FairShare {
            refill_per_ms: 4,
            burst: 32,
        }
    }

    /// The conventional power-cap budget: 250 mW — comfortably above any
    /// single operation's ~99 mW draw bound (so the work-conserving floor
    /// never lifts the enforced ceiling) yet far below the paper device's
    /// ~5.4 W all-planes-busy worst case, so the cap genuinely throttles.
    pub const POWER_CAP_BUDGET_UW: u64 = 250_000;

    /// The [`QosSpec::PowerCap`] spec at the conventional budget
    /// ([`QosSpec::POWER_CAP_BUDGET_UW`]).
    pub fn power_cap() -> QosSpec {
        QosSpec::PowerCap {
            budget_uw: Self::POWER_CAP_BUDGET_UW,
        }
    }

    /// All specs worth sweeping, in presentation order (the `qos`
    /// experiment iterates this). [`QosSpec::PowerCap`] is deliberately
    /// absent: the C12 bounds quantify over this set, and a power cap
    /// trades response time away *on purpose* — sweep it via the `power`
    /// experiment instead.
    pub fn all() -> [QosSpec; 5] {
        [
            QosSpec::WindowFifo,
            QosSpec::Ncq,
            QosSpec::Priority,
            QosSpec::Deadline,
            QosSpec::fair_share(),
        ]
    }

    /// Stable name, matching [`QosPolicy::name`] of the built policy.
    pub fn name(&self) -> &'static str {
        match self {
            QosSpec::Ncq => "ncq",
            QosSpec::WindowFifo => "window-fifo",
            QosSpec::Priority => "priority",
            QosSpec::Deadline => "deadline",
            QosSpec::FairShare { .. } => "fair-share",
            QosSpec::PowerCap { .. } => "power-cap",
        }
    }

    /// Parse a policy name as spelled by [`QosSpec::name`] (CLI flag
    /// syntax; `fair-share` uses the conventional parameters).
    pub fn parse(s: &str) -> Option<QosSpec> {
        match s {
            "ncq" => Some(QosSpec::Ncq),
            "window-fifo" | "fifo" => Some(QosSpec::WindowFifo),
            "priority" => Some(QosSpec::Priority),
            "deadline" | "edf" => Some(QosSpec::Deadline),
            "fair-share" | "fair" => Some(QosSpec::fair_share()),
            "power-cap" | "cap" => Some(QosSpec::power_cap()),
            _ => None,
        }
    }

    /// Instantiate the described policy.
    pub fn build(&self) -> Box<dyn QosPolicy> {
        match *self {
            QosSpec::Ncq => Box::new(NcqPolicy),
            QosSpec::WindowFifo => Box::new(WindowFifoPolicy),
            QosSpec::Priority => Box::new(PriorityPolicy),
            QosSpec::Deadline => Box::new(DeadlinePolicy),
            QosSpec::FairShare {
                refill_per_ms,
                burst,
            } => Box::new(FairSharePolicy::new(refill_per_ms, burst)),
            QosSpec::PowerCap { budget_uw } => Box::new(PowerCapPolicy::new(budget_uw)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dloop_simkit::SimDuration;

    fn cand(seq: u64, tenant: TenantId, op: HostOp, deadline: Option<SimTime>) -> QosCandidate {
        QosCandidate {
            seq,
            tenant,
            op,
            deadline,
            arrival: SimTime::ZERO,
            plane: 0,
            draw_uw: 0,
        }
    }

    fn drawing(seq: u64, draw_uw: u64) -> QosCandidate {
        QosCandidate {
            draw_uw,
            ..cand(seq, 0, HostOp::Write, None)
        }
    }

    #[test]
    fn ncq_ranks_everything_equal_and_fifo_by_seq() {
        let now = SimTime::ZERO;
        let mut ncq = NcqPolicy;
        assert_eq!(
            ncq.rank(now, &cand(3, 0, HostOp::Read, None)),
            ncq.rank(now, &cand(9, 5, HostOp::Write, None))
        );
        let mut fifo = WindowFifoPolicy;
        assert!(
            fifo.rank(now, &cand(3, 0, HostOp::Write, None))
                < fifo.rank(now, &cand(9, 0, HostOp::Read, None))
        );
    }

    #[test]
    fn priority_puts_reads_first() {
        let now = SimTime::ZERO;
        let mut p = PriorityPolicy;
        assert!(
            p.rank(now, &cand(9, 0, HostOp::Read, None))
                < p.rank(now, &cand(1, 0, HostOp::Write, None))
        );
    }

    #[test]
    fn deadline_orders_lanes_and_ranks_best_effort_last() {
        let mut edf = DeadlinePolicy;
        let soon = Some(SimTime::from_micros(10));
        let late = Some(SimTime::from_micros(500));
        let now = SimTime::ZERO;
        assert!(
            edf.rank(now, &cand(9, 0, HostOp::Read, soon))
                < edf.rank(now, &cand(1, 0, HostOp::Read, late))
        );
        assert!(
            edf.rank(now, &cand(9, 0, HostOp::Read, late))
                < edf.rank(now, &cand(1, 0, HostOp::Read, None))
        );
        assert!(
            edf.lane_key(&cand(9, 0, HostOp::Read, soon))
                < edf.lane_key(&cand(1, 0, HostOp::Read, late))
        );
    }

    #[test]
    fn fair_share_conserves_tokens_exactly() {
        let mut fs = FairSharePolicy::new(2, 8);
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        // Burn tenant 1's whole burst at t=0, then let it refill 1 ms.
        for i in 0..10 {
            let c = cand(i, 1, HostOp::Write, None);
            fs.on_issue(t(0), &c);
        }
        assert_eq!(fs.balance(1), Some(-2 * TOKEN_UNITS as i64));
        // rank() refills lazily: 1 ms at 2 tokens/ms = 2 tokens back.
        let (tier, _) = fs.rank(t(1000), &cand(10, 1, HostOp::Write, None));
        assert_eq!(tier, 1, "balance 0 < 1 token: overdrawn tier");
        assert_eq!(fs.balance(1), Some(0));
        // Conservation: initial + refilled − issued×TOKEN == balance.
        let b = fs.balance(1).unwrap();
        let law = fs.initial_units() + fs.refilled(1).unwrap() as i64
            - fs.issued(1).unwrap() as i64 * TOKEN_UNITS as i64;
        assert_eq!(law, b);
        // A fresh tenant starts full, tier 0, and ranks ahead of the
        // overdrawn one.
        let fresh = fs.rank(t(1000), &cand(11, 2, HostOp::Write, None));
        let broke = fs.rank(t(1000), &cand(10, 1, HostOp::Write, None));
        assert!(fresh < broke);
        // Refill never exceeds the burst cap.
        let _ = fs.rank(t(1_000_000), &cand(12, 2, HostOp::Write, None));
        assert_eq!(fs.balance(2), Some(fs.initial_units()));
    }

    #[test]
    fn fair_share_weights_scale_refill() {
        let mut fs = FairSharePolicy::new(1, 100).with_weight(7, 3);
        let drain = |fs: &mut FairSharePolicy, tenant, n| {
            for i in 0..n {
                fs.on_issue(SimTime::ZERO, &cand(i, tenant, HostOp::Write, None));
            }
        };
        drain(&mut fs, 7, 100);
        drain(&mut fs, 8, 100);
        let at = SimTime::ZERO + SimDuration::from_micros(10_000);
        let _ = fs.rank(at, &cand(200, 7, HostOp::Write, None));
        let _ = fs.rank(at, &cand(201, 8, HostOp::Write, None));
        // 10 ms at 1 token/ms: weight 3 refills 3× as much as weight 1.
        assert_eq!(fs.refilled(7), Some(30 * TOKEN_UNITS));
        assert_eq!(fs.refilled(8), Some(10 * TOKEN_UNITS));
    }

    #[test]
    fn spec_round_trips_names_and_builds() {
        for spec in QosSpec::all() {
            assert_eq!(QosSpec::parse(spec.name()), Some(spec));
            assert_eq!(spec.build().name(), spec.name());
        }
        assert_eq!(QosSpec::parse("edf"), Some(QosSpec::Deadline));
        assert_eq!(QosSpec::parse("nope"), None);
    }

    /// PowerCap is not swept by `QosSpec::all` (it degrades MRT on
    /// purpose), so its round trip is pinned separately.
    #[test]
    fn power_cap_spec_round_trips() {
        let spec = QosSpec::power_cap();
        assert_eq!(spec.name(), "power-cap");
        assert_eq!(QosSpec::parse("power-cap"), Some(spec));
        assert_eq!(QosSpec::parse("cap"), Some(spec));
        assert_eq!(spec.build().name(), "power-cap");
        assert!(!QosSpec::all().contains(&spec));
    }

    #[test]
    fn power_cap_admits_within_budget_and_defers_above() {
        let mut cap = PowerCapPolicy::new(100);
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        // First op (60 µW) fits outright; book it until t=10 µs.
        let a = drawing(0, 60);
        assert!(cap.admit(t(0), &a));
        cap.on_issue(t(0), &a);
        cap.note_release(t(0), &a, t(10));
        assert_eq!(cap.inflight_uw(), 60);
        // 50 µW would overshoot (110 > 100): deferred. 40 µW fits exactly.
        assert!(!cap.admit(t(0), &drawing(1, 50)));
        assert_eq!(cap.deferrals(), 1);
        let b = drawing(2, 40);
        assert!(cap.admit(t(0), &b));
        cap.note_release(t(0), &b, t(8));
        assert_eq!(cap.inflight_uw(), 100);
        assert!(!cap.admit(t(0), &drawing(3, 1)));
        // Ticking past b's release frees its 40 µW; past both frees all.
        cap.tick(t(8));
        assert_eq!(cap.inflight_uw(), 60);
        assert!(cap.admit(t(8), &drawing(4, 40)));
        cap.tick(t(10));
        assert_eq!(cap.inflight_uw(), 0);
    }

    #[test]
    fn power_cap_is_work_conserving_when_idle() {
        // A candidate drawing more than the whole budget still runs when
        // nothing is in flight — throttled to serial, never deadlocked.
        let mut cap = PowerCapPolicy::new(100);
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        let huge = drawing(0, 5_000);
        assert!(cap.admit(t(0), &huge));
        cap.note_release(t(0), &huge, t(50));
        // ...but it blocks everything else until it releases.
        assert!(!cap.admit(t(0), &drawing(1, 1)));
        cap.tick(t(50));
        assert!(cap.admit(t(50), &drawing(1, 1)));
    }

    #[test]
    fn power_cap_ignores_zero_duration_and_zero_draw() {
        let mut cap = PowerCapPolicy::new(100);
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        // A release at-or-before `now` never occupies the budget.
        let a = drawing(0, 60);
        cap.note_release(t(5), &a, t(5));
        assert_eq!(cap.inflight_uw(), 0);
        // Zero-draw candidates (energy accounting disabled) always fit.
        let b = drawing(1, 0);
        assert!(cap.admit(t(5), &b));
        cap.note_release(t(5), &b, t(20));
        assert!(cap.admit(t(5), &drawing(2, 100)));
    }
}

//! Reverse page directory: what does each valid physical page hold?
//!
//! Garbage collection picks victim *blocks* and must relocate their valid
//! *pages*; to update the right mapping structure it has to know whether a
//! page holds host data (keyed by LPN) or a translation page (keyed by its
//! virtual translation-page number). [`PageDirectory`] maintains that
//! reverse map densely, packed into one `u64` per physical page.

use dloop_nand::{Geometry, Lpn, Ppn};

/// What a physical page currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOwner {
    /// Nothing live.
    None,
    /// Host data for this logical page.
    Data(Lpn),
    /// The translation page with this virtual translation-page number.
    Translation(u64),
}

const TAG_NONE: u64 = 0;
const TAG_DATA: u64 = 1 << 62;
const TAG_TRANS: u64 = 2 << 62;
const TAG_MASK: u64 = 3 << 62;
const VAL_MASK: u64 = !TAG_MASK;

/// Dense reverse map PPN → owner.
#[derive(Debug, Clone)]
pub struct PageDirectory {
    slots: Vec<u64>,
}

impl PageDirectory {
    /// An empty directory covering the whole physical page space.
    pub fn new(geometry: &Geometry) -> Self {
        PageDirectory {
            slots: vec![TAG_NONE; geometry.total_physical_pages() as usize],
        }
    }

    /// Record that `ppn` now holds data for `lpn`.
    pub fn set_data(&mut self, ppn: Ppn, lpn: Lpn) {
        debug_assert!(lpn <= VAL_MASK);
        self.slots[ppn as usize] = TAG_DATA | lpn;
    }

    /// Record that `ppn` now holds translation page `tvpn`.
    pub fn set_translation(&mut self, ppn: Ppn, tvpn: u64) {
        debug_assert!(tvpn <= VAL_MASK);
        self.slots[ppn as usize] = TAG_TRANS | tvpn;
    }

    /// Record that `ppn` no longer holds anything live.
    pub fn clear(&mut self, ppn: Ppn) {
        self.slots[ppn as usize] = TAG_NONE;
    }

    /// Current owner of `ppn`.
    pub fn owner(&self, ppn: Ppn) -> PageOwner {
        let s = self.slots[ppn as usize];
        match s & TAG_MASK {
            TAG_DATA => PageOwner::Data(s & VAL_MASK),
            TAG_TRANS => PageOwner::Translation(s & VAL_MASK),
            _ => PageOwner::None,
        }
    }

    /// Adopt `other`'s owners for the physical pages in `ppns` — the
    /// sharded engine's merge, where `other` is a worker's fork that was
    /// the sole writer of a contiguous plane-major PPN range.
    pub fn absorb_range(&mut self, other: &PageDirectory, ppns: std::ops::Range<Ppn>) {
        let r = ppns.start as usize..ppns.end as usize;
        self.slots[r.clone()].copy_from_slice(&other.slots[r]);
    }

    /// A worker's fork covering only the contiguous plane-major PPN range
    /// `ppns`: owned slots are copied, everything else starts `None`.
    ///
    /// The sharded engine's purity attestation guarantees a worker only
    /// consults the directory for planes it owns (GC victim scans are
    /// plane-local), and [`PageDirectory::absorb_range`] copies only the
    /// owned range back — so skipping the copy of foreign slots changes
    /// no observable behaviour while avoiding most of the fork cost on
    /// wide devices. Impure operations may transiently *write* foreign
    /// slots before the worker's result is discarded wholesale; the
    /// full-length vector keeps those writes in-bounds and harmless.
    pub fn shard_fork(&self, ppns: std::ops::Range<Ppn>) -> PageDirectory {
        let mut slots = vec![TAG_NONE; self.slots.len()];
        let r = ppns.start as usize..ppns.end as usize;
        slots[r.clone()].copy_from_slice(&self.slots[r]);
        PageDirectory { slots }
    }

    /// Number of live (owned) pages — O(n), intended for audits only.
    pub fn live_count(&self) -> u64 {
        self.slots.iter().filter(|&&s| s & TAG_MASK != 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PageDirectory {
        PageDirectory::new(&Geometry::build_with_hierarchy(1, 2, 5.0, 2, 1, 1, 1, 2))
    }

    #[test]
    fn starts_empty() {
        let d = dir();
        assert_eq!(d.owner(0), PageOwner::None);
        assert_eq!(d.live_count(), 0);
    }

    #[test]
    fn data_round_trip() {
        let mut d = dir();
        d.set_data(7, 123_456);
        assert_eq!(d.owner(7), PageOwner::Data(123_456));
        assert_eq!(d.live_count(), 1);
        d.clear(7);
        assert_eq!(d.owner(7), PageOwner::None);
    }

    #[test]
    fn translation_round_trip() {
        let mut d = dir();
        d.set_translation(9, 42);
        assert_eq!(d.owner(9), PageOwner::Translation(42));
    }

    #[test]
    fn overwrite_replaces_owner() {
        let mut d = dir();
        d.set_data(3, 10);
        d.set_translation(3, 20);
        assert_eq!(d.owner(3), PageOwner::Translation(20));
        assert_eq!(d.live_count(), 1);
    }

    #[test]
    fn lpn_zero_is_distinguishable_from_empty() {
        let mut d = dir();
        d.set_data(0, 0);
        assert_eq!(d.owner(0), PageOwner::Data(0));
    }

    #[test]
    fn shard_fork_copies_only_owned_range_and_absorbs_back() {
        let mut d = dir();
        let total = d.slots.len() as Ppn;
        d.set_data(1, 10);
        d.set_data(total - 1, 20);
        let lo = 0;
        let hi = total / 2;
        let mut f = d.shard_fork(lo..hi);
        assert_eq!(f.owner(1), PageOwner::Data(10));
        // Foreign slots start empty in the fork...
        assert_eq!(f.owner(total - 1), PageOwner::None);
        // ...and the fork is full-length, so stray writes stay in-bounds.
        assert_eq!(f.slots.len(), d.slots.len());
        f.set_data(2, 30);
        d.absorb_range(&f, lo..hi);
        assert_eq!(d.owner(2), PageOwner::Data(30));
        // Absorb never touches slots outside the owned range.
        assert_eq!(d.owner(total - 1), PageOwner::Data(20));
    }
}

//! Per-run metrics: the paper's two reported statistics plus
//! observability extras.
//!
//! * **Mean response time** — "average response time of all requests
//!   submitted to a flash SSD" (§V.A), where a request's response time is
//!   the completion of its last page operation minus its arrival.
//! * **SDRPP** — "the standard deviation of number of requests that each
//!   plane receives during a simulation experiment. A lower SDRPP
//!   indicates that requests are distributed more evenly across planes,
//!   which leads to a better wear-leveling." Plotted on a natural-log
//!   scale in the paper, so [`RunReport::ln_sdrpp`] matches the figures.

use crate::ftl::FtlCounters;
use dloop_nand::{EnergyTotals, MediaCounters, OpCounters};
use dloop_simkit::stats::std_dev_of_counts;
use dloop_simkit::{Histogram, OnlineStats, QueueDepthProbe, SimTime};

/// Everything measured over one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheme name ("DLOOP", "DFTL", …).
    pub ftl_name: &'static str,
    /// Host requests completed.
    pub requests_completed: u64,
    /// Host page reads served.
    pub pages_read: u64,
    /// Host page writes served.
    pub pages_written: u64,
    /// Response-time distribution, in milliseconds.
    pub response_ms: OnlineStats,
    /// Log-spaced response-time histogram, in microseconds.
    pub response_hist_us: Histogram,
    /// Page-level operations dispatched to each plane.
    pub plane_request_counts: Vec<u64>,
    /// Hardware operation counters.
    pub hw: OpCounters,
    /// FTL scheme counters.
    pub ftl: FtlCounters,
    /// Total block erases.
    pub total_erases: u64,
    /// Total page programs (host + translation + GC).
    pub total_programs: u64,
    /// Total parity-skipped pages.
    pub total_skips: u64,
    /// Wear summary: (min, mean, max) erase count across blocks.
    pub wear: (u32, f64, u32),
    /// Simulated completion time of the last operation.
    pub sim_end: SimTime,
    /// Per-plane busy nanoseconds (array occupancy).
    pub plane_busy_ns: Vec<u64>,
    /// Per-channel busy nanoseconds (bus occupancy).
    pub channel_busy_ns: Vec<u64>,
    /// Per page-op queueing delay before the first flash step began.
    pub wait_ms: OnlineStats,
    /// Per page-op service span (first step start to host completion).
    pub service_ms: OnlineStats,
    /// Synchronous-GC blocking charged to triggering operations.
    pub gc_block_ms: OnlineStats,
    /// Media reliability counters over the measured window (all zero when
    /// no fault plan is attached): recovered program failures, grown/factory
    /// bad blocks, uncorrectable reads, and the read-retry histogram.
    pub media: MediaCounters,
    /// Plane-busy nanoseconds added by read-retry ladders (the latency
    /// price of the raw bit-error rate).
    pub retry_ns: u64,
    /// Per-request completion log: `(request index, arrival, done)` for
    /// every request of the replayed slice, in the order the driver
    /// recorded them. Zero-page requests complete at their arrival. The
    /// `dloop-host` stack reads this to map device completions back onto
    /// host requests (and from there into interrupt-coalescing delivery
    /// times).
    pub completions: Vec<(u64, SimTime, SimTime)>,
    /// Host-queue occupancy log: one `(arrival, issue, done)` triple per
    /// admitted unit of work (requests in the arrival-reserving modes,
    /// page operations in the gated/NCQ modes). Every replay mode records
    /// it; render with [`RunReport::queue_depth_csv`].
    pub queue_log: QueueDepthProbe,
    /// Wall-clock breakdown of the plane-local parallel engine, when it
    /// served the run (`None` otherwise). Deliberately excluded from
    /// every fingerprint and CSV: wall time measures the machine, not
    /// the simulation.
    pub shard_timing: Option<ShardTiming>,
    /// Integer energy totals, when [`crate::SsdConfig::energy`] enabled
    /// accounting (`None` otherwise). Folded into the CSV row — and so
    /// into every report fingerprint — as exact femtojoule integers; the
    /// shard merge recomputes them from the absorbed busy counters, so
    /// sharded and sequential totals are bit-identical (claim C15).
    pub energy: Option<EnergyTotals>,
}

/// Wall-clock phases of a plane-sharded run, recorded by the parallel
/// engine's fast path. Shard tasks run on a pool of at most
/// `available_parallelism` threads, so each task's time is (close to)
/// its isolated single-core cost; because plane-pure shards share no
/// state, `partition + max(workers) + merge` is the run's critical path
/// — the wall time on a machine with at least one core per shard.
#[derive(Debug, Clone, Default)]
pub struct ShardTiming {
    /// Serial prefix: canonical sort and routing of page operations.
    pub partition_ms: f64,
    /// Per-shard state-fork time (flash fork + directory range fork +
    /// FTL fork), indexed by shard; zero for shards that received no
    /// operations. Reported separately from `worker_ms` so regressions
    /// in fork cost — pure overhead that grows with device size, not
    /// with work — are visible in `shard_0.csv` instead of hiding
    /// inside the replay time.
    pub fork_ms: Vec<f64>,
    /// Per-shard replay time (translate + play), indexed by shard; zero
    /// for shards that received no operations.
    pub worker_ms: Vec<f64>,
    /// Serial suffix: state merge, span forwarding, and the canonical
    /// statistics fold.
    pub merge_ms: f64,
}

impl ShardTiming {
    /// The modeled parallel wall time: serial sections plus the slowest
    /// shard task (its fork plus its replay — both run on the worker
    /// thread).
    pub fn critical_path_ms(&self) -> f64 {
        let slowest = self
            .fork_ms
            .iter()
            .zip(&self.worker_ms)
            .map(|(f, w)| f + w)
            .fold(0.0, f64::max);
        self.partition_ms + slowest + self.merge_ms
    }

    /// The slowest shard's fork time, for table rendering.
    pub fn max_fork_ms(&self) -> f64 {
        self.fork_ms.iter().cloned().fold(0.0, f64::max)
    }

    /// The slowest shard's replay time, for table rendering.
    pub fn max_worker_ms(&self) -> f64 {
        self.worker_ms.iter().cloned().fold(0.0, f64::max)
    }
}

impl RunReport {
    /// Mean response time in milliseconds — the paper's headline metric.
    pub fn mean_response_time_ms(&self) -> f64 {
        self.response_ms.mean()
    }

    /// Standard deviation of per-plane request counts.
    pub fn sdrpp(&self) -> f64 {
        std_dev_of_counts(&self.plane_request_counts)
    }

    /// ln(SDRPP), as plotted in Figs. 8-10 ("plotted on log scale (base e)
    /// because their values are huge"). Zero deviation maps to 0.
    pub fn ln_sdrpp(&self) -> f64 {
        let sd = self.sdrpp();
        if sd <= 1.0 {
            0.0
        } else {
            sd.ln()
        }
    }

    /// Write amplification factor: physical programs per host page write.
    pub fn waf(&self) -> f64 {
        if self.pages_written == 0 {
            0.0
        } else {
            self.total_programs as f64 / self.pages_written as f64
        }
    }

    /// Response-time percentile in milliseconds (approximate).
    pub fn response_percentile_ms(&self, q: f64) -> f64 {
        self.response_hist_us.quantile(q) / 1000.0
    }

    /// Fraction of the total host-visible response time spent blocked on
    /// synchronous GC — the share that background GC is supposed to hide
    /// (`dloop-experiments verify` claim C10). Zero when nothing was
    /// measured or GC never blocked a request.
    pub fn gc_blocked_share(&self) -> f64 {
        let total = self.response_ms.sum();
        if total <= 0.0 {
            0.0
        } else {
            self.gc_block_ms.sum() / total
        }
    }

    /// Total energy of the run's flash operations under an energy model,
    /// in display millijoules. Prefers the run's own integer totals when
    /// accounting was enabled; otherwise reconstructs them from the
    /// operation counters (a thin converter over the integer core).
    pub fn energy_mj(
        &self,
        energy: &dloop_nand::EnergyConfig,
        timing: &dloop_nand::TimingConfig,
        page_size: u32,
    ) -> f64 {
        match &self.energy {
            Some(totals) => totals.total_mj(),
            None => energy.total_mj(timing, page_size, &self.hw),
        }
    }

    /// Mean plane utilisation over the run.
    pub fn mean_plane_utilisation(&self) -> f64 {
        let t = self.sim_end.as_nanos().max(1) as f64;
        if self.plane_busy_ns.is_empty() {
            return 0.0;
        }
        self.plane_busy_ns
            .iter()
            .map(|&b| b as f64 / t)
            .sum::<f64>()
            / self.plane_busy_ns.len() as f64
    }

    /// Highest single-plane utilisation over the run.
    pub fn max_plane_utilisation(&self) -> f64 {
        let t = self.sim_end.as_nanos().max(1) as f64;
        self.plane_busy_ns
            .iter()
            .map(|&b| b as f64 / t)
            .fold(0.0, f64::max)
    }

    /// Highest single-channel utilisation over the run.
    pub fn max_channel_utilisation(&self) -> f64 {
        let t = self.sim_end.as_nanos().max(1) as f64;
        self.channel_busy_ns
            .iter()
            .map(|&b| b as f64 / t)
            .fold(0.0, f64::max)
    }

    /// Fraction of GC page moves served by copy-back.
    pub fn copyback_fraction(&self) -> f64 {
        let total = self.ftl.copyback_moves + self.ftl.external_moves;
        if total == 0 {
            0.0
        } else {
            self.ftl.copyback_moves as f64 / total as f64
        }
    }

    /// Fraction of media reads that needed at least one retry step.
    pub fn retry_read_fraction(&self) -> f64 {
        let total = self.media.media_reads();
        if total == 0 {
            return 0.0;
        }
        let clean = self.media.retry_hist.first().copied().unwrap_or(0);
        (total - clean) as f64 / total as f64
    }

    /// Fraction of media reads the retry ladder could not save (data loss).
    pub fn uncorrectable_fraction(&self) -> f64 {
        let total = self.media.media_reads();
        if total == 0 {
            0.0
        } else {
            self.media.uncorrectable_reads as f64 / total as f64
        }
    }

    /// The locked CSV schema. Reliability columns append strictly after
    /// the pre-fault columns so downstream tooling keyed on column index
    /// keeps working; `retry_hist` is one pipe-joined column because its
    /// length follows the fault plan's ladder depth. The latency
    /// attribution columns (mean queueing wait, mean service span, mean
    /// synchronous-GC blocking) append after the reliability block under
    /// the same rule, and the integer energy columns (femtojoules; both
    /// zero when accounting is disabled) append after those.
    pub fn csv_header() -> &'static str {
        "ftl,requests,pages_read,pages_written,mrt_ms,p99_ms,ln_sdrpp,waf,\
         gc_invocations,copyback_moves,external_moves,parity_skips,\
         translation_reads,translation_writes,full_merges,partial_merges,\
         switch_merges,total_erases,total_programs,total_skips,\
         wear_min,wear_mean,wear_max,sim_end_ms,\
         recovered_programs,grown_bad_blocks,factory_bad_blocks,\
         uncorrectable_reads,read_retry_steps,retry_ms,retry_hist,\
         wait_mean_ms,service_mean_ms,gc_block_mean_ms,\
         energy_array_fj,energy_bus_fj"
    }

    /// One CSV row matching [`RunReport::csv_header`] column for column.
    pub fn csv_row(&self) -> String {
        let hist = self
            .media
            .retry_hist
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("|");
        let energy = self.energy.unwrap_or_default();
        format!(
            "{},{},{},{},{:.6},{:.6},{:.4},{:.4},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{},{:.3},{},{},{},{},{},{:.6},{},{:.6},{:.6},{:.6},{},{}",
            self.ftl_name,
            self.requests_completed,
            self.pages_read,
            self.pages_written,
            self.mean_response_time_ms(),
            self.response_percentile_ms(0.99),
            self.ln_sdrpp(),
            self.waf(),
            self.ftl.gc_invocations,
            self.ftl.copyback_moves,
            self.ftl.external_moves,
            self.ftl.parity_skips,
            self.ftl.translation_reads,
            self.ftl.translation_writes,
            self.ftl.full_merges,
            self.ftl.partial_merges,
            self.ftl.switch_merges,
            self.total_erases,
            self.total_programs,
            self.total_skips,
            self.wear.0,
            self.wear.1,
            self.wear.2,
            self.sim_end.as_millis_f64(),
            self.media.program_fails,
            self.media.grown_bad_blocks,
            self.media.factory_bad_blocks,
            self.media.uncorrectable_reads,
            self.media.read_retry_steps,
            self.retry_ns as f64 / 1e6,
            hist,
            self.wait_ms.mean(),
            self.service_ms.mean(),
            self.gc_block_ms.mean(),
            energy.array_fj,
            energy.bus_fj,
        )
    }

    /// The queue-depth-over-time CSV ([`QueueDepthProbe::csv`]) for this
    /// run, rendered over `buckets` equal sim-time windows. The header is
    /// locked by [`QueueDepthProbe::csv_header`].
    pub fn queue_depth_csv(&self, buckets: usize) -> String {
        self.queue_log.csv(buckets)
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{:<9} reqs={:<8} MRT={:>9.4}ms p99={:>9.3}ms lnSDRPP={:>6.2} WAF={:>5.2} GCs={:<6} cb%={:>5.1} erases={}",
            self.ftl_name,
            self.requests_completed,
            self.mean_response_time_ms(),
            self.response_percentile_ms(0.99),
            self.ln_sdrpp(),
            self.waf(),
            self.ftl.gc_invocations,
            self.copyback_fraction() * 100.0,
            self.total_erases,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let mut response_ms = OnlineStats::new();
        let mut hist = Histogram::new(1.0, 32);
        for ms in [0.1, 0.2, 0.3] {
            response_ms.push(ms);
            hist.record(ms * 1000.0);
        }
        RunReport {
            ftl_name: "TEST",
            requests_completed: 3,
            pages_read: 1,
            pages_written: 2,
            response_ms,
            response_hist_us: hist,
            plane_request_counts: vec![10, 20, 30, 40],
            hw: OpCounters::default(),
            ftl: FtlCounters {
                copyback_moves: 3,
                external_moves: 1,
                ..FtlCounters::default()
            },
            total_erases: 5,
            total_programs: 6,
            total_skips: 0,
            wear: (0, 0.5, 2),
            sim_end: SimTime::from_millis(9),
            plane_busy_ns: vec![1_000_000; 4],
            channel_busy_ns: vec![500_000; 2],
            wait_ms: {
                let mut s = OnlineStats::new();
                s.push(0.125);
                s
            },
            service_ms: {
                let mut s = OnlineStats::new();
                s.push(0.25);
                s
            },
            gc_block_ms: OnlineStats::new(),
            media: MediaCounters {
                program_fails: 2,
                uncorrectable_reads: 1,
                read_retry_steps: 4,
                retry_hist: vec![90, 3, 1],
                ..MediaCounters::default()
            },
            retry_ns: 120_000,
            completions: vec![(0, SimTime::ZERO, SimTime::from_micros(100))],
            queue_log: QueueDepthProbe::new(),
            shard_timing: None,
            energy: None,
        }
    }

    #[test]
    fn mrt_is_mean_of_samples() {
        let r = report();
        assert!((r.mean_response_time_ms() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sdrpp_matches_hand_calculation() {
        let r = report();
        // counts 10,20,30,40: mean 25, pop var 125.
        assert!((r.sdrpp() - 125f64.sqrt()).abs() < 1e-9);
        assert!((r.ln_sdrpp() - 125f64.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn waf_and_copyback_fraction() {
        let r = report();
        assert!((r.waf() - 3.0).abs() < 1e-12);
        assert!((r.copyback_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_scheme() {
        assert!(report().summary().contains("TEST"));
    }

    #[test]
    fn queue_depth_csv_has_locked_header_even_when_empty() {
        let csv = report().queue_depth_csv(8);
        assert!(csv.starts_with(QueueDepthProbe::csv_header()));
        assert_eq!(csv.lines().count(), 9);
    }

    #[test]
    fn reliability_fractions() {
        let r = report();
        // 90 clean + 3 + 1 retried + 1 uncorrectable = 95 media reads.
        assert!((r.retry_read_fraction() - 5.0 / 95.0).abs() < 1e-12);
        assert!((r.uncorrectable_fraction() - 1.0 / 95.0).abs() < 1e-12);
    }

    /// The CSV schema is a compatibility contract: pre-fault columns stay
    /// in place, reliability columns append after them. Changing this
    /// header is a breaking change for downstream tooling — update the
    /// schema note in EXPERIMENTS.md if you must.
    #[test]
    fn csv_schema_is_locked() {
        assert_eq!(
            RunReport::csv_header(),
            "ftl,requests,pages_read,pages_written,mrt_ms,p99_ms,ln_sdrpp,waf,\
             gc_invocations,copyback_moves,external_moves,parity_skips,\
             translation_reads,translation_writes,full_merges,partial_merges,\
             switch_merges,total_erases,total_programs,total_skips,\
             wear_min,wear_mean,wear_max,sim_end_ms,\
             recovered_programs,grown_bad_blocks,factory_bad_blocks,\
             uncorrectable_reads,read_retry_steps,retry_ms,retry_hist,\
             wait_mean_ms,service_mean_ms,gc_block_mean_ms,\
             energy_array_fj,energy_bus_fj"
        );
        let header_cols = RunReport::csv_header().split(',').count();
        let row = report().csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        let cols: Vec<&str> = row.split(',').collect();
        // Reliability columns land where the header says they do.
        assert_eq!(cols[24], "2"); // recovered_programs
        assert_eq!(cols[27], "1"); // uncorrectable_reads
                                   // The histogram stays one pipe-joined column in its locked slot.
        assert_eq!(cols[30], "90|3|1", "row was: {row}");
        // Attribution columns append after the reliability block.
        assert_eq!(cols[31], "0.125000"); // wait_mean_ms
        assert_eq!(cols[32], "0.250000"); // service_mean_ms
        assert_eq!(cols[33], "0.000000"); // gc_block_mean_ms (no samples)
                                          // Energy columns append last and are zero when disabled.
        assert_eq!(cols[34], "0"); // energy_array_fj
        assert_eq!(cols[35], "0"); // energy_bus_fj
    }

    /// Enabled energy accounting lands in the appended integer columns
    /// exactly; disabled accounting leaves the row byte-identical to the
    /// pre-energy schema plus two zero columns.
    #[test]
    fn energy_columns_are_exact_integers() {
        let mut r = report();
        r.energy = Some(EnergyTotals {
            array_fj: 123_456_789_000,
            bus_fj: 42,
        });
        let cols: Vec<String> = r.csv_row().split(',').map(str::to_string).collect();
        assert_eq!(cols[34], "123456789000");
        assert_eq!(cols[35], "42");
    }
}

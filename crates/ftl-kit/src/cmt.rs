//! The Cached Mapping Table: a segmented-LRU cache of LPN → PPN entries.
//!
//! Both DLOOP and DFTL keep the working set of the page-mapping table in a
//! small SRAM cache and leave the full table on flash (§III.D: "When the
//! CMT is full, a victim entry will be selected using the segmented least
//! recently used (LRU) algorithm"). Segmented LRU splits the cache into a
//! *probationary* and a *protected* segment: new entries enter probation;
//! a hit promotes an entry to protected; protected overflow demotes its LRU
//! back to probation; eviction takes the probation LRU first. This guards
//! the hot mappings against scan pollution — exactly why the paper picks
//! it for enterprise workloads.
//!
//! Dirty entries (mappings changed since they were loaded) must be written
//! back to their translation page on eviction; the CMT keeps a per-
//! translation-page dirty index so the FTL can batch-flush all dirty
//! siblings of the victim with one translation-page rewrite (the classic
//! DFTL "batch update" optimisation).

use dloop_nand::{Lpn, Ppn};
use std::collections::{BTreeSet, HashMap};

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

#[derive(Debug, Clone)]
struct Node {
    lpn: Lpn,
    ppn: Ppn,
    dirty: bool,
    seg: Segment,
    prev: u32,
    next: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct ListEnds {
    head: u32, // MRU
    tail: u32, // LRU
    len: usize,
}

/// An entry evicted from the CMT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The logical page whose mapping fell out.
    pub lpn: Lpn,
    /// Its physical page at eviction time.
    pub ppn: Ppn,
    /// Whether the mapping changed while cached (needs write-back).
    pub dirty: bool,
}

/// Segmented-LRU cached mapping table.
///
/// ```
/// use dloop_ftl_kit::cmt::CachedMappingTable;
///
/// let mut cmt = CachedMappingTable::new(2, 256);
/// cmt.insert(1, 100, false);
/// cmt.insert(2, 200, false);
/// assert_eq!(cmt.lookup(1), Some(100)); // promoted to protected
/// // Inserting a third entry evicts the probation LRU (lpn 2).
/// let evicted = cmt.insert(3, 300, false).unwrap();
/// assert_eq!(evicted.lpn, 2);
/// ```
#[derive(Debug, Clone)]
pub struct CachedMappingTable {
    nodes: Vec<Node>,
    free: Vec<u32>,
    index: HashMap<Lpn, u32>,
    probation: ListEnds,
    protected: ListEnds,
    capacity: usize,
    protected_cap: usize,
    mappings_per_tpage: u64,
    dirty_index: HashMap<u64, BTreeSet<Lpn>>,
    hits: u64,
    misses: u64,
}

impl CachedMappingTable {
    /// A CMT holding at most `capacity` entries, of which at most
    /// `capacity/2` sit in the protected segment; `mappings_per_tpage`
    /// groups entries by translation page for batched write-back.
    pub fn new(capacity: usize, mappings_per_tpage: u64) -> Self {
        assert!(capacity >= 2, "CMT needs at least two entries");
        assert!(mappings_per_tpage > 0);
        CachedMappingTable {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            index: HashMap::with_capacity(capacity),
            probation: ListEnds {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            protected: ListEnds {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            capacity,
            protected_cap: capacity / 2,
            mappings_per_tpage,
            dirty_index: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The translation page number covering `lpn`.
    pub fn tvpn_of(&self, lpn: Lpn) -> u64 {
        lpn / self.mappings_per_tpage
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// (hits, misses) counters — `lookup` classifies, `peek` does not.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Zero the hit/miss counters — a sharded worker's fork counts pure
    /// deltas, added back at the merge via
    /// [`CachedMappingTable::add_hit_stats`].
    pub fn reset_hit_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Add `(hits, misses)` deltas accumulated by a worker fork.
    pub fn add_hit_stats(&mut self, (hits, misses): (u64, u64)) {
        self.hits += hits;
        self.misses += misses;
    }

    /// Every cached entry as `(lpn, ppn, dirty)`, in unspecified order —
    /// the sharded merge walks a worker's entries and adopts the ones the
    /// worker owned.
    pub fn iter_entries(&self) -> impl Iterator<Item = (Lpn, Ppn, bool)> + '_ {
        self.index.values().map(|&i| {
            let n = &self.nodes[i as usize];
            (n.lpn, n.ppn, n.dirty)
        })
    }

    /// A partial fork for one sharded worker: a fresh table with the same
    /// capacity and translation-page grouping, seeded with exactly the
    /// entries whose LPN the worker `owns`. In the fully-resident regime
    /// the recency order is never consulted, so presence alone makes the
    /// fork behave identically to the full table for owned LPNs — at a
    /// fraction of the clone cost and of the worker's working set.
    /// Hit/miss counters start at zero (the fork counts pure deltas).
    pub fn shard_fork_owned(&self, owns: &dyn Fn(Lpn) -> bool) -> CachedMappingTable {
        let mut fork = CachedMappingTable {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            probation: ListEnds {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            protected: ListEnds {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            capacity: self.capacity,
            protected_cap: self.protected_cap,
            mappings_per_tpage: self.mappings_per_tpage,
            dirty_index: HashMap::new(),
            hits: 0,
            misses: 0,
        };
        for (&lpn, &idx) in &self.index {
            if owns(lpn) {
                let n = &self.nodes[idx as usize];
                fork.adopt(lpn, n.ppn, n.dirty);
            }
        }
        fork
    }

    /// Adopt a worker fork's entry at the sharded merge: update the cached
    /// mapping and dirty flag *without* recency promotion or hit/miss
    /// accounting, inserting if absent. Recency order is deliberately not
    /// reconstructed — the merge only runs in the fully-resident regime
    /// (capacity ≥ LPN space), where eviction order is never consulted.
    ///
    /// Panics if an insert would require an eviction.
    pub fn adopt(&mut self, lpn: Lpn, ppn: Ppn, dirty: bool) {
        if let Some(&idx) = self.index.get(&lpn) {
            let node = &mut self.nodes[idx as usize];
            node.ppn = ppn;
            let was_dirty = node.dirty;
            node.dirty = dirty;
            if dirty && !was_dirty {
                self.mark_dirty(lpn);
            } else if !dirty && was_dirty {
                self.unmark_dirty(lpn);
            }
        } else {
            assert!(
                self.index.len() < self.capacity,
                "adopt into a full CMT would evict"
            );
            let evicted = self.insert(lpn, ppn, dirty);
            debug_assert!(evicted.is_none());
        }
    }

    fn list(&mut self, seg: Segment) -> &mut ListEnds {
        match seg {
            Segment::Probation => &mut self.probation,
            Segment::Protected => &mut self.protected,
        }
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next, seg) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next, n.seg)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        }
        let l = self.list(seg);
        if l.head == idx {
            l.head = next;
        }
        if l.tail == idx {
            l.tail = prev;
        }
        l.len -= 1;
    }

    fn attach_front(&mut self, idx: u32, seg: Segment) {
        let old_head = self.list(seg).head;
        {
            let n = &mut self.nodes[idx as usize];
            n.seg = seg;
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        }
        let l = self.list(seg);
        l.head = idx;
        if l.tail == NIL {
            l.tail = idx;
        }
        l.len += 1;
    }

    fn mark_dirty(&mut self, lpn: Lpn) {
        let tvpn = self.tvpn_of(lpn);
        self.dirty_index.entry(tvpn).or_default().insert(lpn);
    }

    fn unmark_dirty(&mut self, lpn: Lpn) {
        let tvpn = self.tvpn_of(lpn);
        if let Some(set) = self.dirty_index.get_mut(&tvpn) {
            set.remove(&lpn);
            if set.is_empty() {
                self.dirty_index.remove(&tvpn);
            }
        }
    }

    /// A referencing lookup: on hit, promote to the protected segment and
    /// return the mapping. Counts toward hit/miss statistics.
    pub fn lookup(&mut self, lpn: Lpn) -> Option<Ppn> {
        let Some(&idx) = self.index.get(&lpn) else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        self.promote(idx);
        Some(self.nodes[idx as usize].ppn)
    }

    fn promote(&mut self, idx: u32) {
        self.detach(idx);
        self.attach_front(idx, Segment::Protected);
        // Protected overflow demotes its LRU into probation.
        if self.protected.len > self.protected_cap {
            let demote = self.protected.tail;
            debug_assert_ne!(demote, NIL);
            self.detach(demote);
            self.attach_front(demote, Segment::Probation);
        }
    }

    /// Non-referencing read of a cached mapping (no promotion, no stats).
    pub fn peek(&self, lpn: Lpn) -> Option<(Ppn, bool)> {
        self.index
            .get(&lpn)
            .map(|&i| (self.nodes[i as usize].ppn, self.nodes[i as usize].dirty))
    }

    /// Update the mapping of an LPN that is already cached (a write hit):
    /// the entry gets the new PPN, becomes dirty, and is promoted.
    ///
    /// Panics if the LPN is not cached — callers must `lookup` first.
    pub fn update(&mut self, lpn: Lpn, new_ppn: Ppn) {
        let &idx = self.index.get(&lpn).expect("update of uncached mapping");
        let node = &mut self.nodes[idx as usize];
        node.ppn = new_ppn;
        if !node.dirty {
            node.dirty = true;
            self.mark_dirty(lpn);
        }
        self.promote(idx);
    }

    /// Update the mapping of a cached LPN *without* promoting it — used by
    /// GC when it relocates a page: the mapping changes but the host did
    /// not reference it, so its recency must not improve.
    ///
    /// No-op if the LPN is not cached (GC moves uncached pages too).
    pub fn update_in_place(&mut self, lpn: Lpn, new_ppn: Ppn) -> bool {
        let Some(&idx) = self.index.get(&lpn) else {
            return false;
        };
        let node = &mut self.nodes[idx as usize];
        node.ppn = new_ppn;
        if !node.dirty {
            node.dirty = true;
            self.mark_dirty(lpn);
        }
        true
    }

    /// Insert a mapping that is not currently cached. Returns the entry
    /// evicted to make room, if any.
    ///
    /// Panics if the LPN is already cached.
    pub fn insert(&mut self, lpn: Lpn, ppn: Ppn, dirty: bool) -> Option<Evicted> {
        assert!(
            !self.index.contains_key(&lpn),
            "insert of already-cached lpn {lpn}"
        );
        let evicted = if self.index.len() >= self.capacity {
            Some(self.evict_one())
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    lpn,
                    ppn,
                    dirty,
                    seg: Segment::Probation,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    lpn,
                    ppn,
                    dirty,
                    seg: Segment::Probation,
                    prev: NIL,
                    next: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.index.insert(lpn, idx);
        self.attach_front(idx, Segment::Probation);
        if dirty {
            self.mark_dirty(lpn);
        }
        evicted
    }

    fn evict_one(&mut self) -> Evicted {
        // Probation LRU first; fall back to protected LRU if probation is
        // empty (possible after heavy promotion).
        let victim = if self.probation.tail != NIL {
            self.probation.tail
        } else {
            self.protected.tail
        };
        debug_assert_ne!(victim, NIL, "evict from empty cache");
        self.remove_node(victim)
    }

    fn remove_node(&mut self, idx: u32) -> Evicted {
        self.detach(idx);
        let node = &self.nodes[idx as usize];
        let ev = Evicted {
            lpn: node.lpn,
            ppn: node.ppn,
            dirty: node.dirty,
        };
        self.index.remove(&ev.lpn);
        if ev.dirty {
            self.unmark_dirty(ev.lpn);
        }
        self.free.push(idx);
        ev
    }

    /// Remove a specific cached entry (e.g. when GC relocates its
    /// translation page and the FTL re-materialises mappings).
    pub fn remove(&mut self, lpn: Lpn) -> Option<Evicted> {
        let &idx = self.index.get(&lpn)?;
        Some(self.remove_node(idx))
    }

    /// Drain and clean every *dirty* cached mapping belonging to
    /// translation page `tvpn`, returning (lpn, ppn) pairs. The entries
    /// stay cached but are no longer dirty — the caller is about to write
    /// them all into the translation page in one batch.
    pub fn flush_translation_page(&mut self, tvpn: u64) -> Vec<(Lpn, Ppn)> {
        let Some(set) = self.dirty_index.remove(&tvpn) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(set.len());
        for lpn in set {
            let &idx = self.index.get(&lpn).expect("dirty index desync");
            let node = &mut self.nodes[idx as usize];
            debug_assert!(node.dirty);
            node.dirty = false;
            out.push((lpn, node.ppn));
        }
        out
    }

    /// All dirty entries grouped by translation page — used when shutting
    /// down a run to account for outstanding state (and in audits).
    pub fn dirty_tvpns(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.dirty_index.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Audit internal consistency: index ↔ lists ↔ dirty-index agreement.
    pub fn check(&self) -> Result<(), String> {
        if self.probation.len + self.protected.len != self.index.len() {
            return Err("segment lengths disagree with index".into());
        }
        if self.index.len() > self.capacity {
            return Err("over capacity".into());
        }
        let mut seen = 0usize;
        for (ends, seg) in [
            (self.probation, Segment::Probation),
            (self.protected, Segment::Protected),
        ] {
            let mut idx = ends.head;
            let mut prev = NIL;
            while idx != NIL {
                let n = &self.nodes[idx as usize];
                if n.seg != seg {
                    return Err("node in wrong segment".into());
                }
                if n.prev != prev {
                    return Err("broken prev link".into());
                }
                if self.index.get(&n.lpn) != Some(&idx) {
                    return Err("index desync".into());
                }
                let dirty_indexed = self
                    .dirty_index
                    .get(&self.tvpn_of(n.lpn))
                    .is_some_and(|s| s.contains(&n.lpn));
                if n.dirty != dirty_indexed {
                    return Err(format!("dirty index desync for lpn {}", n.lpn));
                }
                prev = idx;
                idx = n.next;
                seen += 1;
            }
            if ends.tail != prev {
                return Err("tail mismatch".into());
            }
        }
        if seen != self.index.len() {
            return Err("orphan index entries".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmt(cap: usize) -> CachedMappingTable {
        CachedMappingTable::new(cap, 256)
    }

    #[test]
    fn insert_lookup_round_trip() {
        let mut c = cmt(4);
        assert_eq!(c.insert(10, 100, false), None);
        assert_eq!(c.lookup(10), Some(100));
        assert_eq!(c.lookup(11), None);
        assert_eq!(c.hit_stats(), (1, 1));
        c.check().unwrap();
    }

    #[test]
    fn eviction_takes_probation_lru() {
        let mut c = cmt(3);
        c.insert(1, 11, false);
        c.insert(2, 22, false);
        c.insert(3, 33, false);
        // Hit 1 so it is protected; inserting 4 must evict 2 (probation LRU).
        c.lookup(1);
        let ev = c.insert(4, 44, false).unwrap();
        assert_eq!(ev.lpn, 2);
        assert_eq!(c.len(), 3);
        c.check().unwrap();
    }

    #[test]
    fn protected_overflow_demotes() {
        let mut c = cmt(4); // protected cap = 2
        for lpn in 0..4 {
            c.insert(lpn, lpn * 10, false);
        }
        // Promote three entries; the first promoted gets demoted back.
        c.lookup(0);
        c.lookup(1);
        c.lookup(2);
        c.check().unwrap();
        // Eviction order should now prefer probation (3, then demoted 0).
        let ev = c.insert(9, 90, false).unwrap();
        assert_eq!(ev.lpn, 3);
        let ev = c.insert(10, 100, false).unwrap();
        assert_eq!(ev.lpn, 0);
        c.check().unwrap();
    }

    #[test]
    fn update_sets_dirty_and_new_ppn() {
        let mut c = cmt(4);
        c.insert(5, 50, false);
        c.update(5, 51);
        assert_eq!(c.peek(5), Some((51, true)));
        assert_eq!(c.dirty_tvpns(), vec![0]);
        c.check().unwrap();
    }

    #[test]
    fn dirty_eviction_reports_dirty() {
        let mut c = cmt(2);
        c.insert(1, 10, true);
        c.insert(2, 20, false);
        let ev = c.insert(3, 30, false).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.lpn, 1);
        // Its dirty-index entry is gone.
        assert!(c.dirty_tvpns().is_empty());
        c.check().unwrap();
    }

    #[test]
    fn flush_translation_page_batches_siblings() {
        let mut c = cmt(8);
        // LPNs 0,1,2 share tvpn 0 (256 mappings per page); 300 is tvpn 1.
        c.insert(0, 100, true);
        c.insert(1, 101, true);
        c.insert(2, 102, false);
        c.insert(300, 103, true);
        let flushed = c.flush_translation_page(0);
        assert_eq!(flushed, vec![(0, 100), (1, 101)]);
        // Entries stay cached, now clean.
        assert_eq!(c.peek(0), Some((100, false)));
        assert_eq!(c.dirty_tvpns(), vec![1]);
        c.check().unwrap();
    }

    #[test]
    fn remove_specific_entry() {
        let mut c = cmt(4);
        c.insert(1, 10, true);
        let ev = c.remove(1).unwrap();
        assert_eq!((ev.lpn, ev.ppn, ev.dirty), (1, 10, true));
        assert!(c.is_empty());
        assert!(c.remove(1).is_none());
        c.check().unwrap();
    }

    #[test]
    fn eviction_falls_back_to_protected() {
        let mut c = cmt(2); // protected cap = 1
        c.insert(1, 10, false);
        c.insert(2, 20, false);
        c.lookup(1);
        c.lookup(2); // 2 promoted, 1 demoted -> probation: [1], protected: [2]
        let ev = c.insert(3, 30, false).unwrap();
        assert_eq!(ev.lpn, 1);
        // Now probation holds 3, protected holds 2. Promote 3 as well:
        c.lookup(3); // protected cap 1 -> demotes 2.
        let ev = c.insert(4, 40, false).unwrap();
        assert_eq!(ev.lpn, 2);
        c.check().unwrap();
    }

    #[test]
    fn update_in_place_does_not_promote() {
        let mut c = cmt(3);
        c.insert(1, 10, false);
        c.insert(2, 20, false);
        c.insert(3, 30, false);
        // GC relocates lpn 1's page; recency must not change, so the next
        // eviction still takes lpn 1 (probation LRU).
        assert!(c.update_in_place(1, 11));
        assert_eq!(c.peek(1), Some((11, true)));
        let ev = c.insert(4, 40, false).unwrap();
        assert_eq!(ev.lpn, 1);
        assert!(ev.dirty);
        // Uncached lpn is a no-op.
        assert!(!c.update_in_place(99, 1));
        c.check().unwrap();
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut c = cmt(16);
        for i in 0..1000u64 {
            let lpn = (i * 7) % 64;
            if c.peek(lpn).is_some() {
                if i % 3 == 0 {
                    c.update(lpn, i);
                } else {
                    c.lookup(lpn);
                }
            } else {
                c.insert(lpn, i, i % 2 == 0);
            }
            if i % 37 == 0 {
                c.flush_translation_page(0);
            }
            c.check().unwrap();
        }
        assert!(c.len() <= 16);
    }
}

//! Experiment configuration: Table I of the paper as a value.

use dloop_nand::{EnergyConfig, FaultConfig, Geometry, TimingConfig};

/// Which FTL scheme to instantiate (construction lives with the scheme
/// crates; this enum just names them for configs and harnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FtlKind {
    /// The paper's contribution (§III).
    Dloop,
    /// DLOOP with hot-plane-aware extra blocks (the paper's future work).
    DloopHot,
    /// Gupta et al.'s demand-cached page-mapping FTL.
    Dftl,
    /// Lee et al.'s fully-associative log-block hybrid FTL.
    Fast,
    /// Page mapping with unlimited SRAM (ablation bound).
    IdealPageMap,
}

impl FtlKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FtlKind::Dloop => "DLOOP",
            FtlKind::DloopHot => "DLOOP-HOT",
            FtlKind::Dftl => "DFTL",
            FtlKind::Fast => "FAST",
            FtlKind::IdealPageMap => "IDEAL",
        }
    }

    /// The three schemes the paper evaluates (Figs. 8-10).
    pub fn paper_set() -> [FtlKind; 3] {
        [FtlKind::Dloop, FtlKind::Dftl, FtlKind::Fast]
    }
}

/// Full device + FTL configuration.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// User capacity in GB (Table I: fixed 8, varied 4-64).
    pub capacity_gb: u32,
    /// Page size in KB (Table I: fixed 2, varied 2-16).
    pub page_kb: u32,
    /// Extra blocks as a percentage of data blocks (Table I: fixed 3,
    /// varied 3-10).
    pub extra_pct: f64,
    /// Channels (paper Fig. 1a: 8).
    pub channels: u32,
    /// Packages per channel.
    pub packages_per_channel: u32,
    /// Chips per package.
    pub chips_per_package: u32,
    /// Dies per chip.
    pub dies_per_chip: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// NAND latencies.
    pub timing: TimingConfig,
    /// Ablation: serialise the planes of a die (no plane-level parallelism).
    pub die_serialized: bool,
    /// Cached Mapping Table capacity, in entries.
    pub cmt_capacity: usize,
    /// GC trigger: collect when a plane's free pool drops below this
    /// (§III.C: "set to 3 in our experiments").
    pub gc_threshold: u32,
    /// Ablation: let DLOOP use copy-back for GC moves (true in the paper).
    pub copyback_enabled: bool,
    /// Ablation: spread translation pages across planes (true for DLOOP;
    /// DFTL clusters them from plane 0 regardless of this flag).
    pub spread_translation: bool,
    /// Test hook: force (data, extra) blocks per plane instead of deriving
    /// them from `capacity_gb`, so GC pressure is reachable in unit tests.
    pub blocks_per_plane_override: Option<(u32, u32)>,
    /// Blocks wear out after this many erase cycles and are retired (bad
    /// blocks). None = infinite endurance (the paper's timing experiments
    /// do not model wear-out; the endurance example and tests do).
    pub erase_limit: Option<u32>,
    /// Media-fault plan attached to the flash at device build time.
    /// [`FaultConfig::none`] (the default) is the exact fault-free device
    /// the simulator modelled before the reliability subsystem existed —
    /// no media model is attached at all, so the hot path is unchanged.
    pub fault: FaultConfig,
    /// Serve GC/merge work in the background: it still occupies planes and
    /// buses (delaying later operations) but no longer gates the
    /// triggering request's response. The paper's simulator — like
    /// FlashSim — performs reclamation synchronously, so this is false by
    /// default and exists as an ablation of a more modern controller.
    pub background_gc: bool,
    /// Integer-exact energy accounting (see `dloop_nand::energy`). `None`
    /// (the default) disables accounting entirely: the run report carries
    /// no energy totals and every fingerprint is bit-identical to a run
    /// without this field — energy is observation, never perturbation.
    pub energy: Option<EnergyConfig>,
}

impl SsdConfig {
    /// Table I fixed parameters.
    pub fn paper_default() -> Self {
        SsdConfig {
            capacity_gb: 8,
            page_kb: 2,
            extra_pct: 3.0,
            channels: 8,
            packages_per_channel: 1,
            chips_per_package: 1,
            dies_per_chip: 2,
            planes_per_die: 4,
            timing: TimingConfig::paper_default(),
            die_serialized: false,
            cmt_capacity: 4096,
            gc_threshold: 3,
            copyback_enabled: true,
            spread_translation: true,
            blocks_per_plane_override: None,
            erase_limit: None,
            fault: FaultConfig::none(),
            background_gc: false,
            energy: None,
        }
    }

    /// A scaled-down configuration for fast tests: same hierarchy shape,
    /// tiny capacity.
    pub fn tiny_test() -> Self {
        SsdConfig {
            capacity_gb: 1,
            channels: 2,
            packages_per_channel: 1,
            chips_per_package: 1,
            dies_per_chip: 1,
            planes_per_die: 2,
            cmt_capacity: 256,
            ..Self::paper_default()
        }
    }

    /// Same config with a different capacity (Fig. 8 sweep).
    pub fn with_capacity_gb(mut self, gb: u32) -> Self {
        self.capacity_gb = gb;
        self
    }

    /// Same config with a different page size (Fig. 9 sweep).
    pub fn with_page_kb(mut self, kb: u32) -> Self {
        self.page_kb = kb;
        self
    }

    /// Same config with a different extra-block percentage (Fig. 10 sweep).
    pub fn with_extra_pct(mut self, pct: f64) -> Self {
        self.extra_pct = pct;
        self
    }

    /// Same config with a media-fault plan (reliability experiments).
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Same config with integer energy accounting enabled (power
    /// experiments and the `PowerCap` scheduling mode).
    pub fn with_energy(mut self, energy: EnergyConfig) -> Self {
        self.energy = Some(energy);
        self
    }

    /// Materialise the geometry this configuration describes.
    pub fn geometry(&self) -> Geometry {
        let mut g = Geometry::build_with_hierarchy(
            self.capacity_gb,
            self.page_kb,
            self.extra_pct,
            self.channels,
            self.packages_per_channel,
            self.chips_per_package,
            self.dies_per_chip,
            self.planes_per_die,
        );
        if let Some((data, extra)) = self.blocks_per_plane_override {
            g.data_blocks_per_plane = data;
            g.blocks_per_plane = data + extra;
        }
        g
    }

    /// A micro configuration whose planes hold only a handful of blocks,
    /// so garbage collection is reachable within a few hundred writes.
    /// Used throughout the test suites.
    pub fn micro_gc_test() -> Self {
        SsdConfig {
            blocks_per_plane_override: Some((12, 4)),
            cmt_capacity: 64,
            ..Self::tiny_test()
        }
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry_matches_table1() {
        let c = SsdConfig::paper_default();
        let g = c.geometry();
        assert_eq!(g.page_size, 2048);
        assert_eq!(g.pages_per_block, 64);
        assert_eq!(g.total_planes(), 64);
        assert_eq!(g.user_capacity_bytes(), 8 << 30);
    }

    #[test]
    fn sweep_builders() {
        let c = SsdConfig::paper_default()
            .with_capacity_gb(64)
            .with_page_kb(4)
            .with_extra_pct(10.0);
        assert_eq!(c.capacity_gb, 64);
        assert_eq!(c.page_kb, 4);
        assert_eq!(c.extra_pct, 10.0);
        let g = c.geometry();
        assert_eq!(g.user_capacity_bytes(), 64 << 30);
        assert_eq!(g.page_size, 4096);
    }

    #[test]
    fn ftl_kind_names() {
        assert_eq!(FtlKind::Dloop.name(), "DLOOP");
        assert_eq!(
            FtlKind::paper_set().map(|k| k.name()),
            ["DLOOP", "DFTL", "FAST"]
        );
    }
}

//! Model-based property test: the segmented-LRU Cached Mapping Table must
//! behave like a reference cache — same hit/miss classification, same
//! contents — under arbitrary operation sequences, while never exceeding
//! capacity and always passing its structural audit.

use dloop_ftl_kit::cmt::CachedMappingTable;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum CmtOp {
    Lookup(u64),
    Insert(u64, u64, bool),
    Update(u64, u64),
    UpdateInPlace(u64, u64),
    Remove(u64),
    Flush(u64),
}

fn op() -> impl Strategy<Value = CmtOp> {
    prop_oneof![
        3 => (0u64..128).prop_map(CmtOp::Lookup),
        3 => (0u64..128, 0u64..10_000, any::<bool>())
            .prop_map(|(l, p, d)| CmtOp::Insert(l, p, d)),
        2 => (0u64..128, 0u64..10_000).prop_map(|(l, p)| CmtOp::Update(l, p)),
        1 => (0u64..128, 0u64..10_000).prop_map(|(l, p)| CmtOp::UpdateInPlace(l, p)),
        1 => (0u64..128).prop_map(CmtOp::Remove),
        1 => (0u64..4).prop_map(CmtOp::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn cmt_matches_reference_model(
        cap in 2usize..24,
        ops in proptest::collection::vec(op(), 1..250),
    ) {
        let mut cmt = CachedMappingTable::new(cap, 32);
        // The model tracks membership and values only (eviction ORDER is
        // the CMT's own business; capacity and coherence are the law).
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();

        for o in ops {
            match o {
                CmtOp::Lookup(l) => {
                    let got = cmt.lookup(l);
                    let want = model.get(&l).map(|&(p, _)| p);
                    prop_assert_eq!(got, want, "lookup({}) diverged", l);
                }
                CmtOp::Insert(l, p, d) => {
                    if model.contains_key(&l) { continue; }
                    let evicted = cmt.insert(l, p, d);
                    model.insert(l, (p, d));
                    if let Some(ev) = evicted {
                        let (mp, md) = model.remove(&ev.lpn)
                            .expect("evicted something the model lacks");
                        prop_assert_eq!(ev.ppn, mp);
                        prop_assert_eq!(ev.dirty, md);
                    }
                }
                CmtOp::Update(l, p) => {
                    if !model.contains_key(&l) { continue; }
                    cmt.update(l, p);
                    model.insert(l, (p, true));
                }
                CmtOp::UpdateInPlace(l, p) => {
                    let did = cmt.update_in_place(l, p);
                    prop_assert_eq!(did, model.contains_key(&l));
                    if did {
                        model.insert(l, (p, true));
                    }
                }
                CmtOp::Remove(l) => {
                    let got = cmt.remove(l);
                    let want = model.remove(&l);
                    prop_assert_eq!(got.map(|e| (e.ppn, e.dirty)), want);
                }
                CmtOp::Flush(tvpn) => {
                    let flushed = cmt.flush_translation_page(tvpn);
                    for (l, p) in flushed {
                        let entry = model.get_mut(&l).expect("flushed unknown entry");
                        prop_assert_eq!(entry.0, p);
                        prop_assert!(entry.1, "flushed a clean entry");
                        entry.1 = false;
                    }
                }
            }
            prop_assert!(cmt.len() <= cap);
            prop_assert_eq!(cmt.len(), model.len());
            cmt.check().map_err(TestCaseError::fail)?;
        }

        // Final coherence sweep.
        for (&l, &(p, d)) in &model {
            prop_assert_eq!(cmt.peek(l), Some((p, d)));
        }
    }
}

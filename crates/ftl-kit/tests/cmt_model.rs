//! Model-based property test: the segmented-LRU Cached Mapping Table must
//! behave like a reference cache — same hit/miss classification, same
//! contents — under arbitrary operation sequences, while never exceeding
//! capacity and always passing its structural audit.
//!
//! Runs on `dloop_simkit::check` (the in-tree property harness); failures
//! print a `SIMKIT_CHECK_REPLAY` seed for deterministic replay.

use dloop_ftl_kit::cmt::CachedMappingTable;
use dloop_simkit::check::{self, Checker, Generator};
use dloop_simkit::{check_assert, check_assert_eq};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum CmtOp {
    Lookup(u64),
    Insert(u64, u64, bool),
    Update(u64, u64),
    UpdateInPlace(u64, u64),
    Remove(u64),
    Flush(u64),
}

fn op() -> check::BoxedGenerator<CmtOp> {
    check::weighted(vec![
        (3, check::u64s(0..128).map(CmtOp::Lookup).boxed()),
        (
            3,
            (check::u64s(0..128), check::u64s(0..10_000), check::bools())
                .map(|(l, p, d)| CmtOp::Insert(l, p, d))
                .boxed(),
        ),
        (
            2,
            (check::u64s(0..128), check::u64s(0..10_000))
                .map(|(l, p)| CmtOp::Update(l, p))
                .boxed(),
        ),
        (
            1,
            (check::u64s(0..128), check::u64s(0..10_000))
                .map(|(l, p)| CmtOp::UpdateInPlace(l, p))
                .boxed(),
        ),
        (1, check::u64s(0..128).map(CmtOp::Remove).boxed()),
        (1, check::u64s(0..4).map(CmtOp::Flush).boxed()),
    ])
    .boxed()
}

#[test]
fn cmt_matches_reference_model() {
    let gen = (check::usizes(2..24), check::vec_of(op(), 1..250));
    Checker::new().cases(128).run(&gen, |(cap, ops)| {
        let cap = *cap;
        let mut cmt = CachedMappingTable::new(cap, 32);
        // The model tracks membership and values only (eviction ORDER is
        // the CMT's own business; capacity and coherence are the law).
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();

        for o in ops {
            match *o {
                CmtOp::Lookup(l) => {
                    let got = cmt.lookup(l);
                    let want = model.get(&l).map(|&(p, _)| p);
                    check_assert_eq!(got, want, "lookup({}) diverged", l);
                }
                CmtOp::Insert(l, p, d) => {
                    if model.contains_key(&l) {
                        continue;
                    }
                    let evicted = cmt.insert(l, p, d);
                    model.insert(l, (p, d));
                    if let Some(ev) = evicted {
                        let Some((mp, md)) = model.remove(&ev.lpn) else {
                            return Err(format!("evicted lpn {} which the model lacks", ev.lpn));
                        };
                        check_assert_eq!(ev.ppn, mp);
                        check_assert_eq!(ev.dirty, md);
                    }
                }
                CmtOp::Update(l, p) => {
                    if !model.contains_key(&l) {
                        continue;
                    }
                    cmt.update(l, p);
                    model.insert(l, (p, true));
                }
                CmtOp::UpdateInPlace(l, p) => {
                    let did = cmt.update_in_place(l, p);
                    check_assert_eq!(did, model.contains_key(&l));
                    if did {
                        model.insert(l, (p, true));
                    }
                }
                CmtOp::Remove(l) => {
                    let got = cmt.remove(l);
                    let want = model.remove(&l);
                    check_assert_eq!(got.map(|e| (e.ppn, e.dirty)), want);
                }
                CmtOp::Flush(tvpn) => {
                    let flushed = cmt.flush_translation_page(tvpn);
                    for (l, p) in flushed {
                        let Some(entry) = model.get_mut(&l) else {
                            return Err(format!("flushed unknown entry {l}"));
                        };
                        check_assert_eq!(entry.0, p);
                        check_assert!(entry.1, "flushed a clean entry");
                        entry.1 = false;
                    }
                }
            }
            check_assert!(cmt.len() <= cap);
            check_assert_eq!(cmt.len(), model.len());
            cmt.check()?;
        }

        // Final coherence sweep.
        for (&l, &(p, d)) in &model {
            check_assert_eq!(cmt.peek(l), Some((p, d)));
        }
        Ok(())
    });
}

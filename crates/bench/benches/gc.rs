//! Garbage-collection benchmark: wall cost of simulating GC-heavy update
//! bursts for each reclamation style (copy-back vs external vs DFTL's
//! global greedy).

use dloop_bench::{build_ftl, RunSpec};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::{RunConfig, SsdDevice};
use dloop_ftl_kit::request::{HostOp, HostRequest};
use dloop_simkit::bench::Bench;
use dloop_simkit::{SimRng, SimTime};
use dloop_workloads::synth::sequential_fill;

fn gc_burst(kind: FtlKind, copyback: bool) -> u64 {
    let mut config = SsdConfig::micro_gc_test();
    config.copyback_enabled = copyback;
    let mut device = SsdDevice::new(config.clone(), build_ftl(kind, &config));
    let user = device.flash().geometry().user_pages();
    device.warm_up(&sequential_fill(user, 0.8, 16).requests);
    let mut rng = SimRng::new(5);
    let reqs: Vec<HostRequest> = (0..4000)
        .map(|i| HostRequest {
            arrival: SimTime::from_micros(i * 100),
            lpn: rng.below(user * 3 / 4),
            pages: 1,
            op: HostOp::Write,
            ..HostRequest::default()
        })
        .collect();
    let report = device.run_with(&reqs, RunConfig::open());
    report.total_erases
}

fn main() {
    let mut bench = Bench::new("gc_burst_4k_updates").samples(10);
    bench.case("dloop_copyback", || gc_burst(FtlKind::Dloop, true));
    bench.case("dloop_external", || gc_burst(FtlKind::Dloop, false));
    bench.case("dftl_global", || gc_burst(FtlKind::Dftl, true));
    bench.case("ideal_pagemap", || gc_burst(FtlKind::IdealPageMap, true));

    // End-to-end RunSpec execution (what the figure harness does per cell).
    let mut bench = Bench::new("runspec").samples(10);
    bench.case("financial1_10k", || {
        RunSpec {
            config: SsdConfig::micro_gc_test(),
            kind: FtlKind::Dloop,
            profile: {
                let mut p = dloop_workloads::WorkloadProfile::financial1();
                p.footprint_bytes = 1 << 28;
                p
            },
            max_requests: 10_000,
            seed: 1,
            fill_fraction: 0.0,
        }
        .run()
        .requests_completed
    });
}

//! Simulator throughput: wall-clock requests/second each FTL sustains —
//! the practical limit on how big an experiment grid can get.

use dloop_bench::build_ftl;
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::{RunConfig, SsdDevice};
use dloop_simkit::bench::Bench;
use dloop_workloads::WorkloadProfile;

fn main() {
    const N: u64 = 20_000;
    let config = SsdConfig::paper_default().with_capacity_gb(1);
    let mut profile = WorkloadProfile::financial1();
    profile.footprint_bytes = 1 << 30;
    let trace = profile.generate_scaled(7, config.geometry().page_size, N);

    let mut bench = Bench::new("ftl_throughput")
        .samples(10)
        .throughput_elements(N);
    for kind in [
        FtlKind::Dloop,
        FtlKind::Dftl,
        FtlKind::Fast,
        FtlKind::IdealPageMap,
    ] {
        bench.case(kind.name(), || {
            let mut device = SsdDevice::new(config.clone(), build_ftl(kind, &config));
            device
                .run_with(&trace.requests, RunConfig::open())
                .requests_completed
        });
    }
}

//! Workload-generator throughput: requests generated per second for each
//! Table II profile and the Zipf sampler itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dloop_simkit::SimRng;
use dloop_workloads::{WorkloadProfile, Zipf};

fn bench_profiles(c: &mut Criterion) {
    const N: u64 = 50_000;
    let mut group = c.benchmark_group("generate_50k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N));
    for profile in WorkloadProfile::all_paper() {
        group.bench_function(profile.name, |b| {
            b.iter(|| profile.generate_scaled(black_box(3), 2048, N).len())
        });
    }
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(1 << 20, 0.99);
    let mut rng = SimRng::new(9);
    c.bench_function("zipf_sample", |b| b.iter(|| z.sample(&mut rng)));
}

criterion_group!(benches, bench_profiles, bench_zipf);
criterion_main!(benches);

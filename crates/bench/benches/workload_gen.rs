//! Workload-generator throughput: requests generated per second for each
//! Table II profile and the Zipf sampler itself.

use dloop_simkit::bench::{black_box, Bench};
use dloop_simkit::SimRng;
use dloop_workloads::{WorkloadProfile, Zipf};

fn main() {
    const N: u64 = 50_000;
    let mut bench = Bench::new("generate_50k")
        .samples(10)
        .throughput_elements(N);
    for profile in WorkloadProfile::all_paper() {
        bench.case(profile.name, || {
            profile.generate_scaled(black_box(3), 2048, N).len()
        });
    }

    let mut bench = Bench::new("zipf");
    let z = Zipf::new(1 << 20, 0.99);
    let mut rng = SimRng::new(9);
    bench.case("zipf_sample", || z.sample(&mut rng));
}

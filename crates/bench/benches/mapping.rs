//! Micro-benchmarks of the mapping structures: the segmented-LRU Cached
//! Mapping Table and the page directory.

use dloop_ftl_kit::cmt::CachedMappingTable;
use dloop_ftl_kit::dir::PageDirectory;
use dloop_nand::Geometry;
use dloop_simkit::bench::{black_box, Bench};

fn bench_cmt(bench: &mut Bench) {
    {
        let mut cmt = CachedMappingTable::new(4096, 256);
        for i in 0..4096 {
            cmt.insert(i, i * 10, false);
        }
        let mut lpn = 0u64;
        bench.case("hit_lookup", || {
            let got = cmt.lookup(black_box(lpn % 4096));
            lpn += 1;
            got
        });
    }

    {
        let mut cmt = CachedMappingTable::new(4096, 256);
        let mut lpn = 0u64;
        bench.case("miss_insert_evict", || {
            // Always-miss workload: every insert evicts once warm.
            if cmt.peek(lpn).is_none() {
                cmt.insert(lpn, lpn, lpn.is_multiple_of(2));
            }
            lpn += 1;
        });
    }

    {
        let mut cmt = CachedMappingTable::new(4096, 256);
        for i in 0..4096 {
            cmt.insert(i, i, false);
        }
        let mut lpn = 0u64;
        bench.case("update_dirty", || {
            cmt.update(black_box(lpn % 4096), lpn);
            lpn += 1;
        });
    }

    {
        let mut cmt = CachedMappingTable::new(4096, 256);
        for i in 0..4096 {
            cmt.insert(i, i, false);
        }
        let mut round = 0u64;
        bench.case("flush_translation_page", || {
            // Dirty one tvpn's worth, then batch-flush it.
            let base = (round % 16) * 256;
            for k in 0..8 {
                cmt.update(base + k, round);
            }
            round += 1;
            cmt.flush_translation_page(base / 256)
        });
    }
}

fn bench_dir(bench: &mut Bench) {
    let geometry = Geometry::build(1, 2, 5.0);
    let mut dir = PageDirectory::new(&geometry);
    let n = geometry.total_physical_pages();
    let mut ppn = 0u64;
    bench.case("dir_set_clear_owner", || {
        dir.set_data(ppn % n, ppn);
        let o = dir.owner(black_box(ppn % n));
        dir.clear(ppn % n);
        ppn += 1;
        o
    });
}

fn main() {
    let mut bench = Bench::new("mapping");
    bench_cmt(&mut bench);
    bench_dir(&mut bench);
}

//! Micro-benchmarks of the mapping structures: the segmented-LRU Cached
//! Mapping Table and the page directory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dloop_ftl_kit::cmt::CachedMappingTable;
use dloop_ftl_kit::dir::PageDirectory;
use dloop_nand::Geometry;

fn bench_cmt(c: &mut Criterion) {
    let mut group = c.benchmark_group("cmt");

    group.bench_function("hit_lookup", |b| {
        let mut cmt = CachedMappingTable::new(4096, 256);
        for i in 0..4096 {
            cmt.insert(i, i * 10, false);
        }
        let mut lpn = 0u64;
        b.iter(|| {
            let got = cmt.lookup(black_box(lpn % 4096));
            lpn += 1;
            got
        });
    });

    group.bench_function("miss_insert_evict", |b| {
        let mut cmt = CachedMappingTable::new(4096, 256);
        let mut lpn = 0u64;
        b.iter(|| {
            // Always-miss workload: every insert evicts once warm.
            if cmt.peek(lpn).is_none() {
                cmt.insert(lpn, lpn, lpn.is_multiple_of(2));
            }
            lpn += 1;
        });
    });

    group.bench_function("update_dirty", |b| {
        let mut cmt = CachedMappingTable::new(4096, 256);
        for i in 0..4096 {
            cmt.insert(i, i, false);
        }
        let mut lpn = 0u64;
        b.iter(|| {
            cmt.update(black_box(lpn % 4096), lpn);
            lpn += 1;
        });
    });

    group.bench_function("flush_translation_page", |b| {
        let mut cmt = CachedMappingTable::new(4096, 256);
        for i in 0..4096 {
            cmt.insert(i, i, false);
        }
        let mut round = 0u64;
        b.iter(|| {
            // Dirty one tvpn's worth, then batch-flush it.
            let base = (round % 16) * 256;
            for k in 0..8 {
                cmt.update(base + k, round);
            }
            round += 1;
            cmt.flush_translation_page(base / 256)
        });
    });

    group.finish();
}

fn bench_dir(c: &mut Criterion) {
    let geometry = Geometry::build(1, 2, 5.0);
    let mut group = c.benchmark_group("page_directory");
    group.bench_function("set_clear_owner", |b| {
        let mut dir = PageDirectory::new(&geometry);
        let n = geometry.total_physical_pages();
        let mut ppn = 0u64;
        b.iter(|| {
            dir.set_data(ppn % n, ppn);
            let o = dir.owner(black_box(ppn % n));
            dir.clear(ppn % n);
            ppn += 1;
            o
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cmt, bench_dir);
criterion_main!(benches);

//! Micro-benchmark of the hardware model's operation dispatch: how fast
//! the simulator itself executes (wall time per simulated flash op), and
//! the relative cost of each operation type's bookkeeping.

use dloop_nand::{Geometry, HardwareModel, TimingConfig};
use dloop_simkit::bench::{black_box, Bench};
use dloop_simkit::SimTime;

fn main() {
    let geometry = Geometry::paper_default();
    let mut bench = Bench::new("hardware_ops");

    {
        let mut hw = HardwareModel::new(&geometry, TimingConfig::paper_default(), false);
        let mut t = SimTime::ZERO;
        let mut plane = 0;
        bench.case("exec_read", || {
            let c = hw.exec_read(black_box(plane), t);
            plane = (plane + 1) % geometry.total_planes();
            t = c.start;
        });
    }

    {
        let mut hw = HardwareModel::new(&geometry, TimingConfig::paper_default(), false);
        let mut t = SimTime::ZERO;
        let mut plane = 0;
        bench.case("exec_write", || {
            let c = hw.exec_write(black_box(plane), t);
            plane = (plane + 1) % geometry.total_planes();
            t = c.start;
        });
    }

    {
        let mut hw = HardwareModel::new(&geometry, TimingConfig::paper_default(), false);
        let mut t = SimTime::ZERO;
        let mut plane = 0;
        bench.case("exec_copyback", || {
            let c = hw.exec_copyback(black_box(plane), t);
            plane = (plane + 1) % geometry.total_planes();
            t = c.start;
        });
    }

    {
        let mut hw = HardwareModel::new(&geometry, TimingConfig::paper_default(), false);
        let mut t = SimTime::ZERO;
        let mut plane = 0;
        bench.case("exec_interplane_copy", || {
            let dst = (plane + 1) % geometry.total_planes();
            let c = hw.exec_interplane_copy(black_box(plane), dst, t);
            plane = dst;
            t = c.start;
        });
    }
}

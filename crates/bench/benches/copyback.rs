//! Micro-benchmark of the hardware model's operation dispatch: how fast
//! the simulator itself executes (wall time per simulated flash op), and
//! the relative cost of each operation type's bookkeeping.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dloop_nand::{Geometry, HardwareModel, TimingConfig};
use dloop_simkit::SimTime;

fn bench_ops(c: &mut Criterion) {
    let geometry = Geometry::paper_default();
    let mut group = c.benchmark_group("hardware_ops");

    group.bench_function("exec_read", |b| {
        let mut hw = HardwareModel::new(&geometry, TimingConfig::paper_default(), false);
        let mut t = SimTime::ZERO;
        let mut plane = 0;
        b.iter(|| {
            let c = hw.exec_read(black_box(plane), t);
            plane = (plane + 1) % geometry.total_planes();
            t = c.start;
        });
    });

    group.bench_function("exec_write", |b| {
        let mut hw = HardwareModel::new(&geometry, TimingConfig::paper_default(), false);
        let mut t = SimTime::ZERO;
        let mut plane = 0;
        b.iter(|| {
            let c = hw.exec_write(black_box(plane), t);
            plane = (plane + 1) % geometry.total_planes();
            t = c.start;
        });
    });

    group.bench_function("exec_copyback", |b| {
        let mut hw = HardwareModel::new(&geometry, TimingConfig::paper_default(), false);
        let mut t = SimTime::ZERO;
        let mut plane = 0;
        b.iter(|| {
            let c = hw.exec_copyback(black_box(plane), t);
            plane = (plane + 1) % geometry.total_planes();
            t = c.start;
        });
    });

    group.bench_function("exec_interplane_copy", |b| {
        let mut hw = HardwareModel::new(&geometry, TimingConfig::paper_default(), false);
        let mut t = SimTime::ZERO;
        let mut plane = 0;
        b.iter(|| {
            let dst = (plane + 1) % geometry.total_planes();
            let c = hw.exec_interplane_copy(black_box(plane), dst, t);
            plane = dst;
            t = c.start;
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);

//! Micro-benchmark of the fault plan: how much deciding a media outcome
//! costs per operation, and what the zero-BER hot path (a null plan never
//! hashes) saves. Also the timing model's read-retry ladder dispatch.

use dloop_nand::{FaultConfig, FaultPlan, Geometry, HardwareModel, MediaModel, TimingConfig};
use dloop_simkit::bench::{black_box, Bench};
use dloop_simkit::SimTime;

fn main() {
    let mut bench = Bench::new("fault_plan");

    {
        let plan = FaultPlan::new(FaultConfig::storm(7));
        let mut ppn = 0u64;
        bench.case("read_outcome_storm", || {
            let o = plan.read_outcome(black_box(ppn), 3, 10);
            ppn = (ppn + 1) % 1_000_000;
            o
        });
    }

    {
        let plan = FaultPlan::new(FaultConfig::light(7));
        let mut ppn = 0u64;
        bench.case("read_outcome_light", || {
            let o = plan.read_outcome(black_box(ppn), 3, 10);
            ppn = (ppn + 1) % 1_000_000;
            o
        });
    }

    {
        // The fault-free fast path: a null plan must cost next to nothing,
        // since every pre-fault simulation pays it on every operation.
        let mut media = MediaModel::new(FaultPlan::new(FaultConfig::none()), 1_000_000);
        let mut ppn = 0u64;
        bench.case("media_read_null_plan", || {
            let o = media.read(black_box(ppn), 3);
            ppn = (ppn + 1) % 1_000_000;
            o
        });
    }

    {
        let mut media = MediaModel::new(FaultPlan::new(FaultConfig::storm(7)), 1_000_000);
        let mut ppn = 0u64;
        bench.case("media_read_storm", || {
            let o = media.read(black_box(ppn), 3);
            ppn = (ppn + 1) % 1_000_000;
            o
        });
    }

    {
        let plan = FaultPlan::new(FaultConfig::storm(7));
        let mut ppn = 0u64;
        bench.case("program_outcome_storm", || {
            let o = plan.program_outcome(black_box(ppn), 5);
            ppn = (ppn + 1) % 100_000;
            o
        });
    }

    {
        let geometry = Geometry::paper_default();
        let mut hw = HardwareModel::new(&geometry, TimingConfig::paper_default(), false);
        let mut t = SimTime::ZERO;
        let mut plane = 0;
        bench.case("exec_read_retry_3", || {
            let c = hw.exec_read_retry(black_box(plane), t, 3);
            plane = (plane + 1) % geometry.total_planes();
            t = c.start;
        });
    }
}

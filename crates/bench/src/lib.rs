//! # dloop-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! DLOOP paper (see `DESIGN.md` for the experiment index), plus shared
//! plumbing for the Criterion micro-benchmarks.
//!
//! The binary `dloop-experiments` drives everything:
//!
//! ```text
//! dloop-experiments all --scale 4 --requests 200000 --out results/
//! ```

pub mod claims;
pub mod experiments;
pub mod runner;
pub mod table;

pub use runner::{build_ftl, run_spec, RunSpec};

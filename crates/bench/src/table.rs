//! Plain-text table rendering and CSV output for experiment results.
//! (CSV is written by hand — the workspace deliberately avoids pulling a
//! serialization crate for five columns.)

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV (quoted only when needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV next to others in `dir` as `<slug>.csv`.
    pub fn write_csv(&self, dir: &Path, slug: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{slug}.csv")), self.to_csv())
    }
}

/// Format a float with 4 significant decimals for table cells.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["300".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("c", &["x"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("c", &["x", "y"]);
        t.row(vec!["only-one".into()]);
    }
}

//! Fig. 8 — the impacts of flash SSD capacity.
//!
//! Paper shape to reproduce: DLOOP < DFTL < FAST in MRT at every capacity;
//! MRT falls as capacity grows (GC is delayed); Financial2 (read-dominant)
//! shows the smallest DLOOP-vs-DFTL gap; DFTL collapses on TPC-C; DLOOP
//! has the lowest ln(SDRPP) and the request distribution evens out with
//! capacity.

use super::sweep::sweep;
use super::ExpOptions;
use crate::table::Table;
use dloop_ftl_kit::config::SsdConfig;

/// Nominal capacities of the paper's x-axis.
pub const CAPACITIES_GB: [u32; 5] = [4, 8, 16, 32, 64];

/// Run the Fig. 8 sweep.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let points: Vec<(String, SsdConfig)> = CAPACITIES_GB
        .iter()
        .map(|&gb| {
            (
                format!("{gb}GB"),
                SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(gb)),
            )
        })
        .collect();
    sweep(
        opts,
        &format!("Fig. 8 — SSD capacity (scale 1/{})", opts.scale),
        "capacity",
        &points,
    )
}

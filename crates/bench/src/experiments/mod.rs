//! The paper's experiments, one module per table/figure.
//!
//! | module | regenerates |
//! |---|---|
//! | [`params`] | Table I (simulation parameters) |
//! | [`traces`] | Table II (trace statistics, from the synthetic generators) |
//! | [`copyback`] | §III.A copy-back vs inter-plane copy timing |
//! | [`fig8`] | Fig. 8 — MRT and ln(SDRPP) vs SSD capacity |
//! | [`fig9`] | Fig. 9 — MRT and ln(SDRPP) vs page size |
//! | [`fig10`] | Fig. 10 — MRT and ln(SDRPP) vs extra blocks |
//! | [`headline`] | §I/§V.B headline (57.8 % / 85.5 % improvements at 64 GB) |
//! | [`ablation`] | design-choice ablations incl. the paper's future work |
//! | [`striping`] | §II.C motivation: throughput vs plane-level concurrency |
//! | [`channels`] | §II.B trade-off: channel count vs plane depth |
//! | [`faults`] | graceful degradation vs raw bit-error rate (beyond the paper) |
//! | [`tracecmd`] | op-level flight-recorder artifacts (Chrome trace, utilization, attribution) |
//! | [`qos`] | multi-tenant QoS policy sweep over the NCQ window (beyond the paper) |
//! | [`host`] | host-stack coalescing and dirty-ratio sweeps through `dloop-host` (beyond the paper) |
//! | [`shard`] | sharded playback engine speedup sweep + `BENCH_shard.json` (beyond the paper) |
//! | [`power`] | power-cap sweep with integer energy accounting + `BENCH_power.json` (beyond the paper) |
//!
//! Absolute milliseconds differ from the paper (synthetic workloads, scaled
//! devices); the *shape* — orderings, trends, crossovers — is the target.

pub mod ablation;
pub mod channels;
pub mod copyback;
pub mod faults;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod headline;
pub mod host;
pub mod params;
pub mod power;
pub mod qos;
pub mod shard;
pub mod striping;
pub mod sweep;
pub mod tracecmd;
pub mod traces;

use crate::table::Table;
use dloop_ftl_kit::device::{ReplayMode, DEFAULT_NCQ_DEPTH};
use std::path::PathBuf;

/// Replay admission policy selected on the command line (`--mode`). Kept
/// separate from [`ReplayMode`] so the flag and the queue depth
/// (`--depth`) can be given in either order; [`ExpOptions::replay_mode`]
/// combines them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Open arrivals (the default, and the mode the paper's figures use).
    Open,
    /// FlashSim's FIFO-with-skipping priority list.
    Gated,
    /// fio-style bounded host queue.
    Closed,
    /// NCQ-style bounded reordering.
    Ncq,
}

impl TraceMode {
    /// Parse a `--mode` value.
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s {
            "open" => Some(TraceMode::Open),
            "gated" => Some(TraceMode::Gated),
            "closed" => Some(TraceMode::Closed),
            "ncq" => Some(TraceMode::Ncq),
            _ => None,
        }
    }

    /// The flag spelling (for output labels).
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Open => "open",
            TraceMode::Gated => "gated",
            TraceMode::Closed => "closed",
            TraceMode::Ncq => "ncq",
        }
    }
}

/// Options shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Divide the paper's device capacities (and workload footprints) by
    /// this factor so runs fit laptop memory/time budgets. 1 = paper size.
    pub scale: u32,
    /// Max requests per run. 0 = automatic: the profile's full request
    /// count divided by `scale`, preserving the paper's writes-to-capacity
    /// ratio (FAST's log region and the GC pressure both depend on it).
    pub max_requests: u64,
    /// Workload seed.
    pub seed: u64,
    /// Host worker threads for the grid.
    pub workers: usize,
    /// Where to drop CSVs (None = stdout only).
    pub out_dir: Option<PathBuf>,
    /// Pre-fill fraction (device aging) before measurement.
    pub fill_fraction: f64,
    /// Replay admission policy (`--mode`; currently honoured by the
    /// `trace` subcommand — the figure experiments replay open-arrival
    /// like the paper).
    pub mode: TraceMode,
    /// Host queue depth for the bounded modes (`--depth`).
    pub queue_depth: usize,
    /// Narrow the `qos` sweep to one policy (`--policy`; None = all).
    pub qos_policy: Option<dloop_ftl_kit::sched::QosSpec>,
    /// Tenant streams in the `qos` sweep's contention mix (`--tenants`).
    pub qos_tenants: u16,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 4,
            max_requests: 0,
            seed: 42,
            workers: crate::runner::default_workers(),
            out_dir: Some(PathBuf::from("results")),
            fill_fraction: 0.0,
            mode: TraceMode::Open,
            queue_depth: DEFAULT_NCQ_DEPTH,
            qos_policy: None,
            qos_tenants: 3,
        }
    }
}

impl ExpOptions {
    /// The [`ReplayMode`] the `--mode`/`--depth` flags select.
    pub fn replay_mode(&self) -> ReplayMode {
        match self.mode {
            TraceMode::Open => ReplayMode::Open,
            TraceMode::Gated => ReplayMode::Gated,
            TraceMode::Closed => ReplayMode::Closed {
                queue_depth: self.queue_depth,
            },
            TraceMode::Ncq => ReplayMode::Ncq {
                queue_depth: self.queue_depth,
            },
        }
    }

    /// Nominal paper capacity → simulated capacity under `scale`.
    pub fn scaled_capacity(&self, nominal_gb: u32) -> u32 {
        (nominal_gb / self.scale).max(1)
    }

    /// Scale a workload profile's footprint to match the device scaling.
    pub fn scaled_profile(
        &self,
        mut p: dloop_workloads::WorkloadProfile,
    ) -> dloop_workloads::WorkloadProfile {
        p.footprint_bytes = (p.footprint_bytes / self.scale as u64).max(1 << 28);
        p
    }

    /// Request cap for one profile under these options.
    pub fn requests_for(&self, p: &dloop_workloads::WorkloadProfile) -> u64 {
        if self.max_requests == 0 {
            (p.total_requests / self.scale as u64).max(10_000)
        } else {
            self.max_requests
        }
    }

    /// Print tables and persist CSVs.
    pub fn emit(&self, tables: &[Table], slug_prefix: &str) {
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &self.out_dir {
                let slug = format!("{slug_prefix}_{i}");
                if let Err(e) = t.write_csv(dir, &slug) {
                    eprintln!("warning: could not write {slug}.csv: {e}");
                }
            }
        }
    }
}

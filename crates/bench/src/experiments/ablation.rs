//! Ablations of DLOOP's design choices (and the paper's future work).
//!
//! | variant | isolates |
//! |---|---|
//! | DLOOP | the full scheme |
//! | DLOOP -copyback | GC moves over the bus — the §III.A claim |
//! | DLOOP -spread | translation pages clustered on plane 0 — §II.B |
//! | DLOOP die-serial | no plane-level parallelism inside a die — §II.C |
//! | DLOOP-HOT | future work: heat-adaptive extra blocks (§VI) |
//! | IDEAL | free SRAM mapping: bounds demand-caching overhead |

use super::ExpOptions;
use crate::runner::{run_grid, RunSpec};
use crate::table::{f, f2, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_workloads::WorkloadProfile;

/// The ablation variants: (label, kind, config transformer).
fn variants(base: &SsdConfig) -> Vec<(&'static str, FtlKind, SsdConfig)> {
    let mut no_cb = base.clone();
    no_cb.copyback_enabled = false;
    let mut no_spread = base.clone();
    no_spread.spread_translation = false;
    let mut die_serial = base.clone();
    die_serial.die_serialized = true;
    let mut bg = base.clone();
    bg.background_gc = true;
    vec![
        ("DLOOP", FtlKind::Dloop, base.clone()),
        ("DLOOP -copyback", FtlKind::Dloop, no_cb),
        ("DLOOP -spread", FtlKind::Dloop, no_spread),
        ("DLOOP die-serial", FtlKind::Dloop, die_serial),
        ("DLOOP bg-gc", FtlKind::Dloop, bg),
        ("DLOOP-HOT", FtlKind::DloopHot, base.clone()),
        ("DFTL", FtlKind::Dftl, base.clone()),
        ("IDEAL", FtlKind::IdealPageMap, base.clone()),
    ]
}

/// Run the ablation grid on the two most telling workloads, against an
/// aged (80% pre-filled) 4 GB device so GC economics are visible.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let base = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(4));
    let vars = variants(&base);
    let profiles = [
        opts.scaled_profile(WorkloadProfile::financial1()),
        opts.scaled_profile(WorkloadProfile::tpcc()),
    ];

    let mut specs = Vec::new();
    for profile in &profiles {
        for (_, kind, config) in &vars {
            specs.push(RunSpec {
                config: config.clone(),
                kind: *kind,
                profile: profile.clone(),
                max_requests: opts.requests_for(profile).min(250_000),
                seed: opts.seed,
                fill_fraction: opts.fill_fraction.max(0.8),
            });
        }
    }
    let reports = run_grid(specs, opts.workers);

    let mut table = Table::new(
        format!("Ablations at 4 GB, 80% pre-filled (scale 1/{})", opts.scale),
        &[
            "trace",
            "variant",
            "MRT ms",
            "ln(SDRPP)",
            "WAF",
            "GCs",
            "copyback %",
            "parity skips",
        ],
    );
    let mut it = reports.iter();
    for profile in &profiles {
        for (label, _, _) in &vars {
            let r = it.next().expect("grid underrun");
            table.row(vec![
                profile.name.to_string(),
                label.to_string(),
                f(r.mean_response_time_ms()),
                f2(r.ln_sdrpp()),
                f2(r.waf()),
                r.ftl.gc_invocations.to_string(),
                f2(r.copyback_fraction() * 100.0),
                r.ftl.parity_skips.to_string(),
            ]);
        }
    }
    vec![table]
}

//! Table I: simulation parameters.

use crate::table::Table;
use dloop_ftl_kit::config::SsdConfig;

/// Render Table I from the live default configuration (so the table can
/// never drift from the code).
pub fn run() -> Vec<Table> {
    let c = SsdConfig::paper_default();
    let g = c.geometry();
    let t = &c.timing;
    let mut table = Table::new(
        "Table I — simulation parameters (fixed) / varied",
        &["parameter", "value (fixed)", "varied"],
    );
    let mut row = |p: &str, v: String, varied: &str| {
        table.row(vec![p.to_string(), v, varied.to_string()]);
    };
    row(
        "SSD capacity (GB)",
        c.capacity_gb.to_string(),
        "4, 8, 16, 32, 64",
    );
    row("Page size (KB)", c.page_kb.to_string(), "2, 4, 8, 16");
    row("Pages per block", g.pages_per_block.to_string(), "-");
    row(
        "Extra blocks (%)",
        format!("{:.0}", c.extra_pct),
        "3, 5, 7, 10",
    );
    row(
        "Block erase latency (us)",
        format!("{:.0}", t.block_erase.as_micros_f64()),
        "-",
    );
    row(
        "Page read latency (us)",
        format!("{:.0}", t.page_read.as_micros_f64()),
        "-",
    );
    row(
        "Page write latency (us)",
        format!("{:.0}", t.page_program.as_micros_f64()),
        "-",
    );
    row(
        "Transfer latency per byte (us)",
        format!("{:.3}", t.per_byte_transfer.as_micros_f64()),
        "-",
    );
    row(
        "Channels x packages x chips x dies x planes",
        format!(
            "{} x {} x {} x {} x {}",
            c.channels,
            c.packages_per_channel,
            c.chips_per_package,
            c.dies_per_chip,
            c.planes_per_die
        ),
        "-",
    );
    row(
        "GC threshold (free blocks)",
        c.gc_threshold.to_string(),
        "-",
    );
    row("CMT capacity (entries)", c.cmt_capacity.to_string(), "-");
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_has_the_paper_rows() {
        let t = &super::run()[0];
        let s = t.render();
        assert!(s.contains("SSD capacity"));
        assert!(s.contains("4, 8, 16, 32, 64"));
        assert!(s.contains("0.025"));
    }
}

//! Fig. 10 — the impacts of the number of extra blocks (3-10 % of data
//! blocks, fixed capacity).
//!
//! Paper shape: DLOOP best everywhere and nearly flat; FAST improves with
//! more extra blocks (a bigger log region defers merges); DFTL's
//! Financial1 MRT *worsens* from 7 %→10 % (its plane-0 mapping blocks get
//! hotter); DLOOP's SDRPP stays lowest.

use super::sweep::sweep;
use super::ExpOptions;
use crate::table::Table;
use dloop_ftl_kit::config::SsdConfig;

/// Extra-block percentages of the paper's x-axis.
pub const EXTRA_PCT: [f64; 4] = [3.0, 5.0, 7.0, 10.0];

/// Run the Fig. 10 sweep.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let points: Vec<(String, SsdConfig)> = EXTRA_PCT
        .iter()
        .map(|&pct| {
            (
                format!("{pct:.0}%"),
                SsdConfig::paper_default()
                    .with_capacity_gb(opts.scaled_capacity(8))
                    .with_extra_pct(pct),
            )
        })
        .collect();
    sweep(
        opts,
        &format!("Fig. 10 — extra blocks at 8 GB (scale 1/{})", opts.scale),
        "extra",
        &points,
    )
}

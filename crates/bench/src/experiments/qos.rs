//! QoS policy sweep over the NCQ window: replay one multi-tenant
//! contention mix under every scheduling policy (plus the two bounds the
//! C12 claim pins them between) and report host MRT, per-tenant mean
//! turnaround from the queue probe, and the fairness spread.
//!
//! The mix follows [`dloop_workloads::tenants::qos_mix`]: tenant 1 is the
//! latency-sensitive read-dominant stream and carries 5 ms deadlines (the
//! EDF policy's input); later tenants cycle through the write-heavy and
//! bulk profiles. `--tenants N` widens the mix, `--policy P` narrows the
//! sweep to one policy, `--depth N` sets the reorder window.

use super::ExpOptions;
use crate::runner::build_ftl;
use crate::table::{f, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::{ReplayMode, SsdDevice};
use dloop_ftl_kit::metrics::RunReport;
use dloop_ftl_kit::sched::QosSpec;
use dloop_simkit::SimDuration;
use dloop_workloads::tenants::{multi_tenant, TenantSpec};
use dloop_workloads::{Trace, WorkloadProfile};

/// Build the sweep's contention mix: `tenants` streams cycling the paper
/// profiles (tenant 1 latency-sensitive with deadlines), clamped to
/// `footprint_bytes` so the mix fits the sweep device.
fn mix(tenants: u16, per_tenant: u64, seed: u64, page_size: u32, footprint_bytes: u64) -> Trace {
    let profiles = [
        WorkloadProfile::financial2(), // latency-sensitive reader
        WorkloadProfile::financial1(), // write-heavy OLTP
        WorkloadProfile::build(),      // background bulk
        WorkloadProfile::tpcc(),
        WorkloadProfile::exchange(),
    ];
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|i| {
            let mut p = profiles[i as usize % profiles.len()].clone();
            p.footprint_bytes = p.footprint_bytes.min(footprint_bytes);
            let spec = TenantSpec::new(i + 1, p, per_tenant);
            if i == 0 {
                spec.with_deadline(SimDuration::from_millis(5))
            } else {
                spec
            }
        })
        .collect();
    multi_tenant("qos-sweep", &specs, seed, page_size)
}

/// One sweep row: replay the mix under `mode` and report turnarounds.
fn measure(config: &SsdConfig, trace: &Trace, mode: ReplayMode) -> RunReport {
    let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, config));
    device.run(&trace.requests, mode)
}

/// The sweep on an arbitrary device (the unit test uses the micro
/// config; the CLI uses the scaled paper device).
pub fn run_on(opts: &ExpOptions, config: SsdConfig, per_tenant: u64) -> Vec<Table> {
    let geometry = config.geometry();
    let footprint = geometry.user_pages() * geometry.page_size as u64 / 2;
    let tenants = opts.qos_tenants.max(1);
    let trace = mix(
        tenants,
        per_tenant,
        opts.seed,
        geometry.page_size,
        footprint,
    );

    let depth = opts.queue_depth;
    let mut rows: Vec<(String, ReplayMode)> = vec![
        (
            "in-order (bound)".into(),
            ReplayMode::Ncq { queue_depth: 1 },
        ),
        ("gated (oracle)".into(), ReplayMode::Gated),
    ];
    let specs = match opts.qos_policy {
        Some(spec) => vec![spec],
        None => QosSpec::all().to_vec(),
    };
    for spec in specs {
        rows.push((
            format!("{} (qos)", spec.name()),
            ReplayMode::Qos {
                queue_depth: depth,
                policy: spec,
            },
        ));
    }

    let mut header: Vec<String> = vec![
        "policy".into(),
        "host MRT ms".into(),
        "turnaround ms".into(),
    ];
    for t in 1..=tenants {
        header.push(format!("t{t} ms"));
    }
    header.push("spread".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!("QoS policy sweep — {tenants}-tenant mix, depth {depth}"),
        &header_refs,
    );

    for (label, mode) in rows {
        let report = measure(&config, &trace, mode);
        let per: Vec<f64> = (1..=tenants)
            .map(|t| report.queue_log.tenant_mean_turnaround_ms(t))
            .collect();
        let max = per.iter().cloned().fold(0.0f64, f64::max);
        let min = per
            .iter()
            .cloned()
            .filter(|&m| m > 0.0)
            .fold(f64::INFINITY, f64::min);
        let spread = if min.is_finite() && min > 0.0 {
            max / min
        } else {
            0.0
        };
        let mut row = vec![
            label,
            f(report.mean_response_time_ms()),
            f(report.queue_log.mean_turnaround_ms()),
        ];
        row.extend(per.into_iter().map(f));
        row.push(format!("{spread:.2}x"));
        table.row(row);
    }
    vec![table]
}

/// CLI entry point (`dloop-experiments qos`).
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let config = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(4));
    let per_tenant = if opts.max_requests == 0 {
        10_000
    } else {
        (opts.max_requests / opts.qos_tenants.max(1) as u64).max(1)
    };
    run_on(opts, config, per_tenant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_every_policy_and_tenant() {
        let opts = ExpOptions::default();
        let tables = run_on(&opts, SsdConfig::micro_gc_test(), 300);
        assert_eq!(tables.len(), 1);
        let rendered = tables[0].render();
        // Both bounds plus all five policies, one row each.
        assert_eq!(tables[0].len(), 2 + QosSpec::all().len());
        for name in ["in-order", "gated", "fair-share", "deadline", "priority"] {
            assert!(rendered.contains(name), "missing row {name}: {rendered}");
        }
        // Per-tenant columns for the default three-tenant mix.
        for col in ["t1 ms", "t2 ms", "t3 ms", "spread"] {
            assert!(rendered.contains(col), "missing column {col}");
        }
    }

    #[test]
    fn policy_filter_narrows_the_sweep() {
        let opts = ExpOptions {
            qos_policy: Some(QosSpec::Priority),
            ..ExpOptions::default()
        };
        let tables = run_on(&opts, SsdConfig::micro_gc_test(), 200);
        assert_eq!(tables[0].len(), 3); // two bounds + one policy
    }
}

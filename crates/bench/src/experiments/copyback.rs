//! §III.A: the copy-back arithmetic — an intra-plane copy-back saves
//! ~30 % over a traditional inter-plane copy and leaves the bus free.
//! Verified against the live hardware model, not hard-coded numbers.

use crate::table::{f2, Table};
use dloop_ftl_kit::config::SsdConfig;
use dloop_nand::{HardwareModel, TimingConfig};
use dloop_simkit::SimTime;

/// Render the copy-cost comparison for every page size of Fig. 9.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "SIII.A — intra-plane copy-back vs inter-plane copy (per page)",
        &[
            "page KB",
            "copy-back us",
            "inter-plane us",
            "saving %",
            "bus time us",
        ],
    );
    for page_kb in [2u32, 4, 8, 16] {
        let config = SsdConfig::paper_default().with_page_kb(page_kb);
        let geometry = config.geometry();
        let timing = TimingConfig::paper_default();

        // Measure through the hardware model (not just the formulas).
        let mut hw = HardwareModel::new(&geometry, timing.clone(), false);
        let cb = hw.exec_copyback(0, SimTime::ZERO);
        let mut hw2 = HardwareModel::new(&geometry, timing.clone(), false);
        let inter = hw2.exec_interplane_copy(0, 1, SimTime::ZERO);

        let cb_us = cb.latency().as_micros_f64();
        let inter_us = inter.latency().as_micros_f64();
        let bus_us = 2.0 * timing.page_transfer(geometry.page_size).as_micros_f64();
        table.row(vec![
            page_kb.to_string(),
            f2(cb_us),
            f2(inter_us),
            f2((inter_us - cb_us) / inter_us * 100.0),
            f2(bus_us),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn two_kb_saving_matches_paper_band() {
        let t = &super::run()[0];
        let csv = t.to_csv();
        let first_row = csv.lines().nth(1).unwrap();
        let cells: Vec<&str> = first_row.split(',').collect();
        assert_eq!(cells[0], "2");
        let saving: f64 = cells[3].parse().unwrap();
        // Paper: 30.7% with its rounded transfers; exact Table-I math ~31%.
        assert!(
            (28.0..=34.0).contains(&saving),
            "saving {saving}% out of band"
        );
    }

    #[test]
    fn saving_grows_with_page_size() {
        let t = &super::run()[0];
        let csv = t.to_csv();
        let savings: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        assert!(savings.windows(2).all(|w| w[1] > w[0]), "{savings:?}");
    }
}

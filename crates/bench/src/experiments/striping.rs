//! The paper's motivation (§II.C, citing Dirik & Jacob): "increasing the
//! level of concurrency by striping across the planes within the flash
//! device could increase throughput substantially". This experiment
//! measures exactly that on our hardware model: sequential-write
//! throughput as plane-level concurrency grows, plus the cost of the
//! die-serialised ablation.

use crate::runner::{run_grid, RunSpec};
use crate::table::{f, f2, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_workloads::synth::WorkloadProfile;

use super::ExpOptions;

/// Planes-per-die values swept (total planes = 16 × this).
const PLANES_PER_DIE: [u32; 4] = [1, 2, 4, 8];

/// Run the striping sweep: a sequential-write-heavy workload against
/// devices with growing plane counts, DLOOP vs DFTL.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    // A sequential, large-request workload shows striping best.
    let mut profile = WorkloadProfile::build();
    profile.write_ratio = 0.9;
    profile.seq_prob = 0.9;
    profile.rate_per_sec = 2000.0;
    let profile = opts.scaled_profile(profile);

    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for &ppd in &PLANES_PER_DIE {
        for kind in [FtlKind::Dloop, FtlKind::Dftl] {
            let mut config = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(8));
            config.planes_per_die = ppd;
            labels.push((ppd, kind));
            specs.push(RunSpec {
                config,
                kind,
                profile: profile.clone(),
                max_requests: opts.max_requests.clamp(30_000, 100_000),
                seed: opts.seed,
                fill_fraction: 0.0,
            });
        }
    }
    let reports = run_grid(specs, opts.workers);

    let mut table = Table::new(
        "Motivation (SII.C) — plane-level concurrency vs sequential-write performance",
        &[
            "planes/die",
            "total planes",
            "FTL",
            "MRT ms",
            "p99 ms",
            "device-seconds",
        ],
    );
    for ((ppd, kind), r) in labels.iter().zip(&reports) {
        table.row(vec![
            ppd.to_string(),
            (16 * ppd).to_string(),
            kind.name().to_string(),
            f(r.mean_response_time_ms()),
            f(r.response_percentile_ms(0.99)),
            f2(r.sim_end.as_secs_f64()),
        ]);
    }
    vec![table]
}

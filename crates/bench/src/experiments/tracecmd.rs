//! The `trace` subcommand: run a workload with op-level tracing enabled
//! and dump its artifacts — a Chrome `trace_event` JSON (load it in
//! `chrome://tracing` or Perfetto: one track per plane, one per channel,
//! with flow arrows stitching each host request across resources), plane-
//! and channel-utilization timeline CSVs, the per-plane/per-channel power
//! timeline (`trace_power.csv`, integer femtojoules that sum exactly to
//! the run report's energy totals), the complete span journal as JSONL,
//! and the aggregated latency-attribution table (plane-wait vs
//! channel-wait vs bus vs cell vs retry, split by host/GC/scan phase).
//!
//! Tracing runs through a [`TeeSink`]: a bounded [`RingSink`] feeds the
//! interactive exports while a [`StreamSink`] journals every span with no
//! drop-oldest cap. The command doubles as a self-check of the tracing
//! layer: it asserts that exactly one span was recorded per hardware
//! operation on *both* sinks, that the stream dropped nothing, and that
//! the Chrome export and every streamed JSONL line are valid JSON — so
//! the `verify.sh` smoke step fails loudly if the recorder ever drifts
//! from the hardware counters. If the bounded ring did overflow, a loud
//! warning marks the Chrome/CSV exports as covering a truncated window
//! (the streamed journal is always complete).
//!
//! The replay admission policy follows `--mode` (open by default; gated,
//! closed or NCQ with `--depth`), and alongside the span artifacts the
//! command emits `trace_queue_depth.csv` — the host-queue occupancy
//! timeline every replay driver records through its `QueueDepthProbe`
//! (in-flight / pending counts plus admitted / completed deltas per
//! sim-time bucket). Its shape and conservation laws are self-checked
//! here too.

use super::ExpOptions;
use crate::runner::build_ftl;
use crate::table::{f, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::SsdDevice;
use dloop_simkit::trace::{
    attribution, channel_utilization_csv, chrome_trace_json, json_lint, plane_utilization_csv,
    power_csv, QueueDepthProbe, RingSink, StreamSink, TeeSink,
};
use dloop_simkit::{SpanPhase, TraceSink};
use dloop_workloads::WorkloadProfile;

/// Flight-recorder ring capacity: enough for every op of the default
/// request budget; older spans are dropped (and counted) on longer runs —
/// the streamed JSONL journal keeps them all regardless.
const RING_CAPACITY: usize = 1 << 18;

/// Utilization-timeline resolution.
const UTIL_BUCKETS: usize = 64;

/// Default request budget when `--requests` is not given: the trace
/// artifacts are meant for interactive inspection, not full-length runs.
const DEFAULT_REQUESTS: u64 = 20_000;

/// Run the traced workload and emit the artifacts.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    // Energy accounting on: the power timeline is a tracing artifact, and
    // outside the PowerCap scheduling mode accounting is observation-only
    // (the replay schedule is untouched).
    let energy = dloop_nand::EnergyConfig::paper_default();
    let config = SsdConfig::paper_default()
        .with_capacity_gb(opts.scaled_capacity(4))
        .with_energy(energy);
    let geometry = config.geometry();
    let profile = opts.scaled_profile(WorkloadProfile::financial1());
    let requests = if opts.max_requests == 0 {
        DEFAULT_REQUESTS
    } else {
        opts.max_requests
    };
    let trace = profile.generate_scaled(opts.seed, geometry.page_size, requests);

    let ftl = build_ftl(FtlKind::Dloop, &config);
    let mut device = SsdDevice::new(config, ftl);
    device.attach_sink(Box::new(TeeSink::new(
        Box::new(RingSink::new(RING_CAPACITY)),
        Box::new(StreamSink::new(Vec::new())),
    )));
    let report = device.run(&trace.requests, opts.replay_mode());
    let (rec, mut stream) = split_tee(&mut device);
    stream.flush().expect("in-memory stream cannot fail");

    // Self-check: one span per hardware operation on both sinks, nothing
    // more or less.
    let hw_ops = report.hw.reads
        + report.hw.writes
        + report.hw.erases
        + report.hw.copybacks
        + report.hw.interplane_copies;
    assert_eq!(
        rec.recorded(),
        hw_ops,
        "flight recorder drifted from the hardware counters"
    );
    assert_eq!(
        TraceSink::recorded(&stream),
        hw_ops,
        "stream sink drifted from the hardware counters"
    );
    // The stream has no capacity limit: a drop can only mean a write
    // failure, and an in-memory journal must never see one.
    assert_eq!(stream.dropped(), 0, "stream sink must record zero drops");
    let jsonl = String::from_utf8(stream.into_inner()).expect("span JSONL is UTF-8");
    let mut streamed_lines = 0u64;
    for line in jsonl.lines() {
        json_lint(line).expect("every streamed span line must be valid JSON");
        streamed_lines += 1;
    }
    assert_eq!(
        streamed_lines, hw_ops,
        "streamed journal must hold one line per hardware operation"
    );

    if rec.dropped() > 0 {
        eprintln!(
            "WARNING: the bounded flight-recorder ring discarded {} of {} spans \
             (capacity {}); the Chrome trace, utilization CSVs and attribution \
             table cover a TRUNCATED window. The streamed journal \
             (trace_spans.jsonl) is complete — raise the ring capacity or lower \
             --requests for complete interactive exports.",
            rec.dropped(),
            rec.recorded(),
            RING_CAPACITY,
        );
    }

    let chrome = chrome_trace_json(&rec);
    json_lint(&chrome).expect("Chrome trace export must be valid JSON");
    let util = plane_utilization_csv(&rec, geometry.total_planes() as usize, UTIL_BUCKETS);
    let chan_util = channel_utilization_csv(&rec, geometry.channels as usize, UTIL_BUCKETS);
    let power = power_csv(
        &rec,
        geometry.total_planes() as usize,
        geometry.channels as usize,
        UTIL_BUCKETS,
        energy.array_active_uw,
        energy.bus_active_uw,
    );
    // The power timeline and the report's energy totals are the same
    // integer measurement whenever the ring kept every span.
    if rec.dropped() == 0 {
        let totals = report
            .energy
            .expect("energy accounting was enabled for the traced run");
        let csv_fj: u64 = power
            .lines()
            .skip(1)
            .map(|l| {
                l.rsplit(',')
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .expect("power_csv rows end in an integer total")
            })
            .sum();
        assert_eq!(
            csv_fj,
            totals.total_fj(),
            "power timeline must sum exactly to the report's femtojoule totals"
        );
    }

    // Queue-depth timeline: every replay driver records its probe, so the
    // export is meaningful for all --mode values. Self-check the shape and
    // the conservation laws before writing it anywhere.
    let queue_csv = report.queue_depth_csv(UTIL_BUCKETS);
    let mut queue_lines = queue_csv.lines();
    assert_eq!(
        queue_lines.next(),
        Some(QueueDepthProbe::csv_header()),
        "queue-depth CSV header drifted from the locked schema"
    );
    let (mut admitted, mut completed, mut rows) = (0u64, 0u64, 0usize);
    let mut final_counts = (0u64, 0u64);
    for line in queue_lines {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 5, "queue-depth CSV row must have 5 columns");
        let n = |i: usize| cols[i].parse::<u64>().expect("integer column");
        final_counts = (n(1), n(2));
        admitted += n(3);
        completed += n(4);
        rows += 1;
    }
    assert_eq!(rows, UTIL_BUCKETS, "one queue-depth row per bucket");
    assert_eq!(
        admitted as usize,
        report.queue_log.len(),
        "every tracked unit admitted exactly once"
    );
    assert_eq!(completed, admitted, "every admitted unit completed");
    assert_eq!(
        final_counts,
        (0, 0),
        "queues must drain by the end of the replay"
    );

    if let Some(dir) = &opts.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        } else {
            for (name, body) in [
                ("trace_chrome.json", &chrome),
                ("trace_plane_util.csv", &util),
                ("trace_channel_util.csv", &chan_util),
                ("trace_power.csv", &power),
                ("trace_queue_depth.csv", &queue_csv),
                ("trace_spans.jsonl", &jsonl),
            ] {
                let path = dir.join(name);
                match std::fs::write(&path, body) {
                    Ok(()) => eprintln!("wrote {}", path.display()),
                    Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
                }
            }
        }
    }

    let attr = attribution(&rec);
    let mut table = Table::new(
        format!(
            "Latency attribution — {} spans over {} requests ({} dropped from the ring)",
            rec.recorded(),
            report.requests_completed,
            rec.dropped()
        ),
        &[
            "phase",
            "spans",
            "plane_wait_ms",
            "channel_wait_ms",
            "bus_ms",
            "cell_ms",
            "retry_ms",
            "total_ms",
        ],
    );
    for phase in SpanPhase::all() {
        let r = attr.row(phase);
        table.row(vec![
            phase.name().to_string(),
            r.spans.to_string(),
            f(r.plane_wait_ns as f64 / 1e6),
            f(r.channel_wait_ns as f64 / 1e6),
            f(r.bus_ns as f64 / 1e6),
            f(r.cell_ns as f64 / 1e6),
            f(r.retry_ns as f64 / 1e6),
            f(r.residence_ns as f64 / 1e6),
        ]);
    }

    let mut summary = Table::new("Trace summary", &["metric", "value"]);
    summary.row(vec!["replay_mode".into(), opts.mode.name().into()]);
    summary.row(vec![
        "queue_units_tracked".into(),
        report.queue_log.len().to_string(),
    ]);
    summary.row(vec!["spans_recorded".into(), rec.recorded().to_string()]);
    summary.row(vec!["spans_retained".into(), rec.len().to_string()]);
    summary.row(vec!["ring_dropped".into(), rec.dropped().to_string()]);
    summary.row(vec!["spans_streamed".into(), streamed_lines.to_string()]);
    summary.row(vec!["stream_dropped".into(), "0".into()]);
    summary.row(vec![
        "request_visible_ms".into(),
        f(attr.request_visible_ns() as f64 / 1e6),
    ]);
    summary.row(vec!["response_sum_ms".into(), f(report.response_ms.sum())]);
    summary.row(vec!["mrt_ms".into(), f(report.mean_response_time_ms())]);
    if let Some(e) = report.energy {
        summary.row(vec!["energy_total_mj".into(), f(e.total_mj())]);
    }

    vec![table, summary]
}

/// Detach the tee from `device` and split it back into its ring and
/// in-memory stream halves.
fn split_tee(device: &mut SsdDevice) -> (RingSink, StreamSink<Vec<u8>>) {
    let sink = device.detach_sink().expect("tracing was enabled");
    let tee = sink.into_any().downcast::<TeeSink>().expect("tee sink");
    let (ring, stream) = tee.into_inner();
    let ring = ring
        .into_any()
        .downcast::<RingSink>()
        .expect("first tee half is the ring");
    let stream = stream
        .into_any()
        .downcast::<StreamSink<Vec<u8>>>()
        .expect("second tee half is the in-memory stream");
    (*ring, *stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The subcommand's in-process assertions (span counts vs hardware
    /// counters on both tee halves, zero stream drops, JSON validity of
    /// the Chrome export and every streamed line, queue-CSV shape and
    /// conservation) are the real test; this just runs them on a small
    /// budget without touching the filesystem.
    #[test]
    fn trace_command_self_checks_pass() {
        let opts = ExpOptions {
            max_requests: 300,
            out_dir: None,
            ..ExpOptions::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        // Host spans exist on any non-empty workload.
        assert!(
            tables[0].len() == SpanPhase::all().len(),
            "one attribution row per phase"
        );
    }

    /// Same self-checks under the NCQ scheduler — the mode the verify.sh
    /// smoke step replays (`--mode ncq`).
    #[test]
    fn trace_command_self_checks_pass_in_ncq_mode() {
        let opts = ExpOptions {
            max_requests: 300,
            out_dir: None,
            mode: super::super::TraceMode::Ncq,
            queue_depth: 8,
            ..ExpOptions::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        let rendered = tables[1].render();
        assert!(rendered.contains("ncq"), "summary names the replay mode");
    }
}

//! The `trace` subcommand: run a workload with the op-level flight
//! recorder enabled and dump its artifacts — a Chrome `trace_event` JSON
//! (load it in `chrome://tracing` or Perfetto: one track per plane, one
//! per channel), a per-plane utilization timeline CSV, and the aggregated
//! latency-attribution table (plane-wait vs channel-wait vs bus vs cell
//! vs retry, split by host/GC/scan phase).
//!
//! The command doubles as a self-check of the tracing layer: it asserts
//! that exactly one span was recorded per hardware operation and that the
//! Chrome export is valid JSON, so the `verify.sh` smoke step fails loudly
//! if the recorder ever drifts from the hardware counters.

use super::ExpOptions;
use crate::runner::build_ftl;
use crate::table::{f, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::SsdDevice;
use dloop_simkit::trace::{attribution, chrome_trace_json, json_lint, plane_utilization_csv};
use dloop_simkit::SpanPhase;
use dloop_workloads::WorkloadProfile;

/// Flight-recorder capacity: enough for every op of the default request
/// budget; older spans are dropped (and counted) on longer runs.
const RING_CAPACITY: usize = 1 << 18;

/// Utilization-timeline resolution.
const UTIL_BUCKETS: usize = 64;

/// Default request budget when `--requests` is not given: the trace
/// artifacts are meant for interactive inspection, not full-length runs.
const DEFAULT_REQUESTS: u64 = 20_000;

/// Run the traced workload and emit the artifacts.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let config = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(4));
    let geometry = config.geometry();
    let profile = opts.scaled_profile(WorkloadProfile::financial1());
    let requests = if opts.max_requests == 0 {
        DEFAULT_REQUESTS
    } else {
        opts.max_requests
    };
    let trace = profile.generate_scaled(opts.seed, geometry.page_size, requests);

    let ftl = build_ftl(FtlKind::Dloop, &config);
    let mut device = SsdDevice::new(config, ftl);
    device.set_tracing(Some(RING_CAPACITY));
    let report = device.run_trace(&trace.requests);
    let rec = device.take_trace().expect("tracing was enabled");

    // Self-check: one span per hardware operation, nothing more or less.
    let hw_ops = report.hw.reads
        + report.hw.writes
        + report.hw.erases
        + report.hw.copybacks
        + report.hw.interplane_copies;
    assert_eq!(
        rec.recorded(),
        hw_ops,
        "flight recorder drifted from the hardware counters"
    );

    let chrome = chrome_trace_json(&rec);
    json_lint(&chrome).expect("Chrome trace export must be valid JSON");
    let util = plane_utilization_csv(&rec, geometry.total_planes() as usize, UTIL_BUCKETS);

    if let Some(dir) = &opts.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        } else {
            for (name, body) in [
                ("trace_chrome.json", &chrome),
                ("trace_plane_util.csv", &util),
            ] {
                let path = dir.join(name);
                match std::fs::write(&path, body) {
                    Ok(()) => eprintln!("wrote {}", path.display()),
                    Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
                }
            }
        }
    }

    let attr = attribution(&rec);
    let mut table = Table::new(
        format!(
            "Latency attribution — {} spans over {} requests ({} dropped from the ring)",
            rec.recorded(),
            report.requests_completed,
            rec.dropped()
        ),
        &[
            "phase",
            "spans",
            "plane_wait_ms",
            "channel_wait_ms",
            "bus_ms",
            "cell_ms",
            "retry_ms",
            "total_ms",
        ],
    );
    for phase in [SpanPhase::Host, SpanPhase::Gc, SpanPhase::Scan] {
        let r = attr.row(phase);
        table.row(vec![
            phase.name().to_string(),
            r.spans.to_string(),
            f(r.plane_wait_ns as f64 / 1e6),
            f(r.channel_wait_ns as f64 / 1e6),
            f(r.bus_ns as f64 / 1e6),
            f(r.cell_ns as f64 / 1e6),
            f(r.retry_ns as f64 / 1e6),
            f(r.residence_ns as f64 / 1e6),
        ]);
    }

    let mut summary = Table::new("Trace summary", &["metric", "value"]);
    summary.row(vec!["spans_recorded".into(), rec.recorded().to_string()]);
    summary.row(vec!["spans_retained".into(), rec.len().to_string()]);
    summary.row(vec!["spans_dropped".into(), rec.dropped().to_string()]);
    summary.row(vec![
        "request_visible_ms".into(),
        f(attr.request_visible_ns() as f64 / 1e6),
    ]);
    summary.row(vec!["response_sum_ms".into(), f(report.response_ms.sum())]);
    summary.row(vec!["mrt_ms".into(), f(report.mean_response_time_ms())]);

    vec![table, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The subcommand's in-process assertions (span count vs hardware
    /// counters, JSON validity) are the real test; this just runs them on
    /// a small budget without touching the filesystem.
    #[test]
    fn trace_command_self_checks_pass() {
        let opts = ExpOptions {
            max_requests: 300,
            out_dir: None,
            ..ExpOptions::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        // Host spans exist on any non-empty workload.
        assert!(tables[0].len() == 3, "one attribution row per phase");
    }
}

//! Graceful degradation under media faults: how each FTL's response time,
//! write amplification and reliability counters move as the raw bit-error
//! rate rises (the wear/retention slopes, program- and erase-fail rates of
//! [`FaultConfig::light`] ride along unchanged — the x-axis is BER).
//!
//! Expected shape: MRT degrades gracefully while the ECC ladder absorbs
//! errors (read-retry steps cost microseconds, not milliseconds), then
//! uncorrectable reads appear at the top of the sweep; DLOOP keeps its
//! lead over DFTL and FAST because recovery traffic (re-programs, GC of
//! doomed blocks) stays plane-local. The fault plan is a pure function of
//! `(seed, op, address)`, so every cell is exactly reproducible.

use super::ExpOptions;
use crate::runner::{run_grid, RunSpec};
use crate::table::{f, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_nand::FaultConfig;
use dloop_workloads::WorkloadProfile;

/// Raw bit-error rates swept. 0 is the fault-free reference point (a null
/// plan: the device behaves bit-identically to the pre-fault simulator).
pub const BERS: [f64; 5] = [0.0, 1e-5, 1e-4, 5e-4, 1e-3];

/// The schemes compared: the paper set plus the SRAM page-map bound.
pub const KINDS: [FtlKind; 4] = [
    FtlKind::Dloop,
    FtlKind::Dftl,
    FtlKind::Fast,
    FtlKind::IdealPageMap,
];

fn fault_for(ber: f64, seed: u64) -> FaultConfig {
    if ber == 0.0 {
        return FaultConfig::none();
    }
    let mut fault = FaultConfig::light(seed ^ 0xFA01_75EE);
    fault.base_ber = ber;
    fault
}

/// Run the BER sweep.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let profile = opts.scaled_profile(WorkloadProfile::financial1());
    let points: Vec<(String, SsdConfig)> = BERS
        .iter()
        .map(|&ber| {
            (
                format!("{ber:.0e}"),
                SsdConfig::paper_default()
                    .with_capacity_gb(opts.scaled_capacity(4))
                    .with_fault(fault_for(ber, opts.seed)),
            )
        })
        .collect();

    let mut specs = Vec::new();
    for (_, config) in &points {
        for kind in KINDS {
            specs.push(RunSpec {
                config: config.clone(),
                kind,
                profile: profile.clone(),
                max_requests: opts.requests_for(&profile),
                seed: opts.seed,
                fill_fraction: opts.fill_fraction,
            });
        }
    }
    let reports = run_grid(specs, opts.workers);

    let header: Vec<&str> = {
        let mut h = vec!["ber"];
        h.extend(KINDS.iter().map(|k| k.name()));
        h
    };
    let title = format!("Faults — {} (scale 1/{})", profile.name, opts.scale);
    let mut mrt = Table::new(format!("{title} — mean response time (ms)"), &header);
    let mut waf = Table::new(format!("{title} — write amplification"), &header);
    let mut rel = Table::new(
        format!("{title} — reliability"),
        &[
            "ber",
            "ftl",
            "retry_frac",
            "uncorrectable",
            "recovered_programs",
            "grown_bad",
            "factory_bad",
            "retry_ms",
        ],
    );

    let mut it = reports.iter();
    for (label, _) in &points {
        let mut mrt_row = vec![label.clone()];
        let mut waf_row = mrt_row.clone();
        for kind in KINDS {
            let r = it.next().expect("report grid underrun");
            mrt_row.push(f(r.mean_response_time_ms()));
            waf_row.push(f(r.waf()));
            rel.row(vec![
                label.clone(),
                kind.name().to_string(),
                format!("{:.5}", r.retry_read_fraction()),
                r.media.uncorrectable_reads.to_string(),
                r.media.program_fails.to_string(),
                r.media.grown_bad_blocks.to_string(),
                r.media.factory_bad_blocks.to_string(),
                format!("{:.3}", r.retry_ns as f64 / 1e6),
            ]);
        }
        mrt.row(mrt_row);
        waf.row(waf_row);
    }
    vec![mrt, waf, rel]
}

//! The paper's headline claim (§I, §V.B): *"we observe an average 57.8%
//! and 85.5% improvement in mean response time on a 64 GB flash SSD
//! compared with DFTL and FAST, respectively"* — and at 4 GB, 70 % / 90 %.

use super::ExpOptions;
use crate::runner::{run_grid, RunSpec};
use crate::table::{f, f2, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_workloads::WorkloadProfile;

/// Improvement of `ours` over `baseline` in percent.
fn improvement_pct(ours: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

/// Run the headline comparison at one nominal capacity.
pub fn run_at(opts: &ExpOptions, nominal_gb: u32) -> (Table, f64, f64) {
    let config = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(nominal_gb));
    let kinds = FtlKind::paper_set();
    let profiles: Vec<WorkloadProfile> = WorkloadProfile::all_paper()
        .into_iter()
        .map(|p| opts.scaled_profile(p))
        .collect();
    let mut specs = Vec::new();
    for profile in &profiles {
        for kind in kinds {
            specs.push(RunSpec {
                config: config.clone(),
                kind,
                profile: profile.clone(),
                max_requests: opts.requests_for(profile),
                seed: opts.seed,
                fill_fraction: opts.fill_fraction,
            });
        }
    }
    let reports = run_grid(specs, opts.workers);

    let mut table = Table::new(
        format!(
            "Headline — MRT at {nominal_gb} GB (scale 1/{}) and DLOOP's improvement",
            opts.scale
        ),
        &[
            "trace",
            "DLOOP ms",
            "DFTL ms",
            "FAST ms",
            "vs DFTL %",
            "vs FAST %",
        ],
    );
    let mut sum_dftl = 0.0;
    let mut sum_fast = 0.0;
    for (i, profile) in profiles.iter().enumerate() {
        let d = reports[i * 3].mean_response_time_ms();
        let t = reports[i * 3 + 1].mean_response_time_ms();
        let fa = reports[i * 3 + 2].mean_response_time_ms();
        let imp_d = improvement_pct(d, t);
        let imp_f = improvement_pct(d, fa);
        sum_dftl += imp_d;
        sum_fast += imp_f;
        table.row(vec![
            profile.name.to_string(),
            f(d),
            f(t),
            f(fa),
            f2(imp_d),
            f2(imp_f),
        ]);
    }
    let avg_dftl = sum_dftl / profiles.len() as f64;
    let avg_fast = sum_fast / profiles.len() as f64;
    table.row(vec![
        "AVERAGE".to_string(),
        String::new(),
        String::new(),
        String::new(),
        f2(avg_dftl),
        f2(avg_fast),
    ]);
    (table, avg_dftl, avg_fast)
}

/// Run the 64 GB headline plus the 4 GB variant the paper quotes.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let (t64, d64, f64_) = run_at(opts, 64);
    let (t4, d4, f4) = run_at(opts, 4);
    println!(
        "paper: 64GB avg improvement 57.8% (DFTL) / 85.5% (FAST); measured {d64:.1}% / {f64_:.1}%"
    );
    println!("paper:  4GB improvement ~70% (DFTL) / ~90% (FAST); measured {d4:.1}% / {f4:.1}%");
    vec![t64, t4]
}

//! Fig. 9 — the impacts of page size (2-16 KB at a fixed 8 GB).
//!
//! Paper shape: MRT falls as pages grow for all three schemes; DLOOP wins
//! at every size but DFTL/FAST close the gap at 16 KB (fewer pages per
//! request → less to parallelise, bigger transfers favour fewer ops);
//! SDRPP drops with page size for everyone.

use super::sweep::sweep;
use super::ExpOptions;
use crate::table::Table;
use dloop_ftl_kit::config::SsdConfig;

/// Page sizes of the paper's x-axis.
pub const PAGE_KB: [u32; 4] = [2, 4, 8, 16];

/// Run the Fig. 9 sweep — twice: once with the byte-accurate Table-I bus
/// model, once with the flat ~50 us/page transfer the paper's prose
/// quotes. The second reproduces the paper's falling-MRT trend and
/// demonstrates why the first does not (EXPERIMENTS.md).
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let points: Vec<(String, SsdConfig)> = PAGE_KB
        .iter()
        .map(|&kb| {
            (
                format!("{kb}KB"),
                SsdConfig::paper_default()
                    .with_capacity_gb(opts.scaled_capacity(8))
                    .with_page_kb(kb),
            )
        })
        .collect();
    let mut tables = sweep(
        opts,
        &format!("Fig. 9 — page size at 8 GB (scale 1/{})", opts.scale),
        "page",
        &points,
    );
    let fixed_points: Vec<(String, SsdConfig)> = points
        .into_iter()
        .map(|(label, mut config)| {
            config.timing = dloop_nand::TimingConfig::paper_fixed_transfer();
            (label, config)
        })
        .collect();
    tables.extend(sweep(
        opts,
        &format!(
            "Fig. 9 (flat 50us/page transfer) at 8 GB (scale 1/{})",
            opts.scale
        ),
        "page",
        &fixed_points,
    ));
    tables
}

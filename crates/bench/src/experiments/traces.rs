//! Table II: trace statistics, measured from the synthetic generators so
//! the table reflects what actually runs.

use super::ExpOptions;
use crate::table::{f2, Table};
use dloop_workloads::WorkloadProfile;

/// Render Table II.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let mut table = Table::new(
        "Table II — workload statistics (synthetic reproductions)",
        &[
            "trace",
            "writes",
            "reads",
            "write %",
            "avg size KB",
            "reqs/sec",
            "footprint GB",
        ],
    );
    for p in WorkloadProfile::all_paper() {
        // Sample enough requests for stable statistics without generating
        // the multi-million full trace.
        let sample = p.generate_scaled(opts.seed, 2048, opts.requests_for(&p).min(100_000));
        let s = sample.stats(2048);
        // Scale observed counts up to the full trace size for the
        // writes/reads columns.
        let scale = p.total_requests as f64 / sample.len().max(1) as f64;
        table.row(vec![
            p.name.to_string(),
            format!("{:.0}", s.writes as f64 * scale),
            format!("{:.0}", s.reads as f64 * scale),
            f2(s.write_pct),
            f2(s.avg_size_kb),
            f2(s.rate_per_sec),
            f2(p.footprint_bytes as f64 / (1u64 << 30) as f64),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_traces_appear() {
        let opts = ExpOptions {
            max_requests: 5_000,
            out_dir: None,
            ..ExpOptions::default()
        };
        let t = &run(&opts)[0];
        let s = t.render();
        for name in ["Financial1", "Financial2", "TPC-C", "Exchange", "Build"] {
            assert!(s.contains(name), "missing {name}");
        }
        assert_eq!(t.len(), 5);
    }
}

//! Host-stack sweeps (beyond the paper): replay the host-cache
//! contention mix through the `dloop-host` NVMe-style front end and
//! sweep the two knobs the stack trades latency against efficiency on.
//!
//! Three tables come out, all on [`dloop_workloads::tenants::host_mix`]
//! (a cache-friendly hot-set reader, a write-heavy OLTP stream, and a
//! cache-hostile scanner):
//!
//! * **Interrupt-coalescing sweep** — doorbell batch size and interrupt
//!   coalescing threshold rise together; submissions amortize MMIO rings
//!   and completions aggregate per interrupt, at the price of host-queue
//!   and completion latency. The columns decompose each setting's mean
//!   end-to-end latency into the four host phases, which tile it exactly
//!   (claim C13).
//! * **Dirty-ratio sweep** — a fixed write-back cache flushes its dirty
//!   set at increasing dirty fractions; later flushes mean fewer,
//!   larger write-back bursts and more absorbed overwrites.
//! * **Queue-depth sweep** — the interleaved driver's per-queue SQ
//!   windows shrink from unbounded (depth 0 in the table) down to one
//!   slot; backpressure moves residence out of the device and into the
//!   host queue, and the occupancy column shows the windows holding
//!   (claim C14).
//!
//! All three CSV schemas are locked by unit tests here and smoke-checked
//! by `scripts/verify.sh`.

use super::ExpOptions;
use crate::runner::build_ftl;
use crate::table::{f, f2, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::{ReplayMode, SsdDevice};
use dloop_host::{HostConfig, HostRunReport, HostStack};
use dloop_simkit::SimDuration;
use dloop_workloads::{host_mix, Trace};

/// Locked column schema of the coalescing sweep (`host_0.csv`).
pub const COALESCE_HEADER: [&str; 9] = [
    "batch",
    "coalesce",
    "e2e_ms",
    "host_queue_ms",
    "cache_ms",
    "device_ms",
    "completion_ms",
    "mean_batch",
    "mean_coalesced",
];

/// Locked column schema of the dirty-ratio sweep (`host_1.csv`).
pub const DIRTY_HEADER: [&str; 7] = [
    "dirty_ratio",
    "e2e_ms",
    "cache_served_pct",
    "writes_absorbed",
    "writeback_cmds",
    "flushes",
    "forwarded",
];

/// Locked column schema of the queue-depth sweep (`host_2.csv`); depth
/// `0` is the unbounded (staged-equivalent) row.
pub const DEPTH_HEADER: [&str; 7] = [
    "depth",
    "e2e_ms",
    "host_queue_ms",
    "device_ms",
    "completion_ms",
    "depth_stalls",
    "max_sq_inflight",
];

/// One sweep cell: run the mix through a host stack with `config`.
fn measure(ssd: &SsdConfig, trace: &Trace, host: HostConfig) -> HostRunReport {
    let mut device = SsdDevice::new(ssd.clone(), build_ftl(FtlKind::Dloop, ssd));
    HostStack::new(host).run(&mut device, &trace.requests, ReplayMode::Open)
}

/// Mean milliseconds over the run for one summed phase total.
fn per_request_ms(total_ns: u64, requests: usize) -> f64 {
    if requests == 0 {
        return 0.0;
    }
    total_ns as f64 / 1e6 / requests as f64
}

/// The sweeps on an arbitrary device (the unit test uses the micro
/// config; the CLI uses the scaled paper device).
pub fn run_on(opts: &ExpOptions, config: SsdConfig, per_tenant: u64) -> Vec<Table> {
    let geometry = config.geometry();
    let footprint = geometry.user_pages() * geometry.page_size as u64 / 2;
    let trace = host_mix(opts.seed, geometry.page_size, per_tenant, footprint);
    let cache_pages = (geometry.user_pages() / 8).max(64);

    // Sweep 1: doorbell batching and interrupt coalescing rise together
    // (1/1 is the no-amortization corner; the cache stays on throughout
    // so the cache_ms column is comparable across rows).
    let mut coalesce = Table::new(
        format!(
            "Host coalescing sweep — {} requests, cache {} pages",
            trace.len(),
            cache_pages
        ),
        &COALESCE_HEADER,
    );
    for (batch, threshold) in [(1u32, 1u32), (2, 2), (4, 4), (8, 8), (16, 16)] {
        let host = HostConfig {
            doorbell_batch: batch,
            doorbell_timeout: Some(SimDuration::from_micros(20)),
            coalesce_threshold: threshold,
            coalesce_timeout: Some(SimDuration::from_micros(50)),
            ..HostConfig::buffered(cache_pages)
        };
        let report = measure(&config, &trace, host);
        let n = report.requests.len();
        let (hq, cache, dev, compl, _e2e) = report.phase_totals_ns();
        coalesce.row(vec![
            batch.to_string(),
            threshold.to_string(),
            f(report.mean_end_to_end_ms()),
            f(per_request_ms(hq, n)),
            f(per_request_ms(cache, n)),
            f(per_request_ms(dev, n)),
            f(per_request_ms(compl, n)),
            f2(report.queues.mean_batch()),
            f2(report.queues.mean_coalesced()),
        ]);
    }

    // Sweep 2: the write-back threshold, everything else at the
    // representative buffered setting.
    let mut dirty = Table::new(
        format!(
            "Host dirty-ratio sweep — {} requests, cache {} pages",
            trace.len(),
            cache_pages
        ),
        &DIRTY_HEADER,
    );
    for ratio in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let host = HostConfig {
            dirty_ratio: ratio,
            ..HostConfig::buffered(cache_pages)
        };
        let report = measure(&config, &trace, host);
        dirty.row(vec![
            f2(ratio),
            f(report.mean_end_to_end_ms()),
            f2(report.cache_served_fraction() * 100.0),
            report.cache.writes_absorbed.to_string(),
            report.writeback_commands.to_string(),
            report.cache.flushed.to_string(),
            report.forwarded.to_string(),
        ]);
    }

    // Sweep 3: the per-queue SQ window, cache off so every request rides
    // the interleaved submission path (depth 0 = unbounded reference).
    let mut depth_sweep = Table::new(
        format!(
            "Host queue-depth sweep — {} requests, 2 SQs, interleaved driver",
            trace.len()
        ),
        &DEPTH_HEADER,
    );
    for depth in [0u32, 1, 2, 4, 16] {
        let host = HostConfig {
            queues: 2,
            queue_depth: (depth > 0).then_some(depth),
            ..HostConfig::passthrough()
        };
        let report = measure(&config, &trace, host);
        let n = report.requests.len();
        let (hq, _cache, dev, compl, _e2e) = report.phase_totals_ns();
        depth_sweep.row(vec![
            depth.to_string(),
            f(report.mean_end_to_end_ms()),
            f(per_request_ms(hq, n)),
            f(per_request_ms(dev, n)),
            f(per_request_ms(compl, n)),
            report.queues.depth_stalls.to_string(),
            report.sq_log.max_in_flight().to_string(),
        ]);
    }

    vec![coalesce, dirty, depth_sweep]
}

/// CLI entry point (`dloop-experiments host`).
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let config = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(4));
    let per_tenant = if opts.max_requests == 0 {
        10_000
    } else {
        (opts.max_requests / 3).max(1)
    };
    run_on(opts, config, per_tenant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_emit_locked_schemas_and_engage_the_stack() {
        let opts = ExpOptions::default();
        let tables = run_on(&opts, SsdConfig::micro_gc_test(), 300);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 5, "five coalescing settings");
        assert_eq!(tables[1].len(), 5, "five dirty ratios");
        assert_eq!(tables[2].len(), 5, "five queue depths");
        let c = tables[0].to_csv();
        assert!(c.starts_with(&COALESCE_HEADER.join(",")), "{c}");
        let d = tables[1].to_csv();
        assert!(d.starts_with(&DIRTY_HEADER.join(",")), "{d}");
        let q = tables[2].to_csv();
        assert!(q.starts_with(&DEPTH_HEADER.join(",")), "{q}");
        // The stack actually engaged: deeper coalescing aggregates more
        // completions per interrupt than the 1/1 corner.
        let last = c.lines().last().unwrap();
        let coalesced: f64 = last.split(',').last().unwrap().parse().unwrap();
        assert!(coalesced > 1.0, "16/16 row never coalesced: {last}");
        // The interleaved windows engaged: the depth-1 row stalled
        // submissions and never exceeded one in-flight command per SQ.
        let depth1 = q.lines().nth(2).unwrap();
        let cols: Vec<&str> = depth1.split(',').collect();
        assert_eq!(cols[0], "1");
        assert!(cols[5].parse::<u64>().unwrap() > 0, "no stalls: {depth1}");
        assert!(
            cols[6].parse::<u64>().unwrap() <= 2,
            "windows leaked: {depth1}"
        );
    }

    #[test]
    fn sweeps_are_deterministic() {
        let opts = ExpOptions::default();
        let a = run_on(&opts, SsdConfig::micro_gc_test(), 200);
        let b = run_on(&opts, SsdConfig::micro_gc_test(), 200);
        assert_eq!(a[0].to_csv(), b[0].to_csv());
        assert_eq!(a[1].to_csv(), b[1].to_csv());
        assert_eq!(a[2].to_csv(), b[2].to_csv());
    }
}

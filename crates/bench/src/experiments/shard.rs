//! Sharded-engine speedup sweep (beyond the paper).
//!
//! The `shard` experiment measures what the parallel playback engine
//! (`RunConfig::shards`, DESIGN.md §3f) buys on the workload it was
//! built for: a multi-million-op uniform random-overwrite stream against
//! an aged device, where steady-state GC keeps every plane busy and the
//! DLOOP copy-back chains stay on their own plane — so almost no window
//! job crosses a shard boundary and the channel groups genuinely advance
//! in parallel.
//!
//! The sweep replays the *same* trace on the *same* aged device image at
//! 1, 2, 4 and 8 shards, wall-clocks each run, and checks every sharded
//! report against the sequential fingerprint (the C15 identity, here
//! re-verified on the perf workload itself). Two artifacts come out:
//!
//! * `shard_0.csv` — the usual locked-schema table;
//! * `BENCH_shard.json` — the perf trajectory consumed by
//!   `scripts/verify.sh`, which gates on `speedup_at_4 >= 1.5` and on
//!   every `fingerprint_match` being `true`.
//!
//! Two time columns per row, and the distinction matters:
//!
//! * `wall_ms` — raw elapsed time of the run *on this machine*. The
//!   engine caps its worker pool at `available_parallelism`, so on a
//!   box with fewer cores than shards the shard tasks time-slice and
//!   wall time cannot drop below the sequential run's.
//! * `critical_path_ms` — the engine's own phase breakdown
//!   (`RunReport::shard_timing`): serial partition + the slowest shard
//!   task + serial merge. Because plane-pure shards share no state, a
//!   task's time on the bounded pool is its isolated cost, and the
//!   critical path is the run's wall time on a machine with a core per
//!   shard. `speedup` is computed against it, and `host_cpus` is
//!   recorded in the JSON so the reader knows which regime `wall_ms`
//!   was measured in.
//!
//! Wall-clock numbers are the one place this workspace is *not*
//! deterministic — they measure the machine. The fingerprints are.

use super::ExpOptions;
use crate::runner::build_ftl;
use crate::table::{f2, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::{RunConfig, SsdDevice};
use dloop_ftl_kit::metrics::RunReport;
use dloop_host::report_fingerprint;
use dloop_workloads::synth::{sequential_fill, uniform_random, UniformParams};
use dloop_workloads::Trace;
use std::fmt::Write as _;
use std::time::Instant;

/// Locked column schema of the sweep table (`shard_0.csv`). New columns
/// append strictly after the existing ones (EXPERIMENTS.md schema rule):
/// the four phase columns split `critical_path_ms` into its serial
/// prefix, the slowest shard's state fork, the slowest shard's replay,
/// and the serial merge; `cap_saturated` flags rows replayed with more
/// shards than host cores, whose `wall_ms` time-slices and must not be
/// read as parallel time.
pub const SHARD_HEADER: [&str; 11] = [
    "shards",
    "wall_ms",
    "critical_path_ms",
    "speedup",
    "fingerprint_match",
    "pages_played",
    "partition_ms",
    "fork_ms",
    "replay_ms",
    "merge_ms",
    "cap_saturated",
];

/// Shard counts the sweep replays, in row order. The acceptance gate
/// reads the 4-shard row.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One sweep row.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// `RunConfig::shards` for this run.
    pub shards: usize,
    /// Wall-clock milliseconds of `run_with` (machine-dependent; equals
    /// the *sum* of shard work when the host has a single core).
    pub wall_ms: f64,
    /// Modeled parallel wall: serial partition + slowest shard task +
    /// serial merge, from `RunReport::shard_timing`. Falls back to
    /// `wall_ms` when the run was not served by the parallel engine.
    pub critical_path_ms: f64,
    /// `wall_ms(1 shard) / critical_path_ms(this row)`.
    pub speedup: f64,
    /// Whether this row's report fingerprint equals the sequential one.
    pub fingerprint_match: bool,
    /// Host + GC + translation pages the run played (same for all rows
    /// when the fingerprints match).
    pub pages_played: u64,
    /// Serial partition phase of the parallel engine (zero when the run
    /// was served sequentially).
    pub partition_ms: f64,
    /// Slowest shard's state-fork time (zero when sequential).
    pub fork_ms: f64,
    /// Slowest shard's replay time (zero when sequential).
    pub replay_ms: f64,
    /// Serial merge + fold phase (zero when sequential).
    pub merge_ms: f64,
    /// `shards > host_cpus`: the worker pool is capped at the host's
    /// parallelism, so this row's shard tasks time-sliced and `wall_ms`
    /// is not a parallel measurement (`critical_path_ms` still is).
    pub cap_saturated: bool,
}

/// The measured sweep plus the workload description that headlines it.
#[derive(Debug, Clone)]
pub struct ShardSweep {
    /// Requests in the measured trace (after the aging fill).
    pub requests: u64,
    /// `available_parallelism` of the measuring host — the context in
    /// which `wall_ms` must be read.
    pub host_cpus: usize,
    /// Rows in [`SHARD_COUNTS`] order.
    pub rows: Vec<ShardRow>,
}

impl ShardSweep {
    /// Speedup of the 4-shard row (the acceptance gate).
    pub fn speedup_at_4(&self) -> f64 {
        self.rows
            .iter()
            .find(|r| r.shards == 4)
            .map(|r| r.speedup)
            .unwrap_or(0.0)
    }

    /// Whether every sharded row matched the sequential fingerprint.
    pub fn all_match(&self) -> bool {
        self.rows.iter().all(|r| r.fingerprint_match)
    }

    /// The `BENCH_shard.json` document (hand-rolled: the workspace has
    /// no serde). Schema is locked by a unit test below.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"experiment\": \"shard\",\n");
        let _ = writeln!(s, "  \"requests\": {},", self.requests);
        let _ = writeln!(s, "  \"host_cpus\": {},", self.host_cpus);
        let _ = writeln!(s, "  \"speedup_at_4\": {:.3},", self.speedup_at_4());
        let _ = writeln!(s, "  \"all_fingerprints_match\": {},", self.all_match());
        let _ = writeln!(
            s,
            "  \"pass\": {},",
            self.all_match() && self.speedup_at_4() >= 1.5
        );
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"shards\": {}, \"wall_ms\": {:.3}, \"critical_path_ms\": {:.3}, \
                 \"speedup\": {:.3}, \"fingerprint_match\": {}, \"pages_played\": {}, \
                 \"partition_ms\": {:.3}, \"fork_ms\": {:.3}, \"replay_ms\": {:.3}, \
                 \"merge_ms\": {:.3}, \"cap_saturated\": {}}}",
                r.shards,
                r.wall_ms,
                r.critical_path_ms,
                r.speedup,
                r.fingerprint_match,
                r.pages_played,
                r.partition_ms,
                r.fork_ms,
                r.replay_ms,
                r.merge_ms,
                r.cap_saturated
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Pages the run actually played on the flash array (the work the
/// worker threads split).
fn pages_played(r: &RunReport) -> u64 {
    r.hw.reads + r.hw.writes + r.hw.copybacks + r.hw.interplane_copies
}

/// The GC-heavy overwrite trace the sweep replays: uniform single-page
/// random writes over the *hot region* (90 % of the logical space) at an
/// effectively open arrival rate, preceded (per device, not timed) by a
/// sequential aging fill of the same region so collections run from the
/// first measured request. Capping the hot region keeps steady-state
/// utilisation near 87 % on the paper's 3 %-over-provisioned geometry:
/// every plane collects constantly, but collections always restore the
/// free pool to the GC threshold. Overwriting the full space instead
/// drives utilisation to ~97 % — GC hell, where bounded collections
/// leave planes below threshold; the engine stays bit-identical there
/// but serves the run sequentially, which is the fallback this sweep is
/// *not* measuring.
fn overwrite_trace(seed: u64, user_pages: u64, requests: u64) -> Trace {
    uniform_random(
        &UniformParams {
            requests,
            write_ratio: 1.0,
            pages_per_req: 1,
            space_pages: user_pages * 9 / 10,
            rate_per_sec: 1e9,
        },
        seed,
    )
}

/// The sweep on an arbitrary device and request budget (the unit test
/// uses a micro device; the CLI defaults to a multi-million-op run on
/// the paper device).
pub fn sweep_on(opts: &ExpOptions, config: SsdConfig, requests: u64) -> ShardSweep {
    let geometry = config.geometry();
    let fill = sequential_fill(geometry.user_pages(), 0.9, 64);
    let trace = overwrite_trace(opts.seed, geometry.user_pages(), requests);

    // The same helper the engine sizes its worker pool from — the bench
    // must not invent its own answer (it used to silently fall back to 1
    // on platforms where `available_parallelism` errors, misreporting
    // every row as cap-saturated).
    let host_cpus = dloop_ftl_kit::host_parallelism();
    let mut rows = Vec::new();
    let mut seq_fp = 0u64;
    let mut baseline_ms = 0.0f64;
    for &shards in &SHARD_COUNTS {
        let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        device.run_with(&fill.requests, RunConfig::open());
        let start = Instant::now();
        let report = device.run_with(&trace.requests, RunConfig::open().shards(shards));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let fp = report_fingerprint(&report);
        if shards == 1 {
            seq_fp = fp;
            baseline_ms = wall_ms;
        }
        let timing = report.shard_timing.as_ref();
        let critical_path_ms = timing.map(|t| t.critical_path_ms()).unwrap_or(wall_ms);
        rows.push(ShardRow {
            shards,
            wall_ms,
            critical_path_ms,
            speedup: baseline_ms / critical_path_ms.max(1e-9),
            fingerprint_match: fp == seq_fp,
            pages_played: pages_played(&report),
            partition_ms: timing.map(|t| t.partition_ms).unwrap_or(0.0),
            fork_ms: timing.map(|t| t.max_fork_ms()).unwrap_or(0.0),
            replay_ms: timing.map(|t| t.max_worker_ms()).unwrap_or(0.0),
            merge_ms: timing.map(|t| t.merge_ms).unwrap_or(0.0),
            cap_saturated: shards > host_cpus,
        });
    }
    ShardSweep {
        requests: trace.len() as u64,
        host_cpus,
        rows,
    }
}

/// Render the sweep as the locked-schema table.
pub fn to_table(sweep: &ShardSweep) -> Table {
    let mut table = Table::new(
        format!(
            "Sharded playback sweep — {} overwrite requests (wall-clock, machine-dependent)",
            sweep.requests
        ),
        &SHARD_HEADER,
    );
    for r in &sweep.rows {
        table.row(vec![
            r.shards.to_string(),
            f2(r.wall_ms),
            f2(r.critical_path_ms),
            f2(r.speedup),
            r.fingerprint_match.to_string(),
            r.pages_played.to_string(),
            f2(r.partition_ms),
            f2(r.fork_ms),
            f2(r.replay_ms),
            f2(r.merge_ms),
            r.cap_saturated.to_string(),
        ]);
    }
    table
}

/// CLI entry point: run the sweep on the paper device, emit the table,
/// and drop `BENCH_shard.json` next to the CSVs (plus a copy in the
/// current directory when no `--out` is given).
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let base = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(4));
    let config = SsdConfig {
        // A fully resident mapping table: CMT-miss translation chains
        // land on the translation page's plane, not the host plane, and
        // a thrashing CMT would turn almost every window job into a
        // cross-shard crossing (played at the sequential merge point).
        // Perf runs cache the map, as a real drive's DRAM would.
        cmt_capacity: base.geometry().user_pages() as usize,
        ..base
    };
    let requests = if opts.max_requests == 0 {
        2_000_000
    } else {
        opts.max_requests
    };
    let sweep = sweep_on(opts, config, requests);
    let json = sweep.to_json();
    let target = match &opts.out_dir {
        Some(dir) => dir.join("BENCH_shard.json"),
        None => std::path::PathBuf::from("BENCH_shard.json"),
    };
    if let Some(dir) = &opts.out_dir {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&target, &json) {
        Ok(()) => eprintln!("wrote {}", target.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", target.display()),
    }
    vec![to_table(&sweep)]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-channel micro device keeps the five replays cheap while the
    /// overwrite stream still triggers GC; identity must hold at every
    /// shard count even when the run is too small to speed up.
    #[test]
    fn micro_sweep_is_fingerprint_identical_and_json_well_formed() {
        let opts = ExpOptions::default();
        let config = SsdConfig {
            channels: 4,
            ..SsdConfig::micro_gc_test()
        };
        let sweep = sweep_on(&opts, config, 3_000);
        assert_eq!(sweep.rows.len(), SHARD_COUNTS.len());
        assert!(sweep.all_match(), "sharded replay diverged: {sweep:?}");
        assert!(sweep.rows.iter().all(|r| r.pages_played > 3_000));

        let json = sweep.to_json();
        for key in [
            "\"experiment\": \"shard\"",
            "\"requests\":",
            "\"host_cpus\":",
            "\"speedup_at_4\":",
            "\"all_fingerprints_match\": true",
            "\"pass\":",
            "\"rows\":",
            "\"critical_path_ms\":",
            "\"fingerprint_match\": true",
            "\"partition_ms\":",
            "\"fork_ms\":",
            "\"replay_ms\":",
            "\"merge_ms\":",
            "\"cap_saturated\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches("\"shards\":").count(), SHARD_COUNTS.len());
    }

    #[test]
    fn table_schema_is_locked() {
        let sweep = ShardSweep {
            requests: 10,
            host_cpus: 1,
            rows: vec![ShardRow {
                shards: 1,
                wall_ms: 1.0,
                critical_path_ms: 1.0,
                speedup: 1.0,
                fingerprint_match: true,
                pages_played: 10,
                partition_ms: 0.1,
                fork_ms: 0.1,
                replay_ms: 0.7,
                merge_ms: 0.1,
                cap_saturated: false,
            }],
        };
        let t = to_table(&sweep);
        assert_eq!(t.to_csv().lines().next().unwrap(), SHARD_HEADER.join(","));
    }
}

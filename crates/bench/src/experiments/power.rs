//! Power-cap sweep (beyond the paper): replay one write-heavy burst with
//! integer energy accounting enabled under a descending ladder of power
//! budgets ([`QosSpec::PowerCap`] over the NCQ window) and report what
//! the cap costs and what it cannot change.
//!
//! Three artifacts come out:
//!
//! * `power_0.csv` — the usual locked-schema table, one row per budget
//!   (row 0 is the effectively-unbounded baseline);
//! * `BENCH_power.json` — the acceptance document `scripts/verify.sh`
//!   gates on: every capped row must respect its budget in *every*
//!   power-timeline bucket, and every row must consume the *identical*
//!   femtojoule total (translation happens at arrival, so a cap stretches
//!   time, never work);
//! * `trace_power.csv` — the per-plane/per-channel power timeline of the
//!   tightest-budget run, the same schema the `trace` subcommand emits.
//!
//! The per-bucket ceiling is checked in exact integer arithmetic:
//! `bucket_fj <= budget_uw * bucket_ns`, the µW × ns = fJ identity the
//! whole accounting subsystem is built on.

use super::ExpOptions;
use crate::runner::build_ftl;
use crate::table::{f2, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::{RunConfig, SsdDevice};
use dloop_ftl_kit::sched::QosSpec;
use dloop_nand::EnergyConfig;
use dloop_simkit::trace::{power_csv, RingSink};
use dloop_workloads::WorkloadProfile;
use std::fmt::Write as _;

/// Locked column schema of the sweep table (`power_0.csv`).
pub const POWER_HEADER: [&str; 9] = [
    "budget_uw",
    "mrt_ms",
    "makespan_ms",
    "energy_array_fj",
    "energy_bus_fj",
    "energy_total_fj",
    "mean_power_mw",
    "peak_bucket_mw",
    "budget_respected",
];

/// Budgets the sweep replays, in row order: the effectively-unbounded
/// baseline first (100 kW admits everything the device could ever draw),
/// then a descending ladder through the conventional 250 mW cap. All in
/// µW; the baseline is reported as `budget_uw = 0` in the table since it
/// enforces nothing.
pub const BUDGETS_UW: [u64; 4] = [
    100_000_000_000,
    1_000_000,
    500_000,
    QosSpec::POWER_CAP_BUDGET_UW,
];

/// Power-timeline resolution for the per-bucket ceiling check.
const POWER_BUCKETS: usize = 64;

/// One sweep row.
#[derive(Debug, Clone)]
pub struct PowerRow {
    /// Enforced budget in µW (0 = the unbounded baseline row).
    pub budget_uw: u64,
    /// Mean response time under this budget.
    pub mrt_ms: f64,
    /// Simulated completion time of the last operation.
    pub makespan_ms: f64,
    /// Exact integer array (cell) energy.
    pub energy_array_fj: u64,
    /// Exact integer bus (channel) energy.
    pub energy_bus_fj: u64,
    /// Mean electrical power over the makespan.
    pub mean_power_mw: f64,
    /// The hottest power-timeline bucket's mean draw.
    pub peak_bucket_mw: f64,
    /// Whether every timeline bucket stayed at or below the budget
    /// (vacuously true for the baseline row).
    pub budget_respected: bool,
}

impl PowerRow {
    /// Total femtojoules of the row.
    pub fn total_fj(&self) -> u64 {
        self.energy_array_fj
            .checked_add(self.energy_bus_fj)
            .expect("energy overflow")
    }
}

/// The measured sweep plus its acceptance verdicts.
#[derive(Debug, Clone)]
pub struct PowerSweep {
    /// Requests in the replayed burst.
    pub requests: u64,
    /// Rows in [`BUDGETS_UW`] order (baseline first).
    pub rows: Vec<PowerRow>,
    /// The tightest-budget run's power timeline (`trace_power.csv` body).
    pub tightest_timeline: String,
}

impl PowerSweep {
    /// Every capped row respected its budget in every bucket.
    pub fn all_respected(&self) -> bool {
        self.rows.iter().all(|r| r.budget_respected)
    }

    /// Every row consumed the identical femtojoule total.
    pub fn energy_invariant(&self) -> bool {
        self.rows
            .windows(2)
            .all(|w| w[0].total_fj() == w[1].total_fj())
    }

    /// The `BENCH_power.json` document (hand-rolled: the workspace has no
    /// serde). Schema is locked by a unit test below.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"experiment\": \"power\",\n");
        let _ = writeln!(s, "  \"requests\": {},", self.requests);
        let _ = writeln!(s, "  \"all_budgets_respected\": {},", self.all_respected());
        let _ = writeln!(s, "  \"energy_invariant\": {},", self.energy_invariant());
        let _ = writeln!(
            s,
            "  \"pass\": {},",
            self.all_respected() && self.energy_invariant()
        );
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"budget_uw\": {}, \"mrt_ms\": {:.4}, \"makespan_ms\": {:.3}, \
                 \"energy_array_fj\": {}, \"energy_bus_fj\": {}, \"energy_total_fj\": {}, \
                 \"mean_power_mw\": {:.3}, \"peak_bucket_mw\": {:.3}, \"budget_respected\": {}}}",
                r.budget_uw,
                r.mrt_ms,
                r.makespan_ms,
                r.energy_array_fj,
                r.energy_bus_fj,
                r.total_fj(),
                r.mean_power_mw,
                r.peak_bucket_mw,
                r.budget_respected
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The sweep on an arbitrary device and request budget (the unit test
/// uses the micro device; the CLI uses the scaled paper device). The
/// device config must carry an [`EnergyConfig`].
pub fn sweep_on(opts: &ExpOptions, config: SsdConfig, requests: u64) -> PowerSweep {
    let energy = config
        .energy
        .expect("the power sweep needs energy accounting enabled");
    let geometry = config.geometry();
    // The C11/C16 write-heavy burst: a cap on concurrent admissions is a
    // no-op on an idle device, so arrivals must outpace service.
    let mut profile = opts.scaled_profile(WorkloadProfile::financial1());
    profile.write_ratio = 0.9;
    profile.rate_per_sec *= 16.0;
    let trace = profile.generate_scaled(opts.seed, geometry.page_size, requests);

    let mut rows = Vec::new();
    let mut tightest_timeline = String::new();
    for (i, &budget_uw) in BUDGETS_UW.iter().enumerate() {
        let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        device.attach_sink(Box::new(RingSink::new(1 << 20)));
        let report = device.run_with(
            &trace.requests,
            RunConfig::qos(QosSpec::PowerCap { budget_uw })
                .queue_depth(dloop_ftl_kit::DEFAULT_NCQ_DEPTH),
        );
        let rec = device.take_trace().expect("ring sink was attached");
        assert_eq!(rec.dropped(), 0, "power sweep ring must keep every span");
        let totals = report.energy.expect("energy-enabled run reports totals");

        let timeline = power_csv(
            &rec,
            geometry.total_planes() as usize,
            geometry.channels as usize,
            POWER_BUCKETS,
            energy.array_active_uw,
            energy.bus_active_uw,
        );
        // Reconstruct the fixed-width grid (last bucket stretched) and
        // hold every bucket against the integer ceiling.
        let end_ns = report.sim_end.as_nanos();
        let width = (end_ns / POWER_BUCKETS as u64).max(1);
        let baseline = i == 0;
        let mut respected = true;
        let mut peak_uw = 0u64;
        let mut csv_fj = 0u64;
        for (b, line) in timeline.lines().skip(1).enumerate() {
            let bucket_fj: u64 = line
                .rsplit(',')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("power_csv rows end in an integer total");
            csv_fj = csv_fj.checked_add(bucket_fj).expect("bucket sum overflow");
            let span_ns = if b + 1 == POWER_BUCKETS {
                end_ns.saturating_sub(b as u64 * width).max(width)
            } else {
                width
            };
            // fJ / ns = µW: the bucket's mean draw.
            peak_uw = peak_uw.max(bucket_fj / span_ns.max(1));
            if !baseline && bucket_fj > budget_uw.checked_mul(span_ns).expect("ceiling overflow") {
                respected = false;
            }
        }
        assert_eq!(
            csv_fj,
            totals.total_fj(),
            "power timeline must sum exactly to the report's femtojoule totals"
        );
        if i + 1 == BUDGETS_UW.len() {
            tightest_timeline = timeline;
        }
        rows.push(PowerRow {
            budget_uw: if baseline { 0 } else { budget_uw },
            mrt_ms: report.mean_response_time_ms(),
            makespan_ms: end_ns as f64 / 1e6,
            energy_array_fj: totals.array_fj,
            energy_bus_fj: totals.bus_fj,
            mean_power_mw: totals.total_fj() as f64 / end_ns.max(1) as f64 / 1e3,
            peak_bucket_mw: peak_uw as f64 / 1e3,
            budget_respected: respected,
        });
    }
    PowerSweep {
        requests: trace.len() as u64,
        rows,
        tightest_timeline,
    }
}

/// Render the sweep as the locked-schema table.
pub fn to_table(sweep: &PowerSweep) -> Table {
    let mut table = Table::new(
        format!(
            "Power-cap sweep — {} write-heavy requests, integer femtojoule accounting",
            sweep.requests
        ),
        &POWER_HEADER,
    );
    for r in &sweep.rows {
        table.row(vec![
            r.budget_uw.to_string(),
            f2(r.mrt_ms),
            f2(r.makespan_ms),
            r.energy_array_fj.to_string(),
            r.energy_bus_fj.to_string(),
            r.total_fj().to_string(),
            f2(r.mean_power_mw),
            f2(r.peak_bucket_mw),
            r.budget_respected.to_string(),
        ]);
    }
    table
}

/// CLI entry point: run the sweep on the paper device, emit the table,
/// and drop `BENCH_power.json` plus `trace_power.csv` next to the CSVs.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let config = SsdConfig::paper_default()
        .with_capacity_gb(opts.scaled_capacity(4))
        .with_energy(EnergyConfig::paper_default());
    let requests = if opts.max_requests == 0 {
        20_000
    } else {
        opts.max_requests
    };
    let sweep = sweep_on(opts, config, requests);
    if let Some(dir) = &opts.out_dir {
        let _ = std::fs::create_dir_all(dir);
        for (name, body) in [
            ("BENCH_power.json", &sweep.to_json()),
            ("trace_power.csv", &sweep.tightest_timeline),
        ] {
            let path = dir.join(name);
            match std::fs::write(&path, body) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
    } else if let Err(e) = std::fs::write("BENCH_power.json", sweep.to_json()) {
        eprintln!("warning: could not write BENCH_power.json: {e}");
    }
    vec![to_table(&sweep)]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The micro device keeps the four replays cheap; the in-process
    /// assertions (zero ring drops, timeline == report identity per run)
    /// plus the sweep verdicts are the real test.
    #[test]
    fn micro_sweep_respects_budgets_at_identical_energy() {
        let opts = ExpOptions::default();
        let config = SsdConfig::micro_gc_test().with_energy(EnergyConfig::paper_default());
        let sweep = sweep_on(&opts, config, 1_200);
        assert_eq!(sweep.rows.len(), BUDGETS_UW.len());
        assert!(sweep.all_respected(), "budget violated: {sweep:?}");
        assert!(sweep.energy_invariant(), "cap changed energy: {sweep:?}");
        assert!(sweep.rows[0].total_fj() > 0);
        assert!(sweep
            .tightest_timeline
            .starts_with("bucket_start_ms,bucket_end_ms,"));

        let json = sweep.to_json();
        for key in [
            "\"experiment\": \"power\"",
            "\"requests\":",
            "\"all_budgets_respected\": true",
            "\"energy_invariant\": true",
            "\"pass\": true",
            "\"rows\":",
            "\"budget_uw\":",
            "\"energy_total_fj\":",
            "\"peak_bucket_mw\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches("\"budget_uw\":").count(), BUDGETS_UW.len());
    }

    /// Energy accounting is observation, never perturbation: the same
    /// trace replayed with and without an [`EnergyConfig`] produces the
    /// same timings, the same completion log, and a metrics CSV row that
    /// differs *only* in the two appended energy columns — stripping the
    /// totals makes the full report fingerprints bit-identical.
    #[test]
    fn disabling_energy_leaves_the_run_bit_identical() {
        let opts = ExpOptions::default();
        let plain = SsdConfig::micro_gc_test();
        let powered = plain.clone().with_energy(EnergyConfig::paper_default());
        let geometry = plain.geometry();
        let profile = opts.scaled_profile(WorkloadProfile::financial1());
        let trace = profile.generate_scaled(opts.seed, geometry.page_size, 600);

        let run = |config: &SsdConfig| {
            let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, config));
            device.run_with(&trace.requests, RunConfig::open())
        };
        let dark = run(&plain);
        let mut lit = run(&powered);
        assert!(dark.energy.is_none());
        assert!(
            lit.energy
                .expect("energy-enabled run reports totals")
                .total_fj()
                > 0
        );

        let (dark_row, lit_row) = (dark.csv_row(), lit.csv_row());
        let dark_cols: Vec<&str> = dark_row.split(',').collect();
        let lit_cols: Vec<&str> = lit_row.split(',').collect();
        assert_eq!(dark_cols.len(), lit_cols.len());
        let energy_cols = dark_cols.len() - 2;
        assert_eq!(dark_cols[..energy_cols], lit_cols[..energy_cols]);
        assert_eq!(&dark_cols[energy_cols..], &["0", "0"]);
        assert_ne!(&lit_cols[energy_cols..], &["0", "0"]);

        assert_eq!(dark.completions, lit.completions);
        assert_eq!(dark.queue_depth_csv(64), lit.queue_depth_csv(64));
        lit.energy = None;
        assert_eq!(
            dloop_host::report_fingerprint(&dark),
            dloop_host::report_fingerprint(&lit),
            "with totals stripped, the reports must be bit-identical"
        );
    }

    #[test]
    fn table_schema_is_locked() {
        let sweep = PowerSweep {
            requests: 10,
            rows: vec![PowerRow {
                budget_uw: 0,
                mrt_ms: 1.0,
                makespan_ms: 2.0,
                energy_array_fj: 3,
                energy_bus_fj: 4,
                mean_power_mw: 5.0,
                peak_bucket_mw: 6.0,
                budget_respected: true,
            }],
            tightest_timeline: String::new(),
        };
        let t = to_table(&sweep);
        assert_eq!(t.to_csv().lines().next().unwrap(), POWER_HEADER.join(","));
    }
}

//! §II.B: "The channel-level parallelism can offer the most optimized
//! performance … Unfortunately, increasing the number of channels
//! substantially increases the hardware cost." This experiment quantifies
//! that trade-off: DLOOP's mean response time as channel count grows
//! (total planes growing with it), next to the zero-cost alternative the
//! paper advocates — more planes per die on a fixed channel budget.

use super::ExpOptions;
use crate::runner::{run_grid, RunSpec};
use crate::table::{f, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_workloads::WorkloadProfile;

/// Channel counts swept.
const CHANNELS: [u32; 4] = [2, 4, 8, 16];

/// Run the channel-count sweep on the intensive TPC-C profile.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let profile = opts.scaled_profile(WorkloadProfile::tpcc());
    let mut specs = Vec::new();
    let mut labels = Vec::new();

    // Axis A: more channels (paper: costly) at 4 planes/die.
    for &ch in &CHANNELS {
        let mut config = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(8));
        config.channels = ch;
        labels.push(format!("{ch} channels x 8 planes"));
        specs.push(RunSpec {
            config,
            kind: FtlKind::Dloop,
            profile: profile.clone(),
            max_requests: opts.requests_for(&profile).min(120_000),
            seed: opts.seed,
            fill_fraction: opts.fill_fraction,
        });
    }
    // Axis B: same plane counts reached with a fixed 2-channel budget by
    // deepening planes per die (paper: free).
    for &ch in &CHANNELS {
        let mut config = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(8));
        config.channels = 2;
        config.planes_per_die = ch * 2; // 2ch x 2die x (2 ch)*2 = same total planes
        labels.push(format!("2 channels x {} planes", ch * 16 / 2));
        specs.push(RunSpec {
            config,
            kind: FtlKind::Dloop,
            profile: profile.clone(),
            max_requests: opts.requests_for(&profile).min(120_000),
            seed: opts.seed,
            fill_fraction: opts.fill_fraction,
        });
    }
    let reports = run_grid(specs, opts.workers);

    let mut table = Table::new(
        "SII.B - channel count vs plane depth (TPC-C, DLOOP)",
        &[
            "configuration",
            "total planes",
            "MRT ms",
            "p99 ms",
            "max chan util %",
        ],
    );
    for (label, r) in labels.iter().zip(&reports) {
        table.row(vec![
            label.clone(),
            r.plane_request_counts.len().to_string(),
            f(r.mean_response_time_ms()),
            f(r.response_percentile_ms(0.99)),
            f(r.max_channel_utilisation() * 100.0),
        ]);
    }
    vec![table]
}

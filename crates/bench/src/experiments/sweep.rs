//! Shared machinery for the Fig. 8/9/10 parameter sweeps: each figure is
//! {5 traces} × {sweep values} × {DLOOP, DFTL, FAST}, reported as one
//! mean-response-time table and one ln(SDRPP) table.

use super::ExpOptions;
use crate::runner::{run_grid, RunSpec};
use crate::table::{f, f2, Table};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_workloads::WorkloadProfile;

/// Run one sweep. `points` pairs a display label with the configuration
/// for that sweep value.
pub fn sweep(
    opts: &ExpOptions,
    title: &str,
    axis: &str,
    points: &[(String, SsdConfig)],
) -> Vec<Table> {
    let kinds = FtlKind::paper_set();
    let profiles: Vec<WorkloadProfile> = WorkloadProfile::all_paper()
        .into_iter()
        .map(|p| opts.scaled_profile(p))
        .collect();

    let mut specs = Vec::new();
    for profile in &profiles {
        for (_, config) in points {
            for kind in kinds {
                specs.push(RunSpec {
                    config: config.clone(),
                    kind,
                    profile: profile.clone(),
                    max_requests: opts.requests_for(profile),
                    seed: opts.seed,
                    fill_fraction: opts.fill_fraction,
                });
            }
        }
    }
    let reports = run_grid(specs, opts.workers);

    let header: Vec<&str> = {
        let mut h = vec!["trace", axis];
        h.extend(kinds.iter().map(|k| k.name()));
        h
    };
    let mut mrt = Table::new(format!("{title} — mean response time (ms)"), &header);
    let mut sdrpp = Table::new(format!("{title} — ln(SDRPP)"), &header);

    let mut it = reports.iter();
    for profile in &profiles {
        for (label, _) in points {
            let mut mrt_row = vec![profile.name.to_string(), label.clone()];
            let mut sd_row = mrt_row.clone();
            for _ in kinds {
                let r = it.next().expect("report grid underrun");
                mrt_row.push(f(r.mean_response_time_ms()));
                sd_row.push(f2(r.ln_sdrpp()));
            }
            mrt.row(mrt_row);
            sdrpp.row(sd_row);
        }
    }
    vec![mrt, sdrpp]
}

//! `dloop-experiments` — regenerate the DLOOP paper's tables and figures.
//!
//! ```text
//! dloop-experiments <command> [options]
//!
//! commands:
//!   params     Table I   — simulation parameters
//!   traces     Table II  — workload statistics
//!   copyback   §III.A    — copy-back vs inter-plane copy costs
//!   fig8       Fig. 8    — MRT / ln(SDRPP) vs SSD capacity
//!   fig9       Fig. 9    — MRT / ln(SDRPP) vs page size
//!   fig10      Fig. 10   — MRT / ln(SDRPP) vs extra blocks
//!   headline   §I/§V.B   — average improvement at 64 GB (and 4 GB)
//!   ablation              — design-choice ablations + future work
//!   striping              — §II.C motivation: concurrency vs throughput
//!   channels              — §II.B trade-off: channel count vs plane depth
//!   faults                — graceful degradation vs raw bit-error rate
//!   trace                 — trace-sink artifacts: flow-stitched Chrome
//!                           trace JSON, plane/channel-utilization CSVs,
//!                           streamed span JSONL, latency attribution
//!   qos                   — multi-tenant QoS policy sweep over the NCQ
//!                           window (per-tenant turnaround + fairness)
//!   host                  — host-stack sweeps through dloop-host:
//!                           interrupt coalescing and cache dirty ratio,
//!                           with per-phase latency decomposition
//!   power                 — power-cap sweep: descending µW budgets over a
//!                           write-heavy burst with integer femtojoule
//!                           accounting; emits BENCH_power.json and the
//!                           tightest cap's trace_power.csv timeline
//!   verify                — automated PASS/FAIL audit of the paper's claims
//!   all                   — everything above (except trace: its artifacts
//!                           are for interactive inspection, run it alone)
//!
//! options:
//!   --scale N      divide device capacities and footprints by N (default 4)
//!   --requests N   max requests per run (default 150000)
//!   --seed N       workload seed (default 42)
//!   --workers N    host threads (default: cores-1)
//!   --fill F       pre-fill fraction 0..1 (default 0)
//!   --out DIR      CSV output directory (default results/; "none" disables)
//!   --mode M       replay admission policy for `trace`:
//!                  open|gated|closed|ncq (default open)
//!   --depth N      host queue depth for closed/ncq modes (default 32)
//!   --policy P     narrow the qos sweep to one policy:
//!                  ncq|window-fifo|priority|deadline|fair-share (default all)
//!   --tenants N    tenant streams in the qos mix (default 3)
//!   --quick        shorthand for --requests 20000
//! ```

use dloop_bench::experiments::{
    ablation, channels, copyback, faults, fig10, fig8, fig9, headline, host, params, power, qos,
    shard, striping, tracecmd, traces, ExpOptions, TraceMode,
};
use dloop_ftl_kit::sched::QosSpec;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("{}", HELP);
    ExitCode::FAILURE
}

const HELP: &str = "usage: dloop-experiments <params|traces|copyback|fig8|fig9|fig10|headline|ablation|striping|channels|faults|trace|qos|host|shard|power|verify|all> \
[--scale N] [--requests N] [--seed N] [--workers N] [--fill F] [--out DIR] \
[--mode open|gated|closed|ncq] [--depth N] \
[--policy ncq|window-fifo|priority|deadline|fair-share] [--tenants N] [--quick]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let mut opts = ExpOptions::default();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = |opts_field: &mut dyn FnMut(&str) -> bool| -> bool {
            if i + 1 >= args.len() {
                eprintln!("missing value for {flag}");
                return false;
            }
            i += 1;
            opts_field(&args[i])
        };
        let ok = match flag {
            "--scale" => take(&mut |v| match v.parse() {
                Ok(x) => {
                    opts.scale = x;
                    true
                }
                Err(_) => false,
            }),
            "--requests" => take(&mut |v| match v.parse() {
                Ok(x) => {
                    opts.max_requests = x;
                    true
                }
                Err(_) => false,
            }),
            "--seed" => take(&mut |v| match v.parse() {
                Ok(x) => {
                    opts.seed = x;
                    true
                }
                Err(_) => false,
            }),
            "--workers" => take(&mut |v| match v.parse() {
                Ok(x) => {
                    opts.workers = x;
                    true
                }
                Err(_) => false,
            }),
            "--fill" => take(&mut |v| match v.parse() {
                Ok(x) => {
                    opts.fill_fraction = x;
                    true
                }
                Err(_) => false,
            }),
            "--out" => take(&mut |v| {
                opts.out_dir = if v == "none" {
                    None
                } else {
                    Some(PathBuf::from(v))
                };
                true
            }),
            "--mode" => take(&mut |v| match TraceMode::parse(v) {
                Some(m) => {
                    opts.mode = m;
                    true
                }
                None => false,
            }),
            "--depth" => take(&mut |v| match v.parse() {
                Ok(x) if x >= 1 => {
                    opts.queue_depth = x;
                    true
                }
                _ => false,
            }),
            "--policy" => take(&mut |v| match QosSpec::parse(v) {
                Some(p) => {
                    opts.qos_policy = Some(p);
                    true
                }
                None => false,
            }),
            "--tenants" => take(&mut |v| match v.parse() {
                Ok(x) if x >= 1 => {
                    opts.qos_tenants = x;
                    true
                }
                _ => false,
            }),
            "--quick" => {
                opts.max_requests = 20_000;
                true
            }
            other => {
                eprintln!("unknown flag {other}");
                false
            }
        };
        if !ok {
            return usage();
        }
        i += 1;
    }
    if opts.scale == 0 {
        eprintln!("--scale must be >= 1");
        return usage();
    }

    let run_cmd = |cmd: &str, opts: &ExpOptions| -> bool {
        match cmd {
            "params" => opts.emit(&params::run(), "table1_params"),
            "traces" => opts.emit(&traces::run(opts), "table2_traces"),
            "copyback" => opts.emit(&copyback::run(), "copyback"),
            "fig8" => opts.emit(&fig8::run(opts), "fig8_capacity"),
            "fig9" => opts.emit(&fig9::run(opts), "fig9_pagesize"),
            "fig10" => opts.emit(&fig10::run(opts), "fig10_extrablocks"),
            "headline" => opts.emit(&headline::run(opts), "headline"),
            "ablation" => opts.emit(&ablation::run(opts), "ablation"),
            "striping" => opts.emit(&striping::run(opts), "striping"),
            "channels" => opts.emit(&channels::run(opts), "channels"),
            "faults" => opts.emit(&faults::run(opts), "faults_ber"),
            "trace" => opts.emit(&tracecmd::run(opts), "trace"),
            "qos" => opts.emit(&qos::run(opts), "qos"),
            "host" => opts.emit(&host::run(opts), "host"),
            "shard" => opts.emit(&shard::run(opts), "shard"),
            "power" => opts.emit(&power::run(opts), "power"),
            "verify" => {
                let results = dloop_bench::claims::verify(opts);
                let table = dloop_bench::claims::to_table(&results);
                opts.emit(&[table], "claims");
                let failed = results.iter().filter(|r| !r.pass).count();
                if failed > 0 {
                    eprintln!("{failed} claim(s) FAILED");
                }
            }
            _ => return false,
        }
        true
    };

    let ok = if cmd == "all" {
        for c in [
            "params", "traces", "copyback", "fig8", "fig9", "fig10", "headline", "ablation",
            "striping", "channels", "faults", "qos", "host", "verify",
        ] {
            eprintln!(">> {c}");
            run_cmd(c, &opts);
        }
        true
    } else {
        run_cmd(&cmd, &opts)
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        usage()
    }
}

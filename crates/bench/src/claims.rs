//! Automated verification of the paper's qualitative claims.
//!
//! The reproduction's acceptance criterion is *shape*, not absolute
//! milliseconds: who wins, in which direction trends move, where the
//! paper's stated special cases appear. This module encodes each claim as
//! a predicate over a compact experiment grid, so
//! `dloop-experiments verify` gives a PASS/FAIL audit of the whole
//! reproduction in a few minutes.

use crate::runner::{build_ftl, run_grid, RunSpec};
use crate::table::Table;
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::{ReplayMode, RunConfig, SsdDevice};
use dloop_ftl_kit::metrics::RunReport;
use dloop_ftl_kit::sched::QosSpec;
use dloop_host::{report_fingerprint, HostConfig, HostStack};
use dloop_nand::TimingConfig;
use dloop_simkit::trace::{attribution, RingSink, SpanPhase};
use dloop_workloads::synth::sequential_fill;
use dloop_workloads::{host_mix, qos_mix, WorkloadProfile};

use crate::experiments::ExpOptions;

/// Outcome of one claim check.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Short identifier ("C1", …).
    pub id: &'static str,
    /// The paper's claim being checked.
    pub claim: &'static str,
    /// Whether the reproduction exhibits it.
    pub pass: bool,
    /// Measured evidence.
    pub detail: String,
}

/// The compact grid the claims are evaluated on.
struct Grid {
    /// `[trace][capacity in {small,large}][ftl]` reports.
    mrt: Vec<[[f64; 3]; 2]>,
    sdrpp: Vec<[[f64; 3]; 2]>,
    names: Vec<&'static str>,
    write_pcts: Vec<f64>,
}

fn run_compact_grid(opts: &ExpOptions) -> Grid {
    let kinds = FtlKind::paper_set();
    let capacities = [4u32, 64];
    let profiles: Vec<WorkloadProfile> = WorkloadProfile::all_paper()
        .into_iter()
        .map(|p| opts.scaled_profile(p))
        .collect();
    let mut specs = Vec::new();
    for p in &profiles {
        for &cap in &capacities {
            for kind in kinds {
                specs.push(RunSpec {
                    config: SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(cap)),
                    kind,
                    profile: p.clone(),
                    max_requests: opts.requests_for(p).min(120_000),
                    seed: opts.seed,
                    fill_fraction: opts.fill_fraction,
                });
            }
        }
    }
    let reports = run_grid(specs, opts.workers);
    let mut it = reports.iter();
    let mut mrt = Vec::new();
    let mut sdrpp = Vec::new();
    let mut names = Vec::new();
    let mut write_pcts = Vec::new();
    for p in &profiles {
        names.push(p.name);
        write_pcts.push(p.write_ratio * 100.0);
        let mut m = [[0.0; 3]; 2];
        let mut s = [[0.0; 3]; 2];
        for (ci, _) in capacities.iter().enumerate() {
            for ki in 0..3 {
                let r: &RunReport = it.next().expect("grid underrun");
                m[ci][ki] = r.mean_response_time_ms();
                s[ci][ki] = r.ln_sdrpp();
            }
        }
        mrt.push(m);
        sdrpp.push(s);
    }
    Grid {
        mrt,
        sdrpp,
        names,
        write_pcts,
    }
}

/// Run every claim check. Returns the individual results.
pub fn verify(opts: &ExpOptions) -> Vec<ClaimResult> {
    let mut results = Vec::new();

    // C1 — §III.A: copy-back saves ~30% over an inter-plane copy at 2 KB.
    let t = TimingConfig::paper_default();
    let saving = t.copyback_saving(2048);
    results.push(ClaimResult {
        id: "C1",
        claim: "copy-back saves ~30% over inter-plane copy at 2KB (SIII.A)",
        pass: (0.28..=0.34).contains(&saving),
        detail: format!("measured {:.1}%", saving * 100.0),
    });

    let grid = run_compact_grid(opts);
    let idx = |k: FtlKind| match k {
        FtlKind::Dloop => 0usize,
        FtlKind::Dftl => 1,
        _ => 2,
    };
    let (d, t_, f) = (idx(FtlKind::Dloop), idx(FtlKind::Dftl), 2usize);

    // C2 — Fig. 8: DLOOP <= DFTL on every trace at every capacity.
    let mut worst = (1.0f64, String::new());
    for (i, m) in grid.mrt.iter().enumerate() {
        for (row, cap) in m.iter().zip([4, 64]) {
            let ratio = row[d] / row[t_];
            if ratio > worst.0 {
                worst = (
                    ratio,
                    format!("{} @{}GB: {:.2}x", grid.names[i], cap, ratio),
                );
            }
        }
    }
    results.push(ClaimResult {
        id: "C2",
        claim: "DLOOP beats DFTL on every trace and capacity (Fig. 8)",
        pass: worst.0 <= 1.0,
        detail: if worst.1.is_empty() {
            "DLOOP <= DFTL everywhere".into()
        } else {
            format!("worst case {}", worst.1)
        },
    });

    // C3 — Fig. 8: DLOOP beats FAST on the write-dominant traces.
    let mut pass = true;
    let mut detail = String::new();
    for (i, m) in grid.mrt.iter().enumerate() {
        if grid.write_pcts[i] < 50.0 {
            continue; // the paper's own FAST edge cases are read-dominant
        }
        for row in m {
            if row[d] > row[f] {
                pass = false;
                detail = format!(
                    "{}: DLOOP {:.3} > FAST {:.3}",
                    grid.names[i], row[d], row[f]
                );
            }
        }
    }
    results.push(ClaimResult {
        id: "C3",
        claim: "DLOOP beats FAST on write-dominant traces (Fig. 8)",
        pass,
        detail: if detail.is_empty() {
            "holds on F1/TPC-C/Exchange/Build".into()
        } else {
            detail
        },
    });

    // C4 — Fig. 8: DLOOP's MRT does not grow with capacity.
    let mut pass = true;
    let mut detail = String::new();
    for (i, m) in grid.mrt.iter().enumerate() {
        if m[1][d] > m[0][d] * 1.05 {
            pass = false;
            detail = format!(
                "{}: 64GB {:.3} ms > 4GB {:.3} ms",
                grid.names[i], m[1][d], m[0][d]
            );
        }
    }
    results.push(ClaimResult {
        id: "C4",
        claim: "larger SSDs delay GC: MRT non-increasing with capacity (Fig. 8)",
        pass,
        detail: if detail.is_empty() {
            "holds for all five traces".into()
        } else {
            detail
        },
    });

    // C5 — §V.B: the smallest DLOOP-vs-DFTL gap is on read-dominant
    // Financial2.
    let gap = |i: usize| {
        let m = &grid.mrt[i];
        // average relative improvement across the two capacities
        ((m[0][t_] - m[0][d]) / m[0][t_] + (m[1][t_] - m[1][d]) / m[1][t_]) / 2.0
    };
    let f2_idx = grid.names.iter().position(|n| *n == "Financial2").unwrap();
    let f2_gap = gap(f2_idx);
    let min_other = (0..grid.names.len())
        .filter(|&i| i != f2_idx)
        .map(gap)
        .fold(f64::INFINITY, f64::min);
    results.push(ClaimResult {
        id: "C5",
        claim: "read-dominant Financial2 shows the smallest DLOOP-vs-DFTL gap (SV.B)",
        pass: f2_gap <= min_other,
        detail: format!(
            "F2 gap {:.1}% vs next smallest {:.1}%",
            f2_gap * 100.0,
            min_other * 100.0
        ),
    });

    // C6 — Figs. 8-10: DLOOP has the lowest ln(SDRPP) everywhere.
    let mut pass = true;
    let mut detail = String::new();
    for (i, s) in grid.sdrpp.iter().enumerate() {
        for row in s {
            if row[d] > row[t_] + 1e-9 || row[d] > row[f] + 1e-9 {
                pass = false;
                detail = format!(
                    "{}: DLOOP {:.2} vs DFTL {:.2} / FAST {:.2}",
                    grid.names[i], row[d], row[t_], row[f]
                );
            }
        }
    }
    results.push(ClaimResult {
        id: "C6",
        claim: "DLOOP spreads requests most evenly: lowest ln(SDRPP) (Figs. 8-10)",
        pass,
        detail: if detail.is_empty() {
            "lowest on every trace and capacity".into()
        } else {
            detail
        },
    });

    // C7 — Fig. 10: FAST improves as extra blocks grow (bigger log region).
    let profile = opts.scaled_profile(WorkloadProfile::tpcc());
    let fast_specs: Vec<RunSpec> = [3.0, 10.0]
        .iter()
        .map(|&pct| RunSpec {
            config: SsdConfig::paper_default()
                .with_capacity_gb(opts.scaled_capacity(8))
                .with_extra_pct(pct),
            kind: FtlKind::Fast,
            profile: profile.clone(),
            max_requests: opts.requests_for(&profile).min(120_000),
            seed: opts.seed,
            fill_fraction: opts.fill_fraction,
        })
        .collect();
    let fast_reports = run_grid(fast_specs, opts.workers);
    let (fast3, fast10) = (
        fast_reports[0].mean_response_time_ms(),
        fast_reports[1].mean_response_time_ms(),
    );
    results.push(ClaimResult {
        id: "C7",
        claim: "FAST improves with more extra blocks / bigger log region (Fig. 10)",
        pass: fast10 <= fast3,
        detail: format!("TPC-C: 3% -> {fast3:.3} ms, 10% -> {fast10:.3} ms"),
    });

    // C8 — §I/§V.B headline: large average improvements. The 4 GB device
    // is the GC-stressed point (the paper quotes ~70%/~90% there); the
    // 64 GB numbers need the full-length traces to pressure FAST's log
    // region, which the compact grid deliberately truncates.
    let avg_impr = |cap: usize, base: usize| -> f64 {
        let mut sum = 0.0;
        for m in &grid.mrt {
            sum += (m[cap][base] - m[cap][d]) / m[cap][base];
        }
        sum / grid.mrt.len() as f64 * 100.0
    };
    let (vs_dftl, vs_fast) = (avg_impr(0, t_), avg_impr(0, f));
    results.push(ClaimResult {
        id: "C8",
        claim:
            "large average MRT improvement at the GC-stressed capacity (paper: ~70%/~90% at 4GB)",
        pass: vs_dftl > 20.0 && vs_fast > 50.0,
        detail: format!("measured {vs_dftl:.1}% vs DFTL, {vs_fast:.1}% vs FAST at 4GB"),
    });

    // C9 — §II.C motivation: striping across planes raises throughput.
    let mut seq = opts.scaled_profile(WorkloadProfile::build());
    seq.write_ratio = 0.9;
    seq.seq_prob = 0.9;
    seq.rate_per_sec = 2000.0;
    let striping_specs: Vec<RunSpec> = [1u32, 8]
        .iter()
        .map(|&ppd| {
            let mut config = SsdConfig::paper_default().with_capacity_gb(opts.scaled_capacity(8));
            config.planes_per_die = ppd;
            RunSpec {
                config,
                kind: FtlKind::Dloop,
                profile: seq.clone(),
                max_requests: 40_000,
                seed: opts.seed,
                fill_fraction: 0.0,
            }
        })
        .collect();
    let striping_reports = run_grid(striping_specs, opts.workers);
    let (one, eight) = (
        striping_reports[0].mean_response_time_ms(),
        striping_reports[1].mean_response_time_ms(),
    );
    results.push(ClaimResult {
        id: "C9",
        claim: "plane striping raises sequential throughput substantially (SII.C)",
        pass: one / eight > 4.0,
        detail: format!(
            "1 plane/die {one:.2} ms vs 8 planes/die {eight:.2} ms ({:.0}x)",
            one / eight
        ),
    });

    results.push(check_gc_blocked_share(opts));
    results.push(check_ncq_vs_gated(opts));
    results.push(check_qos_bounds(opts));
    results.push(check_host_stack(opts));
    results.push(check_sq_windows(opts));
    results.push(check_shard_identity(opts));
    results.push(check_power_cap(opts));

    results
}

/// C10 — tracing-derived: the share of host-visible response time that
/// requests spend blocked on synchronous GC must shrink when background
/// GC is enabled (collections move off the host path; §V.B discusses the
/// GC tail these blocks create). This claim is fed by the op-level trace:
/// the flight recorder's latency-attribution table must actually observe
/// GC spans in the synchronous run, so the check fails if the tracing
/// layer stops seeing the GC traffic the report charges for.
fn check_gc_blocked_share(opts: &ExpOptions) -> ClaimResult {
    // A property check, not a paper figure: a deliberately small device
    // under near-total fill guarantees GC pressure within a short trace
    // regardless of the scale factor (the per-plane free list must drop
    // below `gc_threshold`, and the over-provisioned extra blocks never
    // fill, so only overwrite traffic can get it there).
    let gc_config = SsdConfig::paper_default().with_capacity_gb(1);
    let max_requests = opts.requests_for(&opts.scaled_profile(WorkloadProfile::financial1()));
    check_gc_blocked_share_on(opts, gc_config, max_requests.min(12_000))
}

/// The C10 measurement itself, on an arbitrary device configuration (the
/// unit test runs it on [`SsdConfig::micro_gc_test`] to stay cheap).
fn check_gc_blocked_share_on(
    opts: &ExpOptions,
    gc_config: SsdConfig,
    max_requests: u64,
) -> ClaimResult {
    let profile = opts.scaled_profile(WorkloadProfile::financial1());
    let geometry = gc_config.geometry();
    let gc_trace = profile.generate_scaled(opts.seed, geometry.page_size, max_requests);
    let fill = sequential_fill(geometry.user_pages(), 0.999, 64);
    let run_gc_mode = |background: bool| {
        let mut config = gc_config.clone();
        config.background_gc = background;
        let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        device.warm_up(&fill.requests);
        device.attach_sink(Box::new(RingSink::new(1 << 20)));
        let report = device.run(&gc_trace.requests, ReplayMode::Open);
        let rec = device.take_trace().expect("ring sink was attached");
        (report, attribution(&rec))
    };
    let (rep_sync, attr_sync) = run_gc_mode(false);
    let (rep_bg, _) = run_gc_mode(true);
    let (share_sync, share_bg) = (rep_sync.gc_blocked_share(), rep_bg.gc_blocked_share());
    let gc_row = attr_sync.row(SpanPhase::Gc);
    ClaimResult {
        id: "C10",
        claim: "GC-blocked share of response time shrinks under background GC (SV.B)",
        pass: rep_sync.ftl.gc_invocations > 0
            && rep_bg.ftl.gc_invocations > 0
            && gc_row.spans > 0
            && share_sync > share_bg,
        detail: format!(
            "sync GC-blocked {:.1} ms ({:.4}% of response) vs background {:.1} ms ({:.4}%); {} GC spans attributed",
            rep_sync.gc_block_ms.sum(),
            share_sync * 100.0,
            rep_bg.gc_block_ms.sum(),
            share_bg * 100.0,
            gc_row.spans,
        ),
    }
}

/// C11 — scheduler sanity for the NCQ replay mode: at equal queue depth,
/// NCQ-style reordering must not raise the mean response time over the
/// in-order queue on a write-heavy synthetic trace. Reordering only
/// issues an op the queue head is *not* ready to issue — filling a plane
/// the strict order would have left idle — so it can start work earlier
/// but never later. (This is the queue/reorder layer SimpleSSD and Amber
/// model ahead of the FTL; DLOOP's plane-spreading allocation is what
/// creates the idle planes reordering exploits.)
///
/// Two baselines pin the claim down:
///
/// * **In-order at equal depth.** An in-order bounded queue can only ever
///   examine its head, so its issue schedule is the same at every depth —
///   `Ncq { queue_depth: 1 }` is the canonical spelling of "same queue,
///   no reordering". NCQ must strictly not lose to it (the measured win
///   is 7–99 % across configs and rates).
/// * **Gated, the unbounded window.** The gated FIFO skips over blocked
///   ops with *no* window bound, i.e. it is NCQ with infinite depth and
///   first-fit order — a lower bound no finite window can beat. NCQ{32}
///   must track it within a generous factor (measured +0.1 % to +15 %,
///   growing with saturation as the truncated window bites).
fn check_ncq_vs_gated(opts: &ExpOptions) -> ClaimResult {
    // Like C10, a property check rather than a paper figure: a small
    // device under a write-heavy burst guarantees queueing pressure (the
    // reorder window only matters when ops actually wait).
    let config = SsdConfig::paper_default().with_capacity_gb(1);
    let max_requests = opts.requests_for(&opts.scaled_profile(WorkloadProfile::financial1()));
    check_ncq_vs_gated_on(opts, config, max_requests.min(12_000))
}

/// The C11 measurement itself, on an arbitrary device configuration (the
/// unit test runs it on [`SsdConfig::micro_gc_test`] to stay cheap).
fn check_ncq_vs_gated_on(opts: &ExpOptions, config: SsdConfig, max_requests: u64) -> ClaimResult {
    // Write-heavy and arriving fast enough to queue: reordering is a
    // no-op on an idle device.
    let mut profile = opts.scaled_profile(WorkloadProfile::financial1());
    profile.write_ratio = 0.9;
    profile.rate_per_sec *= 16.0;
    let geometry = config.geometry();
    let trace = profile.generate_scaled(opts.seed, geometry.page_size, max_requests);
    let run_mode = |mode: ReplayMode| {
        let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        device.run(&trace.requests, mode)
    };
    let gated = run_mode(ReplayMode::Gated);
    let ncq = run_mode(ReplayMode::Ncq {
        queue_depth: dloop_ftl_kit::DEFAULT_NCQ_DEPTH,
    });
    let in_order = run_mode(ReplayMode::Ncq { queue_depth: 1 });
    let g_mrt = gated.mean_response_time_ms();
    let n_mrt = ncq.mean_response_time_ms();
    let i_mrt = in_order.mean_response_time_ms();
    // Worst bounded-window penalty observed across configs/rates/seeds is
    // +15 % at deep saturation; 1.25 leaves headroom without letting a
    // broken scheduler slip through.
    const GATED_TRACKING_FACTOR: f64 = 1.25;
    ClaimResult {
        id: "C11",
        claim: "NCQ reordering fills idle planes: MRT <= in-order queue at equal depth",
        // Identical flash work is the precondition that makes the MRT
        // comparison meaningful; a sliver of tolerance absorbs f64
        // accumulation order, nothing more.
        pass: gated.pages_written == ncq.pages_written
            && gated.pages_read == ncq.pages_read
            && in_order.pages_written == ncq.pages_written
            && in_order.pages_read == ncq.pages_read
            && i_mrt > 0.0
            && n_mrt <= i_mrt * (1.0 + 1e-9)
            && n_mrt <= g_mrt * GATED_TRACKING_FACTOR,
        detail: format!(
            "write-heavy F1 burst: NCQ{{{}}} {n_mrt:.4} ms vs in-order {i_mrt:.4} ms \
             ({:+.1}%) vs gated (unbounded window) {g_mrt:.4} ms ({:+.1}%)",
            dloop_ftl_kit::DEFAULT_NCQ_DEPTH,
            (n_mrt - i_mrt) / i_mrt * 100.0,
            (n_mrt - g_mrt) / g_mrt * 100.0,
        ),
    }
}

/// C12 — QoS-policy sanity over the NCQ window, the C11 pattern applied
/// to the pluggable scheduler: every policy ranks *within* the same
/// bounded reorder window, so on the canonical three-tenant contention
/// mix each policy's per-tenant mean turnaround must stay pinned between
/// the same two baselines that bracket plain NCQ:
///
/// * **Naive in-order bound** (`Ncq { queue_depth: 1 }`): no policy may
///   leave any tenant worse than the queue that never reorders at all —
///   even a deprioritized tenant still rides the idle planes the window
///   fills. A small factor absorbs per-tenant measurement noise.
/// * **Oracle bound** (`Gated`): the unbounded skip-ahead window no
///   finite policy can beat; aggregate turnaround must track it within a
///   stated factor (2x — fair-share pays the most, trading locality for
///   per-tenant isolation, and measures ~1.8x at the worst).
///
/// Fairness itself is *measured, not asserted* — the fair-share spread
/// (max/min per-tenant turnaround) is reported as evidence, because
/// which spread is "right" depends on the weights, not on the paper.
fn check_qos_bounds(opts: &ExpOptions) -> ClaimResult {
    let config = SsdConfig::paper_default().with_capacity_gb(1);
    check_qos_bounds_on(opts, config, 4_000)
}

/// The C12 measurement itself, on an arbitrary device configuration (the
/// unit test runs it on [`SsdConfig::micro_gc_test`] to stay cheap).
fn check_qos_bounds_on(
    opts: &ExpOptions,
    config: SsdConfig,
    requests_per_tenant: u64,
) -> ClaimResult {
    let geometry = config.geometry();
    // Half the device's logical space: enough locality to queue without
    // immediately thrashing GC on the micro config.
    let footprint = geometry.user_pages() * geometry.page_size as u64 / 2;
    let mix = qos_mix(
        opts.seed,
        geometry.page_size,
        requests_per_tenant,
        footprint,
    );
    let run = |mode: ReplayMode| {
        let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        device.run(&mix.requests, mode)
    };
    let naive = run(ReplayMode::Ncq { queue_depth: 1 });
    let oracle = run(ReplayMode::Gated);
    let tenants = naive.queue_log.tenants();
    // Per-tenant slowdown tolerance vs the in-order queue, and aggregate
    // tracking factor vs the unbounded oracle window. Measured worst
    // cases on the micro and 1 GB configs sit well inside these.
    const NAIVE_FACTOR: f64 = 1.10;
    const ORACLE_FACTOR: f64 = 2.00;
    let mut pass = true;
    let mut worst = String::new();
    let mut fair_spread = 0.0f64;
    for spec in QosSpec::all() {
        let report = run(ReplayMode::Qos {
            queue_depth: dloop_ftl_kit::DEFAULT_NCQ_DEPTH,
            policy: spec,
        });
        // Identical flash work makes the turnaround comparison meaningful.
        if report.pages_written != naive.pages_written || report.pages_read != naive.pages_read {
            pass = false;
            worst = format!("{}: flash work diverged from the baselines", spec.name());
            continue;
        }
        for &t in &tenants {
            let mrt = report.queue_log.tenant_mean_turnaround_ms(t);
            let bound = naive.queue_log.tenant_mean_turnaround_ms(t);
            if bound > 0.0 && mrt > bound * NAIVE_FACTOR {
                pass = false;
                worst = format!(
                    "{} tenant {}: {:.4} ms > in-order {:.4} ms x{NAIVE_FACTOR}",
                    spec.name(),
                    t,
                    mrt,
                    bound
                );
            }
        }
        let agg = report.queue_log.mean_turnaround_ms();
        let oracle_agg = oracle.queue_log.mean_turnaround_ms();
        if oracle_agg > 0.0 && agg > oracle_agg * ORACLE_FACTOR {
            pass = false;
            worst = format!(
                "{}: aggregate {:.4} ms > oracle {:.4} ms x{ORACLE_FACTOR}",
                spec.name(),
                agg,
                oracle_agg
            );
        }
        if matches!(spec, QosSpec::FairShare { .. }) {
            let mrts: Vec<f64> = tenants
                .iter()
                .map(|&t| report.queue_log.tenant_mean_turnaround_ms(t))
                .filter(|&m| m > 0.0)
                .collect();
            let max = mrts.iter().cloned().fold(0.0f64, f64::max);
            let min = mrts.iter().cloned().fold(f64::INFINITY, f64::min);
            if min.is_finite() && min > 0.0 {
                fair_spread = max / min;
            }
        }
    }
    ClaimResult {
        id: "C12",
        claim: "every QoS policy stays between the in-order and oracle bounds per tenant",
        pass: pass && !tenants.is_empty(),
        detail: if pass {
            format!(
                "{} tenants x {} policies within bounds (naive x{NAIVE_FACTOR}, oracle \
                 x{ORACLE_FACTOR}); fair-share turnaround spread {fair_spread:.2}x",
                tenants.len(),
                QosSpec::all().len(),
            )
        } else {
            worst
        },
    }
}

/// C13 — host-stack contract for the `dloop-host` crate, in three legs:
///
/// * **Pass-through identity.** With [`HostConfig::passthrough`] every
///   pipeline stage is an exact identity transform, so the device report
///   under the host stack must be fingerprint-identical (locked CSV row,
///   queue-depth timeline, per-request completion log) to calling
///   `SsdDevice::run` directly — in *every* replay mode. This is the
///   regression gate that keeps the host layer observational: adding a
///   stage that perturbs the forwarded trace breaks the digest.
/// * **Exact phase tiling.** On a fully-enabled (buffered) stack, each
///   request's host-queue + cache + device + completion durations must
///   sum to its end-to-end residence *in integer nanoseconds* — the
///   attribution table telescopes from syscall to cell with no slack.
///   The leg also demands the stack actually engaged: cache hits,
///   amortized doorbells, and coalesced interrupts all observed.
/// * **Determinism.** Re-running the buffered stack on the same trace
///   reproduces the same [`HostRunReport`](dloop_host::HostRunReport)
///   digest, timelines and counters included.
fn check_host_stack(opts: &ExpOptions) -> ClaimResult {
    let config = SsdConfig::paper_default().with_capacity_gb(1);
    check_host_stack_on(opts, config, 1_500)
}

/// The C13 measurement itself, on an arbitrary device configuration (the
/// unit test runs it on [`SsdConfig::micro_gc_test`] to stay cheap).
fn check_host_stack_on(
    opts: &ExpOptions,
    config: SsdConfig,
    requests_per_tenant: u64,
) -> ClaimResult {
    let geometry = config.geometry();
    let footprint = geometry.user_pages() * geometry.page_size as u64 / 2;
    let mix = host_mix(
        opts.seed,
        geometry.page_size,
        requests_per_tenant,
        footprint,
    );
    let mut pass = true;
    let mut worst = String::new();

    // Leg 1: pass-through identity, every replay mode.
    let modes = [
        ReplayMode::Open,
        ReplayMode::Gated,
        ReplayMode::Closed { queue_depth: 16 },
        ReplayMode::Ncq {
            queue_depth: dloop_ftl_kit::DEFAULT_NCQ_DEPTH,
        },
        ReplayMode::Qos {
            queue_depth: dloop_ftl_kit::DEFAULT_NCQ_DEPTH,
            policy: QosSpec::Priority,
        },
    ];
    for mode in modes {
        let mut raw = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        let raw_report = raw.run(&mix.requests, mode);
        let mut wrapped = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        let host = HostStack::new(HostConfig::passthrough()).run(&mut wrapped, &mix.requests, mode);
        if report_fingerprint(&raw_report) != report_fingerprint(&host.device) {
            pass = false;
            worst = format!("pass-through device report diverged under {mode:?}");
        }
    }

    // Leg 2: exact phase tiling with every stage engaged.
    let cache_pages = (geometry.user_pages() / 8).max(64);
    let run_buffered = || {
        let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        HostStack::new(HostConfig::buffered(cache_pages)).run(
            &mut device,
            &mix.requests,
            ReplayMode::Open,
        )
    };
    let buffered = run_buffered();
    for (i, r) in buffered.requests.iter().enumerate() {
        let tiled = r.host_queue_ns() + r.cache_ns() + r.device_ns() + r.completion_ns();
        if tiled != r.end_to_end_ns() {
            pass = false;
            worst = format!(
                "request {i}: phases sum to {tiled} ns but end-to-end is {} ns",
                r.end_to_end_ns()
            );
            break;
        }
    }
    let (hq, cache, dev, compl, e2e) = buffered.phase_totals_ns();
    if hq + cache + dev + compl != e2e {
        pass = false;
        worst =
            format!("phase totals {hq}+{cache}+{dev}+{compl} ns do not tile end-to-end {e2e} ns");
    }
    let engaged = buffered.cache.read_hits > 0
        && buffered.cache.writes_absorbed > 0
        && buffered.queues.mean_batch() > 1.0
        && buffered.queues.mean_coalesced() > 1.0;
    if !engaged {
        pass = false;
        worst = format!(
            "buffered stack did not engage: {} hits, {} absorbed, batch {:.2}, coalesced {:.2}",
            buffered.cache.read_hits,
            buffered.cache.writes_absorbed,
            buffered.queues.mean_batch(),
            buffered.queues.mean_coalesced()
        );
    }

    // Leg 3: rerun determinism of the full host report.
    let rerun = run_buffered();
    if buffered.fingerprint() != rerun.fingerprint() {
        pass = false;
        worst = "buffered host report not deterministic across reruns".into();
    }

    ClaimResult {
        id: "C13",
        claim: "pass-through host stack is fingerprint-identical; host phases tile end-to-end",
        pass,
        detail: if pass {
            format!(
                "{} modes identical; {} requests tiled exactly ({:.1}% cache-served, \
                 batch {:.2}, coalesced {:.2}); rerun digest stable",
                modes.len(),
                buffered.requests.len(),
                buffered.cache_served_fraction() * 100.0,
                buffered.queues.mean_batch(),
                buffered.queues.mean_coalesced(),
            )
        } else {
            worst
        },
    }
}

/// C14 — the interleaved driver's per-queue SQ windows hold.
///
/// * **Occupancy bound.** At every instant of the SQ occupancy log
///   (every probe bucket is a fortiori covered by the instant-level
///   sweep), each submission queue's in-flight count stays at or below
///   the configured depth, and the report attests the driver enforced
///   it (`depth_enforced`).
/// * **Backpressure engages.** At the tightest depth the stack records
///   depth stalls — commands whose syscall-visible submission the full
///   window actually delayed.
/// * **Monotone degradation.** On a single queue pair — where the window
///   only delays admissions and never reorders them — mean turnaround
///   degrades monotonically as the window shrinks, the tightest window
///   is strictly worse than unbounded, and wide windows converge to the
///   unbounded stack. (With several queues a moderate window can *beat*
///   unbounded: backpressure on one queue reorders admissions across
///   queues and eases device-side contention — so the multi-queue sweep
///   checks the occupancy bound, the single-queue sweep the trend.)
fn check_sq_windows(opts: &ExpOptions) -> ClaimResult {
    let config = SsdConfig::paper_default().with_capacity_gb(1);
    check_sq_windows_on(opts, config, 1_200)
}

/// The C14 measurement itself, on an arbitrary device configuration (the
/// unit test runs it on [`SsdConfig::micro_gc_test`] to stay cheap).
fn check_sq_windows_on(
    opts: &ExpOptions,
    config: SsdConfig,
    requests_per_tenant: u64,
) -> ClaimResult {
    let geometry = config.geometry();
    let footprint = geometry.user_pages() * geometry.page_size as u64 / 2;
    let mix = host_mix(
        opts.seed,
        geometry.page_size,
        requests_per_tenant,
        footprint,
    );
    let depths: [Option<u32>; 4] = [Some(1), Some(2), Some(4), None];
    let mut pass = true;
    let mut worst = String::new();
    let run = |queues: u32, depth: Option<u32>| {
        let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        let stack = HostStack::new(HostConfig {
            queues,
            queue_depth: depth,
            ..HostConfig::passthrough()
        });
        stack.run(&mut device, &mix.requests, ReplayMode::Open)
    };
    let mean_ms = |report: &dloop_host::HostRunReport| {
        let n = report.requests.len().max(1) as u64;
        let total: u64 = report.requests.iter().map(|r| r.end_to_end_ns()).sum();
        total as f64 / n as f64 / 1e6
    };

    // Leg 1: occupancy bound and backpressure, two independent SQs.
    let queues = 2u32;
    let mut stalls_at_tightest = 0u64;
    for depth in depths {
        let report = run(queues, depth);
        if report.depth_enforced != depth.is_some() {
            pass = false;
            worst = format!(
                "depth {depth:?}: depth_enforced = {}",
                report.depth_enforced
            );
        }
        if let Some(d) = depth {
            for q in 0..queues as u16 {
                let occ = report.sq_log.tenant_max_in_flight(q);
                if occ > d as u64 {
                    pass = false;
                    worst = format!("depth {d}: SQ {q} reached {occ} in-flight commands");
                }
            }
            if Some(d) == depths[0] {
                stalls_at_tightest = report.queues.depth_stalls;
            }
        }
    }
    if stalls_at_tightest == 0 {
        pass = false;
        worst = "tightest depth recorded no depth stalls (backpressure never engaged)".into();
    }

    // Leg 2: monotone turnaround degradation on one queue pair.
    let means_ms: Vec<f64> = depths.iter().map(|&d| mean_ms(&run(1, d))).collect();
    for w in means_ms.windows(2) {
        if w[0] < w[1] {
            pass = false;
            worst = format!(
                "turnaround not monotone in depth: {:?} ms across depths {:?}",
                means_ms, depths
            );
            break;
        }
    }
    if means_ms[0] <= means_ms[means_ms.len() - 1] {
        pass = false;
        worst = format!(
            "tightest window no worse than unbounded: {:?} ms across depths {:?}",
            means_ms, depths
        );
    }
    ClaimResult {
        id: "C14",
        claim: "per-queue SQ occupancy never exceeds depth; turnaround degrades as depth shrinks",
        pass,
        detail: if pass {
            format!(
                "{} SQs bounded at depths {:?}; mean turnaround {:.3} -> {:.3} ms \
                 (depth 1 vs unbounded, {} stalls at depth 1)",
                queues,
                [1u32, 2, 4],
                means_ms[0],
                means_ms[means_ms.len() - 1],
                stalls_at_tightest,
            )
        } else {
            worst
        },
    }
}

/// C15 — the sharded playback engine is an implementation detail: for
/// every replay mode, `RunConfig::shards(n)` must leave the full report
/// fingerprint bit-identical to the sequential engine. The globally
/// coupled schedulers (gated/NCQ/QoS) keep their sequential playback
/// under the hood, so for them the check pins the fallback; the open
/// and closed modes exercise the actual worker threads.
fn check_shard_identity(opts: &ExpOptions) -> ClaimResult {
    let config = SsdConfig::paper_default().with_capacity_gb(1);
    check_shard_identity_on(opts, config, 1_200)
}

/// The C15 measurement itself, on an arbitrary device configuration (the
/// unit test runs it on a 4-channel [`SsdConfig::micro_gc_test`] to stay
/// cheap).
fn check_shard_identity_on(
    opts: &ExpOptions,
    config: SsdConfig,
    requests_per_tenant: u64,
) -> ClaimResult {
    let geometry = config.geometry();
    let footprint = geometry.user_pages() * geometry.page_size as u64 / 2;
    let mix = host_mix(
        opts.seed,
        geometry.page_size,
        requests_per_tenant,
        footprint,
    );
    let modes: [(&str, fn() -> RunConfig); 5] = [
        ("open", RunConfig::open),
        ("gated", RunConfig::gated),
        ("closed(8)", || RunConfig::closed(8)),
        ("ncq(8)", || RunConfig::ncq(8)),
        ("qos(fair-share,8)", || {
            RunConfig::qos(QosSpec::fair_share()).queue_depth(8)
        }),
    ];
    let mut pass = true;
    let mut worst = String::new();
    let mut checked = 0u32;
    for (name, make) in modes {
        let mut seq_dev = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        let seq = report_fingerprint(&seq_dev.run_with(&mix.requests, make()));
        for shards in [2usize, 4] {
            let mut dev = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
            let fp = report_fingerprint(&dev.run_with(&mix.requests, make().shards(shards)));
            checked += 1;
            if fp != seq {
                pass = false;
                worst = format!(
                    "{name} diverged at {shards} shards ({fp:#018x} vs sequential {seq:#018x})"
                );
            }
        }
    }
    ClaimResult {
        id: "C15",
        claim: "sharded playback is bit-identical to the sequential engine in every replay mode",
        pass,
        detail: if pass {
            format!("{checked} sharded runs matched their sequential fingerprint across 5 modes")
        } else {
            worst
        },
    }
}

/// C16 — the power-cap scheduling mode and the energy accounting that
/// feeds it hold together, in three legs:
///
/// * **Budget bound + integer identity.** A capped run's power timeline
///   (`power_csv` over the flight recorder, with every span captured)
///   never exceeds `budget_uw × bucket_ns` femtojoules in any bucket —
///   the admission invariant made visible — and the buckets sum *exactly*
///   (integer equality, no epsilon) to the run report's energy totals:
///   the trace, the busy counters and the CSV are one measurement.
/// * **Throttling is observation-free on energy.** The capped and
///   uncapped runs translate the same chains at arrival, so they do the
///   same flash work and consume *identical* total energy (again integer
///   equality); the cap only stretches time. Mean response time degrades
///   — strictly, as evidence the cap engaged — but gracefully, within a
///   stated factor of the uncapped run.
/// * **Copy-back wins on energy.** For every [`TimingConfig`] the bench
///   experiments replay and every Table-I page size, the intra-plane
///   copy-back costs strictly less energy than the traditional
///   out-of-plane read+program, and eliminates *all* of the bus energy
///   the external copy pays (the time saving is only ~30%; the bus
///   energy saving is total — C1's machinery, sharpened).
fn check_power_cap(opts: &ExpOptions) -> ClaimResult {
    let config = SsdConfig::paper_default()
        .with_capacity_gb(1)
        .with_energy(dloop_nand::EnergyConfig::paper_default());
    check_power_cap_on(opts, config, 2_500, QosSpec::POWER_CAP_BUDGET_UW)
}

/// The C16 measurement itself, on an arbitrary device configuration and
/// budget (the unit test runs it on [`SsdConfig::micro_gc_test`] with a
/// tighter budget to stay cheap while still throttling).
fn check_power_cap_on(
    opts: &ExpOptions,
    config: SsdConfig,
    max_requests: u64,
    budget_uw: u64,
) -> ClaimResult {
    let energy = config.energy.expect("C16 needs energy accounting enabled");
    let geometry = config.geometry();
    // Write-heavy and arriving fast enough to queue (the C11 burst):
    // a cap on concurrent admissions is a no-op on an idle device.
    let mut profile = opts.scaled_profile(WorkloadProfile::financial1());
    profile.write_ratio = 0.9;
    profile.rate_per_sec *= 16.0;
    let trace = profile.generate_scaled(opts.seed, geometry.page_size, max_requests);
    let run_budget = |budget: u64, with_sink: bool| {
        let mut device = SsdDevice::new(config.clone(), build_ftl(FtlKind::Dloop, &config));
        if with_sink {
            device.attach_sink(Box::new(RingSink::new(1 << 20)));
        }
        let report = device.run_with(
            &trace.requests,
            RunConfig::qos(QosSpec::PowerCap { budget_uw: budget })
                .queue_depth(dloop_ftl_kit::DEFAULT_NCQ_DEPTH),
        );
        let rec = with_sink.then(|| device.take_trace().expect("ring sink was attached"));
        (report, rec)
    };

    let mut pass = true;
    let mut worst = String::new();

    // Leg 1: per-bucket budget bound and the integer identity between
    // the power timeline and the report's energy totals.
    let (capped, rec) = run_budget(budget_uw, true);
    let rec = rec.unwrap();
    if rec.dropped() > 0 {
        pass = false;
        worst = format!(
            "recorder dropped {} spans; identity unverifiable",
            rec.dropped()
        );
    }
    let totals = capped
        .energy
        .expect("energy-enabled run must report totals");
    let buckets = 24usize;
    let csv = dloop_simkit::trace::power_csv(
        &rec,
        geometry.total_planes() as usize,
        geometry.channels as usize,
        buckets,
        energy.array_active_uw,
        energy.bus_active_uw,
    );
    // Reconstruct the grid the CSV used: fixed-width windows, the last
    // stretched to the final busy nanosecond.
    let end_ns = rec
        .spans()
        .flat_map(|s| s.segments())
        .map(|seg| seg.end.as_nanos())
        .max()
        .unwrap_or(0);
    let width = (end_ns / buckets as u64).max(1);
    let mut csv_sum = 0u64;
    for (i, line) in csv.lines().skip(1).enumerate() {
        let total_fj: u64 = line
            .rsplit(',')
            .next()
            .and_then(|v| v.parse().ok())
            .expect("power_csv rows end in an integer total");
        csv_sum = csv_sum.checked_add(total_fj).expect("bucket sum overflow");
        let span_ns = if i + 1 == buckets {
            end_ns.saturating_sub(i as u64 * width).max(width)
        } else {
            width
        };
        // µW × ns is exactly fJ — the same fixed-point identity the
        // accounting uses.
        let ceiling = budget_uw
            .checked_mul(span_ns)
            .expect("budget ceiling overflow");
        if total_fj > ceiling {
            pass = false;
            worst = format!(
                "bucket {i}: {total_fj} fJ exceeds budget ceiling {ceiling} fJ \
                 ({budget_uw} uW x {span_ns} ns)"
            );
        }
    }
    if csv_sum != totals.total_fj() {
        pass = false;
        worst = format!(
            "power timeline sums to {csv_sum} fJ but the report says {} fJ",
            totals.total_fj()
        );
    }

    // Leg 2: energy invariance under the cap, graceful degradation.
    const AMPLE_BUDGET_UW: u64 = 100_000_000_000; // 100 kW: admits everything
    let (uncapped, _) = run_budget(AMPLE_BUDGET_UW, false);
    let free = uncapped
        .energy
        .expect("energy-enabled run must report totals");
    if capped.pages_written != uncapped.pages_written || capped.pages_read != uncapped.pages_read {
        pass = false;
        worst = "capped run did different flash work than uncapped".into();
    }
    if totals != free {
        pass = false;
        worst = format!(
            "cap changed total energy: {} fJ capped vs {} fJ uncapped",
            totals.total_fj(),
            free.total_fj()
        );
    }
    let (c_mrt, u_mrt) = (
        capped.mean_response_time_ms(),
        uncapped.mean_response_time_ms(),
    );
    if c_mrt <= u_mrt {
        pass = false;
        worst = format!("cap never throttled: capped MRT {c_mrt:.4} ms <= uncapped {u_mrt:.4} ms");
    }
    // Graceful means *bounded by the concurrency the cap removed*, not a
    // bound on mean response time: under a saturating burst the capped
    // queue backlogs linearly and MRT grows with trace length, but the
    // makespan — the work-conserving cap always runs at least one op —
    // can stretch at most by the parallelism the budget withdrew. A
    // generous fixed factor over that witness catches a cap that
    // deadlocks or forgets releases (makespan would blow up unboundedly).
    const MAKESPAN_FACTOR: f64 = 12.0;
    let ratio = capped.sim_end.as_nanos() as f64 / uncapped.sim_end.as_nanos().max(1) as f64;
    if ratio > MAKESPAN_FACTOR {
        pass = false;
        worst = format!(
            "degradation not graceful: capped makespan {:.3}x uncapped (limit {MAKESPAN_FACTOR}x)",
            ratio
        );
    }

    // Leg 3: copy-back's energy advantage, for every timing model the
    // bench experiments replay and every Table-I page size.
    let timings = [
        ("paper_default", TimingConfig::paper_default()),
        ("paper_fixed_transfer", TimingConfig::paper_fixed_transfer()),
    ];
    for (name, t) in &timings {
        for page in [2048u32, 4096, 8192, 16384] {
            let cb = energy.copyback_fj(t);
            let inter = energy.interplane_copy_fj(t, page);
            if cb >= inter {
                pass = false;
                worst = format!("{name}@{page}B: copy-back {cb} fJ >= inter-plane {inter} fJ");
            }
            if energy.interplane_bus_fj(t, page) == 0 {
                pass = false;
                worst = format!("{name}@{page}B: external copy reports no bus energy to save");
            }
        }
    }

    ClaimResult {
        id: "C16",
        claim: "power cap bounds every timeline bucket; energy is cap-invariant; copy-back wins on energy",
        pass,
        detail: if pass {
            format!(
                "{} buckets <= {budget_uw} uW, timeline == report at {} fJ; \
                 capped MRT {c_mrt:.4} ms vs uncapped {u_mrt:.4} ms, makespan {ratio:.2}x \
                 at equal energy; copy-back < inter-plane for {} timing models x 4 page sizes",
                buckets,
                totals.total_fj(),
                timings.len(),
            )
        } else {
            worst
        },
    }
}

/// Render the claim results as a table.
pub fn to_table(results: &[ClaimResult]) -> Table {
    let mut table = Table::new(
        "Reproduction claims audit",
        &["id", "status", "claim", "evidence"],
    );
    for r in results {
        table.row(vec![
            r.id.to_string(),
            if r.pass { "PASS".into() } else { "FAIL".into() },
            r.claim.to_string(),
            r.detail.clone(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_table_renders_status() {
        let results = vec![
            ClaimResult {
                id: "CX",
                claim: "test claim",
                pass: true,
                detail: "fine".into(),
            },
            ClaimResult {
                id: "CY",
                claim: "other claim",
                pass: false,
                detail: "broken".into(),
            },
        ];
        let t = to_table(&results);
        let s = t.render();
        assert!(s.contains("PASS"));
        assert!(s.contains("FAIL"));
        assert!(s.contains("broken"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn c1_is_cheap_and_passes() {
        // The timing-arithmetic claim needs no simulation.
        let t = dloop_nand::TimingConfig::paper_default();
        let saving = t.copyback_saving(2048);
        assert!((0.28..=0.34).contains(&saving));
    }

    #[test]
    fn c10_gc_blocked_share_shrinks_under_background_gc() {
        // The micro-GC device keeps the two aged runs test-budget cheap
        // while still exercising the full sync-vs-background comparison.
        let opts = ExpOptions::default();
        let config = dloop_ftl_kit::config::SsdConfig::micro_gc_test();
        let r = check_gc_blocked_share_on(&opts, config, 2_000);
        assert!(r.pass, "C10 failed: {}", r.detail);
    }

    #[test]
    fn c11_ncq_no_worse_than_gated() {
        // The same micro device keeps the gated-vs-NCQ comparison cheap;
        // the write-heavy burst makes ops queue, so the reorder window
        // actually engages.
        let opts = ExpOptions::default();
        let config = dloop_ftl_kit::config::SsdConfig::micro_gc_test();
        let r = check_ncq_vs_gated_on(&opts, config, 2_000);
        assert!(r.pass, "C11 failed: {}", r.detail);
    }

    #[test]
    fn c12_qos_policies_stay_between_the_bounds() {
        // The micro device keeps seven replays of the three-tenant mix
        // cheap while the contention still queues the reorder window.
        let opts = ExpOptions::default();
        let config = dloop_ftl_kit::config::SsdConfig::micro_gc_test();
        let r = check_qos_bounds_on(&opts, config, 700);
        assert!(r.pass, "C12 failed: {}", r.detail);
    }

    #[test]
    fn c13_host_stack_passthrough_and_tiling() {
        // The micro device keeps the six pass-through replays plus the
        // two buffered runs cheap; the host mix still engages the cache
        // (tenant 1's hot set) and the batching queues.
        let opts = ExpOptions::default();
        let config = dloop_ftl_kit::config::SsdConfig::micro_gc_test();
        let r = check_host_stack_on(&opts, config, 400);
        assert!(r.pass, "C13 failed: {}", r.detail);
    }

    #[test]
    fn c15_sharded_playback_matches_sequential() {
        // Four channels give the sharded engine real worker threads; the
        // micro device keeps the fifteen replays cheap.
        let opts = ExpOptions::default();
        let config = dloop_ftl_kit::config::SsdConfig {
            channels: 4,
            ..dloop_ftl_kit::config::SsdConfig::micro_gc_test()
        };
        let r = check_shard_identity_on(&opts, config, 400);
        assert!(r.pass, "C15 failed: {}", r.detail);
    }

    #[test]
    fn c16_power_cap_bounds_buckets_and_energy_is_invariant() {
        // The micro device keeps the two queued replays cheap; a tight
        // 100 mW budget (one 82.5 mW op fits, two do not) guarantees the
        // cap actually serialises admissions, so the MRT evidence and
        // the bucket ceiling are both exercised.
        let opts = ExpOptions::default();
        let config = dloop_ftl_kit::config::SsdConfig::micro_gc_test()
            .with_energy(dloop_nand::EnergyConfig::paper_default());
        let r = check_power_cap_on(&opts, config, 800, 100_000);
        assert!(r.pass, "C16 failed: {}", r.detail);
    }

    #[test]
    fn c14_sq_windows_hold_and_turnaround_degrades() {
        // The micro device keeps the four depth sweeps cheap; the
        // write-heavy mix queues hard enough at depth 1 that the SQ
        // windows actually backpressure.
        let opts = ExpOptions::default();
        let config = dloop_ftl_kit::config::SsdConfig::micro_gc_test();
        let r = check_sq_windows_on(&opts, config, 400);
        assert!(r.pass, "C14 failed: {}", r.detail);
    }
}

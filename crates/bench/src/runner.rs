//! One simulation run: configuration → FTL → device → trace → report.
//! Plus a work-stealing parallel grid executor (host threads only — each
//! simulation itself stays single-threaded and deterministic).

use dloop::{DloopFtl, HotPlaneDloopFtl};
use dloop_baselines::{DftlFtl, FastFtl, IdealPageMapFtl};
use dloop_ftl_kit::config::{FtlKind, SsdConfig};
use dloop_ftl_kit::device::{RunConfig, SsdDevice};
use dloop_ftl_kit::ftl::Ftl;
use dloop_ftl_kit::metrics::RunReport;
use dloop_workloads::synth::{sequential_fill, WorkloadProfile};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Construct an FTL instance of the requested kind.
pub fn build_ftl(kind: FtlKind, config: &SsdConfig) -> Box<dyn Ftl> {
    match kind {
        FtlKind::Dloop => Box::new(DloopFtl::new(config)),
        FtlKind::DloopHot => Box::new(HotPlaneDloopFtl::new(config)),
        FtlKind::Dftl => Box::new(DftlFtl::new(config)),
        FtlKind::Fast => Box::new(FastFtl::new(config)),
        FtlKind::IdealPageMap => Box::new(IdealPageMapFtl::new(config)),
    }
}

/// A fully specified experiment run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Device + FTL configuration.
    pub config: SsdConfig,
    /// FTL scheme.
    pub kind: FtlKind,
    /// Workload profile.
    pub profile: WorkloadProfile,
    /// Cap on generated requests (scaling knob).
    pub max_requests: u64,
    /// Workload seed.
    pub seed: u64,
    /// Fraction of the user space sequentially written (and discarded
    /// from measurement) before the trace runs — device aging.
    pub fill_fraction: f64,
}

impl RunSpec {
    /// Execute the run.
    pub fn run(&self) -> RunReport {
        run_spec(self)
    }
}

/// Execute one run spec.
pub fn run_spec(spec: &RunSpec) -> RunReport {
    let geometry = spec.config.geometry();
    let trace = spec
        .profile
        .generate_scaled(spec.seed, geometry.page_size, spec.max_requests);
    let mut device = SsdDevice::new(spec.config.clone(), build_ftl(spec.kind, &spec.config));
    if spec.fill_fraction > 0.0 {
        let fill = sequential_fill(geometry.user_pages(), spec.fill_fraction, 64);
        device.warm_up(&fill.requests);
    }
    device.run_with(&trace.requests, RunConfig::open())
}

/// Run a batch of specs on up to `workers` host threads, preserving the
/// input order in the output.
///
/// Work-stealing over a shared queue: each scoped `std::thread` pops the
/// next spec until the queue drains. `std::thread::scope` joins every
/// worker before returning and re-raises any worker panic, so no
/// third-party scoped-thread crate is needed.
pub fn run_grid(specs: Vec<RunSpec>, workers: usize) -> Vec<RunReport> {
    let n = specs.len();
    let queue: Mutex<VecDeque<(usize, RunSpec)>> =
        Mutex::new(specs.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<RunReport>>> = Mutex::new(vec![None; n]);
    let workers = workers.max(1).min(n.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop_front();
                let Some((idx, spec)) = job else { break };
                let report = run_spec(&spec);
                results.lock().expect("results poisoned")[idx] = Some(report);
            });
        }
    });
    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("missing result"))
        .collect()
}

/// Default worker count: physical parallelism minus one, at least one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dloop_ftl_kit::config::FtlKind;

    fn spec(kind: FtlKind) -> RunSpec {
        RunSpec {
            config: SsdConfig::micro_gc_test(),
            kind,
            profile: WorkloadProfile::financial1(),
            max_requests: 2_000,
            seed: 7,
            fill_fraction: 0.0,
        }
    }

    #[test]
    fn every_kind_runs() {
        for kind in [
            FtlKind::Dloop,
            FtlKind::DloopHot,
            FtlKind::Dftl,
            FtlKind::Fast,
            FtlKind::IdealPageMap,
        ] {
            let report = spec(kind).run();
            assert_eq!(report.requests_completed, 2_000, "{kind:?}");
            assert_eq!(report.ftl_name, kind.name());
        }
    }

    #[test]
    fn fill_ages_the_device() {
        let mut s = spec(FtlKind::Dloop);
        s.fill_fraction = 0.5;
        let aged = s.run();
        s.fill_fraction = 0.0;
        let fresh = s.run();
        // Aging consumes free blocks, so GC starts earlier.
        assert!(aged.ftl.gc_invocations >= fresh.ftl.gc_invocations);
    }

    #[test]
    fn grid_preserves_order_and_matches_serial() {
        let specs = vec![spec(FtlKind::Dloop), spec(FtlKind::Dftl)];
        let parallel = run_grid(specs.clone(), 2);
        let serial: Vec<_> = specs.iter().map(run_spec).collect();
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.ftl_name, s.ftl_name);
            assert_eq!(
                p.mean_response_time_ms(),
                s.mean_response_time_ms(),
                "parallel execution must not change results"
            );
        }
    }
}

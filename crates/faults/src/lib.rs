//! # dloop-faults
//!
//! Deterministic NAND media-fault injection for the DLOOP reproduction.
//!
//! Real NAND fails in ways an ideal simulator never shows: raw bit errors
//! that grow with wear and retention, program-status failures, erase
//! failures, and factory bad blocks. This crate turns a handful of knobs
//! ([`FaultConfig`]) into a [`FaultPlan`] whose per-operation outcomes are
//! a **pure function** of `(plan seed, physical address, op kind, op
//! index)` — never of wall-clock simulation time or request interleaving.
//! The same seed therefore produces the *identical* fault sequence under
//! all three replay modes (open-loop, issue-gated, closed-loop), which is
//! what makes fault runs regression-testable.
//!
//! ## Determinism contract
//!
//! Every outcome is derived by seeding a fresh [`SimRng`] from a
//! splitmix64 hash of the decision's identity:
//!
//! * **program** — keyed by `(ppn, generation)`, where `generation` is the
//!   block's erase count. A page can be programmed at most once per erase
//!   generation, so the key is unique per attempt.
//! * **read** — keyed by `(ppn, generation, read_index)`, where
//!   `read_index` counts reads of this page since it was programmed. The
//!   read index stands in for retention age: simulated time differs across
//!   replay modes, the state trajectory does not.
//! * **erase** — keyed by `(block, erase_count)`.
//! * **factory bad** — keyed by the block index alone.
//!
//! ## Error model
//!
//! The effective raw bit-error rate of a read is
//!
//! ```text
//! ber_eff = base_ber * (1 + wear_slope * erase_count)
//!                    * (1 + retention_slope * read_index)
//! ```
//!
//! giving `lambda = ber_eff * codeword_bits` expected raw errors per
//! codeword. The ECC corrects up to `correctable_bits`; each read-retry
//! step re-senses with a shifted threshold, multiplying the residual
//! failure probability by `retry_gain` (< 1). Step `s` of the ladder fails
//! with `p(s) = min(1, lambda / correctable_bits * retry_gain^s)`; the
//! first succeeding step yields [`MediaOutcome::Clean`] (step 0) or
//! [`MediaOutcome::Correctable`], and exhausting `max_retry_steps` yields
//! [`MediaOutcome::Uncorrectable`].
//!
//! A zero-BER plan ([`FaultConfig::none`]) short-circuits without hashing,
//! so the fault machinery costs nothing measurable on the hot path (see
//! the `faults` micro-bench).

use dloop_simkit::SimRng;

/// Outcome of a NAND media operation, distinct from the logic-bug
/// `NandError` namespace in `dloop-nand`: a `MediaOutcome` is the device
/// behaving like real hardware, not the FTL misusing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaOutcome {
    /// The operation succeeded first try.
    Clean,
    /// A read succeeded after `retry_steps` read-retry ladder steps
    /// (each charged read-retry + ECC-decode latency by the timing model).
    Correctable {
        /// Number of retry steps (≥ 1) before the ECC converged.
        retry_steps: u32,
    },
    /// The read exhausted the retry ladder; data is lost.
    Uncorrectable,
    /// The program operation reported status failure; the page is consumed
    /// and the controller must re-program elsewhere.
    ProgramFail,
    /// The erase operation failed; the block must be retired (grown bad).
    EraseFail,
}

impl MediaOutcome {
    /// Retry steps this outcome cost (0 for everything but `Correctable`).
    pub fn retry_steps(self) -> u32 {
        match self {
            MediaOutcome::Correctable { retry_steps } => retry_steps,
            _ => 0,
        }
    }

    /// Whether the operation ultimately delivered/stored correct data.
    pub fn is_ok(self) -> bool {
        matches!(self, MediaOutcome::Clean | MediaOutcome::Correctable { .. })
    }
}

/// Knobs describing how unreliable the simulated media is.
///
/// All probabilities are per-operation; everything is deterministic given
/// `seed`. [`FaultConfig::none`] is the exact fault-free device the
/// simulator modelled before this subsystem existed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault plan (independent of the workload seed).
    pub seed: u64,
    /// Raw bit-error rate of a fresh page on a fresh block.
    pub base_ber: f64,
    /// Fractional BER growth per erase cycle of the block.
    pub wear_slope: f64,
    /// Fractional BER growth per read since the page was programmed
    /// (retention/read-disturb proxy; see the module doc for why reads,
    /// not simulated time, measure age).
    pub retention_slope: f64,
    /// Probability a page program reports status failure.
    pub program_fail_prob: f64,
    /// Probability a block erase fails (block becomes grown bad).
    pub erase_fail_prob: f64,
    /// Fraction of blocks marked bad at the factory.
    pub factory_bad_frac: f64,
    /// Bits per ECC codeword (we treat one page as one codeword).
    pub codeword_bits: f64,
    /// Raw bit errors the ECC corrects per codeword.
    pub correctable_bits: f64,
    /// Read-retry ladder depth before a read is uncorrectable.
    pub max_retry_steps: u32,
    /// Residual failure-probability multiplier per retry step (< 1).
    pub retry_gain: f64,
}

impl FaultConfig {
    /// Perfect media: no faults of any kind. The plan short-circuits, so
    /// this configuration is also the zero-cost default.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            base_ber: 0.0,
            wear_slope: 0.0,
            retention_slope: 0.0,
            program_fail_prob: 0.0,
            erase_fail_prob: 0.0,
            factory_bad_frac: 0.0,
            codeword_bits: 2048.0 * 8.0,
            correctable_bits: 40.0,
            max_retry_steps: 4,
            retry_gain: 0.05,
        }
    }

    /// Mildly worn consumer media: frequent correctable reads, occasional
    /// program failures, rare erase failures.
    pub fn light(seed: u64) -> Self {
        FaultConfig {
            seed,
            base_ber: 1e-4,
            wear_slope: 0.02,
            retention_slope: 0.001,
            program_fail_prob: 0.002,
            erase_fail_prob: 0.0005,
            factory_bad_frac: 0.005,
            ..Self::none()
        }
    }

    /// A fault storm for soak tests: elevated BER near the correctability
    /// cliff plus aggressive program/erase failures. Program-fail stays
    /// modest (5 %) so small test geometries keep their GC feasibility
    /// margins.
    pub fn storm(seed: u64) -> Self {
        FaultConfig {
            seed,
            base_ber: 2.2e-3,
            wear_slope: 0.05,
            retention_slope: 0.01,
            program_fail_prob: 0.05,
            erase_fail_prob: 0.01,
            factory_bad_frac: 0.02,
            ..Self::none()
        }
    }

    /// True when every fault channel is disabled (the plan never fires).
    pub fn is_null(&self) -> bool {
        self.base_ber == 0.0
            && self.program_fail_prob == 0.0
            && self.erase_fail_prob == 0.0
            && self.factory_bad_frac == 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// splitmix64 finalizer — the standard 64-bit avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Operation-kind tags keeping the four decision streams independent.
#[derive(Debug, Clone, Copy)]
#[repr(u64)]
enum OpKind {
    Read = 1,
    Program = 2,
    Erase = 3,
    FactoryBad = 4,
}

/// Pure hash of a decision identity → PRNG seed.
fn mix(seed: u64, kind: OpKind, a: u64, b: u64, c: u64) -> u64 {
    splitmix64(seed ^ splitmix64((kind as u64) ^ splitmix64(a ^ splitmix64(b ^ splitmix64(c)))))
}

/// A compiled fault plan: stateless, pure-function outcome derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Compile a configuration into a plan.
    pub fn new(cfg: FaultConfig) -> Self {
        assert!(cfg.codeword_bits > 0.0 && cfg.correctable_bits > 0.0);
        assert!((0.0..1.0).contains(&cfg.retry_gain));
        FaultPlan { cfg }
    }

    /// The configuration this plan was compiled from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when the plan can never produce a fault.
    pub fn is_null(&self) -> bool {
        self.cfg.is_null()
    }

    /// Effective raw BER of a page on its `generation`-th erase cycle at
    /// `read_index` reads since program.
    pub fn effective_ber(&self, generation: u32, read_index: u32) -> f64 {
        self.cfg.base_ber
            * (1.0 + self.cfg.wear_slope * generation as f64)
            * (1.0 + self.cfg.retention_slope * read_index as f64)
    }

    /// Outcome of reading `ppn` (block erase count `generation`, the
    /// `read_index`-th read since the page was programmed).
    pub fn read_outcome(&self, ppn: u64, generation: u32, read_index: u32) -> MediaOutcome {
        if self.cfg.base_ber == 0.0 {
            return MediaOutcome::Clean;
        }
        let lambda = self.effective_ber(generation, read_index) * self.cfg.codeword_bits;
        let base_fail = (lambda / self.cfg.correctable_bits).min(1.0);
        if base_fail == 0.0 {
            return MediaOutcome::Clean;
        }
        let mut rng = SimRng::new(mix(
            self.cfg.seed,
            OpKind::Read,
            ppn,
            generation as u64,
            read_index as u64,
        ));
        let mut p_fail = base_fail;
        for step in 0..=self.cfg.max_retry_steps {
            if !rng.chance(p_fail) {
                return if step == 0 {
                    MediaOutcome::Clean
                } else {
                    MediaOutcome::Correctable { retry_steps: step }
                };
            }
            p_fail = (p_fail * self.cfg.retry_gain).min(1.0);
        }
        MediaOutcome::Uncorrectable
    }

    /// Whether programming `ppn` in erase generation `generation` fails.
    pub fn program_outcome(&self, ppn: u64, generation: u32) -> MediaOutcome {
        if self.cfg.program_fail_prob == 0.0 {
            return MediaOutcome::Clean;
        }
        let mut rng = SimRng::new(mix(
            self.cfg.seed,
            OpKind::Program,
            ppn,
            generation as u64,
            0,
        ));
        if rng.chance(self.cfg.program_fail_prob) {
            MediaOutcome::ProgramFail
        } else {
            MediaOutcome::Clean
        }
    }

    /// Whether the `erase_count`-th erase of global block `block` fails.
    pub fn erase_outcome(&self, block: u64, erase_count: u32) -> MediaOutcome {
        if self.cfg.erase_fail_prob == 0.0 {
            return MediaOutcome::Clean;
        }
        let mut rng = SimRng::new(mix(
            self.cfg.seed,
            OpKind::Erase,
            block,
            erase_count as u64,
            0,
        ));
        if rng.chance(self.cfg.erase_fail_prob) {
            MediaOutcome::EraseFail
        } else {
            MediaOutcome::Clean
        }
    }

    /// Whether global block `block` shipped factory-bad.
    pub fn factory_bad(&self, block: u64) -> bool {
        if self.cfg.factory_bad_frac == 0.0 {
            return false;
        }
        let mut rng = SimRng::new(mix(self.cfg.seed, OpKind::FactoryBad, block, 0, 0));
        rng.chance(self.cfg.factory_bad_frac)
    }
}

/// Reliability counters accumulated by a [`MediaModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaCounters {
    /// Program-status failures the controller recovered from.
    pub program_fails: u64,
    /// Blocks retired in service (erase failure or early retirement after
    /// a program failure).
    pub grown_bad_blocks: u64,
    /// Blocks retired at media attach time (factory bad).
    pub factory_bad_blocks: u64,
    /// Reads that exhausted the retry ladder (data loss events).
    pub uncorrectable_reads: u64,
    /// Total read-retry ladder steps across all reads.
    pub read_retry_steps: u64,
    /// Histogram of reads by retry steps needed: index `s` counts reads
    /// that succeeded after `s` steps (0 = clean first try). Uncorrectable
    /// reads are counted separately, not here.
    pub retry_hist: Vec<u64>,
}

impl MediaCounters {
    /// All-zero counters with a retry histogram of `max_retry_steps + 1`
    /// buckets.
    pub fn new(max_retry_steps: u32) -> Self {
        MediaCounters {
            program_fails: 0,
            grown_bad_blocks: 0,
            factory_bad_blocks: 0,
            uncorrectable_reads: 0,
            read_retry_steps: 0,
            retry_hist: vec![0; max_retry_steps as usize + 1],
        }
    }

    /// Total reads that touched the media (retry histogram plus the reads
    /// the ladder could not save).
    pub fn media_reads(&self) -> u64 {
        self.retry_hist.iter().sum::<u64>() + self.uncorrectable_reads
    }

    /// Counter deltas since `baseline` (for measurement windows that start
    /// after a warm-up phase).
    pub fn since(&self, baseline: &MediaCounters) -> MediaCounters {
        MediaCounters {
            program_fails: self.program_fails - baseline.program_fails,
            grown_bad_blocks: self.grown_bad_blocks - baseline.grown_bad_blocks,
            factory_bad_blocks: self.factory_bad_blocks - baseline.factory_bad_blocks,
            uncorrectable_reads: self.uncorrectable_reads - baseline.uncorrectable_reads,
            read_retry_steps: self.read_retry_steps - baseline.read_retry_steps,
            retry_hist: self
                .retry_hist
                .iter()
                .zip(baseline.retry_hist.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Default for MediaCounters {
    /// All-zero counters with a single (clean) histogram bucket — what a
    /// device without attached media reports.
    fn default() -> Self {
        Self::new(0)
    }
}

/// Stateful media-fault model: a [`FaultPlan`] plus the per-page read
/// indices that proxy retention age, plus reliability counters.
///
/// Lives inside `dloop-nand`'s `FlashState`; FTLs never talk to it
/// directly. Cloning clones the whole fault state, so snapshotted devices
/// replay identically.
#[derive(Debug, Clone)]
pub struct MediaModel {
    plan: FaultPlan,
    read_counts: Vec<u32>,
    counters: MediaCounters,
}

impl MediaModel {
    /// A model over `total_pages` physical pages.
    pub fn new(plan: FaultPlan, total_pages: u64) -> Self {
        let max_steps = plan.config().max_retry_steps;
        MediaModel {
            plan,
            read_counts: vec![0; total_pages as usize],
            counters: MediaCounters::new(max_steps),
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the plan can never fire (fast-path check for callers).
    pub fn is_null(&self) -> bool {
        self.plan.is_null()
    }

    /// Reliability counters so far.
    pub fn counters(&self) -> &MediaCounters {
        &self.counters
    }

    /// Read of `ppn` (block generation `generation`): advances the page's
    /// read index, derives the outcome, and accounts it.
    pub fn read(&mut self, ppn: u64, generation: u32) -> MediaOutcome {
        if self.plan.cfg.base_ber == 0.0 {
            self.counters.retry_hist[0] += 1;
            return MediaOutcome::Clean;
        }
        let idx = &mut self.read_counts[ppn as usize];
        let read_index = *idx;
        *idx = idx.saturating_add(1);
        let outcome = self.plan.read_outcome(ppn, generation, read_index);
        match outcome {
            MediaOutcome::Uncorrectable => self.counters.uncorrectable_reads += 1,
            o => {
                let steps = o.retry_steps();
                self.counters.read_retry_steps += steps as u64;
                self.counters.retry_hist[steps as usize] += 1;
            }
        }
        outcome
    }

    /// Program of `ppn` (block generation `generation`): resets the page's
    /// retention clock and derives pass/fail.
    pub fn program(&mut self, ppn: u64, generation: u32) -> MediaOutcome {
        self.read_counts[ppn as usize] = 0;
        let outcome = self.plan.program_outcome(ppn, generation);
        if outcome == MediaOutcome::ProgramFail {
            self.counters.program_fails += 1;
        }
        outcome
    }

    /// Erase of global block `block` at erase generation `erase_count`
    /// (the count *before* this erase).
    pub fn erase(&mut self, block: u64, erase_count: u32) -> MediaOutcome {
        self.plan.erase_outcome(block, erase_count)
    }

    /// Record an in-service block retirement (erase failure or doomed
    /// block retired early after a program failure).
    pub fn note_grown_bad(&mut self) {
        self.counters.grown_bad_blocks += 1;
    }

    /// Record a factory-bad block removed from service at attach time.
    pub fn note_factory_bad(&mut self) {
        self.counters.factory_bad_blocks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_plan_never_faults() {
        let plan = FaultPlan::new(FaultConfig::none());
        assert!(plan.is_null());
        for ppn in 0..2000 {
            assert_eq!(plan.read_outcome(ppn, 5, 9), MediaOutcome::Clean);
            assert_eq!(plan.program_outcome(ppn, 3), MediaOutcome::Clean);
            assert_eq!(plan.erase_outcome(ppn, 7), MediaOutcome::Clean);
            assert!(!plan.factory_bad(ppn));
        }
    }

    #[test]
    fn outcomes_are_pure_functions_of_the_key() {
        let a = FaultPlan::new(FaultConfig::storm(99));
        let b = FaultPlan::new(FaultConfig::storm(99));
        for ppn in 0..500 {
            assert_eq!(a.read_outcome(ppn, 2, 3), b.read_outcome(ppn, 2, 3));
            assert_eq!(a.program_outcome(ppn, 1), b.program_outcome(ppn, 1));
            assert_eq!(a.erase_outcome(ppn, 4), b.erase_outcome(ppn, 4));
            assert_eq!(a.factory_bad(ppn), b.factory_bad(ppn));
        }
    }

    #[test]
    fn different_seeds_give_different_fault_sets() {
        let a = FaultPlan::new(FaultConfig::storm(1));
        let b = FaultPlan::new(FaultConfig::storm(2));
        let differ = (0..4000)
            .filter(|&p| a.program_outcome(p, 0) != b.program_outcome(p, 0))
            .count();
        assert!(differ > 0, "seeds must decorrelate the fault plan");
    }

    #[test]
    fn fault_rates_are_near_the_configured_probabilities() {
        let cfg = FaultConfig::storm(7);
        let plan = FaultPlan::new(cfg.clone());
        let n = 40_000u64;
        let program_fails = (0..n)
            .filter(|&p| plan.program_outcome(p, 0) == MediaOutcome::ProgramFail)
            .count() as f64;
        let rate = program_fails / n as f64;
        assert!(
            (rate - cfg.program_fail_prob).abs() < 0.01,
            "program-fail rate {rate} far from {}",
            cfg.program_fail_prob
        );
        let factory = (0..n).filter(|&b| plan.factory_bad(b)).count() as f64;
        let rate = factory / n as f64;
        assert!(
            (rate - cfg.factory_bad_frac).abs() < 0.01,
            "factory-bad rate {rate} far from {}",
            cfg.factory_bad_frac
        );
    }

    #[test]
    fn ber_rises_with_wear_and_retention() {
        let plan = FaultPlan::new(FaultConfig::light(3));
        assert!(plan.effective_ber(10, 0) > plan.effective_ber(0, 0));
        assert!(plan.effective_ber(0, 100) > plan.effective_ber(0, 0));
    }

    #[test]
    fn retry_ladder_monotone_with_ber() {
        // With a huge BER almost every read should need retries or die;
        // with a tiny one almost none should.
        let hot = FaultPlan::new(FaultConfig {
            base_ber: 5e-3,
            ..FaultConfig::storm(5)
        });
        let cold = FaultPlan::new(FaultConfig {
            base_ber: 1e-6,
            ..FaultConfig::storm(5)
        });
        let n = 5000u64;
        let hot_bad = (0..n)
            .filter(|&p| hot.read_outcome(p, 0, 0) != MediaOutcome::Clean)
            .count();
        let cold_bad = (0..n)
            .filter(|&p| cold.read_outcome(p, 0, 0) != MediaOutcome::Clean)
            .count();
        assert!(hot_bad > cold_bad, "hot {hot_bad} vs cold {cold_bad}");
        assert!(cold_bad < (n / 100) as usize);
    }

    #[test]
    fn media_model_counts_outcomes() {
        let mut m = MediaModel::new(FaultPlan::new(FaultConfig::storm(11)), 4096);
        let mut uncorrectable = 0u64;
        let mut retried = 0u64;
        for ppn in 0..4096u64 {
            match m.read(ppn, 3) {
                MediaOutcome::Uncorrectable => uncorrectable += 1,
                MediaOutcome::Correctable { .. } => retried += 1,
                _ => {}
            }
        }
        let c = m.counters();
        assert_eq!(c.uncorrectable_reads, uncorrectable);
        assert_eq!(c.retry_hist.iter().sum::<u64>() + uncorrectable, 4096);
        assert!(retried > 0, "storm config should force some retries");
        assert!(c.read_retry_steps >= retried);
    }

    #[test]
    fn read_index_advances_and_resets_on_program() {
        let cfg = FaultConfig {
            retention_slope: 10.0,
            ..FaultConfig::light(13)
        };
        let mut m = MediaModel::new(FaultPlan::new(cfg), 16);
        // Drive the read index up, then re-program: the sequence of
        // outcomes after the program must equal the first sequence
        // (same generation, read indices restart at 0).
        let first: Vec<MediaOutcome> = (0..8).map(|_| m.read(3, 0)).collect();
        m.program(3, 0);
        let second: Vec<MediaOutcome> = (0..8).map(|_| m.read(3, 0)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn counters_since_baseline() {
        let mut m = MediaModel::new(FaultPlan::new(FaultConfig::storm(17)), 1024);
        for ppn in 0..512u64 {
            m.read(ppn, 1);
        }
        let base = m.counters().clone();
        for ppn in 512..1024u64 {
            m.read(ppn, 1);
        }
        let delta = m.counters().since(&base);
        assert_eq!(
            delta.retry_hist.iter().sum::<u64>() + delta.uncorrectable_reads,
            512
        );
    }

    #[test]
    fn null_model_hot_path_stays_clean() {
        let mut m = MediaModel::new(FaultPlan::new(FaultConfig::none()), 64);
        assert!(m.is_null());
        for _ in 0..10 {
            assert_eq!(m.read(5, 0), MediaOutcome::Clean);
            assert_eq!(m.program(5, 0), MediaOutcome::Clean);
            assert_eq!(m.erase(0, 0), MediaOutcome::Clean);
        }
        assert_eq!(m.counters().uncorrectable_reads, 0);
        assert_eq!(m.counters().read_retry_steps, 0);
    }
}

//! Op-level flight recorder: a zero-dependency, opt-in tracing layer.
//!
//! Credible SSD simulation needs inspectable accounting of every internal
//! resource (Amber, SimpleSSD): not just *how long* a request took but
//! *where* each microsecond went — queueing behind a plane, queueing behind
//! a bus, the cell operation itself, the transfer, a read-retry ladder, or
//! GC charged to the triggering write. This module provides the recording
//! substrate: the hardware model emits one [`Span`] per flash operation at
//! reservation time into a pluggable [`TraceSink`], and the exporters turn
//! the spans into
//!
//! * a Chrome `trace_event` JSON timeline ([`chrome_trace_json`]) with one
//!   track per plane and per channel, loadable in `chrome://tracing` or
//!   Perfetto — including `flow` events that stitch every span of one host
//!   request together across planes and channels (follow a request from its
//!   translation read through its data write into the GC it triggered);
//! * per-plane and per-channel utilization timeline CSVs
//!   ([`plane_utilization_csv`], [`channel_utilization_csv`]);
//! * an aggregated latency-attribution table ([`attribution`]) splitting
//!   residence time into plane-wait / channel-wait / bus / cell / retry
//!   per phase (host, GC, scan) — derived from the spans themselves, not
//!   from ad-hoc accumulators.
//!
//! Five sinks ship in-tree:
//!
//! * [`RingSink`] — the bounded flight-recorder ring (drop-oldest when
//!   full, with a loud [`RingSink::dropped`] counter). The historical name
//!   [`FlightRecorder`] remains as an alias.
//! * [`StreamSink`] — buffered JSONL spill to any [`std::io::Write`]
//!   (typically a file): one [`span_jsonl`] line per span, **no**
//!   drop-oldest cap, so full-length enterprise traces keep every span.
//! * [`TeeSink`] — fan-out to two sinks (e.g. a ring for interactive
//!   exports plus a stream for complete on-disk history).
//! * [`SamplingSink`] — deterministic 1-in-N subsampler in front of any
//!   sink, so multi-billion-op runs neither evict the ring nor grow the
//!   stream without bound; the loss stays counted.
//! * [`BufferSink`] — unbounded in-memory buffer; the sharded replay
//!   engine's per-shard staging area, drained back into the real sink in
//!   canonical order at every merge point.
//!
//! Recording is pure observation: it never touches the resource timelines,
//! so a run with tracing enabled is bit-identical (in every report field)
//! to the same run with tracing disabled.
//!
//! Beyond the span pipeline, the module hosts [`QueueDepthProbe`], a host
//! queue-occupancy recorder the replay drivers feed with one
//! `(arrival, issue, done)` triple per unit of work; its
//! [`QueueDepthProbe::csv`] exporter renders the queue-depth-over-time
//! timeline (in-flight / pending counts plus admitted / completed deltas
//! per sim-time bucket).
//!
//! The module also ships [`json_lint`], a minimal JSON syntax validator, so
//! the exported timeline can be checked hermetically (no serde, no Python).

use crate::time::SimTime;
use std::any::Any;
use std::fmt::Write as _;
use std::io;

/// Flash operation kind of a recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Page read (array + bus out).
    Read,
    /// Page read that needed the read-retry ladder.
    ReadRetry,
    /// Page program (bus in + array).
    Write,
    /// Block erase (array only).
    Erase,
    /// Intra-plane copy-back (array only — no bus traffic).
    CopyBack,
    /// Traditional inter-plane copy (source array, bus twice, dest array).
    InterPlaneCopy,
}

impl SpanKind {
    /// Short display name (also the Chrome event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Read => "read",
            SpanKind::ReadRetry => "read_retry",
            SpanKind::Write => "write",
            SpanKind::Erase => "erase",
            SpanKind::CopyBack => "copyback",
            SpanKind::InterPlaneCopy => "interplane_copy",
        }
    }
}

/// Which logical phase of request service an operation belonged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Work the host response waits for.
    Host,
    /// Reclamation charged to (or triggered by) the current operation.
    Gc,
    /// Background housekeeping for unrelated planes.
    Scan,
    /// Host-side submission queueing (doorbell batching and, under a
    /// finite per-queue depth, waiting for a free SQ slot). Emitted by
    /// the `dloop-host` stack, never by the device: these spans hold no
    /// device resource.
    HostQueue,
    /// Host page-cache service (hits and write-back acknowledgements).
    /// Emitted by the `dloop-host` stack, never by the device.
    Cache,
    /// Completion-side wait: the done→deliver interval a finished command
    /// spends aggregating under interrupt coalescing before its interrupt
    /// reaches the host. Emitted by the `dloop-host` stack, never by the
    /// device.
    Completion,
}

impl SpanPhase {
    /// Short display name (also the Chrome event category).
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Host => "host",
            SpanPhase::Gc => "gc",
            SpanPhase::Scan => "scan",
            SpanPhase::HostQueue => "host_queue",
            SpanPhase::Cache => "cache",
            SpanPhase::Completion => "completion",
        }
    }

    /// Every phase, in the locked row order of [`Attribution::csv`]: the
    /// three device phases first (the pre-host-stack table), then the
    /// host-stack phases appended under the schema-extension rule
    /// (`completion` came after `host_queue`/`cache`, so it sits last).
    pub fn all() -> [SpanPhase; 6] {
        [
            SpanPhase::Host,
            SpanPhase::Gc,
            SpanPhase::Scan,
            SpanPhase::HostQueue,
            SpanPhase::Cache,
            SpanPhase::Completion,
        ]
    }
}

/// A device resource a span segment occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// A plane's cell array.
    Plane(u32),
    /// A channel's external bus.
    Channel(u32),
}

/// One contiguous resource hold within a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg {
    /// The resource held.
    pub resource: Resource,
    /// Hold start.
    pub start: SimTime,
    /// Hold end (release).
    pub end: SimTime,
}

/// One flash operation, as reserved on the hardware timelines.
///
/// Invariant (checked by the emitter): for an operation whose phases run
/// back-to-back, `plane_wait_ns + channel_wait_ns + cell_ns + bus_ns +
/// retry_ns == end - issue`, i.e. the attribution buckets exactly tile the
/// residence time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Operation kind.
    pub kind: SpanKind,
    /// Logical service phase (host / GC / scan).
    pub phase: SpanPhase,
    /// Logical page whose service emitted this operation, when known.
    pub lpn: Option<u64>,
    /// Stable host-request id whose service emitted this operation, when
    /// known: every span a request causes — translation reads, the data
    /// operation itself, and GC charged to it — carries the same id, which
    /// is what lets the Chrome export stitch a request across planes and
    /// channels with flow events.
    pub req: Option<u64>,
    /// Primary plane.
    pub plane: u32,
    /// Destination plane of an inter-plane copy.
    pub dst_plane: Option<u32>,
    /// When the operation was handed to the hardware.
    pub issue: SimTime,
    /// When the first resource was actually acquired.
    pub start: SimTime,
    /// When the last resource was released.
    pub end: SimTime,
    /// Nanoseconds of cell-array occupancy (excluding retry-ladder time).
    pub cell_ns: u64,
    /// Nanoseconds of external-bus occupancy.
    pub bus_ns: u64,
    /// Nanoseconds spent waiting for a busy plane (or serialized die).
    pub plane_wait_ns: u64,
    /// Nanoseconds spent waiting for a busy channel.
    pub channel_wait_ns: u64,
    /// Nanoseconds of read-retry ladder work on the plane.
    pub retry_ns: u64,
    /// Read-retry ladder steps executed.
    pub retry_steps: u32,
    /// The individual resource holds (ordered; `None` entries are unused).
    pub segs: [Option<Seg>; 4],
}

impl Span {
    /// Total residence: issue to last release.
    pub fn residence_ns(&self) -> u64 {
        self.end.saturating_since(self.issue).as_nanos()
    }

    /// Sum of the attribution buckets; equals [`Span::residence_ns`] for
    /// spans whose phases ran back-to-back (all emitters in this
    /// workspace).
    pub fn buckets_ns(&self) -> u64 {
        self.plane_wait_ns + self.channel_wait_ns + self.cell_ns + self.bus_ns + self.retry_ns
    }

    /// The resource-hold segments actually present.
    pub fn segments(&self) -> impl Iterator<Item = &Seg> {
        self.segs.iter().flatten()
    }
}

/// Anywhere recorded [`Span`]s can go.
///
/// The hardware model emits spans through a `Box<dyn TraceSink>`; which
/// sink is attached decides the retention policy — bounded ring
/// ([`RingSink`]), unbounded JSONL spill ([`StreamSink`]), or both at once
/// ([`TeeSink`]). Implementations must be pure observers: recording a span
/// may never influence simulation state.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Observe one span. Must never fail loudly — sinks that can lose a
    /// span (a full ring, a failed write) count the loss in
    /// [`TraceSink::dropped`] instead.
    fn record(&mut self, span: &Span);

    /// Total spans ever offered to this sink.
    fn recorded(&self) -> u64;

    /// Spans the sink failed to retain (ring evictions, write errors).
    /// Exports built on a sink with `dropped() > 0` are incomplete and
    /// callers are expected to say so loudly.
    fn dropped(&self) -> u64;

    /// Flush any buffered output; the first deferred write error (if any)
    /// surfaces here.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Mark a measurement boundary: discard retained history where the
    /// sink can (a ring clears; an append-only stream keeps what it
    /// already spilled and just notes the boundary by continuing).
    fn reset(&mut self);

    /// Downcast support (sinks travel as `Box<dyn TraceSink>`).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Consuming downcast support.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A bounded ring buffer of [`Span`]s.
///
/// When full, the oldest span is dropped (flight-recorder semantics: the
/// most recent history survives) and [`RingSink::dropped`] counts the
/// loss — exports never silently pretend to be complete.
#[derive(Debug, Clone)]
pub struct RingSink {
    spans: Vec<Span>,
    head: usize,
    dropped: u64,
    capacity: usize,
}

/// The historical name of [`RingSink`], kept so long-lived call sites and
/// docs stay valid.
pub type FlightRecorder = RingSink;

impl RingSink {
    /// A recorder holding at most `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            spans: Vec::new(),
            head: 0,
            dropped: 0,
            capacity,
        }
    }

    /// Maximum spans retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total spans ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.len() as u64 + self.dropped
    }

    /// Append a span, evicting the oldest if the ring is full.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        let (newer, older) = self.spans.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Forget everything recorded (capacity is kept).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, span: &Span) {
        self.push(span.clone());
    }

    fn recorded(&self) -> u64 {
        RingSink::recorded(self)
    }

    fn dropped(&self) -> u64 {
        RingSink::dropped(self)
    }

    fn reset(&mut self) {
        self.clear();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Render one span as a single JSONL line (no trailing newline).
///
/// This is the exact on-disk format [`StreamSink`] spills: a flat object
/// with every [`Span`] field, segments as `["p"|"c", id, start_ns, end_ns]`
/// arrays. Each line passes [`json_lint`] on its own, so a streamed file
/// can be validated line by line without a JSON library.
pub fn span_jsonl(s: &Span) -> String {
    let mut out = String::with_capacity(256);
    let opt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
    let _ = write!(
        out,
        "{{\"kind\":\"{}\",\"phase\":\"{}\",\"req\":{},\"lpn\":{},\"plane\":{},\"dst_plane\":{},\
         \"issue_ns\":{},\"start_ns\":{},\"end_ns\":{},\"cell_ns\":{},\"bus_ns\":{},\
         \"plane_wait_ns\":{},\"channel_wait_ns\":{},\"retry_ns\":{},\"retry_steps\":{},\"segs\":[",
        s.kind.name(),
        s.phase.name(),
        opt(s.req),
        opt(s.lpn),
        s.plane,
        opt(s.dst_plane.map(u64::from)),
        s.issue.as_nanos(),
        s.start.as_nanos(),
        s.end.as_nanos(),
        s.cell_ns,
        s.bus_ns,
        s.plane_wait_ns,
        s.channel_wait_ns,
        s.retry_ns,
        s.retry_steps,
    );
    for (i, seg) in s.segments().enumerate() {
        let (tag, id) = match seg.resource {
            Resource::Plane(p) => ("p", p),
            Resource::Channel(c) => ("c", c),
        };
        let _ = write!(
            out,
            "{}[\"{tag}\",{id},{},{}]",
            if i == 0 { "" } else { "," },
            seg.start.as_nanos(),
            seg.end.as_nanos(),
        );
    }
    out.push_str("]}");
    out
}

/// A buffered JSONL span stream: every recorded span becomes one
/// [`span_jsonl`] line on the writer, with **no** drop-oldest cap — the
/// sink that makes full-length trace replays fully observable. Wrap a
/// [`std::fs::File`] (see [`StreamSink::create`]) for on-disk spill, or a
/// `Vec<u8>` in tests.
///
/// Write errors cannot surface from the hardware's record path, so the
/// first error is latched: affected spans count as [`TraceSink::dropped`]
/// and the error itself is returned by the next [`TraceSink::flush`].
#[derive(Debug)]
pub struct StreamSink<W: io::Write> {
    writer: W,
    recorded: u64,
    dropped: u64,
    deferred_err: Option<io::Error>,
}

impl StreamSink<io::BufWriter<std::fs::File>> {
    /// Stream spans to a freshly created (truncated) file at `path`.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        Ok(StreamSink::new(io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: io::Write> StreamSink<W> {
    /// Stream spans to `writer`.
    pub fn new(writer: W) -> Self {
        StreamSink {
            writer,
            recorded: 0,
            dropped: 0,
            deferred_err: None,
        }
    }

    /// Flush and hand back the writer (tests read the bytes back out of a
    /// `Vec<u8>`; callers owning a file writer get it back to close).
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: io::Write + std::fmt::Debug + Send + 'static> TraceSink for StreamSink<W> {
    fn record(&mut self, span: &Span) {
        self.recorded += 1;
        let mut line = span_jsonl(span);
        line.push('\n');
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.dropped += 1;
            self.deferred_err.get_or_insert(e);
        }
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.deferred_err.take() {
            return Err(e);
        }
        self.writer.flush()
    }

    fn reset(&mut self) {
        // Append-only: spilled spans cannot be retracted, so a measurement
        // boundary keeps the journal intact (consumers see the warm-up
        // prefix too, which is itself useful history).
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Fan a span stream out to two sinks — typically a bounded [`RingSink`]
/// for interactive exports plus a [`StreamSink`] keeping complete on-disk
/// history.
#[derive(Debug)]
pub struct TeeSink {
    a: Box<dyn TraceSink>,
    b: Box<dyn TraceSink>,
    recorded: u64,
}

impl TeeSink {
    /// Tee spans into `a` and `b` (in that order).
    pub fn new(a: Box<dyn TraceSink>, b: Box<dyn TraceSink>) -> Self {
        TeeSink { a, b, recorded: 0 }
    }

    /// The first sink.
    pub fn first(&self) -> &dyn TraceSink {
        self.a.as_ref()
    }

    /// The second sink.
    pub fn second(&self) -> &dyn TraceSink {
        self.b.as_ref()
    }

    /// Split back into the two sinks.
    pub fn into_inner(self) -> (Box<dyn TraceSink>, Box<dyn TraceSink>) {
        (self.a, self.b)
    }
}

impl TraceSink for TeeSink {
    fn record(&mut self, span: &Span) {
        self.recorded += 1;
        self.a.record(span);
        self.b.record(span);
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }

    fn dropped(&self) -> u64 {
        self.a.dropped() + self.b.dropped()
    }

    fn flush(&mut self) -> io::Result<()> {
        self.a.flush()?;
        self.b.flush()
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Deterministic 1-in-N span sampler in front of another sink.
///
/// Long replays emit one span per flash operation — a multi-billion-op run
/// would evict everything from a [`RingSink`] and grow a [`StreamSink`]
/// journal without bound. `SamplingSink` forwards every `every`-th span
/// (the first, the `every+1`-th, …) to the inner sink and counts the rest
/// as dropped, so downstream exports still see an unbiased, evenly spaced
/// subsample and the loss stays visible in [`TraceSink::dropped`].
///
/// The selection depends only on the span's position in the stream — no
/// clocks, no RNG — so two replays of the same trace sample the *same*
/// spans (the same determinism contract the replay drivers obey).
#[derive(Debug)]
pub struct SamplingSink {
    inner: Box<dyn TraceSink>,
    every: u64,
    /// Spans offered since the last reset.
    seen: u64,
    /// Spans this sampler itself declined to forward.
    sampled_out: u64,
}

impl SamplingSink {
    /// Forward one span in `every` (at least 1; `1` forwards everything)
    /// to `inner`.
    pub fn new(inner: Box<dyn TraceSink>, every: u64) -> Self {
        SamplingSink {
            inner,
            every: every.max(1),
            seen: 0,
            sampled_out: 0,
        }
    }

    /// The sampling period N (one span in N is forwarded).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Spans forwarded to the inner sink since the last reset.
    pub fn kept(&self) -> u64 {
        self.seen - self.sampled_out
    }

    /// Spans this sampler declined to forward since the last reset (not
    /// counting anything the inner sink itself dropped).
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &dyn TraceSink {
        self.inner.as_ref()
    }

    /// Unwrap, returning the inner sink.
    pub fn into_inner(self) -> Box<dyn TraceSink> {
        self.inner
    }
}

impl TraceSink for SamplingSink {
    fn record(&mut self, span: &Span) {
        let keep = self.seen % self.every == 0;
        self.seen += 1;
        if keep {
            self.inner.record(span);
        } else {
            self.sampled_out += 1;
        }
    }

    fn recorded(&self) -> u64 {
        self.seen
    }

    fn dropped(&self) -> u64 {
        self.sampled_out + self.inner.dropped()
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn reset(&mut self) {
        self.seen = 0;
        self.sampled_out = 0;
        self.inner.reset();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// An unbounded in-memory span buffer.
///
/// Unlike [`RingSink`] it never evicts, so it is only suitable for runs
/// whose span count is bounded by construction — its home is the sharded
/// replay engine, where each shard records a *window* of spans into a
/// `BufferSink` and the coordinator drains the buffers back into the real
/// sink in canonical order after every window.
#[derive(Debug, Default)]
pub struct BufferSink {
    spans: Vec<Span>,
}

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> Self {
        BufferSink::default()
    }

    /// Spans recorded since the last [`BufferSink::clear`], in record
    /// order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Forget everything buffered (capacity is kept for reuse).
    pub fn clear(&mut self) {
        self.spans.clear();
    }
}

impl TraceSink for BufferSink {
    fn record(&mut self, span: &Span) {
        self.spans.push(span.clone());
    }

    fn recorded(&self) -> u64 {
        self.spans.len() as u64
    }

    fn dropped(&self) -> u64 {
        0
    }

    fn reset(&mut self) {
        self.clear();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// One row of the latency-attribution table (nanosecond sums).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttributionRow {
    /// Spans aggregated into this row.
    pub spans: u64,
    /// Waiting for a busy plane / serialized die.
    pub plane_wait_ns: u64,
    /// Waiting for a busy channel bus.
    pub channel_wait_ns: u64,
    /// Bus transfer time.
    pub bus_ns: u64,
    /// Cell (array) operation time, excluding retries.
    pub cell_ns: u64,
    /// Read-retry ladder time.
    pub retry_ns: u64,
    /// Total residence (issue → release).
    pub residence_ns: u64,
}

impl AttributionRow {
    fn add(&mut self, s: &Span) {
        self.spans += 1;
        self.plane_wait_ns += s.plane_wait_ns;
        self.channel_wait_ns += s.channel_wait_ns;
        self.bus_ns += s.bus_ns;
        self.cell_ns += s.cell_ns;
        self.retry_ns += s.retry_ns;
        self.residence_ns += s.residence_ns();
    }
}

/// The aggregated latency-attribution table, one row per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Host-phase operations (the response-gating work).
    pub host: AttributionRow,
    /// GC-phase operations (synchronous mode charges these to requests).
    pub gc: AttributionRow,
    /// Scan-phase housekeeping (contends for resources, never gates).
    pub scan: AttributionRow,
    /// Host-side submission-queueing spans (doorbell batching and SQ
    /// backpressure waits from the `dloop-host` stack). Pure residence:
    /// the hardware bucket columns stay zero.
    pub host_queue: AttributionRow,
    /// Host page-cache service spans from the `dloop-host` stack.
    pub cache: AttributionRow,
    /// Interrupt-coalescing (done→deliver) spans from the `dloop-host`
    /// stack. Pure residence, like the other host rows.
    pub completion: AttributionRow,
}

impl Attribution {
    /// The row for `phase`.
    pub fn row(&self, phase: SpanPhase) -> &AttributionRow {
        match phase {
            SpanPhase::Host => &self.host,
            SpanPhase::Gc => &self.gc,
            SpanPhase::Scan => &self.scan,
            SpanPhase::HostQueue => &self.host_queue,
            SpanPhase::Cache => &self.cache,
            SpanPhase::Completion => &self.completion,
        }
    }

    /// Nanoseconds of request-visible time: host + GC residence. For a
    /// replay of non-overlapping single-page requests in synchronous-GC
    /// mode this reconciles exactly with the run's summed response time.
    pub fn request_visible_ns(&self) -> u64 {
        self.host.residence_ns + self.gc.residence_ns
    }

    /// The locked CSV header of [`Attribution::csv`].
    pub fn csv_header() -> &'static str {
        "phase,spans,plane_wait_ms,channel_wait_ms,bus_ms,cell_ms,retry_ms,total_ms"
    }

    /// Render as CSV (header + one row per phase). The three device
    /// phases keep their original row positions; the host-stack phases
    /// append after them (rows extend the same way locked columns do).
    pub fn csv(&self) -> String {
        let mut out = String::from(Self::csv_header());
        out.push('\n');
        for phase in SpanPhase::all() {
            let r = self.row(phase);
            let _ = writeln!(
                out,
                "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                phase.name(),
                r.spans,
                r.plane_wait_ns as f64 / 1e6,
                r.channel_wait_ns as f64 / 1e6,
                r.bus_ns as f64 / 1e6,
                r.cell_ns as f64 / 1e6,
                r.retry_ns as f64 / 1e6,
                r.residence_ns as f64 / 1e6,
            );
        }
        out
    }
}

/// Aggregate the retained spans into the latency-attribution table.
pub fn attribution(rec: &FlightRecorder) -> Attribution {
    let mut a = Attribution::default();
    for s in rec.spans() {
        match s.phase {
            SpanPhase::Host => a.host.add(s),
            SpanPhase::Gc => a.gc.add(s),
            SpanPhase::Scan => a.scan.add(s),
            SpanPhase::HostQueue => a.host_queue.add(s),
            SpanPhase::Cache => a.cache.add(s),
            SpanPhase::Completion => a.completion.add(s),
        }
    }
    a
}

fn push_json_event(
    out: &mut String,
    pid: u32,
    tid: u32,
    name: &str,
    cat: &str,
    ts_ns: u64,
    dur_ns: u64,
    span: &Span,
) {
    let lpn = span
        .lpn
        .map(|l| l.to_string())
        .unwrap_or_else(|| "null".to_string());
    let req = span
        .req
        .map(|r| r.to_string())
        .unwrap_or_else(|| "null".to_string());
    let _ = write!(
        out,
        ",\n{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\"cat\":\"{cat}\",\
         \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"lpn\":{lpn},\"req\":{req},\"retry_steps\":{},\
         \"issue_us\":{:.3},\"wait_us\":{:.3}}}}}",
        ts_ns as f64 / 1e3,
        dur_ns as f64 / 1e3,
        span.retry_steps,
        span.issue.as_micros_f64(),
        (span.plane_wait_ns + span.channel_wait_ns) as f64 / 1e3,
    );
}

/// Process id used for plane tracks in the Chrome export.
pub const CHROME_PID_PLANES: u32 = 1;
/// Process id used for channel tracks in the Chrome export.
pub const CHROME_PID_CHANNELS: u32 = 2;

/// Export the retained spans as Chrome `trace_event` JSON.
///
/// Layout: one process per resource class (`planes`, `channels`), one
/// thread (track) per plane / channel id, one complete (`"X"`) event per
/// resource hold, named after the operation and categorized by phase.
/// Timestamps are microseconds, as `chrome://tracing` and Perfetto expect.
///
/// Spans carrying a request id ([`Span::req`]) are additionally stitched
/// with flow events: each request that produced two or more spans gets one
/// `"s"` (start) arrow at its first span, `"t"` steps at intermediate
/// spans, and a terminating `"f"` at its last span, all sharing the
/// request id as flow id. In `chrome://tracing` / Perfetto this draws the
/// request's path across plane and channel tracks — translation read →
/// data op → the GC it triggered — even when those ops landed on different
/// resources.
pub fn chrome_trace_json(rec: &FlightRecorder) -> String {
    let mut planes: Vec<u32> = Vec::new();
    let mut channels: Vec<u32> = Vec::new();
    for s in rec.spans() {
        for seg in s.segments() {
            match seg.resource {
                Resource::Plane(p) => {
                    if !planes.contains(&p) {
                        planes.push(p);
                    }
                }
                Resource::Channel(c) => {
                    if !channels.contains(&c) {
                        channels.push(c);
                    }
                }
            }
        }
    }
    planes.sort_unstable();
    channels.sort_unstable();

    let mut out = String::from("{\"traceEvents\":[");
    let _ = write!(
        out,
        "\n{{\"ph\":\"M\",\"pid\":{CHROME_PID_PLANES},\"name\":\"process_name\",\
         \"args\":{{\"name\":\"planes\"}}}}"
    );
    let _ = write!(
        out,
        ",\n{{\"ph\":\"M\",\"pid\":{CHROME_PID_CHANNELS},\"name\":\"process_name\",\
         \"args\":{{\"name\":\"channels\"}}}}"
    );
    for &p in &planes {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":{CHROME_PID_PLANES},\"tid\":{p},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"plane {p}\"}}}}"
        );
    }
    for &c in &channels {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":{CHROME_PID_CHANNELS},\"tid\":{c},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"channel {c}\"}}}}"
        );
    }
    for s in rec.spans() {
        for seg in s.segments() {
            let (pid, tid) = match seg.resource {
                Resource::Plane(p) => (CHROME_PID_PLANES, p),
                Resource::Channel(c) => (CHROME_PID_CHANNELS, c),
            };
            push_json_event(
                &mut out,
                pid,
                tid,
                s.kind.name(),
                s.phase.name(),
                seg.start.as_nanos(),
                seg.end.saturating_since(seg.start).as_nanos(),
                s,
            );
        }
    }
    // Flow stitching: group spans by request id (preserving first-seen
    // order for determinism) and arrow each multi-span request across the
    // tracks its operations landed on.
    let mut order: Vec<u64> = Vec::new();
    let mut groups: std::collections::HashMap<u64, Vec<&Span>> = std::collections::HashMap::new();
    for s in rec.spans() {
        if let Some(id) = s.req {
            let g = groups.entry(id).or_default();
            if g.is_empty() {
                order.push(id);
            }
            g.push(s);
        }
    }
    for id in order {
        let spans = &groups[&id];
        if spans.len() < 2 {
            continue;
        }
        let last = spans.len() - 1;
        for (i, s) in spans.iter().enumerate() {
            let Some(seg) = s.segments().next() else {
                continue;
            };
            let (pid, tid) = match seg.resource {
                Resource::Plane(p) => (CHROME_PID_PLANES, p),
                Resource::Channel(c) => (CHROME_PID_CHANNELS, c),
            };
            let (ph, bp) = if i == 0 {
                ("s", "")
            } else if i == last {
                ("f", ",\"bp\":\"e\"")
            } else {
                ("t", "")
            };
            let _ = write!(
                out,
                ",\n{{\"ph\":\"{ph}\",\"id\":{id},\"pid\":{pid},\"tid\":{tid},\
                 \"ts\":{:.3},\"name\":\"req\",\"cat\":\"flow\"{bp}}}",
                seg.start.as_nanos() as f64 / 1e3,
            );
        }
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_spans\":{}}}}}",
        rec.dropped()
    );
    out
}

/// Shared implementation of the utilization timeline CSVs: bucket the
/// covered simulated time and sum, per selected resource, the busy overlap
/// in each window.
fn utilization_csv(
    rec: &FlightRecorder,
    count: usize,
    buckets: usize,
    column_prefix: &str,
    select: impl Fn(Resource) -> Option<u32>,
) -> String {
    let buckets = buckets.max(1);
    let end_ns = rec
        .spans()
        .flat_map(|s| s.segments())
        .map(|seg| seg.end.as_nanos())
        .max()
        .unwrap_or(0);
    let width = (end_ns / buckets as u64).max(1);
    let mut busy = vec![vec![0u64; count]; buckets];
    for s in rec.spans() {
        for seg in s.segments() {
            let Some(r) = select(seg.resource) else {
                continue;
            };
            let r = r as usize;
            if r >= count {
                continue;
            }
            let (a, b) = (seg.start.as_nanos(), seg.end.as_nanos());
            let first = (a / width).min(buckets as u64 - 1) as usize;
            let last = (b.saturating_sub(1) / width).min(buckets as u64 - 1) as usize;
            for (i, row) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                let w_start = i as u64 * width;
                let w_end = w_start + width;
                let overlap = b.min(w_end).saturating_sub(a.max(w_start));
                row[r] += overlap;
            }
        }
    }
    let mut out = String::from("bucket_start_ms,bucket_end_ms");
    for r in 0..count {
        let _ = write!(out, ",{column_prefix}_{r}");
    }
    out.push('\n');
    for (i, row) in busy.iter().enumerate() {
        let w_start = i as u64 * width;
        let _ = write!(
            out,
            "{:.6},{:.6}",
            w_start as f64 / 1e6,
            (w_start + width) as f64 / 1e6
        );
        for &b in row {
            let _ = write!(out, ",{:.4}", b as f64 / width as f64);
        }
        out.push('\n');
    }
    out
}

/// Export a per-plane utilization timeline as CSV.
///
/// The simulated time covered by the retained spans is divided into
/// `buckets` equal windows; each row reports, per plane, the fraction of
/// that window the plane's array was busy. Columns:
/// `bucket_start_ms,bucket_end_ms,plane_0,plane_1,…` (planes `0..planes`).
pub fn plane_utilization_csv(rec: &FlightRecorder, planes: usize, buckets: usize) -> String {
    utilization_csv(rec, planes, buckets, "plane", |r| match r {
        Resource::Plane(p) => Some(p),
        Resource::Channel(_) => None,
    })
}

/// Export a per-channel bus-utilization timeline as CSV, the channel twin
/// of [`plane_utilization_csv`]: same bucketing, one `channel_N` column per
/// channel. Side by side the two timelines show DLOOP's core effect — GC
/// copy-backs keep planes busy while the channel rows stay host-only.
pub fn channel_utilization_csv(rec: &FlightRecorder, channels: usize, buckets: usize) -> String {
    utilization_csv(rec, channels, buckets, "channel", |r| match r {
        Resource::Plane(_) => None,
        Resource::Channel(c) => Some(c),
    })
}

/// Multiply a power draw (µW) by a duration (ns) into femtojoules,
/// panicking on overflow rather than wrapping — the same fixed-point rule
/// as `dloop-nand`'s energy module (which this crate cannot depend on).
fn power_fj(uw: u64, ns: u64) -> u64 {
    uw.checked_mul(ns)
        .expect("power timeline overflow: uW * ns exceeds u64 femtojoules")
}

/// Export a per-plane/per-channel power timeline as CSV, the energy twin
/// of [`plane_utilization_csv`] / [`channel_utilization_csv`].
///
/// The covered simulated time is divided into `buckets` windows of equal
/// width — except the **last**, which extends to the final segment release
/// so the windows tile the covered time *exactly* (the utilization CSVs
/// may truncate a sub-width tail; a power timeline must not, because its
/// buckets carry an integer-identity contract). Every retained plane
/// segment charges `array_active_uw`, every channel segment
/// `bus_active_uw`, and each row reports integer femtojoules per resource
/// plus a row total. Columns:
/// `bucket_start_ms,bucket_end_ms,plane_0_fj,…,channel_0_fj,…,total_fj`.
///
/// **Integer identity:** provided the recorder dropped nothing, summing any
/// column over all rows reproduces `draw × busy-ns` for that resource
/// bit-exactly, and the `total_fj` column sums to the run's total energy —
/// the same integers a `RunReport` carries. All arithmetic is
/// overflow-checked; nothing is rounded.
pub fn power_csv(
    rec: &FlightRecorder,
    planes: usize,
    channels: usize,
    buckets: usize,
    array_active_uw: u64,
    bus_active_uw: u64,
) -> String {
    let buckets = buckets.max(1);
    let end_ns = rec
        .spans()
        .flat_map(|s| s.segments())
        .map(|seg| seg.end.as_nanos())
        .max()
        .unwrap_or(0);
    let width = (end_ns / buckets as u64).max(1);
    // Window i covers [i*width, (i+1)*width), except the last which
    // stretches to end_ns so no tail nanosecond escapes the grid.
    let window_end = |i: usize| -> u64 {
        let nominal = (i as u64 + 1) * width;
        if i + 1 == buckets {
            nominal.max(end_ns)
        } else {
            nominal
        }
    };
    let cols = planes + channels;
    let mut grid = vec![vec![0u64; cols]; buckets];
    for s in rec.spans() {
        for seg in s.segments() {
            let (col, uw) = match seg.resource {
                Resource::Plane(p) if (p as usize) < planes => (p as usize, array_active_uw),
                Resource::Channel(c) if (c as usize) < channels => {
                    (planes + c as usize, bus_active_uw)
                }
                _ => continue,
            };
            let (a, b) = (seg.start.as_nanos(), seg.end.as_nanos());
            let first = (a / width).min(buckets as u64 - 1) as usize;
            let last = (b.saturating_sub(1) / width).min(buckets as u64 - 1) as usize;
            for (i, row) in grid.iter_mut().enumerate().take(last + 1).skip(first) {
                let w_start = i as u64 * width;
                let overlap = b.min(window_end(i)).saturating_sub(a.max(w_start));
                row[col] = row[col]
                    .checked_add(power_fj(uw, overlap))
                    .expect("power timeline overflow: bucket femtojoule sum exceeds u64");
            }
        }
    }
    let mut out = String::from("bucket_start_ms,bucket_end_ms");
    for p in 0..planes {
        let _ = write!(out, ",plane_{p}_fj");
    }
    for c in 0..channels {
        let _ = write!(out, ",channel_{c}_fj");
    }
    out.push_str(",total_fj\n");
    for (i, row) in grid.iter().enumerate() {
        let w_start = i as u64 * width;
        let _ = write!(
            out,
            "{:.6},{:.6}",
            w_start as f64 / 1e6,
            window_end(i) as f64 / 1e6
        );
        let mut total = 0u64;
        for &fj in row {
            total = total
                .checked_add(fj)
                .expect("power timeline overflow: row total exceeds u64");
            let _ = write!(out, ",{fj}");
        }
        let _ = write!(out, ",{total}");
        out.push('\n');
    }
    out
}

/// The exact `(array_fj, bus_fj)` energy the retained segments imply —
/// the reference value [`power_csv`]'s bucket grid must sum to, and (when
/// the recorder saw every span of a run) the run report's energy totals.
pub fn power_totals_fj(
    rec: &FlightRecorder,
    array_active_uw: u64,
    bus_active_uw: u64,
) -> (u64, u64) {
    let mut array = 0u64;
    let mut bus = 0u64;
    for s in rec.spans() {
        for seg in s.segments() {
            let ns = seg.end.saturating_since(seg.start).as_nanos();
            match seg.resource {
                Resource::Plane(_) => {
                    array = array
                        .checked_add(power_fj(array_active_uw, ns))
                        .expect("power totals overflow")
                }
                Resource::Channel(_) => {
                    bus = bus
                        .checked_add(power_fj(bus_active_uw, ns))
                        .expect("power totals overflow")
                }
            }
        }
    }
    (array, bus)
}

/// Host-queue occupancy probe: one `(tenant, arrival, issue, done)` record
/// per tracked unit of work (a host request in the closed-loop driver, a
/// page operation in the gated and NCQ/QoS drivers).
///
/// The replay drivers record into the probe as they admit and complete
/// work; [`QueueDepthProbe::csv`] then renders the queue-depth-over-time
/// timeline the records imply. A unit is *pending* from `arrival` until
/// `issue` (waiting in the host queue) and *in flight* from `issue` until
/// `done` (occupying the device). Recording is pure observation — the
/// probe never feeds back into scheduling, and an unused probe is an empty
/// `Vec`.
///
/// The tenant tag identifies the host stream the unit belongs to (`0` =
/// untagged). Untagged runs render exactly the legacy aggregate CSV;
/// multi-tenant runs additionally get one per-tenant gauge block appended
/// after the locked aggregate columns (see [`QueueDepthProbe::csv`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueDepthProbe {
    /// `(tenant, arrival, issue, done)` per tracked unit, in tracking
    /// order.
    tracked: Vec<(u16, SimTime, SimTime, SimTime)>,
}

impl QueueDepthProbe {
    /// An empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Track one unit of work for `tenant` that arrived at `arrival`, was
    /// admitted (issued to the device) at `issue`, and completed at `done`.
    /// Times may be recorded out of order across units; the CSV export
    /// sorts its sweep internally. Drivers with no stream information pass
    /// tenant `0`.
    pub fn track(&mut self, tenant: u16, arrival: SimTime, issue: SimTime, done: SimTime) {
        debug_assert!(
            arrival <= issue && issue <= done,
            "queue probe times must be ordered: {arrival} <= {issue} <= {done}"
        );
        self.tracked.push((tenant, arrival, issue, done));
    }

    /// Number of tracked units.
    pub fn len(&self) -> usize {
        self.tracked.len()
    }

    /// Whether nothing was tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked.is_empty()
    }

    /// The raw `(tenant, arrival, issue, done)` records, in tracking order.
    pub fn tracked(&self) -> &[(u16, SimTime, SimTime, SimTime)] {
        &self.tracked
    }

    /// Distinct tenant ids seen by the probe, ascending.
    pub fn tenants(&self) -> Vec<u16> {
        let mut ids: Vec<u16> = self.tracked.iter().map(|t| t.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of units tracked for one tenant.
    pub fn tenant_len(&self, tenant: u16) -> usize {
        self.tracked.iter().filter(|t| t.0 == tenant).count()
    }

    /// Mean turnaround (`done - arrival`, queueing plus service) across
    /// all tracked units, in milliseconds; `0.0` for an empty probe. This
    /// is the probe-side mean response time the QoS claims compare across
    /// policies.
    pub fn mean_turnaround_ms(&self) -> f64 {
        Self::mean_ms(self.tracked.iter())
    }

    /// Mean turnaround in milliseconds for a single tenant's units; `0.0`
    /// when the tenant tracked nothing.
    pub fn tenant_mean_turnaround_ms(&self, tenant: u16) -> f64 {
        Self::mean_ms(self.tracked.iter().filter(|t| t.0 == tenant))
    }

    /// Peak in-flight occupancy across all tracked units: the maximum
    /// number of `[issue, done)` intervals overlapping any instant. At a
    /// shared boundary the completion counts before the admission (a slot
    /// freed at `t` can be reused by a unit issued at `t`), matching how
    /// the bounded drivers recycle queue slots — so a driver honouring a
    /// depth bound shows `max_in_flight() <= depth` exactly.
    pub fn max_in_flight(&self) -> u64 {
        Self::max_overlap(self.tracked.iter())
    }

    /// Peak in-flight occupancy for one tenant's units (same boundary
    /// rule as [`QueueDepthProbe::max_in_flight`]).
    pub fn tenant_max_in_flight(&self, tenant: u16) -> u64 {
        Self::max_overlap(self.tracked.iter().filter(|t| t.0 == tenant))
    }

    fn max_overlap<'a>(units: impl Iterator<Item = &'a (u16, SimTime, SimTime, SimTime)>) -> u64 {
        // Event sweep: +1 at issue, -1 at done; at equal times departures
        // are processed first (the second key orders -1 before +1).
        let mut events: Vec<(SimTime, i8)> = Vec::new();
        for &(_, _, issue, done) in units {
            events.push((issue, 1));
            events.push((done, -1));
        }
        events.sort_unstable_by_key(|&(t, d)| (t, d));
        let (mut gauge, mut max) = (0i64, 0i64);
        for (_, d) in events {
            gauge += d as i64;
            max = max.max(gauge);
        }
        max as u64
    }

    fn mean_ms<'a>(units: impl Iterator<Item = &'a (u16, SimTime, SimTime, SimTime)>) -> f64 {
        let (mut sum_ns, mut n) = (0u128, 0u64);
        for &(_, arrival, _, done) in units {
            sum_ns += (done.as_nanos() - arrival.as_nanos()) as u128;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum_ns as f64 / n as f64 / 1e6
        }
    }

    /// The locked CSV header *prefix* of [`QueueDepthProbe::csv`].
    /// `in_flight` and `pending` are the queue occupancies at the *end* of
    /// each bucket; `admitted` and `completed` are the deltas within it.
    /// Multi-tenant runs append per-tenant column blocks strictly *after*
    /// these five columns (the workspace schema-extension rule), so
    /// downstream tooling must match this as a prefix, not the whole
    /// header. Changing the prefix itself is a breaking change — update
    /// the schema note in EXPERIMENTS.md if you must.
    pub fn csv_header() -> &'static str {
        "bucket_start_ms,in_flight,pending,admitted,completed"
    }

    /// Render the queue-depth-over-time timeline: simulated time from zero
    /// through the last completion is divided into `buckets` equal windows,
    /// and each row reports the in-flight and pending counts at the end of
    /// the window plus the number of admissions and completions inside it.
    ///
    /// When every tracked unit is untagged (tenant `0`) the output is
    /// exactly the legacy five-column aggregate. When any unit carries a
    /// non-zero tenant id, each distinct tenant (ascending) appends a
    /// four-column gauge block `t{id}_in_flight,t{id}_pending,
    /// t{id}_admitted,t{id}_completed` after the locked prefix; the
    /// aggregate columns always equal the sum of the per-tenant blocks.
    ///
    /// Fully deterministic; always exactly `buckets` rows (all-zero rows
    /// for an empty probe), so consumers can rely on the shape.
    pub fn csv(&self, buckets: usize) -> String {
        // One event sweep per rendered column block: sorted event arrays
        // plus a cursor triple advanced bucket by bucket.
        struct Sweep {
            arrivals: Vec<u64>,
            issues: Vec<u64>,
            dones: Vec<u64>,
            ai: usize,
            ii: usize,
            di: usize,
        }
        impl Sweep {
            fn new<'a>(units: impl Iterator<Item = &'a (u16, SimTime, SimTime, SimTime)>) -> Self {
                let (mut arrivals, mut issues, mut dones) = (Vec::new(), Vec::new(), Vec::new());
                for &(_, a, i, d) in units {
                    arrivals.push(a.as_nanos());
                    issues.push(i.as_nanos());
                    dones.push(d.as_nanos());
                }
                arrivals.sort_unstable();
                issues.sort_unstable();
                dones.sort_unstable();
                Sweep {
                    arrivals,
                    issues,
                    dones,
                    ai: 0,
                    ii: 0,
                    di: 0,
                }
            }
            /// Advance to bucket end; returns
            /// `(in_flight, pending, admitted, completed)`.
            fn advance(&mut self, end: u64) -> (usize, usize, usize, usize) {
                let (issued_before, done_before) = (self.ii, self.di);
                while self.ai < self.arrivals.len() && self.arrivals[self.ai] < end {
                    self.ai += 1;
                }
                while self.ii < self.issues.len() && self.issues[self.ii] < end {
                    self.ii += 1;
                }
                while self.di < self.dones.len() && self.dones[self.di] < end {
                    self.di += 1;
                }
                (
                    self.ii - self.di,
                    self.ai - self.ii,
                    self.ii - issued_before,
                    self.di - done_before,
                )
            }
        }

        let buckets = buckets.max(1);
        let tenants = self.tenants();
        // Per-tenant blocks only exist once a real (non-zero) stream id
        // shows up — untagged runs keep the legacy aggregate-only schema.
        let per_tenant: Vec<u16> = if tenants.iter().any(|&t| t != 0) {
            tenants
        } else {
            Vec::new()
        };
        let mut aggregate = Sweep::new(self.tracked.iter());
        let mut tenant_sweeps: Vec<Sweep> = per_tenant
            .iter()
            .map(|&t| Sweep::new(self.tracked.iter().filter(move |u| u.0 == t)))
            .collect();

        let end_ns = aggregate.dones.last().copied().unwrap_or(0);
        let width = (end_ns / buckets as u64).max(1);
        let mut out = String::from(Self::csv_header());
        for t in &per_tenant {
            let _ = write!(
                out,
                ",t{t}_in_flight,t{t}_pending,t{t}_admitted,t{t}_completed"
            );
        }
        out.push('\n');
        for b in 0..buckets {
            let start = b as u64 * width;
            // The final bucket is closed on the right so the event at
            // exactly `end_ns` (the last completion) is never dropped by
            // integer bucketing.
            let end = if b + 1 == buckets {
                u64::MAX
            } else {
                start + width
            };
            let (fl, pe, ad, co) = aggregate.advance(end);
            let _ = write!(out, "{:.6},{fl},{pe},{ad},{co}", start as f64 / 1e6);
            for sweep in &mut tenant_sweeps {
                let (fl, pe, ad, co) = sweep.advance(end);
                let _ = write!(out, ",{fl},{pe},{ad},{co}");
            }
            out.push('\n');
        }
        out
    }
}

/// Minimal JSON syntax validator (hermetic substitute for `python -m
/// json.tool` in the verify pipeline). Accepts exactly one JSON value plus
/// surrounding whitespace; reports the byte offset of the first error.
pub fn json_lint(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        let Some(&c) = b.get(*i) else {
            return Err(format!("unexpected end of input at byte {i}"));
        };
        match c {
            b'{' => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    string(b, i)?;
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at byte {i}"));
                    }
                    *i += 1;
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(&b',') => *i += 1,
                        Some(&b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                    }
                }
            }
            b'[' => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(&b',') => *i += 1,
                        Some(&b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {i}")),
                    }
                }
            }
            b'"' => string(b, i),
            b't' => literal(b, i, b"true"),
            b'f' => literal(b, i, b"false"),
            b'n' => literal(b, i, b"null"),
            b'-' | b'0'..=b'9' => number(b, i),
            _ => Err(format!("unexpected byte {c:#04x} at {i}")),
        }
    }
    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
        if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
            *i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {i}"))
        }
    }
    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at byte {i}"));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                        Some(b'u') => {
                            for k in 1..=4 {
                                if !b.get(*i + k).is_some_and(u8::is_ascii_hexdigit) {
                                    return Err(format!("bad \\u escape at byte {i}"));
                                }
                            }
                            *i += 5;
                        }
                        _ => return Err(format!("bad escape at byte {i}")),
                    }
                }
                0x00..=0x1f => return Err(format!("raw control char in string at byte {i}")),
                _ => *i += 1,
            }
        }
        Err("unterminated string".to_string())
    }
    fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        let digits = |b: &[u8], i: &mut usize| -> usize {
            let s = *i;
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
            *i - s
        };
        if digits(b, i) == 0 {
            return Err(format!("bad number at byte {start}"));
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            if digits(b, i) == 0 {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(b.get(*i), Some(&b'e') | Some(&b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(&b'+') | Some(&b'-')) {
                *i += 1;
            }
            if digits(b, i) == 0 {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        Ok(())
    }
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(plane: u32, start_us: u64, end_us: u64, phase: SpanPhase) -> Span {
        let start = SimTime::from_micros(start_us);
        let end = SimTime::from_micros(end_us);
        Span {
            kind: SpanKind::Read,
            phase,
            lpn: Some(7),
            req: None,
            plane,
            dst_plane: None,
            issue: start,
            start,
            end,
            cell_ns: end.saturating_since(start).as_nanos(),
            bus_ns: 0,
            plane_wait_ns: 0,
            channel_wait_ns: 0,
            retry_ns: 0,
            retry_steps: 0,
            segs: [
                Some(Seg {
                    resource: Resource::Plane(plane),
                    start,
                    end,
                }),
                None,
                None,
                None,
            ],
        }
    }

    #[test]
    fn ring_buffer_bounds_and_drops_oldest() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.push(span(i, i as u64 * 10, i as u64 * 10 + 5, SpanPhase::Host));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.recorded(), 5);
        // Oldest-first iteration yields spans 2, 3, 4.
        let planes: Vec<u32> = rec.spans().map(|s| s.plane).collect();
        assert_eq!(planes, vec![2, 3, 4]);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn queue_probe_csv_shape_and_conservation() {
        let mut probe = QueueDepthProbe::new();
        // Three units: arrivals at 0/10/20 µs, issues at 0/15/30, dones at
        // 40/50/60 — recorded out of order to exercise the internal sort.
        let t = SimTime::from_micros;
        probe.track(0, t(10), t(15), t(50));
        probe.track(0, t(0), t(0), t(40));
        probe.track(0, t(20), t(30), t(60));
        assert_eq!(probe.len(), 3);
        assert!(!probe.is_empty());
        assert_eq!(probe.tracked().len(), 3);

        let csv = probe.csv(6);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(QueueDepthProbe::csv_header()));
        let rows: Vec<Vec<String>> = lines
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        assert_eq!(rows.len(), 6);
        let col = |r: &[String], c: usize| r[c].parse::<i64>().unwrap();
        let (mut admitted, mut completed) = (0, 0);
        for r in &rows {
            assert_eq!(r.len(), 5);
            assert!(col(r, 1) >= 0 && col(r, 2) >= 0);
            admitted += col(r, 3);
            completed += col(r, 4);
        }
        // Everything admitted and completed exactly once; queues drain.
        assert_eq!(admitted, 3);
        assert_eq!(completed, 3);
        let last = rows.last().unwrap();
        assert_eq!(col(last, 1), 0);
        assert_eq!(col(last, 2), 0);
        // Bucket width = 60 µs / 6 = 10 µs; bucket boundaries are
        // end-exclusive, so unit 1's arrival at exactly 10 µs falls in
        // bucket 1. End of bucket 0: unit 0 in flight, nothing pending.
        assert_eq!(col(&rows[0], 1), 1);
        assert_eq!(col(&rows[0], 2), 0);
        // End of bucket 2 (t < 30 µs): units 0,1 issued, unit 2 pending.
        assert_eq!(col(&rows[2], 1), 2);
        assert_eq!(col(&rows[2], 2), 1);
    }

    #[test]
    fn queue_probe_empty_still_emits_shape() {
        let probe = QueueDepthProbe::new();
        let csv = probe.csv(4);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], QueueDepthProbe::csv_header());
        for row in &lines[1..] {
            assert!(row.ends_with(",0,0,0,0"), "expected all-zero row: {row}");
        }
    }

    #[test]
    fn queue_probe_tenant_blocks_extend_the_locked_prefix() {
        let mut probe = QueueDepthProbe::new();
        let t = SimTime::from_micros;
        probe.track(1, t(0), t(0), t(40));
        probe.track(2, t(10), t(15), t(50));
        probe.track(1, t(20), t(30), t(60));
        assert_eq!(probe.tenants(), vec![1, 2]);
        assert_eq!(probe.tenant_len(1), 2);
        assert_eq!(probe.tenant_len(2), 1);
        // Turnarounds: tenant 1 has 40 µs and 40 µs, tenant 2 has 40 µs.
        assert!((probe.tenant_mean_turnaround_ms(1) - 0.040).abs() < 1e-12);
        assert!((probe.mean_turnaround_ms() - 0.040).abs() < 1e-12);
        assert_eq!(probe.tenant_mean_turnaround_ms(9), 0.0);

        let csv = probe.csv(3);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with(QueueDepthProbe::csv_header()));
        assert_eq!(
            header,
            "bucket_start_ms,in_flight,pending,admitted,completed,\
             t1_in_flight,t1_pending,t1_admitted,t1_completed,\
             t2_in_flight,t2_pending,t2_admitted,t2_completed"
        );
        for row in lines {
            let cols: Vec<i64> = row.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
            assert_eq!(cols.len(), 12);
            // Aggregate columns are the sum of the per-tenant blocks.
            for g in 0..4 {
                assert_eq!(cols[g], cols[4 + g] + cols[8 + g], "gauge {g}: {row}");
            }
        }
    }

    #[test]
    fn attribution_sums_by_phase() {
        let mut rec = FlightRecorder::new(16);
        rec.push(span(0, 0, 10, SpanPhase::Host));
        rec.push(span(1, 0, 30, SpanPhase::Gc));
        rec.push(span(0, 40, 45, SpanPhase::Host));
        let a = attribution(&rec);
        assert_eq!(a.host.spans, 2);
        assert_eq!(a.host.residence_ns, 15_000);
        assert_eq!(a.gc.spans, 1);
        assert_eq!(a.gc.residence_ns, 30_000);
        assert_eq!(a.scan.spans, 0);
        assert_eq!(a.request_visible_ns(), 45_000);
        let csv = a.csv();
        assert!(csv.starts_with(Attribution::csv_header()));
        // Header + one row per phase (device rows first, then the
        // host-stack rows appended).
        assert_eq!(csv.lines().count(), 1 + SpanPhase::all().len());
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert!(rows[0].starts_with("host,"));
        assert!(rows[3].starts_with("host_queue,"));
        assert!(rows[4].starts_with("cache,"));
        assert!(rows[5].starts_with("completion,"));
    }

    #[test]
    fn attribution_accumulates_host_stack_phases() {
        let mut rec = FlightRecorder::new(16);
        rec.push(span(0, 0, 10, SpanPhase::HostQueue));
        rec.push(span(0, 10, 25, SpanPhase::Host));
        rec.push(span(0, 25, 27, SpanPhase::Cache));
        rec.push(span(0, 27, 31, SpanPhase::Completion));
        let a = attribution(&rec);
        assert_eq!(a.host_queue.spans, 1);
        assert_eq!(a.host_queue.residence_ns, 10_000);
        assert_eq!(a.cache.spans, 1);
        assert_eq!(a.cache.residence_ns, 2_000);
        assert_eq!(a.completion.spans, 1);
        assert_eq!(a.completion.residence_ns, 4_000);
        // Host-stack phases never count into the device-visible sum.
        assert_eq!(a.request_visible_ns(), 15_000);
        assert_eq!(a.row(SpanPhase::HostQueue).residence_ns, 10_000);
        assert_eq!(a.row(SpanPhase::Cache).residence_ns, 2_000);
        assert_eq!(a.row(SpanPhase::Completion).residence_ns, 4_000);
    }

    #[test]
    fn probe_max_in_flight_sweeps_per_tenant_with_boundary_reuse() {
        let mut p = QueueDepthProbe::new();
        let us = SimTime::from_micros;
        // Tenant 1: two overlapping units, then one reusing the slot the
        // first freed at exactly its issue instant (boundary: -1 first).
        p.track(1, us(0), us(0), us(10));
        p.track(1, us(2), us(4), us(12));
        p.track(1, us(10), us(10), us(20));
        // Tenant 2: strictly sequential.
        p.track(2, us(0), us(0), us(5));
        p.track(2, us(5), us(6), us(9));
        assert_eq!(p.tenant_max_in_flight(1), 2);
        assert_eq!(p.tenant_max_in_flight(2), 1);
        assert_eq!(p.max_in_flight(), 3);
        assert_eq!(QueueDepthProbe::new().max_in_flight(), 0);
    }

    #[test]
    fn buckets_tile_residence() {
        let s = span(2, 5, 17, SpanPhase::Host);
        assert_eq!(s.buckets_ns(), s.residence_ns());
    }

    /// The power timeline's integer-identity contract: every column (and
    /// the row totals) sums over all buckets to exactly `draw × busy-ns`,
    /// even when the covered time does not divide evenly into windows —
    /// the last window stretches to the final release instead of
    /// truncating the tail like the utilization CSVs do.
    #[test]
    fn power_csv_buckets_sum_exactly_to_totals() {
        let mut rec = FlightRecorder::new(16);
        rec.push(span(0, 0, 13, SpanPhase::Host));
        rec.push(span(1, 5, 29, SpanPhase::Gc));
        let mut with_bus = span(2, 3, 7, SpanPhase::Host);
        with_bus.segs[1] = Some(Seg {
            resource: Resource::Channel(1),
            start: SimTime::from_micros(7),
            end: SimTime::from_micros(11),
        });
        with_bus.bus_ns = 4_000;
        with_bus.end = SimTime::from_micros(11);
        rec.push(with_bus);
        let (array_uw, bus_uw) = (82_500, 16_500);
        // 29 000 ns over 7 buckets: width 4142 ns, 7×4142 = 28 994 — the
        // 6 ns tail must land in the stretched last window.
        let csv = power_csv(&rec, 4, 2, 7, array_uw, bus_uw);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "bucket_start_ms,bucket_end_ms,plane_0_fj,plane_1_fj,plane_2_fj,plane_3_fj,\
             channel_0_fj,channel_1_fj,total_fj"
        );
        assert_eq!(lines.len(), 1 + 7);
        let mut sums = vec![0u64; 7];
        for row in &lines[1..] {
            for (i, v) in row.split(',').skip(2).enumerate() {
                sums[i] += v.parse::<u64>().unwrap();
            }
        }
        // Row totals are the sum of their resource columns.
        assert_eq!(sums[6], sums[..6].iter().sum::<u64>());
        // Column identities: plane 0 held 13 µs, plane 1 24 µs, plane 2
        // 4 µs, channel 1 4 µs; nothing else ran.
        assert_eq!(sums[0], 13_000 * array_uw);
        assert_eq!(sums[1], 24_000 * array_uw);
        assert_eq!(sums[2], 4_000 * array_uw);
        assert_eq!(sums[3], 0);
        assert_eq!(sums[4], 0);
        assert_eq!(sums[5], 4_000 * bus_uw);
        // And the grid total equals the reference seg-sum totals exactly.
        let (array_fj, bus_fj) = power_totals_fj(&rec, array_uw, bus_uw);
        assert_eq!(sums[6], array_fj + bus_fj);
        // The last window's end is the final release, not a truncation.
        let last = lines.last().unwrap();
        let end_ms: f64 = last.split(',').nth(1).unwrap().parse().unwrap();
        assert!((end_ms - 0.029).abs() < 1e-9, "last window end: {end_ms}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_tracks() {
        let mut rec = FlightRecorder::new(8);
        rec.push(span(0, 0, 10, SpanPhase::Host));
        rec.push(span(3, 5, 25, SpanPhase::Gc));
        let json = chrome_trace_json(&rec);
        json_lint(&json).expect("export must be valid JSON");
        assert!(json.contains("\"plane 0\""));
        assert!(json.contains("\"plane 3\""));
        assert!(json.contains("\"cat\":\"gc\""));
        assert!(json.contains("\"dropped_spans\":0"));
    }

    #[test]
    fn chrome_export_of_empty_recorder_is_valid() {
        let rec = FlightRecorder::new(4);
        json_lint(&chrome_trace_json(&rec)).unwrap();
    }

    #[test]
    fn utilization_csv_shape_and_values() {
        let mut rec = FlightRecorder::new(8);
        // Plane 0 busy the whole first half, idle the second.
        rec.push(span(0, 0, 50, SpanPhase::Host));
        rec.push(span(1, 99, 100, SpanPhase::Host));
        let csv = plane_utilization_csv(&rec, 2, 2);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "bucket_start_ms,bucket_end_ms,plane_0,plane_1");
        assert_eq!(lines.len(), 3);
        let first: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(first[2], "1.0000"); // plane 0 fully busy in bucket 0
        let second: Vec<&str> = lines[2].split(',').collect();
        assert_eq!(second[2], "0.0000"); // and idle in bucket 1
    }

    fn req_span(plane: u32, start_us: u64, end_us: u64, req: u64) -> Span {
        Span {
            req: Some(req),
            ..span(plane, start_us, end_us, SpanPhase::Host)
        }
    }

    #[test]
    fn stream_sink_spills_jsonl_lines() {
        let mut sink = StreamSink::new(Vec::new());
        let a = req_span(0, 0, 10, 1);
        let b = span(3, 5, 25, SpanPhase::Gc);
        TraceSink::record(&mut sink, &a);
        TraceSink::record(&mut sink, &b);
        assert_eq!(sink.recorded(), 2);
        assert_eq!(sink.dropped(), 0);
        sink.flush().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            json_lint(line).expect("each JSONL line must be valid JSON");
        }
        assert_eq!(lines[0], span_jsonl(&a));
        assert!(lines[0].contains("\"req\":1"));
        assert!(lines[1].contains("\"req\":null"));
        assert!(lines[1].contains("\"phase\":\"gc\""));
    }

    /// A writer that fails after `ok` successful writes.
    #[derive(Debug)]
    struct FlakyWriter {
        ok: usize,
    }

    impl io::Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok == 0 {
                return Err(io::Error::other("disk full"));
            }
            self.ok -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stream_sink_counts_write_failures_as_drops() {
        let mut sink = StreamSink::new(FlakyWriter { ok: 1 });
        TraceSink::record(&mut sink, &span(0, 0, 10, SpanPhase::Host));
        TraceSink::record(&mut sink, &span(1, 0, 10, SpanPhase::Host));
        assert_eq!(sink.recorded(), 2);
        assert_eq!(sink.dropped(), 1);
        assert!(sink.flush().is_err(), "flush surfaces the deferred error");
        // The error is latched once; a later flush succeeds again.
        assert!(sink.flush().is_ok());
    }

    #[test]
    fn tee_sink_feeds_both_and_splits_back() {
        let mut tee = TeeSink::new(
            Box::new(RingSink::new(1)),
            Box::new(StreamSink::new(Vec::new())),
        );
        TraceSink::record(&mut tee, &span(0, 0, 10, SpanPhase::Host));
        TraceSink::record(&mut tee, &span(1, 10, 20, SpanPhase::Host));
        assert_eq!(tee.recorded(), 2);
        // The 1-slot ring dropped one; the stream dropped none.
        assert_eq!(tee.dropped(), 1);
        assert_eq!(tee.first().dropped(), 1);
        assert_eq!(tee.second().dropped(), 0);
        let (ring, stream) = tee.into_inner();
        let ring = ring.into_any().downcast::<RingSink>().unwrap();
        assert_eq!(ring.len(), 1);
        let stream = stream.into_any().downcast::<StreamSink<Vec<u8>>>().unwrap();
        let text = String::from_utf8(stream.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn sink_reset_clears_ring_but_keeps_stream_journal() {
        let mut ring = RingSink::new(4);
        TraceSink::record(&mut ring, &span(0, 0, 10, SpanPhase::Host));
        TraceSink::reset(&mut ring);
        assert!(ring.is_empty());
        let mut stream = StreamSink::new(Vec::new());
        TraceSink::record(&mut stream, &span(0, 0, 10, SpanPhase::Host));
        TraceSink::reset(&mut stream);
        assert_eq!(stream.recorded(), 1);
        assert_eq!(stream.into_inner().len() > 0, true);
    }

    #[test]
    fn flow_events_stitch_multi_span_requests() {
        let mut rec = RingSink::new(16);
        // Request 7: two spans on different planes; request 8: one span
        // (no flow emitted); an anonymous span (no req id).
        rec.push(req_span(0, 0, 10, 7));
        rec.push(req_span(3, 12, 20, 7));
        rec.push(req_span(1, 30, 40, 8));
        rec.push(span(2, 50, 60, SpanPhase::Scan));
        let json = chrome_trace_json(&rec);
        json_lint(&json).expect("flow export must stay valid JSON");
        assert!(json.contains("\"ph\":\"s\",\"id\":7"));
        assert!(json.contains("\"ph\":\"f\",\"id\":7"));
        assert!(json.contains("\"bp\":\"e\""));
        // Single-span requests are not stitched.
        assert!(!json.contains("\"id\":8"));
        // Slices carry the request id for hovering.
        assert!(json.contains("\"req\":7"));
    }

    #[test]
    fn flow_events_span_three_or_more_ops_with_steps() {
        let mut rec = RingSink::new(16);
        rec.push(req_span(0, 0, 10, 5));
        rec.push(req_span(1, 12, 20, 5));
        rec.push(req_span(2, 22, 30, 5));
        let json = chrome_trace_json(&rec);
        json_lint(&json).unwrap();
        assert!(json.contains("\"ph\":\"s\",\"id\":5"));
        assert!(json.contains("\"ph\":\"t\",\"id\":5"));
        assert!(json.contains("\"ph\":\"f\",\"id\":5"));
    }

    #[test]
    fn channel_utilization_csv_shape_and_values() {
        let mut rec = RingSink::new(8);
        // A channel-only segment: fabricate a span holding channel 1 for
        // the whole first half of the covered window.
        let mut s = span(0, 0, 50, SpanPhase::Host);
        s.segs[0] = Some(Seg {
            resource: Resource::Channel(1),
            start: SimTime::from_micros(0),
            end: SimTime::from_micros(50),
        });
        rec.push(s);
        rec.push(span(1, 99, 100, SpanPhase::Host));
        let csv = channel_utilization_csv(&rec, 2, 2);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "bucket_start_ms,bucket_end_ms,channel_0,channel_1"
        );
        assert_eq!(lines.len(), 3);
        let first: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(first[3], "1.0000"); // channel 1 fully busy in bucket 0
        assert_eq!(first[2], "0.0000"); // channel 0 idle throughout
        let second: Vec<&str> = lines[2].split(',').collect();
        assert_eq!(second[3], "0.0000");
    }

    #[test]
    fn json_lint_accepts_and_rejects() {
        json_lint("{\"a\":[1,2.5,-3e2,true,false,null,\"x\\n\"]}").unwrap();
        json_lint("  [ ]  ").unwrap();
        assert!(json_lint("{\"a\":1,}").is_err());
        assert!(json_lint("[1 2]").is_err());
        assert!(json_lint("{\"a\"}").is_err());
        assert!(json_lint("01a").is_err());
        assert!(json_lint("\"unterminated").is_err());
        assert!(json_lint("[1] trailing").is_err());
    }
}

//! A minimal, deterministic property-testing harness.
//!
//! This is the workspace's in-tree replacement for `proptest`: the build is
//! hermetic (no registry dependencies, see `tests/hermetic.rs` at the
//! workspace root), so the correctness suites generate their random inputs
//! from [`SimRng`] — the same PCG generator the simulator itself uses —
//! instead of an external crate.
//!
//! ## Model
//!
//! * A [`Generator`] produces arbitrary values of some type from a
//!   [`SimRng`], and can propose *smaller* variants of a value via
//!   [`Generator::shrink`].
//! * A [`Checker`] runs a property (a `Fn(&T) -> Result<(), String>`
//!   closure) against many generated inputs. Each case is derived from a
//!   per-case seed, so any failure is replayable in isolation.
//! * On failure the checker greedily shrinks the failing input, then panics
//!   with the per-case seed, the original and shrunk inputs, and the
//!   failure message. Re-running the test with
//!   `SIMKIT_CHECK_REPLAY=<seed>` replays exactly that case.
//!
//! Inside a property, use the [`check_assert!`](crate::check_assert) and
//! [`check_assert_eq!`](crate::check_assert_eq) macros (which return an
//! `Err` so shrinking stays quiet) rather than `assert!`; plain panics are
//! still caught and treated as failures, they are just noisier.
//!
//! ## Example
//!
//! ```
//! use dloop_simkit::check::{self, Checker, Generator};
//! use dloop_simkit::check_assert_eq;
//!
//! // Property: reversing a vector twice is the identity.
//! let gen = check::vec_of(check::u64s(0..100), 0..20);
//! Checker::new().cases(64).run(&gen, |xs| {
//!     let mut twice = xs.clone();
//!     twice.reverse();
//!     twice.reverse();
//!     check_assert_eq!(twice, *xs);
//!     Ok(())
//! });
//! ```
//!
//! ## Environment knobs
//!
//! * `SIMKIT_CHECK_CASES` — overrides the case count of every checker
//!   (for quick smoke runs or overnight soak runs).
//! * `SIMKIT_CHECK_SEED` — overrides the base seed of every checker.
//! * `SIMKIT_CHECK_REPLAY` — a per-case seed reported by a failure; runs
//!   only that case.

use crate::rng::SimRng;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Produces arbitrary values of `Self::Value` and proposes shrunk variants.
///
/// Implementations must be deterministic: the same `SimRng` state must
/// yield the same value, or seed-based replay breaks.
pub trait Generator {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draw one arbitrary value.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Propose *strictly simpler* candidate values derived from `value`.
    ///
    /// Candidates are tried in order during failure minimisation; the
    /// first one that still fails the property becomes the new current
    /// value. Returning an empty vector (the default) disables shrinking
    /// for this generator.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transform generated values with `f`.
    ///
    /// The mapping is one-way, so mapped generators do not shrink; when a
    /// mapped generator is an element of [`vec_of`], the vector itself
    /// still shrinks by dropping elements, which is where most of the
    /// minimisation power lives.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Box this generator for use in heterogeneous collections such as
    /// the arms of [`weighted`].
    fn boxed(self) -> BoxedGenerator<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased generator (see [`Generator::boxed`]).
pub type BoxedGenerator<T> = Box<dyn Generator<Value = T>>;

impl<T: Clone + Debug> Generator for BoxedGenerator<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

macro_rules! int_generator {
    ($(#[$doc:meta])* $fn_name:ident, $struct_name:ident, $ty:ty) => {
        $(#[$doc])*
        ///
        /// Values shrink toward the lower bound of the range.
        pub fn $fn_name(range: Range<$ty>) -> $struct_name {
            assert!(
                range.start < range.end,
                concat!(stringify!($fn_name), ": empty range")
            );
            $struct_name { range }
        }

        /// Uniform-integer generator returned by the eponymous function.
        #[derive(Debug, Clone)]
        pub struct $struct_name {
            range: Range<$ty>,
        }

        impl Generator for $struct_name {
            type Value = $ty;

            fn generate(&self, rng: &mut SimRng) -> $ty {
                let span = (self.range.end - self.range.start) as u64;
                self.range.start + rng.below(span) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let v = *value;
                let lo = self.range.start;
                if v <= lo {
                    return Vec::new();
                }
                // Geometric ladder from the lower bound up toward `v`
                // (lo, then ever-closer midpoints, ending at v-1), so the
                // greedy descent in the checker binary-searches for the
                // boundary instead of stepping by one.
                let mut out = Vec::new();
                let mut distance = v - lo;
                while distance > 0 {
                    out.push(v - distance);
                    distance /= 2;
                }
                out.dedup();
                out
            }
        }
    };
}

int_generator!(
    /// Uniform `u8` values in `[range.start, range.end)`.
    u8s, U8s, u8
);
int_generator!(
    /// Uniform `u32` values in `[range.start, range.end)`.
    u32s, U32s, u32
);
int_generator!(
    /// Uniform `u64` values in `[range.start, range.end)`.
    u64s, U64s, u64
);
int_generator!(
    /// Uniform `usize` values in `[range.start, range.end)`.
    usizes, Usizes, usize
);

/// Fair coin flips. `true` shrinks to `false`.
pub fn bools() -> Bools {
    Bools
}

/// Boolean generator returned by [`bools`].
#[derive(Debug, Clone)]
pub struct Bools;

impl Generator for Bools {
    type Value = bool;

    fn generate(&self, rng: &mut SimRng) -> bool {
        rng.chance(0.5)
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Uniform `f64` values in `[range.start, range.end)`, shrinking toward
/// the lower bound.
pub fn f64s(range: Range<f64>) -> F64s {
    assert!(range.start < range.end, "f64s: empty range");
    assert!(
        range.start.is_finite() && range.end.is_finite(),
        "f64s: bounds must be finite"
    );
    F64s { range }
}

/// Uniform-float generator returned by [`f64s`].
#[derive(Debug, Clone)]
pub struct F64s {
    range: Range<f64>,
}

impl Generator for F64s {
    type Value = f64;

    fn generate(&self, rng: &mut SimRng) -> f64 {
        self.range.start + rng.f64() * (self.range.end - self.range.start)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let lo = self.range.start;
        if !(v > lo) {
            return Vec::new();
        }
        let mut out = vec![lo, lo + (v - lo) / 2.0];
        out.retain(|c| c.is_finite() && *c != v);
        out.dedup_by(|a, b| a.to_bits() == b.to_bits());
        out
    }
}

/// Uniformly picks one of the given options. Shrinks toward earlier
/// options in the list, so put the "simplest" option first.
pub fn elements<T: Clone + Debug + PartialEq>(options: Vec<T>) -> Elements<T> {
    assert!(!options.is_empty(), "elements: no options");
    Elements { options }
}

/// Fixed-choice generator returned by [`elements`].
#[derive(Debug, Clone)]
pub struct Elements<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug + PartialEq> Generator for Elements<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        match self.options.iter().position(|o| o == value) {
            Some(i) => self.options[..i].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Mapped generator returned by [`Generator::map`].
#[derive(Debug, Clone)]
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, U, F> Generator for Map<G, F>
where
    G: Generator,
    U: Clone + Debug,
    F: Fn(G::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut SimRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! tuple_generator {
    ($(($g:ident, $v:ident, $idx:tt)),+) => {
        impl<$($g: Generator),+> Generator for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut SimRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_generator!((A, a, 0), (B, b, 1));
tuple_generator!((A, a, 0), (B, b, 1), (C, c, 2));
tuple_generator!((A, a, 0), (B, b, 1), (C, c, 2), (D, d, 3));

/// Vectors of values from `element`, with a length drawn uniformly from
/// `len` (`[len.start, len.end)`).
///
/// Shrinking first drops the front or back half, then single elements,
/// then shrinks individual elements in place — so minimal failing inputs
/// are usually short.
pub fn vec_of<G: Generator>(element: G, len: Range<usize>) -> VecOf<G> {
    assert!(len.start < len.end, "vec_of: empty length range");
    VecOf { element, len }
}

/// Vector generator returned by [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    element: G,
    len: Range<usize>,
}

impl<G: Generator> Generator for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SimRng) -> Vec<G::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let min = self.len.start;
        let n = value.len();
        let mut out: Vec<Vec<G::Value>> = Vec::new();
        // Halves first: the biggest steps give the fastest descent.
        if n / 2 >= min && n / 2 < n {
            out.push(value[..n / 2].to_vec());
            out.push(value[n - n / 2..].to_vec());
        }
        // Then single-element removals (capped so huge vectors stay cheap).
        if n > min {
            for i in (0..n).take(24) {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Finally, element-wise shrinks at a few positions.
        for i in (0..n).take(8) {
            for candidate in self.element.shrink(&value[i]) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Picks among `arms` with the given relative weights, like `prop_oneof!`.
///
/// ```
/// use dloop_simkit::check::{self, Checker, Generator};
///
/// #[derive(Debug, Clone)]
/// enum Op { Get(u64), Put(u64, bool) }
///
/// let op = check::weighted(vec![
///     (3, check::u64s(0..10).map(Op::Get).boxed()),
///     (1, (check::u64s(0..10), check::bools())
///         .map(|(k, v)| Op::Put(k, v)).boxed()),
/// ]);
/// Checker::new().cases(32).run(&op, |_op| Ok(()));
/// ```
pub fn weighted<T: Clone + Debug>(arms: Vec<(u32, BoxedGenerator<T>)>) -> Weighted<T> {
    assert!(!arms.is_empty(), "weighted: no arms");
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "weighted: all weights are zero");
    Weighted { arms, total }
}

/// Weighted-choice generator returned by [`weighted`].
pub struct Weighted<T> {
    arms: Vec<(u32, BoxedGenerator<T>)>,
    total: u64,
}

impl<T: Clone + Debug> Generator for Weighted<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        let mut roll = rng.below(self.total);
        for (weight, arm) in &self.arms {
            if roll < *weight as u64 {
                return arm.generate(rng);
            }
            roll -= *weight as u64;
        }
        unreachable!("roll below total weight always lands in an arm")
    }
}

/// Assert a condition inside a property; on failure returns an `Err`
/// carrying the stringified condition (plus an optional formatted
/// message), which the [`Checker`] shrinks and reports with its seed.
#[macro_export]
macro_rules! check_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($arg)+)
            ));
        }
    };
}

/// Assert two expressions are equal inside a property; the `Err` message
/// includes both values. See [`check_assert!`](crate::check_assert).
#[macro_export]
macro_rules! check_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}: {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($arg)+),
                l,
                r
            ));
        }
    }};
}

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 256;

/// Default base seed; every case seed is mixed from this and the case
/// index, so the whole suite is reproducible run-to-run.
pub const DEFAULT_SEED: u64 = 0x5EED_D100_75EE_D001;

/// Runs a property against many generated inputs and minimises failures.
///
/// See the [module docs](self) for the full model and an example.
#[derive(Debug, Clone)]
pub struct Checker {
    cases: u32,
    seed: u64,
    max_shrink_tests: u32,
    env_cases: Option<u32>,
    env_seed: Option<u64>,
    replay: Option<u64>,
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| {
        let parsed = v.trim().parse();
        if parsed.is_err() {
            eprintln!("warning: ignoring unparsable {name}={v:?}");
        }
        parsed.ok()
    })
}

/// SplitMix64 finaliser: derives an independent per-case seed from the
/// base seed and case index.
fn mix_seed(seed: u64, index: u32) -> u64 {
    let mut z = seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn run_one<T, F>(prop: &F, value: &T) -> Result<(), String>
where
    F: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked (non-string payload)".into());
            Err(format!("property panicked: {msg}"))
        }
    }
}

impl Checker {
    /// A checker with the default case count and seed, overridable via
    /// the `SIMKIT_CHECK_CASES` / `SIMKIT_CHECK_SEED` / `SIMKIT_CHECK_REPLAY`
    /// environment variables (the environment wins over builder calls, so
    /// one shell export rescales or replays a whole suite).
    pub fn new() -> Self {
        Checker {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            max_shrink_tests: 1_000,
            env_cases: env_u64("SIMKIT_CHECK_CASES").map(|v| v.min(u32::MAX as u64) as u32),
            env_seed: env_u64("SIMKIT_CHECK_SEED"),
            replay: env_u64("SIMKIT_CHECK_REPLAY"),
        }
    }

    /// Set the number of generated cases (default [`DEFAULT_CASES`]).
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Set the base seed (default [`DEFAULT_SEED`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cap the number of candidate inputs evaluated while shrinking a
    /// failure (default 1000).
    pub fn max_shrink_tests(mut self, n: u32) -> Self {
        self.max_shrink_tests = n;
        self
    }

    /// Run `prop` against generated inputs; panics on the first failure
    /// with a replayable per-case seed and a shrunk counterexample.
    pub fn run<G, F>(&self, gen: &G, prop: F)
    where
        G: Generator,
        F: Fn(&G::Value) -> Result<(), String>,
    {
        if let Some(case_seed) = self.replay {
            self.run_case(gen, &prop, case_seed, 0, 1);
            return;
        }
        let cases = self.env_cases.unwrap_or(self.cases).max(1);
        let base = self.env_seed.unwrap_or(self.seed);
        for i in 0..cases {
            self.run_case(gen, &prop, mix_seed(base, i), i, cases);
        }
    }

    fn run_case<G, F>(&self, gen: &G, prop: &F, case_seed: u64, index: u32, cases: u32)
    where
        G: Generator,
        F: Fn(&G::Value) -> Result<(), String>,
    {
        let mut rng = SimRng::new(case_seed);
        let value = gen.generate(&mut rng);
        if let Err(message) = run_one(prop, &value) {
            let (shrunk, steps) = self.shrink_failure(gen, value.clone(), prop);
            panic!(
                "property failed (case {index} of {cases})\n\
                 replay: SIMKIT_CHECK_REPLAY={case_seed} cargo test ...\n\
                 original input: {value:?}\n\
                 shrunk input ({steps} shrink steps): {shrunk:?}\n\
                 failure: {message}"
            );
        }
    }

    /// Greedy descent: repeatedly adopt the first shrink candidate that
    /// still fails, until none do or the test budget runs out.
    fn shrink_failure<G, F>(&self, gen: &G, mut current: G::Value, prop: &F) -> (G::Value, u32)
    where
        G: Generator,
        F: Fn(&G::Value) -> Result<(), String>,
    {
        let mut steps = 0u32;
        let mut budget = self.max_shrink_tests;
        'descend: while budget > 0 {
            for candidate in gen.shrink(&current) {
                if budget == 0 {
                    break 'descend;
                }
                budget -= 1;
                if run_one(prop, &candidate).is_err() {
                    current = candidate;
                    steps += 1;
                    continue 'descend;
                }
            }
            break;
        }
        (current, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_checker() -> Checker {
        // Ignore ambient env overrides so these tests are self-contained.
        let mut c = Checker::new();
        c.env_cases = None;
        c.env_seed = None;
        c.replay = None;
        c
    }

    #[test]
    fn generators_respect_ranges() {
        let mut rng = SimRng::new(1);
        let g = u64s(10..20);
        let v = vec_of(elements(vec!["a", "b"]), 2..5);
        for _ in 0..500 {
            assert!((10..20).contains(&g.generate(&mut rng)));
            let xs = v.generate(&mut rng);
            assert!((2..5).contains(&xs.len()));
        }
        let f = f64s(-1.0..1.0);
        for _ in 0..500 {
            let x = f.generate(&mut rng);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vec_of((u64s(0..1000), bools()), 1..50);
        let a = g.generate(&mut SimRng::new(99));
        let b = g.generate(&mut SimRng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn int_shrink_moves_toward_lower_bound() {
        let g = u64s(5..100);
        let candidates = g.shrink(&80);
        assert!(candidates.contains(&5));
        assert!(candidates.iter().all(|&c| c < 80 && c >= 5));
        assert!(g.shrink(&5).is_empty());
    }

    #[test]
    fn vec_shrink_never_violates_min_len() {
        let g = vec_of(u64s(0..10), 3..10);
        let value = g.generate(&mut SimRng::new(4));
        for candidate in g.shrink(&value) {
            assert!(candidate.len() >= 3, "shrunk below min len: {candidate:?}");
        }
    }

    #[test]
    fn passing_property_completes() {
        fresh_checker().cases(50).run(&u64s(0..100), |&v| {
            check_assert!(v < 100);
            Ok(())
        });
    }

    #[test]
    fn failing_property_panics_with_replay_seed_and_shrinks() {
        let outcome = std::panic::catch_unwind(|| {
            fresh_checker()
                .cases(200)
                .run(&vec_of(u64s(0..1000), 0..40), |xs| {
                    // Fails whenever any element is >= 500.
                    check_assert!(xs.iter().all(|&x| x < 500), "big element in {xs:?}");
                    Ok(())
                });
        });
        let msg = match outcome {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string panic payload"),
        };
        assert!(
            msg.contains("SIMKIT_CHECK_REPLAY="),
            "no replay seed: {msg}"
        );
        assert!(msg.contains("shrunk input"), "no shrunk input: {msg}");
        // The minimal counterexample is a single element equal to 500.
        assert!(msg.contains("[500]"), "not fully shrunk: {msg}");
    }

    #[test]
    fn plain_panics_are_caught_and_reported() {
        let outcome = std::panic::catch_unwind(|| {
            fresh_checker().cases(20).run(&u64s(0..10), |&v| {
                if v >= 1 {
                    panic!("boom at {v}");
                }
                Ok(())
            });
        });
        let msg = match outcome {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string panic payload"),
        };
        assert!(msg.contains("property panicked: boom"), "{msg}");
        // Shrinking still runs on panicking properties: minimal value is 1.
        assert!(msg.contains("shrunk input"), "{msg}");
    }

    #[test]
    fn weighted_arms_all_fire_and_respect_weights() {
        #[derive(Debug, Clone, PartialEq)]
        enum Kind {
            Heavy,
            Light,
        }
        let g = weighted(vec![
            (9, elements(vec![Kind::Heavy]).boxed()),
            (1, elements(vec![Kind::Light]).boxed()),
        ]);
        let mut rng = SimRng::new(8);
        let n = 10_000;
        let heavy = (0..n)
            .filter(|_| g.generate(&mut rng) == Kind::Heavy)
            .count();
        let frac = heavy as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "heavy fraction {frac}");
    }

    #[test]
    fn elements_shrinks_to_earlier_options() {
        let g = elements(vec![1u8, 2, 3]);
        assert_eq!(g.shrink(&3), vec![1, 2]);
        assert!(g.shrink(&1).is_empty());
    }

    #[test]
    fn replay_runs_exactly_the_reported_case() {
        // Find a failing case seed, then confirm replay reproduces the
        // same generated input.
        let gen = u64s(0..1_000_000);
        let outcome = std::panic::catch_unwind(|| {
            fresh_checker().cases(50).run(&gen, |&v| {
                check_assert!(v < 10, "v = {v}");
                Ok(())
            });
        });
        let msg = *outcome
            .expect_err("should fail")
            .downcast::<String>()
            .unwrap();
        let seed: u64 = msg
            .split("SIMKIT_CHECK_REPLAY=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let mut replayer = fresh_checker();
        replayer.replay = Some(seed);
        let replay_outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            replayer.run(&gen, |&v| {
                check_assert!(v < 10, "v = {v}");
                Ok(())
            });
        }));
        let replay_msg = *replay_outcome
            .expect_err("replay should fail too")
            .downcast::<String>()
            .unwrap();
        assert!(replay_msg.contains(&format!("SIMKIT_CHECK_REPLAY={seed}")));
    }
}

//! # dloop-simkit
//!
//! A small, deterministic, event-driven simulation kernel.
//!
//! This crate is the reproduction's substitute for DiskSim 3.0: it provides
//! the pieces of DiskSim the DLOOP paper actually relies on — a simulated
//! clock, an ordered event queue, per-run statistics, and a reproducible
//! random number generator — without the hard-disk machinery that the flash
//! extension bypasses.
//!
//! Everything in this crate is single-threaded and fully deterministic:
//! running the same simulation with the same seed twice produces bit-identical
//! results. Parallelism in the *simulated* SSD (planes, channels, dies) is
//! modelled by resource timelines in `dloop-nand`, not by host threads;
//! host-level parallelism is only used by the experiment harness, which runs
//! independent simulations on independent worker threads.
//!
//! ## Modules
//!
//! * [`time`] — fixed-point simulated time ([`SimTime`], [`SimDuration`]).
//! * [`events`] — a monotonic event queue with stable FIFO tie-breaking.
//! * [`stats`] — online mean/variance, histograms and percentile estimation.
//! * [`rng`] — a tiny, seedable PCG-style PRNG (keeps the simulator free of
//!   external API churn and registry dependencies).
//! * [`queue`] — the pending-operation priority list used to model FlashSim's
//!   channel-interleaving scheduler.
//! * [`trace`] — an opt-in op-level tracing layer: a [`TraceSink`] trait
//!   with ring / JSONL-stream / tee sinks, plus Chrome `trace_event`
//!   (request-flow-stitched) / utilization-CSV / latency-attribution
//!   exporters (and a hermetic JSON linter for validating them).
//! * [`check`] — a deterministic property-testing harness (the workspace's
//!   in-tree `proptest` substitute), seeded from [`rng`].
//! * [`mod@bench`] — a warmup/iterate/report micro-benchmark runner (the
//!   in-tree `criterion` substitute), reporting via [`stats`].
//!
//! The [`check`] and [`mod@bench`] modules exist because the workspace builds
//! hermetically: no registry dependencies, so the test and benchmark
//! tooling ships in-tree. See the workspace README's
//! "Zero-external-dependency policy".

pub mod bench;
pub mod check;
pub mod events;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use events::{EventQueue, ScheduledEvent};
pub use queue::PendingQueue;
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use trace::{
    BufferSink, FlightRecorder, QueueDepthProbe, RingSink, SamplingSink, Span, SpanKind, SpanPhase,
    StreamSink, TeeSink, TraceSink,
};

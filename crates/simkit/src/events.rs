//! A monotonic event queue with stable FIFO tie-breaking.
//!
//! DiskSim's core loop pops the earliest pending event, advances the clock,
//! and dispatches. Rust's `BinaryHeap` is a max-heap and is *not* stable for
//! equal keys, so [`EventQueue`] wraps it with (a) reversed ordering and (b)
//! a monotonically increasing sequence number: two events scheduled for the
//! same instant are delivered in the order they were pushed. Stability
//! matters for reproducibility — FlashSim's priority list is FIFO among
//! ready requests, and an unstable heap would reorder equal-time arrivals
//! from run to run depending on heap shape.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled at a specific instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Push-order sequence number (unique per queue).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event on
        // top; ties broken by push order (earlier seq first).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulation event queue.
///
/// Guarantees:
/// * events pop in non-decreasing time order;
/// * events with equal timestamps pop in push order;
/// * popping never returns an event earlier than the last popped one
///   (checked with a debug assertion — scheduling into the past is a bug).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Create an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at `at`.
    ///
    /// `at` may be in the "past" relative to already-pushed events but must
    /// not precede the last *popped* event (time cannot rewind).
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduled an event at {at} before current time {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.last_popped, "event queue went backwards");
        self.last_popped = ev.at;
        Some(ev)
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event (the current clock).
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Drop all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().event, 0);
        q.push(t, 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_micros(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(42));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), ());
        q.pop();
        q.push(SimTime::from_micros(5), ());
    }

    #[test]
    fn clear_preserves_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 1u8);
        q.pop();
        q.push(SimTime::from_micros(20), 2u8);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_micros(10));
    }
}

//! Fixed-point simulated time.
//!
//! The DLOOP paper quotes all device latencies in microseconds (Table I) but
//! the per-byte bus transfer latency is 0.025 µs, so a microsecond clock
//! would truncate. We therefore keep time in **nanoseconds** as a `u64`,
//! which covers ~584 years of simulated time — far beyond any trace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as "never" / idle sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Build an instant from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Build an instant from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Build an instant from (possibly fractional) seconds.
    ///
    /// Saturates at zero for negative inputs.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (fractional).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds since the epoch (fractional).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since the epoch (fractional).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is actually later (which indicates a scheduling bug; callers that
    /// care assert separately).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from fractional microseconds (e.g. the paper's
    /// 0.025 µs/byte bus transfer figure).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us.max(0.0) * 1e3).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (fractional).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds in this duration (fractional).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in this duration (fractional).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0);
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_round_trip() {
        let t = SimTime::from_micros(225);
        assert_eq!(t.as_nanos(), 225_000);
        assert!((t.as_micros_f64() - 225.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_micros() {
        // The paper's 0.025 us/byte figure must be representable exactly.
        let d = SimDuration::from_micros_f64(0.025);
        assert_eq!(d.as_nanos(), 25);
        // 2 KB page transfer = 2048 * 25 ns = 51.2 us.
        let page = d * 2048;
        assert_eq!(page.as_nanos(), 51_200);
        assert!((page.as_micros_f64() - 51.2).abs() < 1e-9);
    }

    #[test]
    fn add_sub_are_inverses() {
        let t = SimTime::from_millis(3);
        let d = SimDuration::from_micros(200);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - (t + d), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::ZERO.max(SimTime::MAX), SimTime::MAX);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(225)), "225.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}

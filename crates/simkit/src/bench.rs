//! A minimal warmup/iterate/report micro-benchmark runner.
//!
//! This is the workspace's in-tree replacement for `criterion` (the build
//! is hermetic — no registry dependencies), reporting the robust summary
//! statistics from [`crate::stats`]: per-iteration **median**, **p95**,
//! and MAD-based outlier counts, rather than a mean that one scheduler
//! hiccup can drag around.
//!
//! ## Model
//!
//! Each case runs in three stages:
//!
//! 1. **Warmup** — the closure runs untimed for a fixed wall-time budget,
//!    so caches, allocators and branch predictors settle.
//! 2. **Calibration** — one timed run sizes how many iterations fit in
//!    the minimum sample time, so short closures are batched enough for
//!    the clock to resolve them.
//! 3. **Measurement** — a fixed number of samples are collected, each
//!    timing a batch and recording the per-iteration nanoseconds.
//!
//! The report line prints the median, p95, sample/batch shape, and how
//! many samples sat more than 3 robust standard deviations (median ±
//! 3 × 1.4826 × MAD) from the median — a nonzero count means a noisy
//! host, not necessarily a noisy benchmark.
//!
//! ## Example
//!
//! ```
//! use dloop_simkit::bench::{black_box, Bench};
//!
//! let mut bench = Bench::new("doc_example").samples(5);
//! let report = bench.case("sum_1k", || (0..1000u64).sum::<u64>());
//! assert!(report.median_ns > 0.0);
//! assert_eq!(report.samples.len(), 5);
//! # let _ = black_box(report.median_ns);
//! ```
//!
//! ## Environment knobs
//!
//! * `SIMKIT_BENCH_SAMPLES` — overrides every case's sample count (handy
//!   for a quick smoke pass in CI: `SIMKIT_BENCH_SAMPLES=3 cargo bench`).

pub use std::hint::black_box;

use crate::stats::{median_abs_deviation, percentile_sorted};
use std::time::{Duration, Instant};

/// Scale factor turning a median absolute deviation into a consistent
/// estimate of σ for normally distributed data.
const MAD_TO_SIGMA: f64 = 1.4826;

/// Samples further than this many robust σ from the median are flagged.
const OUTLIER_SIGMAS: f64 = 3.0;

/// Measured results for one benchmark case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Case name as passed to [`Bench::case`].
    pub name: String,
    /// Per-iteration wall time of each sample, in nanoseconds.
    pub samples: Vec<f64>,
    /// Iterations batched per sample (from calibration).
    pub iters_per_sample: u64,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time in nanoseconds.
    pub p95_ns: f64,
    /// Median absolute deviation of the samples, in nanoseconds.
    pub mad_ns: f64,
    /// Samples flagged as outliers (beyond 3 robust σ of the median).
    pub outliers: usize,
    /// Work items per iteration, if declared via [`Bench::throughput_elements`].
    pub elements: Option<u64>,
}

impl CaseReport {
    /// Throughput in elements per second at the median, if the case
    /// declared an element count.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements.map(|n| n as f64 / (self.median_ns * 1e-9))
    }
}

/// Render nanoseconds with an auto-selected unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of benchmark cases sharing sampling settings.
///
/// See the [module docs](self) for the measurement model and an example.
#[derive(Debug)]
pub struct Bench {
    group: String,
    samples: usize,
    warmup: Duration,
    min_sample_time: Duration,
    elements: Option<u64>,
    env_samples: Option<usize>,
    reports: Vec<CaseReport>,
}

impl Bench {
    /// A benchmark group with default settings: 30 samples per case,
    /// 50 ms warmup, and at least 2 ms of work per sample.
    pub fn new(group: &str) -> Self {
        let env_samples = std::env::var("SIMKIT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.trim().parse().ok());
        Bench {
            group: group.to_string(),
            samples: 30,
            warmup: Duration::from_millis(50),
            min_sample_time: Duration::from_millis(2),
            elements: None,
            env_samples,
            reports: Vec::new(),
        }
    }

    /// Set the sample count for subsequent cases (the
    /// `SIMKIT_BENCH_SAMPLES` environment variable overrides this).
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Set the warmup budget for subsequent cases.
    pub fn warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Set the minimum wall time per sample for subsequent cases.
    pub fn min_sample_time(mut self, d: Duration) -> Self {
        self.min_sample_time = d.max(Duration::from_micros(1));
        self
    }

    /// Declare that each iteration of subsequent cases processes `n` work
    /// items; reports then include elements/second at the median.
    pub fn throughput_elements(mut self, n: u64) -> Self {
        self.elements = Some(n);
        self
    }

    /// Run one case: warm up, calibrate the batch size, measure, and
    /// print a one-line report. Returns the measurements.
    pub fn case<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> &CaseReport {
        let samples = self.env_samples.unwrap_or(self.samples).max(1);

        // Warmup: run untimed until the budget elapses (at least once),
        // keeping the duration of the last run for calibration.
        let warmup_start = Instant::now();
        let last_run = loop {
            let t = Instant::now();
            black_box(f());
            let elapsed = t.elapsed();
            if warmup_start.elapsed() >= self.warmup {
                break elapsed;
            }
        };

        // Calibration: batch enough iterations that one sample spans the
        // minimum sample time even for nanosecond-scale closures.
        let iters = if last_run >= self.min_sample_time {
            1
        } else {
            let per_iter = last_run.as_nanos().max(1);
            (self.min_sample_time.as_nanos() / per_iter).clamp(1, 1 << 24) as u64
        };

        // Measurement.
        let mut per_iter_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }

        let mut sorted = per_iter_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        let median_ns = percentile_sorted(&sorted, 0.5);
        let p95_ns = percentile_sorted(&sorted, 0.95);
        let mad_ns = median_abs_deviation(&per_iter_ns);
        let cutoff = OUTLIER_SIGMAS * MAD_TO_SIGMA * mad_ns;
        let outliers = if mad_ns > 0.0 {
            per_iter_ns
                .iter()
                .filter(|&&x| (x - median_ns).abs() > cutoff)
                .count()
        } else {
            0
        };

        let report = CaseReport {
            name: name.to_string(),
            samples: per_iter_ns,
            iters_per_sample: iters,
            median_ns,
            p95_ns,
            mad_ns,
            outliers,
            elements: self.elements,
        };

        let mut line = format!(
            "{}/{:<28} median {:>10}   p95 {:>10}   ({} samples x {} iters",
            self.group,
            report.name,
            fmt_ns(report.median_ns),
            fmt_ns(report.p95_ns),
            samples,
            iters,
        );
        if report.outliers > 0 {
            let plural = if report.outliers == 1 { "" } else { "s" };
            line.push_str(&format!(", {} outlier{plural}", report.outliers));
        }
        line.push(')');
        if let Some(eps) = report.elements_per_sec() {
            line.push_str(&format!("   {:.2} Melem/s", eps / 1e6));
        }
        println!("{line}");

        self.reports.push(report);
        self.reports.last().expect("just pushed")
    }

    /// All reports collected so far, in run order.
    pub fn reports(&self) -> &[CaseReport] {
        &self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_closure_gets_batched_and_reported() {
        let mut b = Bench::new("test")
            .samples(7)
            .warmup(Duration::from_millis(1))
            .min_sample_time(Duration::from_micros(200));
        let r = b.case("add", || black_box(3u64) + black_box(4u64));
        assert_eq!(r.samples.len(), 7);
        assert!(r.iters_per_sample > 1, "nanosecond closure should batch");
        assert!(r.median_ns > 0.0 && r.median_ns.is_finite());
        assert!(r.p95_ns >= r.median_ns * 0.5);
        assert_eq!(b.reports().len(), 1);
    }

    #[test]
    fn slow_closure_runs_one_iter_per_sample() {
        let mut b = Bench::new("test")
            .samples(3)
            .warmup(Duration::from_micros(10))
            .min_sample_time(Duration::from_micros(1));
        let r = b.case("sleepish", || {
            std::thread::sleep(Duration::from_micros(300));
        });
        assert_eq!(r.iters_per_sample, 1);
        assert!(r.median_ns >= 200_000.0, "median {} ns", r.median_ns);
    }

    #[test]
    fn throughput_is_derived_from_median() {
        let mut b = Bench::new("test")
            .samples(3)
            .warmup(Duration::from_micros(10))
            .min_sample_time(Duration::from_micros(50))
            .throughput_elements(1_000);
        let r = b.case("count", || (0..1000u64).sum::<u64>());
        let eps = r.elements_per_sec().expect("elements declared");
        let expected = 1_000.0 / (r.median_ns * 1e-9);
        assert!((eps - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn mutable_state_persists_across_iterations() {
        let mut counter = 0u64;
        let mut b = Bench::new("test")
            .samples(2)
            .warmup(Duration::from_micros(1))
            .min_sample_time(Duration::from_micros(1));
        b.case("count_calls", || {
            counter += 1;
            counter
        });
        assert!(counter > 2, "closure should have run warmup + samples");
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}

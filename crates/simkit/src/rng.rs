//! A tiny deterministic PRNG for the simulator itself.
//!
//! The simulator core must be bit-reproducible across runs and across
//! versions of third-party crates, so it carries its own PCG-XSH-RR 64/32
//! generator (O'Neill 2014) instead of depending on `rand`'s evolving
//! algorithm choices. Workload *generators* (which legitimately want rich
//! distributions) use `rand` in the `dloop-workloads` crate; this type is
//! for tie-breaking and sampling inside the device model only.

/// PCG-XSH-RR 64/32: 64-bit state, 32-bit output, period 2^64.
///
/// ```
/// use dloop_simkit::SimRng;
///
/// let mut a = SimRng::new(1);
/// let mut b = SimRng::new(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl SimRng {
    /// Seed the generator. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        // Standard PCG seeding dance: fixed stream, seed mixed into state.
        let mut rng = SimRng {
            state: 0,
            inc: (seed << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed ^ 0x9E37_79B9_7F4A_7C15);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift with
    /// rejection (unbiased). `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // 128-bit multiply keeps this exact for any u64 bound.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Invert the CDF; guard against ln(0).
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::new(11);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = SimRng::new(5);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            match rng.range_inclusive(3, 6) {
                3 => lo_seen = true,
                6 => hi_seen = true,
                v => assert!((3..=6).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(9);
        let n = 20_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.05,
            "observed mean {observed}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(13);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}

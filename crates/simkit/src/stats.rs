//! Online statistics used by the metrics layer.
//!
//! The paper reports two statistics per run: the *mean response time* over
//! all requests and the *standard deviation of requests per plane* (SDRPP).
//! [`OnlineStats`] implements Welford's algorithm so both can be computed in
//! one pass without storing millions of samples; [`Histogram`] keeps a
//! log-spaced latency histogram for percentile reporting (an observability
//! extra over the paper).

/// Single-pass mean / variance / extrema accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (Chan et al. parallel form).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Compute the population standard deviation of a slice of counts.
///
/// This is exactly the paper's SDRPP when fed the per-plane request counts.
pub fn std_dev_of_counts(counts: &[u64]) -> f64 {
    let mut s = OnlineStats::new();
    for &c in counts {
        s.push(c as f64);
    }
    s.std_dev()
}

/// A log₂-spaced histogram of non-negative `f64` samples.
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)` scaled by `unit`; bucket 0
/// holds `[0, 1)`. Good enough for latency percentiles across six orders of
/// magnitude while staying tiny and allocation-free after construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    unit: f64,
    count: u64,
}

impl Histogram {
    /// A histogram whose bucket boundaries are powers of two multiples of
    /// `unit` (e.g. `unit = 1.0` microsecond), with `n_buckets` buckets.
    pub fn new(unit: f64, n_buckets: usize) -> Self {
        assert!(unit > 0.0, "histogram unit must be positive");
        assert!(n_buckets >= 2, "need at least two buckets");
        Histogram {
            buckets: vec![0; n_buckets],
            unit,
            count: 0,
        }
    }

    fn bucket_for(&self, x: f64) -> usize {
        let scaled = (x / self.unit).max(0.0);
        if scaled < 1.0 {
            0
        } else {
            let b = scaled.log2().floor() as usize + 1;
            b.min(self.buckets.len() - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        let b = self.bucket_for(x);
        self.buckets[b] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound of bucket `i`, in sample units.
    fn bucket_upper(&self, i: usize) -> f64 {
        if i == 0 {
            self.unit
        } else {
            self.unit * 2f64.powi(i as i32)
        }
    }

    /// Approximate value at quantile `q` in `[0, 1]` (upper bucket bound).
    ///
    /// Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_upper(i);
            }
        }
        self.bucket_upper(self.buckets.len() - 1)
    }

    /// Merge counts from another histogram with identical shape.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets.len(), other.buckets.len());
        assert_eq!(self.unit.to_bits(), other.unit.to_bits());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }
}

/// Value at quantile `q` in `[0, 1]` of a sample set, by linear
/// interpolation between order statistics (the "R-7" definition used by
/// most statistics packages). Returns 0.0 for an empty slice.
///
/// The input need not be sorted; a sorted copy is made internally. For
/// repeated queries over the same data, sort once and use
/// [`percentile_sorted`].
///
/// ```
/// use dloop_simkit::stats::percentile;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 0.5), 2.5);
/// assert_eq!(percentile(&xs, 1.0), 4.0);
/// ```
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&sorted, q)
}

/// Like [`percentile`], but requires `sorted` to already be in ascending
/// order (not checked; an unsorted input gives a meaningless answer).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median of a sample set (0.0 when empty). Interpolates for even counts.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 0.5)
}

/// Median absolute deviation: the median of `|x - median(xs)|`.
///
/// A robust spread estimate — unlike the standard deviation it is not
/// dragged around by a handful of outliers, which makes it the right
/// yardstick for flagging them (see [`crate::bench`]). Multiply by
/// 1.4826 to get a consistent estimator of σ for normal data.
pub fn median_abs_deviation(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_match_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0 + 20.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sdrpp_helper_matches_definition() {
        // Counts 1,2,3,4 -> mean 2.5, pop variance 1.25.
        let sd = std_dev_of_counts(&[1, 2, 3, 4]);
        assert!((sd - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(std_dev_of_counts(&[]), 0.0);
        assert_eq!(std_dev_of_counts(&[7, 7, 7]), 0.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(1.0, 12);
        for x in [0.5, 1.5, 3.0, 3.9, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        // Median of 5 samples is the 3rd: 3.0 lives in bucket [2,4) -> upper 4.
        assert_eq!(h.quantile(0.5), 4.0);
        // p100 captures the largest.
        assert!(h.quantile(1.0) >= 100.0);
        // p0/p-negative clamp to the first occupied bucket's bound.
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn histogram_overflow_clamps_to_last_bucket() {
        let mut h = Histogram::new(1.0, 4);
        h.record(1e30);
        assert_eq!(h.quantile(1.0), 8.0); // last bucket upper bound: 2^3
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 1.0), 7.0);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert!((percentile(&xs, 0.95) - 4.8).abs() < 1e-12);
        // Out-of-range quantiles clamp.
        assert_eq!(percentile(&xs, -1.0), 1.0);
        assert_eq!(percentile(&xs, 2.0), 5.0);
    }

    #[test]
    fn median_matches_definition() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        // 1..9 with one wild outlier: the MAD barely moves.
        let clean: Vec<f64> = (1..=9).map(f64::from).collect();
        let mut dirty = clean.clone();
        dirty[8] = 1e9;
        assert_eq!(median_abs_deviation(&clean), 2.0);
        assert_eq!(median_abs_deviation(&dirty), 2.0);
        assert_eq!(median_abs_deviation(&[]), 0.0);
        assert_eq!(median_abs_deviation(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(1.0, 8);
        let mut b = Histogram::new(1.0, 8);
        a.record(2.0);
        b.record(64.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }
}

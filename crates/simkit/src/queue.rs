//! The pending-operation priority list.
//!
//! Section IV.B of the paper: *"we added a priority list to keep requests in
//! order on how they can be processed by free channels … If the targeting
//! channel and plane of the request are available, it will be immediately
//! handed to the hardware module to be executed. Otherwise, [the FTL]
//! processes other requests until the channel and the plane turn to be
//! free."*
//!
//! [`PendingQueue`] models exactly that: a FIFO list from which the
//! scheduler removes the **first** element whose resources are currently
//! free, skipping (but not reordering) blocked elements. Arrival order is
//! the priority; readiness is the filter.

use std::collections::VecDeque;

/// FIFO queue with ready-predicate extraction.
#[derive(Debug, Clone)]
pub struct PendingQueue<T> {
    items: VecDeque<T>,
}

impl<T> Default for PendingQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PendingQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        PendingQueue {
            items: VecDeque::new(),
        }
    }

    /// An empty queue pre-sized for `cap` items.
    pub fn with_capacity(cap: usize) -> Self {
        PendingQueue {
            items: VecDeque::with_capacity(cap),
        }
    }

    /// Append an item at the back (lowest priority).
    pub fn push_back(&mut self, item: T) {
        self.items.push_back(item);
    }

    /// Put an item back at the front (it keeps highest priority). Used when
    /// a popped item turns out to still be blocked after a state change.
    pub fn push_front(&mut self, item: T) {
        self.items.push_front(item);
    }

    /// Remove and return the first item for which `ready` is true,
    /// preserving the relative order of everything else.
    pub fn pop_first_ready<F: FnMut(&T) -> bool>(&mut self, ready: F) -> Option<T> {
        let idx = self.items.iter().position(ready)?;
        self.items.remove(idx)
    }

    /// Remove and return *all* items for which `ready` is true, in queue
    /// order. Items remaining keep their order.
    pub fn drain_ready<F: FnMut(&T) -> bool>(&mut self, mut ready: F) -> Vec<T> {
        let mut out = Vec::new();
        let mut kept = VecDeque::with_capacity(self.items.len());
        for it in self.items.drain(..) {
            if ready(&it) {
                out.push(it);
            } else {
                kept.push_back(it);
            }
        }
        self.items = kept;
        out
    }

    /// Iterate items in priority order without removing them.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The item at position `idx` in priority order (0 = highest priority).
    /// Bounded-window schedulers (NCQ-style reordering) use this to read
    /// the tail of their lookahead window without draining the queue.
    pub fn get(&self, idx: usize) -> Option<&T> {
        self.items.get(idx)
    }

    /// Remove and return the item at position `idx` in priority order,
    /// preserving the relative order of everything else.
    pub fn remove_at(&mut self, idx: usize) -> Option<T> {
        self.items.remove(idx)
    }

    /// Binary-search for the item whose key `f` extracts equals `key`.
    /// The queue's items must be sorted by that key in priority order
    /// (true for any queue only ever `push_back`ed with increasing keys,
    /// such as a sequence-numbered pending list). Returns the position in
    /// the same `Ok`/`Err` convention as [`slice::binary_search_by_key`].
    pub fn binary_search_by_key<K: Ord, F: FnMut(&T) -> K>(
        &self,
        key: &K,
        f: F,
    ) -> Result<usize, usize> {
        self.items.binary_search_by_key(key, f)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_when_everything_ready() {
        let mut q = PendingQueue::new();
        for i in 0..5 {
            q.push_back(i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop_first_ready(|_| true)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn skips_blocked_without_reordering() {
        let mut q = PendingQueue::new();
        q.push_back(("planeA", 1));
        q.push_back(("planeB", 2));
        q.push_back(("planeA", 3));
        // planeA busy: first ready item is ("planeB", 2).
        let got = q.pop_first_ready(|&(p, _)| p != "planeA").unwrap();
        assert_eq!(got, ("planeB", 2));
        // Remaining items kept their order.
        let rest: Vec<_> = q.iter().cloned().collect();
        assert_eq!(rest, vec![("planeA", 1), ("planeA", 3)]);
    }

    #[test]
    fn pop_returns_none_when_all_blocked() {
        let mut q = PendingQueue::new();
        q.push_back(1);
        assert!(q.pop_first_ready(|_| false).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_ready_partitions_in_order() {
        let mut q = PendingQueue::new();
        for i in 0..6 {
            q.push_back(i);
        }
        let evens = q.drain_ready(|&i| i % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4]);
        let rest: Vec<_> = q.iter().cloned().collect();
        assert_eq!(rest, vec![1, 3, 5]);
    }

    #[test]
    fn indexed_access_and_removal_keep_order() {
        let mut q = PendingQueue::new();
        for i in 10..15 {
            q.push_back(i);
        }
        assert_eq!(q.get(0), Some(&10));
        assert_eq!(q.get(4), Some(&14));
        assert_eq!(q.get(5), None);
        // Sequence-keyed binary search over the sorted queue.
        assert_eq!(q.binary_search_by_key(&12, |&x| x), Ok(2));
        assert_eq!(q.binary_search_by_key(&99, |&x| x), Err(5));
        assert_eq!(q.remove_at(2), Some(12));
        let rest: Vec<_> = q.iter().copied().collect();
        assert_eq!(rest, vec![10, 11, 13, 14]);
        assert_eq!(q.remove_at(9), None);
    }

    #[test]
    fn push_front_restores_priority() {
        let mut q = PendingQueue::new();
        q.push_back(2);
        q.push_front(1);
        assert_eq!(q.pop_first_ready(|_| true), Some(1));
        assert_eq!(q.pop_first_ready(|_| true), Some(2));
    }
}

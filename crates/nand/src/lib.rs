//! # dloop-nand
//!
//! A NAND flash SSD hardware model — the reproduction's substitute for the
//! FlashSim hardware module that the DLOOP paper extends (§IV).
//!
//! The model has two halves:
//!
//! * **State** ([`state::FlashState`], [`plane::PlaneState`],
//!   [`block::Block`]) — which page holds what, write pointers, free-block
//!   pools, erase counters. All NAND rules (sequential in-block programming,
//!   erase-before-write, pool hygiene) are enforced here with checked
//!   transitions and audit routines.
//! * **Timing** ([`hardware::HardwareModel`], [`timing::TimingConfig`]) —
//!   when operations start and finish under contention for channels,
//!   planes, and optionally dies. Includes the advanced commands the paper
//!   relies on: **intra-plane copy-back** (no bus traffic), with
//!   multi-plane parallelism arising naturally from independent plane
//!   timelines, and an optional die-serialisation mode for ablations.
//!
//! [`geometry::Geometry`] ties the two together with the full
//! channel/package/chip/die/plane/block/page hierarchy of the paper's
//! Fig. 1 and the address arithmetic (PPN ↔ page address, LPN → plane).

pub mod block;
pub mod energy;
pub mod error;
pub mod geometry;
pub mod hardware;
pub mod plane;
pub mod state;
pub mod timing;

pub use block::PageState;
pub use energy::EnergyConfig;
pub use error::NandError;
pub use geometry::{BlockAddr, ChannelId, DieId, Geometry, Lpn, PageAddr, PlaneId, Ppn};
pub use hardware::{Completion, HardwareModel, OpCounters};
pub use state::FlashState;
pub use timing::TimingConfig;

//! # dloop-nand
//!
//! A NAND flash SSD hardware model — the reproduction's substitute for the
//! FlashSim hardware module that the DLOOP paper extends (§IV).
//!
//! The model has two halves:
//!
//! * **State** ([`state::FlashState`], [`plane::PlaneState`],
//!   [`block::Block`]) — which page holds what, write pointers, free-block
//!   pools, erase counters. All NAND rules (sequential in-block programming,
//!   erase-before-write, pool hygiene) are enforced here with checked
//!   transitions and audit routines.
//! * **Timing** ([`hardware::HardwareModel`], [`timing::TimingConfig`]) —
//!   when operations start and finish under contention for channels,
//!   planes, and optionally dies. Includes the advanced commands the paper
//!   relies on: **intra-plane copy-back** (no bus traffic), with
//!   multi-plane parallelism arising naturally from independent plane
//!   timelines, and an optional die-serialisation mode for ablations.
//!
//! [`geometry::Geometry`] ties the two together with the full
//! channel/package/chip/die/plane/block/page hierarchy of the paper's
//! Fig. 1 and the address arithmetic (PPN ↔ page address, LPN → plane).
//!
//! A third, optional half is **media faults**: attaching a `dloop-faults`
//! [`MediaModel`] to the state (via [`state::FlashState::attach_media`])
//! makes programs/reads/erases return deterministic [`MediaOutcome`]s
//! (program-status failures, read-retry ladders, uncorrectable reads,
//! grown bad blocks) and the timing model charges the read-retry ladder
//! through [`hardware::HardwareModel::exec_read_retry`].

pub mod block;
pub mod energy;
pub mod error;
pub mod geometry;
pub mod hardware;
pub mod plane;
pub mod state;
pub mod timing;

pub use block::PageState;
pub use dloop_faults::{FaultConfig, FaultPlan, MediaCounters, MediaModel, MediaOutcome};
pub use energy::{EnergyConfig, EnergyTotals};
pub use error::{MediaError, NandError};
pub use geometry::{BlockAddr, ChannelId, DieId, Geometry, Lpn, PageAddr, PlaneId, Ppn};
pub use hardware::{Completion, HardwareModel, OpCounters};
pub use state::{FlashState, ProgramAttempt};
pub use timing::TimingConfig;

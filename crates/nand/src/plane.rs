//! Per-plane state: the block array and the free-block pool.
//!
//! The paper (§III.C): *"For each plane in a flash SSD, DLOOP maintains a
//! free block pool for it. When the number of free blocks in a plane is
//! lower than a threshold … a garbage collection is invoked. The block with
//! the maximal number of invalid pages in the plane is selected as the
//! victim block."* The pool and victim selection live here so every FTL
//! (DLOOP, DFTL, FAST) shares one audited implementation.

use crate::block::Block;
use std::collections::VecDeque;

/// State of one plane.
#[derive(Debug, Clone)]
pub struct PlaneState {
    blocks: Vec<Block>,
    /// Indices of erased blocks available for allocation, FIFO.
    free_pool: VecDeque<u32>,
    /// Erased blocks held offline (reduced over-provisioning). Used by the
    /// hot-plane extra-block experiments: a cold plane parks part of its
    /// extra blocks here so the effective spare capacity differs per plane.
    reserve: Vec<u32>,
    /// Worn-out blocks permanently removed from service (bad blocks).
    retired: Vec<u32>,
}

impl PlaneState {
    /// A plane of `blocks` freshly erased blocks of `pages_per_block`
    /// pages, all in the free pool.
    pub fn new(blocks: u32, pages_per_block: u32) -> Self {
        PlaneState {
            blocks: (0..blocks).map(|_| Block::new(pages_per_block)).collect(),
            free_pool: (0..blocks).collect(),
            reserve: Vec::new(),
            retired: Vec::new(),
        }
    }

    /// Permanently remove an erased block from service (wear-out).
    pub fn retire(&mut self, index: u32) {
        debug_assert!(self.blocks[index as usize].is_pristine());
        debug_assert!(!self.free_pool.contains(&index));
        debug_assert!(!self.retired.contains(&index));
        self.retired.push(index);
    }

    /// Blocks permanently out of service.
    pub fn retired_blocks(&self) -> u32 {
        self.retired.len() as u32
    }

    /// Whether `index` has been retired.
    pub fn is_retired(&self, index: u32) -> bool {
        self.retired.contains(&index)
    }

    /// Park up to `n` free blocks offline; returns how many were parked.
    pub fn hold_back(&mut self, n: u32) -> u32 {
        let mut moved = 0;
        while moved < n {
            // Take from the back so near-term FIFO allocation is unchanged.
            let Some(idx) = self.free_pool.pop_back() else {
                break;
            };
            self.reserve.push(idx);
            moved += 1;
        }
        moved
    }

    /// Bring up to `n` parked blocks back into the free pool; returns how
    /// many came back.
    pub fn release_reserve(&mut self, n: u32) -> u32 {
        let mut moved = 0;
        while moved < n {
            let Some(idx) = self.reserve.pop() else {
                break;
            };
            self.free_pool.push_back(idx);
            moved += 1;
        }
        moved
    }

    /// Blocks currently parked offline.
    pub fn reserved(&self) -> u32 {
        self.reserve.len() as u32
    }

    /// Number of blocks in this plane.
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Shared access to a block.
    pub fn block(&self, index: u32) -> &Block {
        &self.blocks[index as usize]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, index: u32) -> &mut Block {
        &mut self.blocks[index as usize]
    }

    /// Blocks currently in the free pool.
    pub fn free_pool_len(&self) -> u32 {
        self.free_pool.len() as u32
    }

    /// Whether `index` currently sits in the free pool.
    pub fn in_free_pool(&self, index: u32) -> bool {
        self.free_pool.contains(&index)
    }

    /// Pop the next free block (FIFO — oldest erase first, a mild implicit
    /// wear-leveling like real firmware).
    pub fn allocate_free_block(&mut self) -> Option<u32> {
        let idx = self.free_pool.pop_front()?;
        debug_assert!(
            self.blocks[idx as usize].is_pristine(),
            "free pool contained a dirty block"
        );
        Some(idx)
    }

    /// Remove a specific block from the free pool (factory bad-block
    /// retirement at media attach time). Returns whether it was pooled.
    pub fn remove_from_pool(&mut self, index: u32) -> bool {
        match self.free_pool.iter().position(|&i| i == index) {
            Some(pos) => {
                self.free_pool.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Return an erased block to the pool.
    pub fn return_free_block(&mut self, index: u32) {
        debug_assert!(self.blocks[index as usize].is_pristine());
        debug_assert!(!self.free_pool.contains(&index));
        self.free_pool.push_back(index);
    }

    /// GC victim selection: the block with the most invalid pages that is
    /// not in the free pool and not in `exclude` (the FTL passes its active
    /// blocks so it never erases the block it is writing into).
    /// Ties break toward the lowest index for determinism.
    pub fn victim_with_max_invalid(&self, exclude: &[u32]) -> Option<u32> {
        let mut best: Option<(u32, u32)> = None; // (invalid, index)
        for (i, b) in self.blocks.iter().enumerate() {
            let i = i as u32;
            if exclude.contains(&i) || self.free_pool.contains(&i) || b.is_pristine() {
                continue;
            }
            let inv = b.invalid_pages();
            match best {
                Some((bi, _)) if bi >= inv => {}
                _ => best = Some((inv, i)),
            }
        }
        best.map(|(_, i)| i)
    }

    /// Total valid pages on this plane.
    pub fn valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.valid_pages() as u64).sum()
    }

    /// Total invalid pages on this plane.
    pub fn invalid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.invalid_pages() as u64).sum()
    }

    /// Total erases performed on this plane.
    pub fn total_erases(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count() as u64).sum()
    }

    /// Max erase count across blocks (wear ceiling).
    pub fn max_erase_count(&self) -> u32 {
        self.blocks
            .iter()
            .map(|b| b.erase_count())
            .max()
            .unwrap_or(0)
    }

    /// Iterate blocks with indices.
    pub fn blocks(&self) -> impl Iterator<Item = (u32, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (i as u32, b))
    }

    /// Audit: every pooled block is pristine, no duplicates, all blocks
    /// individually consistent.
    pub fn check(&self) -> Result<(), String> {
        let mut seen = vec![false; self.blocks.len()];
        for &idx in self
            .free_pool
            .iter()
            .chain(self.reserve.iter())
            .chain(self.retired.iter())
        {
            let i = idx as usize;
            if i >= self.blocks.len() {
                return Err(format!("pool index {idx} out of range"));
            }
            if seen[i] {
                return Err(format!("block {idx} pooled/reserved twice"));
            }
            seen[i] = true;
            if !self.blocks[i].is_pristine() {
                return Err(format!("pooled/reserved block {idx} is not pristine"));
            }
        }
        for (i, b) in self.blocks.iter().enumerate() {
            b.check().map_err(|e| format!("block {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> PlaneState {
        PlaneState::new(8, 4)
    }

    #[test]
    fn fresh_plane_pools_everything() {
        let p = plane();
        assert_eq!(p.free_pool_len(), 8);
        assert_eq!(p.valid_pages(), 0);
        p.check().unwrap();
    }

    #[test]
    fn allocation_is_fifo() {
        let mut p = plane();
        assert_eq!(p.allocate_free_block(), Some(0));
        assert_eq!(p.allocate_free_block(), Some(1));
        assert_eq!(p.free_pool_len(), 6);
        // Erase + return puts it at the back.
        p.block_mut(0).program_next();
        p.block_mut(0).invalidate(0);
        p.block_mut(0).erase();
        p.return_free_block(0);
        // Pool: 2,3,4,5,6,7,0
        for expect in [2, 3, 4, 5, 6, 7, 0] {
            assert_eq!(p.allocate_free_block(), Some(expect));
        }
        assert_eq!(p.allocate_free_block(), None);
    }

    #[test]
    fn victim_selection_prefers_most_invalid() {
        let mut p = plane();
        // Block 0: 1 invalid. Block 1: 3 invalid. Block 2: still pooled.
        let b0 = p.allocate_free_block().unwrap();
        let b1 = p.allocate_free_block().unwrap();
        for _ in 0..4 {
            p.block_mut(b0).program_next();
            p.block_mut(b1).program_next();
        }
        p.block_mut(b0).invalidate(0);
        for off in 0..3 {
            p.block_mut(b1).invalidate(off);
        }
        assert_eq!(p.victim_with_max_invalid(&[]), Some(b1));
        // Excluding b1 falls back to b0.
        assert_eq!(p.victim_with_max_invalid(&[b1]), Some(b0));
        // Excluding both leaves nothing (pooled/pristine blocks don't count).
        assert_eq!(p.victim_with_max_invalid(&[b0, b1]), None);
        p.check().unwrap();
    }

    #[test]
    fn victim_ties_break_low_index() {
        let mut p = plane();
        let a = p.allocate_free_block().unwrap();
        let b = p.allocate_free_block().unwrap();
        for blk in [a, b] {
            p.block_mut(blk).program_next();
            p.block_mut(blk).invalidate(0);
        }
        assert_eq!(p.victim_with_max_invalid(&[]), Some(a.min(b)));
    }

    #[test]
    fn check_catches_dirty_pooled_block() {
        let mut p = plane();
        // Corrupt: dirty a block while it is still pooled.
        p.block_mut(3).program_next();
        assert!(p.check().is_err());
    }

    #[test]
    fn hold_back_and_release() {
        let mut p = plane();
        assert_eq!(p.hold_back(3), 3);
        assert_eq!(p.free_pool_len(), 5);
        assert_eq!(p.reserved(), 3);
        p.check().unwrap();
        // Near-term FIFO order unchanged: front blocks still allocate first.
        assert_eq!(p.allocate_free_block(), Some(0));
        assert_eq!(p.release_reserve(2), 2);
        assert_eq!(p.free_pool_len(), 6);
        assert_eq!(p.reserved(), 1);
        // Releasing more than reserved caps out.
        assert_eq!(p.release_reserve(10), 1);
        assert_eq!(p.reserved(), 0);
        p.check().unwrap();
    }

    #[test]
    fn hold_back_caps_at_pool_size() {
        let mut p = plane();
        assert_eq!(p.hold_back(100), 8);
        assert_eq!(p.free_pool_len(), 0);
        assert_eq!(p.allocate_free_block(), None);
    }

    #[test]
    fn wear_accounting() {
        let mut p = plane();
        let b = p.allocate_free_block().unwrap();
        p.block_mut(b).program_next();
        p.block_mut(b).invalidate(0);
        p.block_mut(b).erase();
        p.return_free_block(b);
        assert_eq!(p.total_erases(), 1);
        assert_eq!(p.max_erase_count(), 1);
    }
}

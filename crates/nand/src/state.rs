//! Whole-device flash state: every plane's blocks and pools behind one
//! checked, PPN-level API.
//!
//! All FTLs mutate flash exclusively through [`FlashState`], so the NAND
//! invariants (sequential programming, erase-before-write, pool
//! consistency) are enforced — and property-tested — in exactly one place.
//!
//! When a [`MediaModel`] is attached ([`FlashState::attach_media`]), the
//! checked entry points [`FlashState::program_page`] and
//! [`FlashState::read_page`] additionally derive deterministic media
//! outcomes (program-status failures, read-retry ladders, uncorrectable
//! reads) and [`FlashState::erase_and_pool`] retires erase-failed and
//! doomed blocks as grown-bad instead of pooling them.

use crate::block::PageState;
use crate::error::NandError;
use crate::geometry::{BlockAddr, Geometry, PageAddr, PlaneId, Ppn};
use crate::plane::PlaneState;
use dloop_faults::{FaultConfig, FaultPlan, MediaCounters, MediaModel, MediaOutcome};
use std::collections::BTreeSet;

/// Result of one checked program attempt (see [`FlashState::program_page`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramAttempt {
    /// The page the attempt landed on (consumed either way).
    pub addr: PageAddr,
    /// True when the media reported program-status failure: the page is
    /// consumed as invalid and the caller must re-program elsewhere.
    pub failed: bool,
}

/// Mutable state of the whole flash array.
#[derive(Debug, Clone)]
pub struct FlashState {
    geometry: Geometry,
    planes: Vec<PlaneState>,
    programs: u64,
    skips: u64,
    erases: u64,
    /// Erase cycles a block survives before wearing out (None = infinite).
    erase_limit: Option<u32>,
    retired: u64,
    /// Deterministic media-fault model (None = perfect media).
    media: Option<MediaModel>,
    /// Blocks (global index) marked for early retirement after a program
    /// failure; retired at their next erase instead of re-pooling.
    doomed: BTreeSet<u64>,
    /// Program attempts that failed since the last
    /// [`FlashState::take_failed_attempts`] drain (timing accounting).
    failed_attempts: u32,
}

impl FlashState {
    /// A fully erased device of the given geometry.
    pub fn new(geometry: Geometry) -> Self {
        let planes = (0..geometry.total_planes())
            .map(|_| PlaneState::new(geometry.blocks_per_plane, geometry.pages_per_block))
            .collect();
        FlashState {
            geometry,
            planes,
            programs: 0,
            skips: 0,
            erases: 0,
            erase_limit: None,
            retired: 0,
            media: None,
            doomed: BTreeSet::new(),
            failed_attempts: 0,
        }
    }

    /// A worker's private copy for plane-sharded execution: identical
    /// plane state, but with the device-wide activity counters (programs,
    /// skips, erases, retirements) zeroed so the worker accumulates pure
    /// *deltas* that [`FlashState::shard_absorb`] can add back without
    /// double-counting.
    pub fn shard_fork(&self) -> FlashState {
        let mut fork = self.clone();
        fork.programs = 0;
        fork.skips = 0;
        fork.erases = 0;
        fork.retired = 0;
        fork
    }

    /// Merge a [`FlashState::shard_fork`] worker back: adopt the owned
    /// `planes`' state wholesale (the worker is the only writer of those
    /// planes) and add the worker's activity deltas. The caller guarantees
    /// the worker touched no plane outside `planes`.
    pub fn shard_absorb(&mut self, worker: &FlashState, planes: std::ops::Range<PlaneId>) {
        debug_assert_eq!(
            worker.failed_attempts, 0,
            "worker finished an op with undrained program failures"
        );
        for p in planes {
            self.planes[p as usize] = worker.planes[p as usize].clone();
        }
        self.programs += worker.programs;
        self.skips += worker.skips;
        self.erases += worker.erases;
        self.retired += worker.retired;
    }

    /// A device whose blocks wear out after `limit` erase cycles — the
    /// finite-erasure-cycles limitation of §I. Worn blocks are retired
    /// (bad-block management) instead of returning to the free pool.
    pub fn with_endurance(geometry: Geometry, limit: u32) -> Self {
        let mut fs = Self::new(geometry);
        fs.erase_limit = Some(limit);
        fs
    }

    /// Attach a deterministic media-fault model built from `cfg`. Must be
    /// called on a fresh device (all blocks pristine and pooled): factory
    /// bad blocks are drawn from the plan and retired immediately, before
    /// any traffic. A null configuration attaches nothing.
    pub fn attach_media(&mut self, cfg: &FaultConfig) {
        if cfg.is_null() {
            return;
        }
        assert!(self.media.is_none(), "media model already attached");
        assert_eq!(
            self.programs + self.skips + self.erases,
            0,
            "attach_media on a used device"
        );
        let mut model = MediaModel::new(
            FaultPlan::new(cfg.clone()),
            self.geometry.total_physical_pages(),
        );
        let bpp = self.geometry.blocks_per_plane;
        for (p, plane) in self.planes.iter_mut().enumerate() {
            for index in 0..bpp {
                let gid = p as u64 * bpp as u64 + index as u64;
                if model.plan().factory_bad(gid) {
                    // Keep each plane serviceable: never retire so many
                    // blocks that the plane drops below a minimal pool.
                    if plane.free_pool_len() <= 4 {
                        continue;
                    }
                    let removed = plane.remove_from_pool(index);
                    debug_assert!(removed, "factory-bad block {index} not pooled");
                    plane.retire(index);
                    self.retired += 1;
                    model.note_factory_bad();
                }
            }
        }
        self.media = Some(model);
    }

    /// The attached media model's reliability counters, if any.
    pub fn media_counters(&self) -> Option<&MediaCounters> {
        self.media.as_ref().map(|m| m.counters())
    }

    /// Whether a (non-null) media-fault model is attached.
    pub fn has_media(&self) -> bool {
        self.media.is_some()
    }

    /// Retry-ladder depth of the attached fault plan (0 without media).
    pub fn max_retry_steps(&self) -> u32 {
        self.media
            .as_ref()
            .map(|m| m.plan().config().max_retry_steps)
            .unwrap_or(0)
    }

    /// Global block index (stable across the device) of `block`.
    fn global_block(&self, block: BlockAddr) -> u64 {
        block.plane as u64 * self.geometry.blocks_per_plane as u64 + block.index as u64
    }

    /// Program attempts that failed since the last drain (the controller
    /// charges one program's worth of timing per failed attempt).
    pub fn take_failed_attempts(&mut self) -> u32 {
        std::mem::take(&mut self.failed_attempts)
    }

    /// Blocks permanently retired due to wear-out.
    pub fn retired_blocks(&self) -> u64 {
        self.retired
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Shared access to a plane.
    pub fn plane(&self, plane: PlaneId) -> &PlaneState {
        &self.planes[plane as usize]
    }

    /// Mutable access to a plane (tests and FTL internals).
    pub fn plane_mut(&mut self, plane: PlaneId) -> &mut PlaneState {
        &mut self.planes[plane as usize]
    }

    /// State of the page at `ppn`.
    pub fn page_state(&self, ppn: Ppn) -> PageState {
        let a = self.geometry.addr_of(ppn);
        self.planes[a.plane as usize].block(a.block).state(a.page)
    }

    /// Program the next sequential page of `block`, returning the page
    /// address written.
    pub fn program_next(&mut self, block: BlockAddr) -> Result<PageAddr, NandError> {
        let b = self.planes[block.plane as usize].block_mut(block.index);
        let off = b.program_next().ok_or(NandError::BlockFull(block))?;
        self.programs += 1;
        Ok(PageAddr {
            plane: block.plane,
            block: block.index,
            page: off,
        })
    }

    /// Checked program of the next sequential page of `block`, consulting
    /// the media model when one is attached.
    ///
    /// On [`MediaOutcome::ProgramFail`] the page is consumed as invalid
    /// (the cells were driven, their contents are garbage), the block is
    /// marked doomed (retired at its next erase), and the caller must
    /// retry on a fresh page — the recovery loop lives in the FTL
    /// allocators. Without media, identical to [`FlashState::program_next`].
    pub fn program_page(&mut self, block: BlockAddr) -> Result<ProgramAttempt, NandError> {
        let Some(model) = self.media.as_mut() else {
            let addr = self.program_next(block)?;
            return Ok(ProgramAttempt {
                addr,
                failed: false,
            });
        };
        let b = self.planes[block.plane as usize].block_mut(block.index);
        let off = b.next_free_page().ok_or(NandError::BlockFull(block))?;
        let addr = PageAddr {
            plane: block.plane,
            block: block.index,
            page: off,
        };
        let ppn = self.geometry.ppn_of(addr);
        let generation = b.erase_count();
        match model.program(ppn, generation) {
            MediaOutcome::ProgramFail => {
                // Consume the page as invalid; the attempt wore the cells
                // and counts as a program, not a parity skip.
                b.skip_next();
                self.programs += 1;
                self.failed_attempts += 1;
                self.doomed.insert(self.global_block(block));
                Ok(ProgramAttempt { addr, failed: true })
            }
            _ => {
                b.program_next();
                self.programs += 1;
                Ok(ProgramAttempt {
                    addr,
                    failed: false,
                })
            }
        }
    }

    /// Skip (invalidate-without-programming) the next sequential page of
    /// `block` — DLOOP's parity-waste move. Returns the wasted address.
    pub fn skip_next(&mut self, block: BlockAddr) -> Result<PageAddr, NandError> {
        let b = self.planes[block.plane as usize].block_mut(block.index);
        let off = b.skip_next().ok_or(NandError::BlockFull(block))?;
        self.skips += 1;
        Ok(PageAddr {
            plane: block.plane,
            block: block.index,
            page: off,
        })
    }

    /// Invalidate the valid page at `ppn` (out-of-place update).
    pub fn invalidate(&mut self, ppn: Ppn) -> Result<(), NandError> {
        let a = self.geometry.addr_of(ppn);
        let ok = self.planes[a.plane as usize]
            .block_mut(a.block)
            .invalidate(a.page);
        if ok {
            Ok(())
        } else {
            Err(NandError::NotValid(a))
        }
    }

    /// Verify a read hits live data (simulation carries no payloads, but
    /// reading a stale page is an FTL mapping bug we want to catch).
    pub fn read_check(&self, ppn: Ppn) -> Result<(), NandError> {
        if ppn >= self.geometry.total_physical_pages() {
            return Err(NandError::OutOfRange(ppn));
        }
        if self.page_state(ppn) == PageState::Valid {
            Ok(())
        } else {
            Err(NandError::ReadInvalid(ppn))
        }
    }

    /// Checked read of `ppn`: the logic-bug validity check of
    /// [`FlashState::read_check`] plus the deterministic media outcome
    /// (clean / correctable-with-retries / uncorrectable) when a media
    /// model is attached. Perfect media always reads clean.
    pub fn read_page(&mut self, ppn: Ppn) -> Result<MediaOutcome, NandError> {
        self.read_check(ppn)?;
        let a = self.geometry.addr_of(ppn);
        let generation = self.planes[a.plane as usize].block(a.block).erase_count();
        match self.media.as_mut() {
            Some(m) => Ok(m.read(ppn, generation)),
            None => Ok(MediaOutcome::Clean),
        }
    }

    /// Erase `block` and return it to its plane's free pool. The block must
    /// contain no valid pages (GC must have relocated them).
    ///
    /// Returns `true` when the block went back to the pool, `false` when
    /// it was retired instead: worn out (erase limit), doomed by an
    /// earlier program failure, or hit by a media erase failure. Retired
    /// blocks are erased first so bad-block bookkeeping only ever holds
    /// pristine blocks (the state stays auditable); counting-wise an
    /// in-service retirement is a grown bad block.
    pub fn erase_and_pool(&mut self, block: BlockAddr) -> Result<bool, NandError> {
        let plane = &mut self.planes[block.plane as usize];
        if plane.in_free_pool(block.index) {
            return Err(NandError::EraseFreeBlock(block));
        }
        let b = plane.block_mut(block.index);
        assert_eq!(
            b.valid_pages(),
            0,
            "erasing block {}:{} with live data",
            block.plane,
            block.index
        );
        let generation = b.erase_count();
        b.erase();
        self.erases += 1;
        let gid = block.plane as u64 * self.geometry.blocks_per_plane as u64 + block.index as u64;
        let doomed = self.doomed.remove(&gid);
        let erase_failed = match self.media.as_mut() {
            Some(m) => m.erase(gid, generation) == MediaOutcome::EraseFail,
            None => false,
        };
        let plane = &mut self.planes[block.plane as usize];
        let worn = self
            .erase_limit
            .is_some_and(|lim| plane.block(block.index).erase_count() >= lim);
        if doomed || erase_failed {
            plane.retire(block.index);
            self.retired += 1;
            if let Some(m) = self.media.as_mut() {
                m.note_grown_bad();
            }
            Ok(false)
        } else if worn {
            plane.retire(block.index);
            self.retired += 1;
            Ok(false)
        } else {
            plane.return_free_block(block.index);
            Ok(true)
        }
    }

    /// Pop a free block from `plane`'s pool.
    pub fn allocate_free_block(&mut self, plane: PlaneId) -> Result<u32, NandError> {
        self.planes[plane as usize]
            .allocate_free_block()
            .ok_or(NandError::NoFreeBlock { plane })
    }

    /// Free-pool size of `plane`.
    pub fn free_blocks(&self, plane: PlaneId) -> u32 {
        self.planes[plane as usize].free_pool_len()
    }

    /// Total page programs performed (data + translation + GC).
    pub fn total_programs(&self) -> u64 {
        self.programs
    }

    /// Total parity-skip pages wasted.
    pub fn total_skips(&self) -> u64 {
        self.skips
    }

    /// Total block erases performed.
    pub fn total_erases(&self) -> u64 {
        self.erases
    }

    /// Wear summary across all blocks: (min, mean, max) erase counts.
    pub fn wear_summary(&self) -> (u32, f64, u32) {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        let mut n = 0u64;
        for p in &self.planes {
            for (_, b) in p.blocks() {
                min = min.min(b.erase_count());
                max = max.max(b.erase_count());
                sum += b.erase_count() as u64;
                n += 1;
            }
        }
        if n == 0 {
            (0, 0.0, 0)
        } else {
            (min, sum as f64 / n as f64, max)
        }
    }

    /// Total valid pages on the device.
    pub fn total_valid_pages(&self) -> u64 {
        self.planes.iter().map(|p| p.valid_pages()).sum()
    }

    /// Audit every plane.
    pub fn check(&self) -> Result<(), String> {
        for (i, p) in self.planes.iter().enumerate() {
            p.check().map_err(|e| format!("plane {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlashState {
        // 2 channels x 1 x 1 x 1 die x 2 planes = 4 planes.
        FlashState::new(Geometry::build_with_hierarchy(1, 2, 5.0, 2, 1, 1, 1, 2))
    }

    #[test]
    fn program_invalidate_erase_cycle() {
        let mut fs = small();
        let blk_idx = fs.allocate_free_block(0).unwrap();
        let blk = BlockAddr {
            plane: 0,
            index: blk_idx,
        };
        let addr = fs.program_next(blk).unwrap();
        let ppn = fs.geometry().ppn_of(addr);
        fs.read_check(ppn).unwrap();
        fs.invalidate(ppn).unwrap();
        assert!(matches!(fs.read_check(ppn), Err(NandError::ReadInvalid(_))));
        fs.erase_and_pool(blk).unwrap();
        assert_eq!(fs.total_erases(), 1);
        fs.check().unwrap();
    }

    #[test]
    fn double_invalidate_is_error() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 1,
            index: fs.allocate_free_block(1).unwrap(),
        };
        let addr = fs.program_next(blk).unwrap();
        let ppn = fs.geometry().ppn_of(addr);
        fs.invalidate(ppn).unwrap();
        assert!(fs.invalidate(ppn).is_err());
    }

    #[test]
    fn program_full_block_is_error() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        for _ in 0..fs.geometry().pages_per_block {
            fs.program_next(blk).unwrap();
        }
        assert!(matches!(fs.program_next(blk), Err(NandError::BlockFull(_))));
    }

    #[test]
    #[should_panic(expected = "live data")]
    fn erase_with_valid_pages_panics() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        fs.program_next(blk).unwrap();
        let _ = fs.erase_and_pool(blk);
    }

    #[test]
    fn erase_pooled_block_is_error() {
        let mut fs = small();
        assert!(matches!(
            fs.erase_and_pool(BlockAddr { plane: 0, index: 2 }),
            Err(NandError::EraseFreeBlock(_))
        ));
    }

    #[test]
    fn pool_underflow_is_error() {
        let mut fs = small();
        let n = fs.geometry().blocks_per_plane;
        for _ in 0..n {
            fs.allocate_free_block(0).unwrap();
        }
        assert!(matches!(
            fs.allocate_free_block(0),
            Err(NandError::NoFreeBlock { plane: 0 })
        ));
    }

    #[test]
    fn skip_counts_separately() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        fs.skip_next(blk).unwrap();
        fs.program_next(blk).unwrap();
        assert_eq!(fs.total_skips(), 1);
        assert_eq!(fs.total_programs(), 1);
        // The skipped page is at offset 0, the programmed one at 1.
        assert_eq!(fs.plane(0).block(blk.index).state(0), PageState::Invalid);
        assert_eq!(fs.plane(0).block(blk.index).state(1), PageState::Valid);
    }

    #[test]
    fn media_program_fail_consumes_page_and_dooms_block() {
        let mut fs = small();
        fs.attach_media(&FaultConfig {
            program_fail_prob: 1.0,
            ..FaultConfig::none()
        });
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        let a = fs.program_page(blk).unwrap();
        assert!(a.failed);
        assert_eq!(fs.plane(0).block(blk.index).state(0), PageState::Invalid);
        assert_eq!(fs.take_failed_attempts(), 1);
        assert_eq!(fs.take_failed_attempts(), 0, "drain resets the counter");
        // Consume the remaining pages (they all fail too), then erase:
        // the doomed block must be retired as grown bad, not pooled.
        while fs.plane(0).block(blk.index).next_free_page().is_some() {
            assert!(fs.program_page(blk).unwrap().failed);
        }
        let pooled = fs.erase_and_pool(blk).unwrap();
        assert!(!pooled);
        assert!(fs.plane(0).is_retired(blk.index));
        let c = fs.media_counters().unwrap();
        assert_eq!(c.grown_bad_blocks, 1);
        assert_eq!(c.program_fails as u32, fs.geometry().pages_per_block);
        fs.check().unwrap();
    }

    #[test]
    fn media_erase_fail_grows_bad_block() {
        let mut fs = small();
        fs.attach_media(&FaultConfig {
            erase_fail_prob: 1.0,
            ..FaultConfig::none()
        });
        let blk = BlockAddr {
            plane: 1,
            index: fs.allocate_free_block(1).unwrap(),
        };
        let a = fs.program_page(blk).unwrap();
        assert!(!a.failed);
        fs.invalidate(fs.geometry().ppn_of(a.addr)).unwrap();
        assert!(!fs.erase_and_pool(blk).unwrap());
        assert!(fs.plane(1).is_retired(blk.index));
        assert_eq!(fs.media_counters().unwrap().grown_bad_blocks, 1);
        fs.check().unwrap();
    }

    #[test]
    fn factory_bads_shrink_the_pool() {
        let mut fs = small();
        let planes = fs.geometry().total_planes();
        let before: u32 = (0..planes).map(|p| fs.free_blocks(p)).sum();
        fs.attach_media(&FaultConfig {
            factory_bad_frac: 0.1,
            seed: 3,
            ..FaultConfig::none()
        });
        let after: u32 = (0..planes).map(|p| fs.free_blocks(p)).sum();
        assert!(after < before, "factory bads must leave the pool");
        assert_eq!(
            fs.media_counters().unwrap().factory_bad_blocks,
            (before - after) as u64
        );
        assert_eq!(fs.retired_blocks(), (before - after) as u64);
        fs.check().unwrap();
    }

    #[test]
    fn media_outcomes_are_reproducible_across_devices() {
        let cfg = FaultConfig::storm(21);
        let run = || {
            let mut fs = small();
            fs.attach_media(&cfg);
            let blk = BlockAddr {
                plane: 0,
                index: fs.allocate_free_block(0).unwrap(),
            };
            let mut log = Vec::new();
            for _ in 0..fs.geometry().pages_per_block {
                let a = fs.program_page(blk).unwrap();
                log.push((a.addr.page, a.failed as u32));
                if !a.failed {
                    let ppn = fs.geometry().ppn_of(a.addr);
                    for _ in 0..3 {
                        log.push((ppn as u32, fs.read_page(ppn).unwrap().retry_steps()));
                    }
                }
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_media_reads_clean() {
        let mut fs = small();
        assert!(!fs.has_media());
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        let a = fs.program_page(blk).unwrap();
        assert!(!a.failed);
        let ppn = fs.geometry().ppn_of(a.addr);
        assert_eq!(fs.read_page(ppn).unwrap(), MediaOutcome::Clean);
        assert!(fs.media_counters().is_none());
        assert_eq!(fs.take_failed_attempts(), 0);
    }

    #[test]
    fn wear_summary_tracks_erases() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        for _ in 0..3 {
            let a = fs.program_next(blk).unwrap();
            fs.invalidate(fs.geometry().ppn_of(a)).unwrap();
            fs.erase_and_pool(blk).unwrap();
            // Re-allocate the same block: pool is FIFO so drain to it.
            while fs.allocate_free_block(0).unwrap() != blk.index {}
        }
        let (min, mean, max) = fs.wear_summary();
        assert_eq!(min, 0);
        assert_eq!(max, 3);
        assert!(mean > 0.0);
    }
}

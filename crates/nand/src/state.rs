//! Whole-device flash state: every plane's blocks and pools behind one
//! checked, PPN-level API.
//!
//! All FTLs mutate flash exclusively through [`FlashState`], so the NAND
//! invariants (sequential programming, erase-before-write, pool
//! consistency) are enforced — and property-tested — in exactly one place.

use crate::block::PageState;
use crate::error::NandError;
use crate::geometry::{BlockAddr, Geometry, PageAddr, PlaneId, Ppn};
use crate::plane::PlaneState;

/// Mutable state of the whole flash array.
#[derive(Debug, Clone)]
pub struct FlashState {
    geometry: Geometry,
    planes: Vec<PlaneState>,
    programs: u64,
    skips: u64,
    erases: u64,
    /// Erase cycles a block survives before wearing out (None = infinite).
    erase_limit: Option<u32>,
    retired: u64,
}

impl FlashState {
    /// A fully erased device of the given geometry.
    pub fn new(geometry: Geometry) -> Self {
        let planes = (0..geometry.total_planes())
            .map(|_| PlaneState::new(geometry.blocks_per_plane, geometry.pages_per_block))
            .collect();
        FlashState {
            geometry,
            planes,
            programs: 0,
            skips: 0,
            erases: 0,
            erase_limit: None,
            retired: 0,
        }
    }

    /// A device whose blocks wear out after `limit` erase cycles — the
    /// finite-erasure-cycles limitation of §I. Worn blocks are retired
    /// (bad-block management) instead of returning to the free pool.
    pub fn with_endurance(geometry: Geometry, limit: u32) -> Self {
        let mut fs = Self::new(geometry);
        fs.erase_limit = Some(limit);
        fs
    }

    /// Blocks permanently retired due to wear-out.
    pub fn retired_blocks(&self) -> u64 {
        self.retired
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Shared access to a plane.
    pub fn plane(&self, plane: PlaneId) -> &PlaneState {
        &self.planes[plane as usize]
    }

    /// Mutable access to a plane (tests and FTL internals).
    pub fn plane_mut(&mut self, plane: PlaneId) -> &mut PlaneState {
        &mut self.planes[plane as usize]
    }

    /// State of the page at `ppn`.
    pub fn page_state(&self, ppn: Ppn) -> PageState {
        let a = self.geometry.addr_of(ppn);
        self.planes[a.plane as usize].block(a.block).state(a.page)
    }

    /// Program the next sequential page of `block`, returning the page
    /// address written.
    pub fn program_next(&mut self, block: BlockAddr) -> Result<PageAddr, NandError> {
        let b = self.planes[block.plane as usize].block_mut(block.index);
        let off = b.program_next().ok_or(NandError::BlockFull(block))?;
        self.programs += 1;
        Ok(PageAddr {
            plane: block.plane,
            block: block.index,
            page: off,
        })
    }

    /// Skip (invalidate-without-programming) the next sequential page of
    /// `block` — DLOOP's parity-waste move. Returns the wasted address.
    pub fn skip_next(&mut self, block: BlockAddr) -> Result<PageAddr, NandError> {
        let b = self.planes[block.plane as usize].block_mut(block.index);
        let off = b.skip_next().ok_or(NandError::BlockFull(block))?;
        self.skips += 1;
        Ok(PageAddr {
            plane: block.plane,
            block: block.index,
            page: off,
        })
    }

    /// Invalidate the valid page at `ppn` (out-of-place update).
    pub fn invalidate(&mut self, ppn: Ppn) -> Result<(), NandError> {
        let a = self.geometry.addr_of(ppn);
        let ok = self.planes[a.plane as usize]
            .block_mut(a.block)
            .invalidate(a.page);
        if ok {
            Ok(())
        } else {
            Err(NandError::NotValid(a))
        }
    }

    /// Verify a read hits live data (simulation carries no payloads, but
    /// reading a stale page is an FTL mapping bug we want to catch).
    pub fn read_check(&self, ppn: Ppn) -> Result<(), NandError> {
        if ppn >= self.geometry.total_physical_pages() {
            return Err(NandError::OutOfRange(ppn));
        }
        if self.page_state(ppn) == PageState::Valid {
            Ok(())
        } else {
            Err(NandError::ReadInvalid(ppn))
        }
    }

    /// Erase `block` and return it to its plane's free pool. The block must
    /// contain no valid pages (GC must have relocated them).
    pub fn erase_and_pool(&mut self, block: BlockAddr) -> Result<(), NandError> {
        let plane = &mut self.planes[block.plane as usize];
        if plane.in_free_pool(block.index) {
            return Err(NandError::EraseFreeBlock(block));
        }
        let b = plane.block_mut(block.index);
        assert_eq!(
            b.valid_pages(),
            0,
            "erasing block {}:{} with live data",
            block.plane,
            block.index
        );
        b.erase();
        self.erases += 1;
        let worn = self
            .erase_limit
            .is_some_and(|lim| plane.block(block.index).erase_count() >= lim);
        if worn {
            plane.retire(block.index);
            self.retired += 1;
        } else {
            plane.return_free_block(block.index);
        }
        Ok(())
    }

    /// Pop a free block from `plane`'s pool.
    pub fn allocate_free_block(&mut self, plane: PlaneId) -> Result<u32, NandError> {
        self.planes[plane as usize]
            .allocate_free_block()
            .ok_or(NandError::NoFreeBlock { plane })
    }

    /// Free-pool size of `plane`.
    pub fn free_blocks(&self, plane: PlaneId) -> u32 {
        self.planes[plane as usize].free_pool_len()
    }

    /// Total page programs performed (data + translation + GC).
    pub fn total_programs(&self) -> u64 {
        self.programs
    }

    /// Total parity-skip pages wasted.
    pub fn total_skips(&self) -> u64 {
        self.skips
    }

    /// Total block erases performed.
    pub fn total_erases(&self) -> u64 {
        self.erases
    }

    /// Wear summary across all blocks: (min, mean, max) erase counts.
    pub fn wear_summary(&self) -> (u32, f64, u32) {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        let mut n = 0u64;
        for p in &self.planes {
            for (_, b) in p.blocks() {
                min = min.min(b.erase_count());
                max = max.max(b.erase_count());
                sum += b.erase_count() as u64;
                n += 1;
            }
        }
        if n == 0 {
            (0, 0.0, 0)
        } else {
            (min, sum as f64 / n as f64, max)
        }
    }

    /// Total valid pages on the device.
    pub fn total_valid_pages(&self) -> u64 {
        self.planes.iter().map(|p| p.valid_pages()).sum()
    }

    /// Audit every plane.
    pub fn check(&self) -> Result<(), String> {
        for (i, p) in self.planes.iter().enumerate() {
            p.check().map_err(|e| format!("plane {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlashState {
        // 2 channels x 1 x 1 x 1 die x 2 planes = 4 planes.
        FlashState::new(Geometry::build_with_hierarchy(1, 2, 5.0, 2, 1, 1, 1, 2))
    }

    #[test]
    fn program_invalidate_erase_cycle() {
        let mut fs = small();
        let blk_idx = fs.allocate_free_block(0).unwrap();
        let blk = BlockAddr {
            plane: 0,
            index: blk_idx,
        };
        let addr = fs.program_next(blk).unwrap();
        let ppn = fs.geometry().ppn_of(addr);
        fs.read_check(ppn).unwrap();
        fs.invalidate(ppn).unwrap();
        assert!(matches!(fs.read_check(ppn), Err(NandError::ReadInvalid(_))));
        fs.erase_and_pool(blk).unwrap();
        assert_eq!(fs.total_erases(), 1);
        fs.check().unwrap();
    }

    #[test]
    fn double_invalidate_is_error() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 1,
            index: fs.allocate_free_block(1).unwrap(),
        };
        let addr = fs.program_next(blk).unwrap();
        let ppn = fs.geometry().ppn_of(addr);
        fs.invalidate(ppn).unwrap();
        assert!(fs.invalidate(ppn).is_err());
    }

    #[test]
    fn program_full_block_is_error() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        for _ in 0..fs.geometry().pages_per_block {
            fs.program_next(blk).unwrap();
        }
        assert!(matches!(fs.program_next(blk), Err(NandError::BlockFull(_))));
    }

    #[test]
    #[should_panic(expected = "live data")]
    fn erase_with_valid_pages_panics() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        fs.program_next(blk).unwrap();
        let _ = fs.erase_and_pool(blk);
    }

    #[test]
    fn erase_pooled_block_is_error() {
        let mut fs = small();
        assert!(matches!(
            fs.erase_and_pool(BlockAddr { plane: 0, index: 2 }),
            Err(NandError::EraseFreeBlock(_))
        ));
    }

    #[test]
    fn pool_underflow_is_error() {
        let mut fs = small();
        let n = fs.geometry().blocks_per_plane;
        for _ in 0..n {
            fs.allocate_free_block(0).unwrap();
        }
        assert!(matches!(
            fs.allocate_free_block(0),
            Err(NandError::NoFreeBlock { plane: 0 })
        ));
    }

    #[test]
    fn skip_counts_separately() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        fs.skip_next(blk).unwrap();
        fs.program_next(blk).unwrap();
        assert_eq!(fs.total_skips(), 1);
        assert_eq!(fs.total_programs(), 1);
        // The skipped page is at offset 0, the programmed one at 1.
        assert_eq!(fs.plane(0).block(blk.index).state(0), PageState::Invalid);
        assert_eq!(fs.plane(0).block(blk.index).state(1), PageState::Valid);
    }

    #[test]
    fn wear_summary_tracks_erases() {
        let mut fs = small();
        let blk = BlockAddr {
            plane: 0,
            index: fs.allocate_free_block(0).unwrap(),
        };
        for _ in 0..3 {
            let a = fs.program_next(blk).unwrap();
            fs.invalidate(fs.geometry().ppn_of(a)).unwrap();
            fs.erase_and_pool(blk).unwrap();
            // Re-allocate the same block: pool is FIFO so drain to it.
            while fs.allocate_free_block(0).unwrap() != blk.index {}
        }
        let (min, mean, max) = fs.wear_summary();
        assert_eq!(min, 0);
        assert_eq!(max, 3);
        assert!(mean > 0.0);
    }
}

//! SSD geometry: the channel / package / chip / die / plane / block / page
//! hierarchy of Fig. 1 in the paper, with address arithmetic.
//!
//! Physical pages are numbered with a flat **PPN** (physical page number):
//!
//! ```text
//! ppn = plane * pages_per_plane + block_in_plane * pages_per_block + page_in_block
//! ```
//!
//! and planes are numbered so that consecutive plane indices walk the
//! hierarchy die-first:
//!
//! ```text
//! plane = (((channel * packages + package) * chips + chip) * dies + die) * planes + plane_in_die
//! ```
//!
//! A plane's *physical* blocks split into `data_blocks_per_plane`
//! user-visible blocks plus extra (over-provisioned) blocks, per §III.C:
//! "An off-shelf flash SSD usually has a few extra blocks, which are
//! invisible to users."

use std::fmt;

/// A logical page number, as seen by the host after LBA→page alignment.
pub type Lpn = u64;

/// A flat physical page number.
pub type Ppn = u64;

/// Index of a plane across the whole SSD.
pub type PlaneId = u32;

/// Index of a die across the whole SSD.
pub type DieId = u32;

/// Index of a channel.
pub type ChannelId = u32;

/// A physical block, addressed as (plane, index-within-plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// Owning plane.
    pub plane: PlaneId,
    /// Block index within the plane (`0..blocks_per_plane`).
    pub index: u32,
}

/// A physical page, addressed as (plane, block-in-plane, page-in-block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageAddr {
    /// Owning plane.
    pub plane: PlaneId,
    /// Block index within the plane.
    pub block: u32,
    /// Page offset within the block (`0..pages_per_block`).
    pub page: u32,
}

impl PageAddr {
    /// The block containing this page.
    pub fn block_addr(self) -> BlockAddr {
        BlockAddr {
            plane: self.plane,
            index: self.block,
        }
    }

    /// Page-offset parity — the quantity constrained by the copy-back
    /// same-parity rule (§III.A): source and destination offsets must both
    /// be odd or both be even.
    pub fn parity(self) -> u32 {
        self.page & 1
    }
}

/// Full physical geometry of the simulated SSD.
///
/// ```
/// use dloop_nand::Geometry;
///
/// let g = Geometry::paper_default(); // Table I: 8 GB, 2 KB pages, 64 planes
/// assert_eq!(g.total_planes(), 64);
///
/// // PPN arithmetic round-trips.
/// let addr = g.addr_of(123_456);
/// assert_eq!(g.ppn_of(addr), 123_456);
///
/// // Equation (1): the DLOOP home plane of a logical page.
/// assert_eq!(g.dloop_plane_of_lpn(65), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    /// Independent external channels (paper Fig. 1a shows 8).
    pub channels: u32,
    /// Packages sharing each channel.
    pub packages_per_channel: u32,
    /// Chips per package (share the package I/O bus).
    pub chips_per_package: u32,
    /// Dies per chip (each die has its own ready/busy signal).
    pub dies_per_chip: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Physical blocks per plane — data blocks plus extra blocks.
    pub blocks_per_plane: u32,
    /// User-visible (data) blocks per plane.
    pub data_blocks_per_plane: u32,
    /// Pages per block (Table I: 64).
    pub pages_per_block: u32,
    /// Page size in bytes (Table I default: 2 KB).
    pub page_size: u32,
}

impl Geometry {
    /// The paper's fixed parameters (Table I): 8 GB SSD, 2 KB pages,
    /// 64 pages/block, 3 % extra blocks, on an 8-channel / 2-die /
    /// 4-plane-per-die device (64 planes).
    pub fn paper_default() -> Self {
        Geometry::build(8, 2, 3.0)
    }

    /// Build a geometry for `capacity_gb` user gigabytes with `page_kb`
    /// pages and `extra_pct` percent extra blocks, on the default
    /// 8-channel × 1-package × 1-chip × 2-die × 4-plane hierarchy.
    ///
    /// The user capacity is rounded to a whole number of blocks per plane.
    pub fn build(capacity_gb: u32, page_kb: u32, extra_pct: f64) -> Self {
        Self::build_with_hierarchy(capacity_gb, page_kb, extra_pct, 8, 1, 1, 2, 4)
    }

    /// Fully parameterised construction.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_hierarchy(
        capacity_gb: u32,
        page_kb: u32,
        extra_pct: f64,
        channels: u32,
        packages_per_channel: u32,
        chips_per_package: u32,
        dies_per_chip: u32,
        planes_per_die: u32,
    ) -> Self {
        assert!(capacity_gb > 0 && page_kb > 0);
        assert!(extra_pct >= 0.0);
        let pages_per_block = 64;
        let planes =
            channels * packages_per_channel * chips_per_package * dies_per_chip * planes_per_die;
        let page_size = page_kb * 1024;
        let capacity_bytes = capacity_gb as u64 * 1024 * 1024 * 1024;
        let block_bytes = (page_size * pages_per_block) as u64;
        let total_data_blocks = capacity_bytes / block_bytes;
        let data_blocks_per_plane = (total_data_blocks / planes as u64).max(8) as u32;
        let extra = ((data_blocks_per_plane as f64 * extra_pct / 100.0).ceil() as u32).max(4);
        Geometry {
            channels,
            packages_per_channel,
            chips_per_package,
            dies_per_chip,
            planes_per_die,
            blocks_per_plane: data_blocks_per_plane + extra,
            data_blocks_per_plane,
            pages_per_block,
            page_size,
        }
    }

    /// Total number of planes in the SSD.
    pub fn total_planes(&self) -> u32 {
        self.channels
            * self.packages_per_channel
            * self.chips_per_package
            * self.dies_per_chip
            * self.planes_per_die
    }

    /// Total number of dies in the SSD.
    pub fn total_dies(&self) -> u32 {
        self.channels * self.packages_per_channel * self.chips_per_package * self.dies_per_chip
    }

    /// Extra (over-provisioned) blocks per plane.
    pub fn extra_blocks_per_plane(&self) -> u32 {
        self.blocks_per_plane - self.data_blocks_per_plane
    }

    /// Physical pages in one plane.
    pub fn pages_per_plane(&self) -> u64 {
        self.blocks_per_plane as u64 * self.pages_per_block as u64
    }

    /// Physical pages in the whole device.
    pub fn total_physical_pages(&self) -> u64 {
        self.pages_per_plane() * self.total_planes() as u64
    }

    /// User-visible logical pages (the LPN space).
    pub fn user_pages(&self) -> u64 {
        self.data_blocks_per_plane as u64 * self.pages_per_block as u64 * self.total_planes() as u64
    }

    /// User-visible capacity in bytes.
    pub fn user_capacity_bytes(&self) -> u64 {
        self.user_pages() * self.page_size as u64
    }

    /// The die owning `plane`.
    pub fn die_of_plane(&self, plane: PlaneId) -> DieId {
        plane / self.planes_per_die
    }

    /// The channel owning `plane`.
    pub fn channel_of_plane(&self, plane: PlaneId) -> ChannelId {
        let planes_per_channel = self.total_planes() / self.channels;
        plane / planes_per_channel
    }

    /// Flatten a page address to a PPN.
    pub fn ppn_of(&self, addr: PageAddr) -> Ppn {
        debug_assert!(addr.plane < self.total_planes());
        debug_assert!(addr.block < self.blocks_per_plane);
        debug_assert!(addr.page < self.pages_per_block);
        addr.plane as u64 * self.pages_per_plane()
            + addr.block as u64 * self.pages_per_block as u64
            + addr.page as u64
    }

    /// Decompose a PPN into its page address.
    pub fn addr_of(&self, ppn: Ppn) -> PageAddr {
        debug_assert!(ppn < self.total_physical_pages(), "ppn {ppn} out of range");
        let ppp = self.pages_per_plane();
        let plane = (ppn / ppp) as PlaneId;
        let in_plane = ppn % ppp;
        PageAddr {
            plane,
            block: (in_plane / self.pages_per_block as u64) as u32,
            page: (in_plane % self.pages_per_block as u64) as u32,
        }
    }

    /// The plane a PPN lives on.
    pub fn plane_of_ppn(&self, ppn: Ppn) -> PlaneId {
        (ppn / self.pages_per_plane()) as PlaneId
    }

    /// DLOOP's Equation (1): `plane_no = LPN % No_of_planes` — the static
    /// LPN→plane assignment that spreads successive logical pages across
    /// all planes.
    pub fn dloop_plane_of_lpn(&self, lpn: Lpn) -> PlaneId {
        (lpn % self.total_planes() as u64) as PlaneId
    }

    /// Iterate all plane ids.
    pub fn planes(&self) -> impl Iterator<Item = PlaneId> {
        0..self.total_planes()
    }

    /// Number of mapping entries a translation page holds (DFTL-style:
    /// page_size / 8-byte entries, i.e. 256 for a 2 KB page).
    pub fn mappings_per_translation_page(&self) -> u64 {
        (self.page_size / 8) as u64
    }

    /// Number of translation pages needed to cover the LPN space.
    pub fn translation_page_count(&self) -> u64 {
        self.user_pages()
            .div_ceil(self.mappings_per_translation_page())
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GiB user ({} planes x {} blocks [{} data + {} extra] x {} pages x {} B)",
            self.user_capacity_bytes() as f64 / (1u64 << 30) as f64,
            self.total_planes(),
            self.blocks_per_plane,
            self.data_blocks_per_plane,
            self.extra_blocks_per_plane(),
            self.pages_per_block,
            self.page_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let g = Geometry::paper_default();
        assert_eq!(g.total_planes(), 64);
        assert_eq!(g.total_dies(), 16);
        assert_eq!(g.page_size, 2048);
        assert_eq!(g.pages_per_block, 64);
        // 8 GB / (64 planes * 128 KB blocks) = 1024 data blocks per plane.
        assert_eq!(g.data_blocks_per_plane, 1024);
        // 3% extra = 31 blocks, ceil -> 31.
        assert_eq!(g.extra_blocks_per_plane(), 31);
        assert_eq!(g.user_capacity_bytes(), 8 << 30);
    }

    #[test]
    fn ppn_round_trip_exhaustive_small() {
        let g = Geometry::build_with_hierarchy(1, 2, 5.0, 2, 1, 1, 2, 2);
        for ppn in 0..g.total_physical_pages() {
            let addr = g.addr_of(ppn);
            assert_eq!(g.ppn_of(addr), ppn);
            assert_eq!(g.plane_of_ppn(ppn), addr.plane);
        }
    }

    #[test]
    fn plane_hierarchy_mapping() {
        let g = Geometry::paper_default(); // 8 ch x 2 die x 4 plane
        assert_eq!(g.die_of_plane(0), 0);
        assert_eq!(g.die_of_plane(3), 0);
        assert_eq!(g.die_of_plane(4), 1);
        assert_eq!(g.die_of_plane(7), 1);
        assert_eq!(g.die_of_plane(8), 2);
        // 64 planes / 8 channels = 8 planes per channel.
        assert_eq!(g.channel_of_plane(0), 0);
        assert_eq!(g.channel_of_plane(7), 0);
        assert_eq!(g.channel_of_plane(8), 1);
        assert_eq!(g.channel_of_plane(63), 7);
    }

    #[test]
    fn dloop_plane_assignment_is_round_robin() {
        let g = Geometry::paper_default();
        let p = g.total_planes() as u64;
        assert_eq!(g.dloop_plane_of_lpn(0), 0);
        assert_eq!(g.dloop_plane_of_lpn(1), 1);
        assert_eq!(g.dloop_plane_of_lpn(p), 0);
        assert_eq!(g.dloop_plane_of_lpn(p + 5), 5);
    }

    #[test]
    fn parity_of_page_addr() {
        let even = PageAddr {
            plane: 0,
            block: 3,
            page: 2,
        };
        let odd = PageAddr {
            plane: 0,
            block: 3,
            page: 5,
        };
        assert_eq!(even.parity(), 0);
        assert_eq!(odd.parity(), 1);
    }

    #[test]
    fn capacity_scales_linearly() {
        let g8 = Geometry::build(8, 2, 3.0);
        let g16 = Geometry::build(16, 2, 3.0);
        assert_eq!(g16.data_blocks_per_plane, 2 * g8.data_blocks_per_plane);
        assert_eq!(g16.user_capacity_bytes(), 2 * g8.user_capacity_bytes());
    }

    #[test]
    fn page_size_trades_blocks() {
        // Same capacity, bigger pages -> fewer blocks needed.
        let g2 = Geometry::build(8, 2, 3.0);
        let g4 = Geometry::build(8, 4, 3.0);
        assert_eq!(g4.data_blocks_per_plane, g2.data_blocks_per_plane / 2);
        assert_eq!(g4.user_capacity_bytes(), g2.user_capacity_bytes());
    }

    #[test]
    fn translation_page_math() {
        let g = Geometry::paper_default();
        assert_eq!(g.mappings_per_translation_page(), 256);
        assert_eq!(g.translation_page_count(), g.user_pages().div_ceil(256));
    }

    #[test]
    fn extra_blocks_respect_percentage() {
        for pct in [3.0, 5.0, 7.0, 10.0] {
            let g = Geometry::build(8, 2, pct);
            let expect = ((g.data_blocks_per_plane as f64 * pct / 100.0).ceil() as u32).max(4);
            assert_eq!(g.extra_blocks_per_plane(), expect);
        }
    }
}

//! Error type for flash-state mutations.
//!
//! An FTL driving the state through an invalid transition (programming a
//! full block, double-invalidating a page, erasing an already-free block…)
//! is a logic bug in the FTL, not an I/O error — these errors exist so that
//! tests and audits can observe the violation instead of corrupting state.

use crate::geometry::{BlockAddr, PageAddr, Ppn};
use std::fmt;

/// Things an FTL can do wrong against the flash state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NandError {
    /// Programming past the end of a block.
    BlockFull(BlockAddr),
    /// Invalidate on a page that is not valid.
    NotValid(PageAddr),
    /// Read of a page that holds no valid data.
    ReadInvalid(Ppn),
    /// Erase of a block that is already in the free pool.
    EraseFreeBlock(BlockAddr),
    /// Free-pool underflow: an allocation was requested from an empty pool.
    NoFreeBlock {
        /// Plane whose pool ran dry.
        plane: u32,
    },
    /// Skip (parity-waste) on a page that is not free.
    SkipNonFree(PageAddr),
    /// An address outside the configured geometry.
    OutOfRange(Ppn),
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::BlockFull(b) => {
                write!(f, "program on full block {}:{}", b.plane, b.index)
            }
            NandError::NotValid(p) => write!(
                f,
                "invalidate on non-valid page {}:{}:{}",
                p.plane, p.block, p.page
            ),
            NandError::ReadInvalid(ppn) => write!(f, "read of invalid ppn {ppn}"),
            NandError::EraseFreeBlock(b) => {
                write!(f, "erase of free-pool block {}:{}", b.plane, b.index)
            }
            NandError::NoFreeBlock { plane } => {
                write!(f, "free-block pool underflow on plane {plane}")
            }
            NandError::SkipNonFree(p) => write!(
                f,
                "parity skip on non-free page {}:{}:{}",
                p.plane, p.block, p.page
            ),
            NandError::OutOfRange(ppn) => write!(f, "ppn {ppn} outside geometry"),
        }
    }
}

impl std::error::Error for NandError {}

//! Error types for flash-state mutations — two strictly separate
//! namespaces:
//!
//! * [`NandError`] — an FTL driving the state through an invalid
//!   transition (programming a full block, double-invalidating a page,
//!   erasing an already-free block…). These are **logic bugs in the FTL**,
//!   never media events; they exist so tests and audits can observe the
//!   violation instead of corrupting state, and a correct FTL never sees
//!   one regardless of the fault plan.
//! * [`MediaError`] — the **media misbehaving** under a `dloop-faults`
//!   plan: an uncorrectable read, a program-status failure, an erase
//!   failure. These are expected in-service events a real controller
//!   recovers from (re-program elsewhere, retire the block, account the
//!   data loss); they are reported as [`MediaOutcome`]s on the checked
//!   fast path and as `MediaError` where an `Error` impl is needed.

use crate::geometry::{BlockAddr, PageAddr, Ppn};
use dloop_faults::MediaOutcome;
use std::fmt;

/// Things an FTL can do wrong against the flash state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NandError {
    /// Programming past the end of a block.
    BlockFull(BlockAddr),
    /// Invalidate on a page that is not valid.
    NotValid(PageAddr),
    /// Read of a page that holds no valid data.
    ReadInvalid(Ppn),
    /// Erase of a block that is already in the free pool.
    EraseFreeBlock(BlockAddr),
    /// Free-pool underflow: an allocation was requested from an empty pool.
    NoFreeBlock {
        /// Plane whose pool ran dry.
        plane: u32,
    },
    /// Skip (parity-waste) on a page that is not free.
    SkipNonFree(PageAddr),
    /// An address outside the configured geometry.
    OutOfRange(Ppn),
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::BlockFull(b) => {
                write!(f, "program on full block {}:{}", b.plane, b.index)
            }
            NandError::NotValid(p) => write!(
                f,
                "invalidate on non-valid page {}:{}:{}",
                p.plane, p.block, p.page
            ),
            NandError::ReadInvalid(ppn) => write!(f, "read of invalid ppn {ppn}"),
            NandError::EraseFreeBlock(b) => {
                write!(f, "erase of free-pool block {}:{}", b.plane, b.index)
            }
            NandError::NoFreeBlock { plane } => {
                write!(f, "free-block pool underflow on plane {plane}")
            }
            NandError::SkipNonFree(p) => write!(
                f,
                "parity skip on non-free page {}:{}:{}",
                p.plane, p.block, p.page
            ),
            NandError::OutOfRange(ppn) => write!(f, "ppn {ppn} outside geometry"),
        }
    }
}

impl std::error::Error for NandError {}

/// A media fault surfaced as an error value (see the module doc for the
/// namespace split). Unlike [`NandError`], a `MediaError` does not mean
/// the FTL did anything wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaError {
    /// A read exhausted the retry ladder; the page's data is lost.
    UncorrectableRead(Ppn),
    /// A page program reported status failure; the page is consumed and
    /// must be re-programmed elsewhere.
    ProgramFail(PageAddr),
    /// A block erase failed; the block must be retired (grown bad).
    EraseFail(BlockAddr),
}

impl MediaError {
    /// Build the error corresponding to a failing [`MediaOutcome`], or
    /// `None` for the successful outcomes.
    pub fn from_read_outcome(outcome: MediaOutcome, ppn: Ppn) -> Option<Self> {
        match outcome {
            MediaOutcome::Uncorrectable => Some(MediaError::UncorrectableRead(ppn)),
            _ => None,
        }
    }
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaError::UncorrectableRead(ppn) => {
                write!(
                    f,
                    "uncorrectable read at ppn {ppn} (retry ladder exhausted)"
                )
            }
            MediaError::ProgramFail(p) => write!(
                f,
                "program-status failure at page {}:{}:{}",
                p.plane, p.block, p.page
            ),
            MediaError::EraseFail(b) => {
                write!(f, "erase failure on block {}:{}", b.plane, b.index)
            }
        }
    }
}

impl std::error::Error for MediaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_errors_display_and_convert() {
        let e = MediaError::UncorrectableRead(42);
        assert!(e.to_string().contains("uncorrectable"));
        let p = MediaError::ProgramFail(PageAddr {
            plane: 1,
            block: 2,
            page: 3,
        });
        assert!(p.to_string().contains("1:2:3"));
        let b = MediaError::EraseFail(BlockAddr { plane: 0, index: 9 });
        assert!(b.to_string().contains("0:9"));
        assert_eq!(
            MediaError::from_read_outcome(MediaOutcome::Uncorrectable, 7),
            Some(MediaError::UncorrectableRead(7))
        );
        assert_eq!(MediaError::from_read_outcome(MediaOutcome::Clean, 7), None);
        assert_eq!(
            MediaError::from_read_outcome(MediaOutcome::Correctable { retry_steps: 2 }, 7),
            None
        );
        // Both namespaces implement std::error::Error.
        fn is_error<E: std::error::Error>(_e: &E) {}
        is_error(&e);
        is_error(&NandError::OutOfRange(1));
    }
}

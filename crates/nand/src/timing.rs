//! NAND operation latencies (Table I of the paper) and derived costs.
//!
//! | parameter | value |
//! |---|---|
//! | page read (cell → register) | 25 µs |
//! | page program (register → cell) | 200 µs |
//! | block erase | 2000 µs |
//! | bus transfer | 0.025 µs / byte (≈ 50 µs for a 2 KB page) |
//! | command/address cycle | 0.2 µs (the paper calls it negligible but we model it) |
//!
//! §III.A works these into the two copy costs the whole paper hinges on:
//! an **inter-plane copy** is read + transfer-out + transfer-in + program
//! (≈ 325 µs at 2 KB) while an **intra-plane copy-back** is read + program
//! only (225 µs), a 30.7 % saving that also leaves the external bus free.

use dloop_simkit::SimDuration;

/// Device latency parameters.
///
/// ```
/// use dloop_nand::TimingConfig;
///
/// let t = TimingConfig::paper_default();
/// // SIII.A: copy-back 225 us vs inter-plane ~327 us at 2 KB pages.
/// assert_eq!(t.copyback_service().as_micros_f64(), 225.2);
/// assert!(t.copyback_saving(2048) > 0.28);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingConfig {
    /// Cell array → data register read time.
    pub page_read: SimDuration,
    /// Data register → cell array program time.
    pub page_program: SimDuration,
    /// Whole-block erase time.
    pub block_erase: SimDuration,
    /// External/serial bus transfer time per byte.
    pub per_byte_transfer: SimDuration,
    /// Command + address cycle overhead per operation.
    pub command_overhead: SimDuration,
    /// When set, every page transfer costs this flat duration regardless
    /// of page size, instead of `per_byte_transfer x bytes`. The paper's
    /// Fig. 9 trend (MRT falling with page size) is only consistent with
    /// such a constant per-page cost; this switch lets the harness
    /// demonstrate that (see EXPERIMENTS.md).
    pub fixed_page_transfer: Option<SimDuration>,
    /// Extra sensing overhead per read-retry ladder step (threshold shift
    /// + command), on top of the re-read itself.
    pub read_retry_step: SimDuration,
    /// ECC soft-decode time charged once per retry step (the step-0 hard
    /// decode is folded into `page_read`, so zero-BER reads cost exactly
    /// what they did before the fault subsystem existed).
    pub ecc_decode: SimDuration,
}

impl TimingConfig {
    /// Table I values.
    pub fn paper_default() -> Self {
        TimingConfig {
            page_read: SimDuration::from_micros(25),
            page_program: SimDuration::from_micros(200),
            block_erase: SimDuration::from_micros(2000),
            per_byte_transfer: SimDuration::from_nanos(25), // 0.025 us
            command_overhead: SimDuration::from_nanos(200), // 0.2 us
            fixed_page_transfer: None,
            read_retry_step: SimDuration::from_micros(5),
            ecc_decode: SimDuration::from_micros(10),
        }
    }

    /// Table-I latencies but with the flat ~50 us page transfer the paper
    /// quotes in prose ("Transferring one page data … usually takes
    /// 50 us"), independent of page size.
    pub fn paper_fixed_transfer() -> Self {
        TimingConfig {
            fixed_page_transfer: Some(SimDuration::from_micros(50)),
            ..Self::paper_default()
        }
    }

    /// Bus time to move one page of `page_size` bytes.
    pub fn page_transfer(&self, page_size: u32) -> SimDuration {
        match self.fixed_page_transfer {
            Some(d) => d,
            None => SimDuration::from_nanos(self.per_byte_transfer.as_nanos() * page_size as u64),
        }
    }

    /// Total service time of an isolated page read (array read + bus out).
    pub fn read_service(&self, page_size: u32) -> SimDuration {
        self.command_overhead + self.page_read + self.page_transfer(page_size)
    }

    /// Total service time of an isolated page write (bus in + program).
    pub fn write_service(&self, page_size: u32) -> SimDuration {
        self.command_overhead + self.page_transfer(page_size) + self.page_program
    }

    /// Plane-array time added by `steps` read-retry ladder steps: each
    /// step re-senses the page (threshold shift + array read) and runs a
    /// soft ECC decode. Zero steps cost exactly zero.
    pub fn read_retry_overhead(&self, steps: u32) -> SimDuration {
        SimDuration::from_nanos(
            steps as u64 * (self.read_retry_step + self.page_read + self.ecc_decode).as_nanos(),
        )
    }

    /// Service time of an intra-plane copy-back: read into the plane data
    /// register, program back out — no bus traffic (§III.A: 225 µs).
    pub fn copyback_service(&self) -> SimDuration {
        self.command_overhead + self.page_read + self.page_program
    }

    /// Service time of a traditional inter-plane copy: the page travels up
    /// to the controller and back down (§III.A: 325 µs at 2 KB).
    pub fn interplane_copy_service(&self, page_size: u32) -> SimDuration {
        self.command_overhead
            + self.page_read
            + self.page_transfer(page_size)
            + self.page_transfer(page_size)
            + self.page_program
    }

    /// Fractional saving of copy-back over inter-plane copy (≈ 0.307 at
    /// 2 KB pages with Table-I latencies).
    pub fn copyback_saving(&self, page_size: u32) -> f64 {
        let inter = self.interplane_copy_service(page_size).as_nanos() as f64;
        let intra = self.copyback_service().as_nanos() as f64;
        (inter - intra) / inter
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_service_times() {
        let t = TimingConfig::paper_default();
        // 2 KB transfer = 2048 * 25 ns = 51.2 us (the paper rounds to 50).
        assert_eq!(t.page_transfer(2048).as_nanos(), 51_200);
        // Copy-back = 25 + 200 (+0.2 cmd) us.
        assert_eq!(t.copyback_service().as_micros_f64(), 225.2);
        // Inter-plane = 25 + 51.2 + 51.2 + 200 (+0.2) us.
        assert!((t.interplane_copy_service(2048).as_micros_f64() - 327.6).abs() < 1e-9);
    }

    #[test]
    fn copyback_saving_close_to_paper() {
        let t = TimingConfig::paper_default();
        let saving = t.copyback_saving(2048);
        // Paper quotes 30.7% with its rounded 50 us transfers; exact Table-I
        // arithmetic gives ~31.3%.
        assert!(
            (0.28..=0.34).contains(&saving),
            "saving {saving} out of expected band"
        );
    }

    #[test]
    fn bigger_pages_make_copyback_relatively_better() {
        let t = TimingConfig::paper_default();
        assert!(t.copyback_saving(16 * 1024) > t.copyback_saving(2 * 1024));
    }

    #[test]
    fn fixed_transfer_is_size_independent() {
        let t = TimingConfig::paper_fixed_transfer();
        assert_eq!(t.page_transfer(2048), t.page_transfer(16 * 1024));
        assert_eq!(t.page_transfer(2048).as_micros_f64(), 50.0);
        // Copy-back is unaffected (no bus phase).
        assert_eq!(
            t.copyback_service(),
            TimingConfig::paper_default().copyback_service()
        );
    }

    #[test]
    fn read_retry_ladder_costs() {
        let t = TimingConfig::paper_default();
        assert_eq!(t.read_retry_overhead(0).as_nanos(), 0);
        let one = t.read_retry_overhead(1);
        assert_eq!(
            one.as_nanos(),
            (t.read_retry_step + t.page_read + t.ecc_decode).as_nanos()
        );
        assert_eq!(t.read_retry_overhead(3).as_nanos(), 3 * one.as_nanos());
    }

    #[test]
    fn read_write_service_shapes() {
        let t = TimingConfig::paper_default();
        assert!(t.write_service(2048) > t.read_service(2048));
        assert_eq!(
            t.read_service(2048),
            t.command_overhead + t.page_read + t.page_transfer(2048)
        );
    }
}

//! Per-operation energy model.
//!
//! The paper motivates flash SSDs partly by "low energy-consumption"
//! (§I) but does not evaluate energy. This module adds the standard
//! component model used by FlashSim-family simulators: each operation
//! charges a fixed energy derived from its active current and duration,
//! letting the harness compare FTLs by Joules as well as milliseconds —
//! copy-back wins twice, once on time and once by never driving the bus.

use crate::timing::TimingConfig;
use dloop_simkit::SimDuration;

/// Energy parameters, in nanojoules per operation component.
///
/// Defaults follow the commonly cited Micron SLC datasheet ballpark the
/// FlashSim papers use: ~25 mA array current at 3.3 V during read/program/
/// erase, ~5 mA during bus transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyConfig {
    /// Power drawn while the array performs a read/program/erase, in mW.
    pub array_active_mw: f64,
    /// Power drawn while the bus transfers data, in mW.
    pub bus_active_mw: f64,
}

impl EnergyConfig {
    /// Datasheet-ballpark defaults (82.5 mW array, 16.5 mW bus).
    pub fn paper_default() -> Self {
        EnergyConfig {
            array_active_mw: 82.5,
            bus_active_mw: 16.5,
        }
    }

    fn nj(mw: f64, d: SimDuration) -> f64 {
        // mW * ns = picojoule; /1000 -> nanojoule.
        mw * d.as_nanos() as f64 / 1e3
    }

    /// Energy of one page read (array + bus out), in nJ.
    pub fn read_nj(&self, t: &TimingConfig, page_size: u32) -> f64 {
        Self::nj(self.array_active_mw, t.command_overhead + t.page_read)
            + Self::nj(self.bus_active_mw, t.page_transfer(page_size))
    }

    /// Energy of one page program (bus in + array), in nJ.
    pub fn write_nj(&self, t: &TimingConfig, page_size: u32) -> f64 {
        Self::nj(
            self.bus_active_mw,
            t.command_overhead + t.page_transfer(page_size),
        ) + Self::nj(self.array_active_mw, t.page_program)
    }

    /// Energy of one block erase, in nJ.
    pub fn erase_nj(&self, t: &TimingConfig) -> f64 {
        Self::nj(self.array_active_mw, t.command_overhead + t.block_erase)
    }

    /// Energy of one intra-plane copy-back, in nJ — no bus component.
    pub fn copyback_nj(&self, t: &TimingConfig) -> f64 {
        Self::nj(self.array_active_mw, t.copyback_service())
    }

    /// Energy of one traditional inter-plane copy, in nJ.
    pub fn interplane_copy_nj(&self, t: &TimingConfig, page_size: u32) -> f64 {
        self.read_nj(t, page_size) + self.write_nj(t, page_size)
    }

    /// Total energy of an operation mix, in millijoules.
    pub fn total_mj(
        &self,
        t: &TimingConfig,
        page_size: u32,
        counters: &crate::hardware::OpCounters,
    ) -> f64 {
        (counters.reads as f64 * self.read_nj(t, page_size)
            + counters.writes as f64 * self.write_nj(t, page_size)
            + counters.erases as f64 * self.erase_nj(t)
            + counters.copybacks as f64 * self.copyback_nj(t)
            + counters.interplane_copies as f64 * self.interplane_copy_nj(t, page_size))
            / 1e6
    }
}

impl Default for EnergyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::OpCounters;

    fn cfg() -> (EnergyConfig, TimingConfig) {
        (EnergyConfig::paper_default(), TimingConfig::paper_default())
    }

    #[test]
    fn copyback_saves_energy_over_interplane() {
        let (e, t) = cfg();
        let cb = e.copyback_nj(&t);
        let inter = e.interplane_copy_nj(&t, 2048);
        assert!(cb < inter, "copy-back {cb} nJ vs inter-plane {inter} nJ");
        // The array current dominates, so the energy saving is real but
        // smaller than the latency saving (no bus energy at all).
        assert!((inter - cb) / inter > 0.05);
    }

    #[test]
    fn energy_scales_with_duration() {
        let (e, t) = cfg();
        assert!(e.erase_nj(&t) > e.write_nj(&t, 2048));
        assert!(e.write_nj(&t, 2048) > e.read_nj(&t, 2048));
    }

    #[test]
    fn total_mix() {
        let (e, t) = cfg();
        let counters = OpCounters {
            reads: 10,
            writes: 5,
            erases: 1,
            copybacks: 2,
            interplane_copies: 1,
            read_retry_steps: 0,
        };
        let total = e.total_mj(&t, 2048, &counters);
        let by_hand = (10.0 * e.read_nj(&t, 2048)
            + 5.0 * e.write_nj(&t, 2048)
            + e.erase_nj(&t)
            + 2.0 * e.copyback_nj(&t)
            + e.interplane_copy_nj(&t, 2048))
            / 1e6;
        assert!((total - by_hand).abs() < 1e-12);
    }

    #[test]
    fn bigger_pages_cost_more_bus_energy() {
        let (e, t) = cfg();
        assert!(e.read_nj(&t, 16 * 1024) > e.read_nj(&t, 2 * 1024));
        // Copy-back is page-size independent (register to register).
        assert_eq!(e.copyback_nj(&t), e.copyback_nj(&t));
    }
}

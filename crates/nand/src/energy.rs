//! Integer-exact per-operation energy model.
//!
//! The paper motivates flash SSDs partly by "low energy-consumption"
//! (§I) but does not evaluate energy. This module adds the standard
//! component model used by FlashSim-family simulators: each operation
//! charges a fixed energy derived from its active power and duration,
//! letting the harness compare FTLs by Joules as well as milliseconds —
//! copy-back wins twice, once on time and once by never driving the bus.
//!
//! ## Fixed-point rules
//!
//! All accounting is integer arithmetic, end to end:
//!
//! * power is configured in **microwatts** (`u64`),
//! * durations come from the simulator in **nanoseconds** (`u64`),
//! * energy is their product in **femtojoules** (`u64`), since
//!   1 µW × 1 ns = 10⁻¹⁵ J exactly — a thousandth of a picojoule, so
//!   every picojoule figure in the docs is an exact multiple of the
//!   stored value.
//!
//! Integer femtojoules make energy safe to fold into report fingerprints:
//! addition is associative and commutative, so the sharded replay engine's
//! out-of-order merge produces bit-identical totals to the sequential
//! fold (claim C15), which no `f64` accumulation could guarantee. A `u64`
//! of femtojoules saturates at ~18.4 kJ — about 51 hours of simulated
//! time at the full-device paper-default draw — and every multiply/add is
//! overflow-checked (`checked_mul`/`checked_add`) so silent wraparound is
//! impossible.
//!
//! Because a plane's array draws power exactly while the plane timeline
//! is reserved, and a channel's bus exactly while the channel timeline is
//! reserved, total energy is a *pure function* of the hardware model's
//! per-plane/per-channel busy-nanosecond counters (and, per span, of the
//! recorder's `cell/retry/bus` buckets — see [`EnergyConfig::span_fj`]).
//! No separate energy accumulator exists to drift out of sync.
//!
//! The old nanojoule/millijoule helpers survive as thin `f64` converters
//! over the integer core, for display only.

use crate::timing::TimingConfig;

/// Energy parameters, as integer active-power draws in microwatts.
///
/// Defaults follow the commonly cited Micron SLC datasheet ballpark the
/// FlashSim papers use: ~25 mA array current at 3.3 V during read/program/
/// erase, ~5 mA during bus transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyConfig {
    /// Power drawn while a plane's array performs a read/program/erase
    /// (including retry-ladder work), in µW.
    pub array_active_uw: u64,
    /// Power drawn while a channel's bus transfers data or commands, in µW.
    pub bus_active_uw: u64,
}

/// Multiply an integer power draw (µW) by an integer duration (ns) into
/// femtojoules, panicking on overflow rather than wrapping silently.
pub fn fj(uw: u64, ns: u64) -> u64 {
    uw.checked_mul(ns)
        .expect("energy overflow: uW * ns exceeds u64 femtojoules")
}

/// Checked femtojoule addition — the only way energy totals combine.
pub fn fj_add(a: u64, b: u64) -> u64 {
    a.checked_add(b)
        .expect("energy overflow: femtojoule sum exceeds u64")
}

impl EnergyConfig {
    /// Datasheet-ballpark defaults (82.5 mW array, 16.5 mW bus).
    pub fn paper_default() -> Self {
        EnergyConfig {
            array_active_uw: 82_500,
            bus_active_uw: 16_500,
        }
    }

    /// Array power as display milliwatts.
    pub fn array_active_mw(&self) -> f64 {
        self.array_active_uw as f64 / 1e3
    }

    /// Bus power as display milliwatts.
    pub fn bus_active_mw(&self) -> f64 {
        self.bus_active_uw as f64 / 1e3
    }

    /// Energy of one recorded span, in fJ, as a pure function of its
    /// attribution buckets: the array draws while the cell is busy
    /// (including the retry ladder), the bus while data or commands move.
    /// Wait buckets draw nothing — a queued operation costs no energy.
    pub fn span_fj(&self, cell_ns: u64, retry_ns: u64, bus_ns: u64) -> u64 {
        fj_add(
            fj(self.array_active_uw, fj_add(cell_ns, retry_ns)),
            fj(self.bus_active_uw, bus_ns),
        )
    }

    /// Energy of one page read (array + command/data bus), in fJ.
    pub fn read_fj(&self, t: &TimingConfig, page_size: u32) -> u64 {
        fj_add(
            fj(
                self.array_active_uw,
                (t.command_overhead + t.page_read).as_nanos(),
            ),
            fj(self.bus_active_uw, t.page_transfer(page_size).as_nanos()),
        )
    }

    /// Energy of one page program (command/data bus + array), in fJ.
    pub fn write_fj(&self, t: &TimingConfig, page_size: u32) -> u64 {
        fj_add(
            fj(
                self.bus_active_uw,
                (t.command_overhead + t.page_transfer(page_size)).as_nanos(),
            ),
            fj(self.array_active_uw, t.page_program.as_nanos()),
        )
    }

    /// Energy of one block erase, in fJ.
    pub fn erase_fj(&self, t: &TimingConfig) -> u64 {
        fj(
            self.array_active_uw,
            (t.command_overhead + t.block_erase).as_nanos(),
        )
    }

    /// Energy of one intra-plane copy-back, in fJ — no bus component at
    /// all: the page moves register-to-register inside the plane.
    pub fn copyback_fj(&self, t: &TimingConfig) -> u64 {
        fj(self.array_active_uw, t.copyback_service().as_nanos())
    }

    /// Energy of one traditional inter-plane copy (read out + program
    /// back in, both crossing the bus), in fJ.
    pub fn interplane_copy_fj(&self, t: &TimingConfig, page_size: u32) -> u64 {
        fj_add(self.read_fj(t, page_size), self.write_fj(t, page_size))
    }

    /// Bus energy of one inter-plane copy, in fJ — the component a
    /// copy-back avoids *entirely*, which is why copy-back's bus-energy
    /// saving (100%) beats even its §III.A time saving.
    pub fn interplane_bus_fj(&self, t: &TimingConfig, page_size: u32) -> u64 {
        fj(
            self.bus_active_uw,
            fj_add(
                t.page_transfer(page_size).as_nanos() * 2,
                t.command_overhead.as_nanos() * 2,
            ),
        )
    }

    /// Total energy of an operation mix (including retry-ladder steps),
    /// in fJ.
    pub fn counters_fj(
        &self,
        t: &TimingConfig,
        page_size: u32,
        counters: &crate::hardware::OpCounters,
    ) -> u64 {
        let mut total = fj_mul_count(self.read_fj(t, page_size), counters.reads);
        total = fj_add(
            total,
            fj_mul_count(self.write_fj(t, page_size), counters.writes),
        );
        total = fj_add(total, fj_mul_count(self.erase_fj(t), counters.erases));
        total = fj_add(total, fj_mul_count(self.copyback_fj(t), counters.copybacks));
        total = fj_add(
            total,
            fj_mul_count(
                self.interplane_copy_fj(t, page_size),
                counters.interplane_copies,
            ),
        );
        fj_add(
            total,
            fj_mul_count(
                fj(self.array_active_uw, t.read_retry_overhead(1).as_nanos()),
                counters.read_retry_steps,
            ),
        )
    }

    /// Total energy implied by per-plane and per-channel busy time, in
    /// integer femtojoules. This is *the* device-level accounting: every
    /// plane-timeline reservation is array-active and every
    /// channel-timeline reservation is bus-active, so the busy counters
    /// the hardware model already keeps are the energy accumulators.
    pub fn busy_totals(&self, plane_busy_ns: &[u64], channel_busy_ns: &[u64]) -> EnergyTotals {
        let mut t = EnergyTotals::zero();
        for &ns in plane_busy_ns {
            t.array_fj = fj_add(t.array_fj, fj(self.array_active_uw, ns));
        }
        for &ns in channel_busy_ns {
            t.bus_fj = fj_add(t.bus_fj, fj(self.bus_active_uw, ns));
        }
        t
    }

    // ---- thin f64 display converters over the integer core ----

    /// Energy of one page read, in display nJ.
    pub fn read_nj(&self, t: &TimingConfig, page_size: u32) -> f64 {
        self.read_fj(t, page_size) as f64 / 1e6
    }

    /// Energy of one page program, in display nJ.
    pub fn write_nj(&self, t: &TimingConfig, page_size: u32) -> f64 {
        self.write_fj(t, page_size) as f64 / 1e6
    }

    /// Energy of one block erase, in display nJ.
    pub fn erase_nj(&self, t: &TimingConfig) -> f64 {
        self.erase_fj(t) as f64 / 1e6
    }

    /// Energy of one intra-plane copy-back, in display nJ.
    pub fn copyback_nj(&self, t: &TimingConfig) -> f64 {
        self.copyback_fj(t) as f64 / 1e6
    }

    /// Energy of one traditional inter-plane copy, in display nJ.
    pub fn interplane_copy_nj(&self, t: &TimingConfig, page_size: u32) -> f64 {
        self.interplane_copy_fj(t, page_size) as f64 / 1e6
    }

    /// Total energy of an operation mix, in display mJ.
    pub fn total_mj(
        &self,
        t: &TimingConfig,
        page_size: u32,
        counters: &crate::hardware::OpCounters,
    ) -> f64 {
        self.counters_fj(t, page_size, counters) as f64 / 1e12
    }
}

/// Multiply a per-operation energy by an operation count, checked.
fn fj_mul_count(per_op_fj: u64, count: u64) -> u64 {
    per_op_fj
        .checked_mul(count)
        .expect("energy overflow: per-op fJ * count exceeds u64")
}

impl Default for EnergyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A run's energy totals, split by component, in integer femtojoules.
///
/// The split mirrors the hardware model's two timeline families: `array_fj`
/// accrues while planes are reserved, `bus_fj` while channels are. Totals
/// combine only through checked integer addition ([`EnergyTotals::absorb`]),
/// so any fold order — sequential replay, shard merge, timeline-bucket
/// summation — produces the identical bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyTotals {
    /// Plane-array energy (read/program/erase/copy-back/retry), in fJ.
    pub array_fj: u64,
    /// Channel-bus energy (commands + data transfers), in fJ.
    pub bus_fj: u64,
}

impl EnergyTotals {
    /// The additive identity.
    pub fn zero() -> Self {
        EnergyTotals::default()
    }

    /// Combined array + bus energy, in fJ (checked).
    pub fn total_fj(&self) -> u64 {
        fj_add(self.array_fj, self.bus_fj)
    }

    /// Combined energy in display millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_fj() as f64 / 1e12
    }

    /// Fold another total into this one — the shard-merge primitive.
    /// Checked integer addition, so the merge is exact and order-free.
    pub fn absorb(&mut self, other: &EnergyTotals) {
        self.array_fj = fj_add(self.array_fj, other.array_fj);
        self.bus_fj = fj_add(self.bus_fj, other.bus_fj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::OpCounters;
    use dloop_simkit::check::{self, Checker};
    use dloop_simkit::check_assert_eq;

    fn cfg() -> (EnergyConfig, TimingConfig) {
        (EnergyConfig::paper_default(), TimingConfig::paper_default())
    }

    #[test]
    fn copyback_saves_energy_over_interplane() {
        let (e, t) = cfg();
        let cb = e.copyback_nj(&t);
        let inter = e.interplane_copy_nj(&t, 2048);
        assert!(cb < inter, "copy-back {cb} nJ vs inter-plane {inter} nJ");
        // The array current dominates, so the energy saving is real but
        // smaller than the latency saving (no bus energy at all).
        assert!((inter - cb) / inter > 0.05);
    }

    #[test]
    fn copyback_avoids_all_bus_energy() {
        let (e, t) = cfg();
        // The intra-plane path never drives the bus, so its bus-energy
        // saving is total — strictly larger than the §III.A time saving.
        assert!(e.interplane_bus_fj(&t, 2048) > 0);
        let bus_saving = 1.0; // 100% by construction
        assert!(bus_saving > t.copyback_saving(2048));
    }

    #[test]
    fn energy_scales_with_duration() {
        let (e, t) = cfg();
        assert!(e.erase_nj(&t) > e.write_nj(&t, 2048));
        assert!(e.write_nj(&t, 2048) > e.read_nj(&t, 2048));
    }

    #[test]
    fn total_mix() {
        let (e, t) = cfg();
        let counters = OpCounters {
            reads: 10,
            writes: 5,
            erases: 1,
            copybacks: 2,
            interplane_copies: 1,
            read_retry_steps: 0,
        };
        let total = e.total_mj(&t, 2048, &counters);
        let by_hand = (10.0 * e.read_nj(&t, 2048)
            + 5.0 * e.write_nj(&t, 2048)
            + e.erase_nj(&t)
            + 2.0 * e.copyback_nj(&t)
            + e.interplane_copy_nj(&t, 2048))
            / 1e6;
        assert!((total - by_hand).abs() < 1e-12);
    }

    #[test]
    fn bigger_pages_cost_more_bus_energy() {
        let (e, t) = cfg();
        assert!(e.read_nj(&t, 16 * 1024) > e.read_nj(&t, 2 * 1024));
        // Copy-back is page-size independent (register to register).
        assert_eq!(e.copyback_fj(&t), e.copyback_fj(&t));
    }

    #[test]
    fn span_energy_matches_op_energy() {
        // A read span's cell/bus buckets are exactly the op's components,
        // so the span formula and the per-op formula agree to the fJ.
        let (e, t) = cfg();
        let cell = (t.command_overhead + t.page_read).as_nanos();
        let bus = t.page_transfer(2048).as_nanos();
        assert_eq!(e.span_fj(cell, 0, bus), e.read_fj(&t, 2048));
    }

    #[test]
    fn retry_steps_cost_array_energy() {
        let (e, t) = cfg();
        let quiet = OpCounters {
            reads: 1,
            ..OpCounters::default()
        };
        let retried = OpCounters {
            reads: 1,
            read_retry_steps: 3,
            ..OpCounters::default()
        };
        let delta = e.counters_fj(&t, 2048, &retried) - e.counters_fj(&t, 2048, &quiet);
        assert_eq!(
            delta,
            3 * fj(e.array_active_uw, t.read_retry_overhead(1).as_nanos())
        );
    }

    /// Satellite: summation order never changes totals. Partition a busy
    /// vector arbitrarily (the shard fold), absorb the per-partition
    /// totals in any order, and the result is bit-identical to the
    /// sequential fold over the whole vector.
    #[test]
    fn shard_fold_equals_sequential_fold() {
        let e = EnergyConfig::paper_default();
        let gen = check::vec_of(check::u64s(0..50_000_000), 1..40);
        Checker::new().cases(128).run(&gen, |busy| {
            let sequential = e.busy_totals(busy, busy);
            // Split at every possible point: left and right shards fold
            // independently, then merge in both orders.
            for cut in 0..=busy.len() {
                let (l, r) = busy.split_at(cut);
                let mut a = e.busy_totals(l, l);
                a.absorb(&e.busy_totals(r, r));
                let mut b = e.busy_totals(r, r);
                b.absorb(&e.busy_totals(l, l));
                check_assert_eq!(a, sequential);
                check_assert_eq!(b, a);
            }
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "energy overflow")]
    fn overflow_panics_instead_of_wrapping() {
        fj(u64::MAX / 2, 3);
    }
}

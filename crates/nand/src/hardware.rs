//! Hardware resource/timing model: when does each flash operation start and
//! finish, given contention on channels, planes and (optionally) dies.
//!
//! Each channel's external bus and each plane's cell array is a *timeline*
//! (`busy until t`). An operation is a short sequence of phases, each
//! holding one resource:
//!
//! * page read     — `[plane: cmd+t_read] [channel: t_xfer]`
//! * page program  — `[channel: cmd+t_xfer] [plane: t_prog]`
//! * block erase   — `[plane: cmd+t_erase]`
//! * **copy-back** — `[plane: cmd+t_read+t_prog]` — *no channel phase*, which
//!   is the entire point of DLOOP: GC traffic stays inside the plane and the
//!   external bus remains free for host requests (§III.A);
//! * inter-plane copy — `[plane_src] [channel_src] [channel_dst] [plane_dst]`.
//!
//! Phases of one operation run back-to-back, each waiting for its resource;
//! operations on distinct planes/channels proceed in parallel. This
//! reproduces FlashSim's priority-list behaviour (ready ops on free
//! resources run immediately; blocked ops queue FIFO per resource) while
//! staying deterministic.
//!
//! A config switch (`die_serialized`) additionally serialises the planes of
//! one die, for the ablation that measures how much DLOOP relies on planes
//! being independently operable via multi-plane/copy-back commands.

use crate::geometry::{Geometry, PlaneId};
use crate::timing::TimingConfig;
use dloop_simkit::trace::{
    FlightRecorder, Resource, RingSink, Seg, Span, SpanKind, SpanPhase, TraceSink,
};
use dloop_simkit::{SimDuration, SimTime};

/// When an operation occupied the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// First instant any resource was held.
    pub start: SimTime,
    /// Instant the last phase released its resource.
    pub end: SimTime,
}

impl Completion {
    /// Total residence time.
    pub fn latency(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Operation counters, for reporting and ablation sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Page reads (host + translation + GC reads over the bus).
    pub reads: u64,
    /// Page programs over the bus.
    pub writes: u64,
    /// Block erases.
    pub erases: u64,
    /// Intra-plane copy-backs.
    pub copybacks: u64,
    /// Traditional inter-plane copies.
    pub interplane_copies: u64,
    /// Total read-retry ladder steps executed across all reads.
    pub read_retry_steps: u64,
}

/// The contention/timing model.
#[derive(Debug)]
pub struct HardwareModel {
    timing: TimingConfig,
    page_size: u32,
    planes_per_die: u32,
    planes_per_channel: u32,
    die_serialized: bool,
    channel_avail: Vec<SimTime>,
    plane_avail: Vec<SimTime>,
    die_avail: Vec<SimTime>,
    channel_busy_ns: Vec<u64>,
    plane_busy_ns: Vec<u64>,
    retry_ns: u64,
    pub counters: OpCounters,
    /// Opt-in span sink; `None` (the default) records nothing and leaves
    /// every execution path identical to the pre-trace model.
    sink: Option<Box<dyn TraceSink>>,
    /// Logical phase attached to the next emitted spans.
    span_phase: SpanPhase,
    /// Triggering LPN attached to the next emitted spans.
    span_lpn: Option<u64>,
    /// Triggering host-request id attached to the next emitted spans.
    span_req: Option<u64>,
}

impl HardwareModel {
    /// Build the model for a geometry and timing configuration.
    pub fn new(geometry: &Geometry, timing: TimingConfig, die_serialized: bool) -> Self {
        let planes = geometry.total_planes() as usize;
        let dies = geometry.total_dies() as usize;
        let channels = geometry.channels as usize;
        HardwareModel {
            timing,
            page_size: geometry.page_size,
            planes_per_die: geometry.planes_per_die,
            planes_per_channel: geometry.total_planes() / geometry.channels,
            die_serialized,
            channel_avail: vec![SimTime::ZERO; channels],
            plane_avail: vec![SimTime::ZERO; planes],
            die_avail: vec![SimTime::ZERO; dies],
            channel_busy_ns: vec![0; channels],
            plane_busy_ns: vec![0; planes],
            retry_ns: 0,
            counters: OpCounters::default(),
            sink: None,
            span_phase: SpanPhase::Host,
            span_lpn: None,
            span_req: None,
        }
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    /// Fork a worker-model for one shard of a parallel replay: identical
    /// timing, geometry derivations and **resource timelines** (so work
    /// already booked keeps delaying the shard's future work), but zeroed
    /// activity (counters, busy accounting, retry time) and no sink — the
    /// shard's activity is a *delta* that the coordinator folds back into
    /// the parent via [`HardwareModel::absorb_activity`].
    pub fn shard_clone(&self) -> HardwareModel {
        HardwareModel {
            timing: self.timing.clone(),
            page_size: self.page_size,
            planes_per_die: self.planes_per_die,
            planes_per_channel: self.planes_per_channel,
            die_serialized: self.die_serialized,
            channel_avail: self.channel_avail.clone(),
            plane_avail: self.plane_avail.clone(),
            die_avail: self.die_avail.clone(),
            channel_busy_ns: vec![0; self.channel_busy_ns.len()],
            plane_busy_ns: vec![0; self.plane_busy_ns.len()],
            retry_ns: 0,
            counters: OpCounters::default(),
            sink: None,
            span_phase: SpanPhase::Host,
            span_lpn: None,
            span_req: None,
        }
    }

    /// Copy the availability entries governing `plane` — the plane itself,
    /// its channel, and (relevant when die-serialised) its die — from
    /// `other` into `self`. This is the cross-shard synchronisation
    /// primitive: before a chain that touches a foreign shard's plane is
    /// played, the executing model imports that plane's timeline state;
    /// afterwards the owner imports the updated state back.
    pub fn sync_plane_state_from(&mut self, other: &HardwareModel, plane: PlaneId) {
        let p = plane as usize;
        let c = self.channel_of(plane);
        let d = self.die_of(plane);
        self.plane_avail[p] = other.plane_avail[p];
        self.channel_avail[c] = other.channel_avail[c];
        self.die_avail[d] = other.die_avail[d];
    }

    /// Fold a shard model's activity delta — operation counters, per-plane
    /// and per-channel busy time, retry time — into `self`. Availability
    /// timelines are *not* touched: each shard owns its resources' final
    /// state, which the coordinator imports separately through
    /// [`HardwareModel::sync_plane_state_from`].
    pub fn absorb_activity(&mut self, other: &HardwareModel) {
        self.counters.reads += other.counters.reads;
        self.counters.writes += other.counters.writes;
        self.counters.erases += other.counters.erases;
        self.counters.copybacks += other.counters.copybacks;
        self.counters.interplane_copies += other.counters.interplane_copies;
        self.counters.read_retry_steps += other.counters.read_retry_steps;
        for (a, b) in self.channel_busy_ns.iter_mut().zip(&other.channel_busy_ns) {
            *a += b;
        }
        for (a, b) in self.plane_busy_ns.iter_mut().zip(&other.plane_busy_ns) {
            *a += b;
        }
        self.retry_ns += other.retry_ns;
    }

    /// Attach `sink` as the destination for emitted spans, replacing any
    /// previous sink. Recording is pure observation: resource timelines,
    /// counters and completions are bit-identical with or without a sink.
    pub fn attach_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detach and return the span sink, disabling tracing. A detached
    /// model is bit-identical to one that never traced.
    pub fn detach_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// The attached span sink, if tracing is enabled.
    pub fn sink(&self) -> Option<&dyn TraceSink> {
        self.sink.as_deref()
    }

    /// Mutable access to the attached span sink, if tracing is enabled.
    /// Used by drivers that feed the sink out-of-band — e.g. the sharded
    /// replay engine merging per-shard span buffers back into canonical
    /// order.
    pub fn sink_mut(&mut self) -> Option<&mut (dyn TraceSink + 'static)> {
        self.sink.as_deref_mut()
    }

    /// Convenience wrapper: attach a bounded [`RingSink`] holding up to
    /// `capacity` spans (the classic flight-recorder configuration).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.attach_sink(Box::new(RingSink::new(capacity)));
    }

    /// Detach and return the flight recorder, disabling tracing. Returns
    /// `None` (leaving the sink attached) when the attached sink is not a
    /// [`RingSink`] — use [`HardwareModel::detach_sink`] for those.
    pub fn take_recorder(&mut self) -> Option<FlightRecorder> {
        let is_ring = self
            .sink
            .as_deref()
            .is_some_and(|s| s.as_any().is::<RingSink>());
        if !is_ring {
            return None;
        }
        let sink = self.sink.take().expect("checked above");
        let ring = sink
            .into_any()
            .downcast::<RingSink>()
            .expect("checked above");
        Some(*ring)
    }

    /// The attached flight recorder, when the sink is a [`RingSink`].
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.sink
            .as_deref()
            .and_then(|s| s.as_any().downcast_ref::<RingSink>())
    }

    /// Tag spans emitted by subsequent `exec_*` calls with a phase, the
    /// triggering LPN, and the stable host-request id. Cheap enough to
    /// call unconditionally; ignored while no sink is attached.
    pub fn set_span_context(&mut self, phase: SpanPhase, lpn: Option<u64>, req: Option<u64>) {
        self.span_phase = phase;
        self.span_lpn = lpn;
        self.span_req = req;
    }

    /// Record `span` if tracing is enabled, first asserting the emitter
    /// kept the attribution invariant (buckets tile residence).
    fn record_span(&mut self, span: Span) {
        debug_assert_eq!(
            span.buckets_ns(),
            span.residence_ns(),
            "span attribution buckets must tile the residence time"
        );
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&span);
        }
    }

    fn channel_of(&self, plane: PlaneId) -> usize {
        (plane / self.planes_per_channel) as usize
    }

    fn die_of(&self, plane: PlaneId) -> usize {
        (plane / self.planes_per_die) as usize
    }

    /// Hold `plane` (and its die, when serialised) for `dur` starting no
    /// earlier than `t`; returns the phase (start, end).
    fn hold_plane(&mut self, plane: PlaneId, t: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let p = plane as usize;
        let mut start = t.max(self.plane_avail[p]);
        if self.die_serialized {
            let d = self.die_of(plane);
            start = start.max(self.die_avail[d]);
            let end = start + dur;
            self.die_avail[d] = end;
            self.plane_avail[p] = end;
            self.plane_busy_ns[p] += dur.as_nanos();
            return (start, end);
        }
        let end = start + dur;
        self.plane_avail[p] = end;
        self.plane_busy_ns[p] += dur.as_nanos();
        (start, end)
    }

    /// Hold the channel owning `plane` for `dur` starting no earlier than
    /// `t`; returns the phase (start, end).
    fn hold_channel(&mut self, plane: PlaneId, t: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let c = self.channel_of(plane);
        let start = t.max(self.channel_avail[c]);
        let end = start + dur;
        self.channel_avail[c] = end;
        self.channel_busy_ns[c] += dur.as_nanos();
        (start, end)
    }

    /// Earliest time `plane`'s array is free.
    pub fn plane_ready_at(&self, plane: PlaneId) -> SimTime {
        self.plane_avail[plane as usize]
    }

    /// Earliest time the channel serving `plane` is free.
    pub fn channel_ready_at(&self, plane: PlaneId) -> SimTime {
        self.channel_avail[self.channel_of(plane)]
    }

    /// Host/GC page read on `plane` at `at` (array read, then bus out).
    pub fn exec_read(&mut self, plane: PlaneId, at: SimTime) -> Completion {
        self.exec_read_retry(plane, at, 0)
    }

    /// Page read on `plane` at `at` that needed `steps` read-retry ladder
    /// steps before the ECC converged: the plane is additionally held for
    /// each step's re-sense + soft decode before the bus transfer. With
    /// `steps == 0` this is exactly [`HardwareModel::exec_read`], so
    /// perfect media pays nothing for the fault machinery.
    pub fn exec_read_retry(&mut self, plane: PlaneId, at: SimTime, steps: u32) -> Completion {
        self.counters.reads += 1;
        self.counters.read_retry_steps += steps as u64;
        let extra = self.timing.read_retry_overhead(steps);
        self.retry_ns += extra.as_nanos();
        let cell = self.timing.command_overhead + self.timing.page_read;
        let xfer = self.timing.page_transfer(self.page_size);
        let (start, after_read) = self.hold_plane(plane, at, cell + extra);
        let (bus_start, end) = self.hold_channel(plane, after_read, xfer);
        if self.sink.is_some() {
            self.record_span(Span {
                kind: if steps == 0 {
                    SpanKind::Read
                } else {
                    SpanKind::ReadRetry
                },
                phase: self.span_phase,
                lpn: self.span_lpn,
                req: self.span_req,
                plane,
                dst_plane: None,
                issue: at,
                start,
                end,
                cell_ns: cell.as_nanos(),
                bus_ns: xfer.as_nanos(),
                plane_wait_ns: start.saturating_since(at).as_nanos(),
                channel_wait_ns: bus_start.saturating_since(after_read).as_nanos(),
                retry_ns: extra.as_nanos(),
                retry_steps: steps,
                segs: [
                    Some(Seg {
                        resource: Resource::Plane(plane),
                        start,
                        end: after_read,
                    }),
                    Some(Seg {
                        resource: Resource::Channel(self.channel_of(plane) as u32),
                        start: bus_start,
                        end,
                    }),
                    None,
                    None,
                ],
            });
        }
        Completion { start, end }
    }

    /// Host/GC page program on `plane` at `at` (bus in, then array program).
    pub fn exec_write(&mut self, plane: PlaneId, at: SimTime) -> Completion {
        self.counters.writes += 1;
        let xfer = self.timing.command_overhead + self.timing.page_transfer(self.page_size);
        let (start, after_xfer) = self.hold_channel(plane, at, xfer);
        let (cell_start, end) = self.hold_plane(plane, after_xfer, self.timing.page_program);
        if self.sink.is_some() {
            self.record_span(Span {
                kind: SpanKind::Write,
                phase: self.span_phase,
                lpn: self.span_lpn,
                req: self.span_req,
                plane,
                dst_plane: None,
                issue: at,
                start,
                end,
                cell_ns: self.timing.page_program.as_nanos(),
                bus_ns: xfer.as_nanos(),
                plane_wait_ns: cell_start.saturating_since(after_xfer).as_nanos(),
                channel_wait_ns: start.saturating_since(at).as_nanos(),
                retry_ns: 0,
                retry_steps: 0,
                segs: [
                    Some(Seg {
                        resource: Resource::Channel(self.channel_of(plane) as u32),
                        start,
                        end: after_xfer,
                    }),
                    Some(Seg {
                        resource: Resource::Plane(plane),
                        start: cell_start,
                        end,
                    }),
                    None,
                    None,
                ],
            });
        }
        Completion { start, end }
    }

    /// Block erase on `plane` at `at`.
    pub fn exec_erase(&mut self, plane: PlaneId, at: SimTime) -> Completion {
        self.counters.erases += 1;
        let dur = self.timing.command_overhead + self.timing.block_erase;
        let (start, end) = self.hold_plane(plane, at, dur);
        if self.sink.is_some() {
            self.record_plane_only_span(SpanKind::Erase, plane, at, start, end, dur);
        }
        Completion { start, end }
    }

    /// Intra-plane copy-back on `plane` at `at`: read into the plane data
    /// register and program back — the external channel is never touched.
    pub fn exec_copyback(&mut self, plane: PlaneId, at: SimTime) -> Completion {
        self.counters.copybacks += 1;
        let dur = self.timing.copyback_service();
        let (start, end) = self.hold_plane(plane, at, dur);
        if self.sink.is_some() {
            self.record_plane_only_span(SpanKind::CopyBack, plane, at, start, end, dur);
        }
        Completion { start, end }
    }

    /// Emit the span of an operation that held exactly one plane.
    fn record_plane_only_span(
        &mut self,
        kind: SpanKind,
        plane: PlaneId,
        issue: SimTime,
        start: SimTime,
        end: SimTime,
        dur: SimDuration,
    ) {
        self.record_span(Span {
            kind,
            phase: self.span_phase,
            lpn: self.span_lpn,
            req: self.span_req,
            plane,
            dst_plane: None,
            issue,
            start,
            end,
            cell_ns: dur.as_nanos(),
            bus_ns: 0,
            plane_wait_ns: start.saturating_since(issue).as_nanos(),
            channel_wait_ns: 0,
            retry_ns: 0,
            retry_steps: 0,
            segs: [
                Some(Seg {
                    resource: Resource::Plane(plane),
                    start,
                    end,
                }),
                None,
                None,
                None,
            ],
        });
    }

    /// Traditional inter-plane copy from `src` to `dst` at `at`: the page
    /// travels source plane → bus → controller → bus → destination plane.
    pub fn exec_interplane_copy(&mut self, src: PlaneId, dst: PlaneId, at: SimTime) -> Completion {
        self.counters.interplane_copies += 1;
        let read = self.timing.command_overhead + self.timing.page_read;
        let xfer = self.timing.page_transfer(self.page_size);
        let (start, t0) = self.hold_plane(src, at, read);
        let (b1, t1) = self.hold_channel(src, t0, xfer);
        let (b2, t2) = self.hold_channel(dst, t1, xfer);
        let (cell_start, end) = self.hold_plane(dst, t2, self.timing.page_program);
        if self.sink.is_some() {
            self.record_span(Span {
                kind: SpanKind::InterPlaneCopy,
                phase: self.span_phase,
                lpn: self.span_lpn,
                req: self.span_req,
                plane: src,
                dst_plane: Some(dst),
                issue: at,
                start,
                end,
                cell_ns: (read + self.timing.page_program).as_nanos(),
                bus_ns: (xfer + xfer).as_nanos(),
                plane_wait_ns: start.saturating_since(at).as_nanos()
                    + cell_start.saturating_since(t2).as_nanos(),
                channel_wait_ns: b1.saturating_since(t0).as_nanos()
                    + b2.saturating_since(t1).as_nanos(),
                retry_ns: 0,
                retry_steps: 0,
                segs: [
                    Some(Seg {
                        resource: Resource::Plane(src),
                        start,
                        end: t0,
                    }),
                    Some(Seg {
                        resource: Resource::Channel(self.channel_of(src) as u32),
                        start: b1,
                        end: t1,
                    }),
                    Some(Seg {
                        resource: Resource::Channel(self.channel_of(dst) as u32),
                        start: b2,
                        end: t2,
                    }),
                    Some(Seg {
                        resource: Resource::Plane(dst),
                        start: cell_start,
                        end,
                    }),
                ],
            });
        }
        Completion { start, end }
    }

    /// Per-channel bus utilisation over `elapsed` simulated time.
    pub fn channel_utilisation(&self, elapsed: SimDuration) -> Vec<f64> {
        let total = elapsed.as_nanos().max(1) as f64;
        self.channel_busy_ns
            .iter()
            .map(|&b| b as f64 / total)
            .collect()
    }

    /// Per-plane array utilisation over `elapsed` simulated time.
    pub fn plane_utilisation(&self, elapsed: SimDuration) -> Vec<f64> {
        let total = elapsed.as_nanos().max(1) as f64;
        self.plane_busy_ns
            .iter()
            .map(|&b| b as f64 / total)
            .collect()
    }

    /// Busy nanoseconds accumulated per plane.
    pub fn plane_busy_ns(&self) -> &[u64] {
        &self.plane_busy_ns
    }

    /// Plane-array nanoseconds spent purely on read-retry ladders (the
    /// added latency of correctable media errors).
    pub fn retry_ns(&self) -> u64 {
        self.retry_ns
    }

    /// Busy nanoseconds accumulated per channel.
    pub fn channel_busy_ns(&self) -> &[u64] {
        &self.channel_busy_ns
    }

    /// Integer energy totals implied by the busy timelines under `energy`.
    ///
    /// Every plane reservation is array-active (reads, programs, erases,
    /// copy-backs, and the retry ladder all run inside the private
    /// `hold_plane` reservation helper) and every channel reservation is
    /// bus-active, so the busy counters
    /// *are* the energy accumulators: no separate accrual exists to drift.
    /// Because [`Self::shard_clone`] zeroes the busy counters and
    /// [`Self::absorb_activity`] adds them back as integer deltas, sharded
    /// and sequential replays produce bit-identical totals (claim C15).
    pub fn energy_totals(
        &self,
        energy: &crate::energy::EnergyConfig,
    ) -> crate::energy::EnergyTotals {
        energy.busy_totals(&self.plane_busy_ns, &self.channel_busy_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn hw() -> HardwareModel {
        let g = Geometry::paper_default();
        HardwareModel::new(&g, TimingConfig::paper_default(), false)
    }

    #[test]
    fn isolated_read_latency() {
        let mut h = hw();
        let c = h.exec_read(0, SimTime::ZERO);
        // cmd 0.2 + read 25 + xfer 51.2 us.
        assert_eq!(c.latency().as_nanos(), 200 + 25_000 + 51_200);
        assert_eq!(h.counters.reads, 1);
    }

    #[test]
    fn isolated_copyback_latency_matches_paper() {
        let mut h = hw();
        let c = h.exec_copyback(5, SimTime::ZERO);
        assert_eq!(c.latency().as_micros_f64(), 225.2);
        // Channel untouched.
        assert_eq!(h.channel_ready_at(5), SimTime::ZERO);
    }

    #[test]
    fn interplane_copy_holds_the_bus() {
        let mut h = hw();
        let c = h.exec_interplane_copy(0, 1, SimTime::ZERO);
        assert!((c.latency().as_micros_f64() - 327.6).abs() < 1e-9);
        // Planes 0 and 1 share channel 0; its bus was held twice.
        assert!(h.channel_ready_at(0) > SimTime::ZERO);
    }

    #[test]
    fn copybacks_on_different_planes_run_in_parallel() {
        let mut h = hw();
        let a = h.exec_copyback(0, SimTime::ZERO);
        let b = h.exec_copyback(1, SimTime::ZERO);
        // Fully overlapping: same start, same end.
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn same_plane_operations_serialise() {
        let mut h = hw();
        let a = h.exec_copyback(0, SimTime::ZERO);
        let b = h.exec_copyback(0, SimTime::ZERO);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn copyback_leaves_bus_free_for_reads() {
        // A read on plane 1 (same channel as plane 0) is NOT delayed by a
        // concurrent copy-back on plane 0.
        let mut h = hw();
        h.exec_copyback(0, SimTime::ZERO);
        let r = h.exec_read(1, SimTime::ZERO);
        assert_eq!(r.start, SimTime::ZERO);
        assert_eq!(r.latency().as_nanos(), 200 + 25_000 + 51_200);
    }

    #[test]
    fn interplane_copy_delays_bus_users() {
        // The same scenario with an inter-plane copy instead: the read's
        // transfer phase must queue behind the copy's bus phases.
        let mut h = hw();
        h.exec_interplane_copy(0, 2, SimTime::ZERO);
        let r = h.exec_read(1, SimTime::ZERO);
        assert!(
            r.latency().as_nanos() > 200 + 25_000 + 51_200,
            "read should have been delayed by bus contention"
        );
    }

    #[test]
    fn writes_on_same_channel_serialise_on_the_bus() {
        let mut h = hw();
        let a = h.exec_write(0, SimTime::ZERO);
        let b = h.exec_write(1, SimTime::ZERO); // same channel, other plane
                                                // b's transfer waits for a's transfer, but programs overlap.
        let xfer = 200 + 51_200;
        assert_eq!(b.start.as_nanos(), xfer);
        assert!(b.end.as_nanos() < a.end.as_nanos() + xfer + 200_000);
    }

    #[test]
    fn writes_on_different_channels_are_independent() {
        let mut h = hw();
        let a = h.exec_write(0, SimTime::ZERO);
        let b = h.exec_write(8, SimTime::ZERO); // planes/channel = 8 -> channel 1
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn die_serialization_ablation() {
        let g = Geometry::paper_default();
        let mut h = HardwareModel::new(&g, TimingConfig::paper_default(), true);
        let a = h.exec_copyback(0, SimTime::ZERO);
        let b = h.exec_copyback(1, SimTime::ZERO); // same die (planes 0-3)
        assert_eq!(b.start, a.end, "die-serialised planes must not overlap");
        let c = h.exec_copyback(4, SimTime::ZERO); // next die
        assert_eq!(c.start, SimTime::ZERO);
    }

    #[test]
    fn read_retry_zero_steps_equals_plain_read() {
        let mut a = hw();
        let mut b = hw();
        let ca = a.exec_read(0, SimTime::ZERO);
        let cb = b.exec_read_retry(0, SimTime::ZERO, 0);
        assert_eq!(ca, cb);
        assert_eq!(a.plane_busy_ns(), b.plane_busy_ns());
        assert_eq!(a.channel_busy_ns(), b.channel_busy_ns());
        assert_eq!(b.retry_ns(), 0);
        assert_eq!(b.counters.read_retry_steps, 0);
    }

    #[test]
    fn read_retry_steps_hold_the_plane_not_the_bus() {
        let mut h = hw();
        let base = h.exec_read_retry(0, SimTime::ZERO, 0).latency();
        let mut h2 = hw();
        let retried = h2.exec_read_retry(0, SimTime::ZERO, 3).latency();
        let extra = h2.timing().read_retry_overhead(3);
        assert_eq!(retried.as_nanos(), base.as_nanos() + extra.as_nanos());
        assert_eq!(h2.counters.read_retry_steps, 3);
        assert_eq!(h2.retry_ns(), extra.as_nanos());
        // The bus phase is identical — retries live inside the plane.
        assert_eq!(h.channel_busy_ns(), h2.channel_busy_ns());
    }

    #[test]
    fn recorder_captures_one_span_per_op_with_exact_attribution() {
        let mut h = hw();
        h.enable_trace(64);
        h.set_span_context(SpanPhase::Host, Some(42), Some(7));
        h.exec_write(0, SimTime::ZERO);
        h.exec_read(0, SimTime::ZERO); // queues behind the write
        h.set_span_context(SpanPhase::Gc, Some(42), Some(7));
        h.exec_copyback(1, SimTime::ZERO);
        h.exec_erase(1, SimTime::ZERO);
        h.exec_interplane_copy(2, 3, SimTime::ZERO);
        let rec = h.take_recorder().expect("tracing was enabled");
        assert_eq!(rec.recorded(), 5);
        let spans: Vec<_> = rec.spans().collect();
        // Every span's attribution buckets tile its residence exactly.
        for s in &spans {
            assert_eq!(s.buckets_ns(), s.residence_ns(), "{:?}", s.kind);
            assert_eq!(s.lpn, Some(42));
            assert_eq!(s.req, Some(7));
        }
        assert_eq!(spans[0].kind, SpanKind::Write);
        assert_eq!(spans[0].phase, SpanPhase::Host);
        // The read queued behind the write on plane 0: its wait is visible.
        assert_eq!(spans[1].kind, SpanKind::Read);
        assert!(spans[1].plane_wait_ns + spans[1].channel_wait_ns > 0);
        // Copy-back never touches a channel.
        assert_eq!(spans[2].phase, SpanPhase::Gc);
        assert_eq!(spans[2].bus_ns, 0);
        assert!(spans[2]
            .segments()
            .all(|seg| matches!(seg.resource, Resource::Plane(1))));
        // The inter-plane copy holds four resources.
        assert_eq!(spans[4].segments().count(), 4);
        assert_eq!(spans[4].dst_plane, Some(3));
    }

    #[test]
    fn recording_does_not_perturb_timing_or_counters() {
        let ops = |h: &mut HardwareModel| {
            let mut ends = Vec::new();
            ends.push(h.exec_write(0, SimTime::ZERO));
            ends.push(h.exec_read_retry(0, SimTime::ZERO, 2));
            ends.push(h.exec_copyback(1, SimTime::ZERO));
            ends.push(h.exec_interplane_copy(0, 2, SimTime::ZERO));
            ends.push(h.exec_erase(2, SimTime::ZERO));
            ends
        };
        let mut plain = hw();
        let mut traced = hw();
        traced.enable_trace(1024);
        let a = ops(&mut plain);
        let b = ops(&mut traced);
        assert_eq!(a, b, "tracing must not change completions");
        assert_eq!(plain.counters, traced.counters);
        assert_eq!(plain.plane_busy_ns(), traced.plane_busy_ns());
        assert_eq!(plain.channel_busy_ns(), traced.channel_busy_ns());
        assert_eq!(plain.retry_ns(), traced.retry_ns());
        assert_eq!(traced.recorder().unwrap().recorded(), 5);
    }

    #[test]
    fn retry_span_charges_the_ladder_separately() {
        let mut h = hw();
        h.enable_trace(8);
        h.exec_read_retry(0, SimTime::ZERO, 3);
        let rec = h.take_recorder().unwrap();
        let s = rec.spans().next().unwrap();
        assert_eq!(s.kind, SpanKind::ReadRetry);
        assert_eq!(s.retry_steps, 3);
        assert_eq!(s.retry_ns, h.timing().read_retry_overhead(3).as_nanos());
        assert_eq!(s.buckets_ns(), s.residence_ns());
    }

    #[test]
    fn attach_detach_round_trips_non_ring_sinks() {
        use dloop_simkit::trace::StreamSink;
        let mut h = hw();
        h.attach_sink(Box::new(StreamSink::new(Vec::new())));
        h.exec_write(0, SimTime::ZERO);
        h.exec_read(0, SimTime::ZERO);
        // A stream is not a ring: take_recorder must refuse and leave the
        // sink attached rather than silently discarding it.
        assert!(h.take_recorder().is_none());
        assert_eq!(h.sink().expect("still attached").recorded(), 2);
        let sink = h.detach_sink().expect("sink attached");
        let stream = sink
            .into_any()
            .downcast::<StreamSink<Vec<u8>>>()
            .expect("stream sink");
        let bytes = stream.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(h.sink().is_none(), "detached model no longer traces");
    }

    #[test]
    fn shard_clone_copies_timelines_but_not_activity() {
        let mut h = hw();
        h.exec_write(0, SimTime::ZERO);
        h.exec_read(9, SimTime::ZERO);
        let s = h.shard_clone();
        // Timelines carry over: booked work still delays the shard.
        assert_eq!(s.plane_ready_at(0), h.plane_ready_at(0));
        assert_eq!(s.channel_ready_at(9), h.channel_ready_at(9));
        // Activity does not: the shard accumulates a delta from zero.
        assert_eq!(s.counters, OpCounters::default());
        assert!(s.plane_busy_ns().iter().all(|&b| b == 0));
        assert!(s.channel_busy_ns().iter().all(|&b| b == 0));
        assert_eq!(s.retry_ns(), 0);
        assert!(s.sink().is_none());
    }

    #[test]
    fn split_playback_with_absorb_matches_sequential() {
        // Play two independent-plane op sequences sequentially on one
        // model, and split across two shard clones folded back — the
        // paradigm the sharded replay engine relies on. Planes 0 and 8 are
        // on different channels, so the sequences never interact.
        let mut seq = hw();
        seq.exec_write(0, SimTime::ZERO);
        seq.exec_read(0, SimTime::ZERO);
        seq.exec_write(8, SimTime::ZERO);
        seq.exec_copyback(8, SimTime::ZERO);

        let base = hw();
        let mut a = base.shard_clone();
        let mut b = base.shard_clone();
        a.exec_write(0, SimTime::ZERO);
        a.exec_read(0, SimTime::ZERO);
        b.exec_write(8, SimTime::ZERO);
        b.exec_copyback(8, SimTime::ZERO);
        let mut merged = base.shard_clone();
        for m in [&a, &b] {
            merged.absorb_activity(m);
        }
        merged.sync_plane_state_from(&a, 0);
        merged.sync_plane_state_from(&b, 8);

        assert_eq!(merged.counters, seq.counters);
        assert_eq!(merged.plane_busy_ns(), seq.plane_busy_ns());
        assert_eq!(merged.channel_busy_ns(), seq.channel_busy_ns());
        assert_eq!(merged.retry_ns(), seq.retry_ns());
        assert_eq!(merged.plane_ready_at(0), seq.plane_ready_at(0));
        assert_eq!(merged.plane_ready_at(8), seq.plane_ready_at(8));
        assert_eq!(merged.channel_ready_at(0), seq.channel_ready_at(0));
        assert_eq!(merged.channel_ready_at(8), seq.channel_ready_at(8));

        // Energy is a pure function of the busy counters, so the shard
        // fold reproduces the sequential totals bit-for-bit — and summing
        // the per-shard totals in either order matches too.
        let e = crate::energy::EnergyConfig::paper_default();
        assert_eq!(merged.energy_totals(&e), seq.energy_totals(&e));
        let mut folded = a.energy_totals(&e);
        folded.absorb(&b.energy_totals(&e));
        assert_eq!(folded, seq.energy_totals(&e));
    }

    #[test]
    fn sync_plane_state_imports_channel_and_die_entries() {
        let g = Geometry::paper_default();
        let mut owner = HardwareModel::new(&g, TimingConfig::paper_default(), true);
        owner.exec_copyback(2, SimTime::ZERO); // holds plane 2 and die 0
        owner.exec_write(3, SimTime::ZERO); // holds channel 0 too
        let mut exec = owner.shard_clone();
        let mut fresh = HardwareModel::new(&g, TimingConfig::paper_default(), true);
        fresh.sync_plane_state_from(&owner, 2);
        fresh.sync_plane_state_from(&owner, 3);
        // The imported entries now agree with the owner's for both planes,
        // including the shared die/channel state.
        let c = exec.exec_copyback(2, SimTime::ZERO);
        let c2 = fresh.exec_copyback(2, SimTime::ZERO);
        assert_eq!(c, c2, "imported timelines must reproduce the owner's");
    }

    #[test]
    fn utilisation_accounting() {
        let mut h = hw();
        let c = h.exec_read(0, SimTime::ZERO);
        let util = h.channel_utilisation(c.end - c.start);
        assert!(util[0] > 0.0 && util[0] <= 1.0);
        assert_eq!(util[1], 0.0);
    }
}

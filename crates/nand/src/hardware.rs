//! Hardware resource/timing model: when does each flash operation start and
//! finish, given contention on channels, planes and (optionally) dies.
//!
//! Each channel's external bus and each plane's cell array is a *timeline*
//! (`busy until t`). An operation is a short sequence of phases, each
//! holding one resource:
//!
//! * page read     — `[plane: cmd+t_read] [channel: t_xfer]`
//! * page program  — `[channel: cmd+t_xfer] [plane: t_prog]`
//! * block erase   — `[plane: cmd+t_erase]`
//! * **copy-back** — `[plane: cmd+t_read+t_prog]` — *no channel phase*, which
//!   is the entire point of DLOOP: GC traffic stays inside the plane and the
//!   external bus remains free for host requests (§III.A);
//! * inter-plane copy — `[plane_src] [channel_src] [channel_dst] [plane_dst]`.
//!
//! Phases of one operation run back-to-back, each waiting for its resource;
//! operations on distinct planes/channels proceed in parallel. This
//! reproduces FlashSim's priority-list behaviour (ready ops on free
//! resources run immediately; blocked ops queue FIFO per resource) while
//! staying deterministic.
//!
//! A config switch (`die_serialized`) additionally serialises the planes of
//! one die, for the ablation that measures how much DLOOP relies on planes
//! being independently operable via multi-plane/copy-back commands.

use crate::geometry::{Geometry, PlaneId};
use crate::timing::TimingConfig;
use dloop_simkit::{SimDuration, SimTime};

/// When an operation occupied the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// First instant any resource was held.
    pub start: SimTime,
    /// Instant the last phase released its resource.
    pub end: SimTime,
}

impl Completion {
    /// Total residence time.
    pub fn latency(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Operation counters, for reporting and ablation sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Page reads (host + translation + GC reads over the bus).
    pub reads: u64,
    /// Page programs over the bus.
    pub writes: u64,
    /// Block erases.
    pub erases: u64,
    /// Intra-plane copy-backs.
    pub copybacks: u64,
    /// Traditional inter-plane copies.
    pub interplane_copies: u64,
    /// Total read-retry ladder steps executed across all reads.
    pub read_retry_steps: u64,
}

/// The contention/timing model.
#[derive(Debug, Clone)]
pub struct HardwareModel {
    timing: TimingConfig,
    page_size: u32,
    planes_per_die: u32,
    planes_per_channel: u32,
    die_serialized: bool,
    channel_avail: Vec<SimTime>,
    plane_avail: Vec<SimTime>,
    die_avail: Vec<SimTime>,
    channel_busy_ns: Vec<u64>,
    plane_busy_ns: Vec<u64>,
    retry_ns: u64,
    pub counters: OpCounters,
}

impl HardwareModel {
    /// Build the model for a geometry and timing configuration.
    pub fn new(geometry: &Geometry, timing: TimingConfig, die_serialized: bool) -> Self {
        let planes = geometry.total_planes() as usize;
        let dies = geometry.total_dies() as usize;
        let channels = geometry.channels as usize;
        HardwareModel {
            timing,
            page_size: geometry.page_size,
            planes_per_die: geometry.planes_per_die,
            planes_per_channel: geometry.total_planes() / geometry.channels,
            die_serialized,
            channel_avail: vec![SimTime::ZERO; channels],
            plane_avail: vec![SimTime::ZERO; planes],
            die_avail: vec![SimTime::ZERO; dies],
            channel_busy_ns: vec![0; channels],
            plane_busy_ns: vec![0; planes],
            retry_ns: 0,
            counters: OpCounters::default(),
        }
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    fn channel_of(&self, plane: PlaneId) -> usize {
        (plane / self.planes_per_channel) as usize
    }

    fn die_of(&self, plane: PlaneId) -> usize {
        (plane / self.planes_per_die) as usize
    }

    /// Hold `plane` (and its die, when serialised) for `dur` starting no
    /// earlier than `t`; returns the phase (start, end).
    fn hold_plane(&mut self, plane: PlaneId, t: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let p = plane as usize;
        let mut start = t.max(self.plane_avail[p]);
        if self.die_serialized {
            let d = self.die_of(plane);
            start = start.max(self.die_avail[d]);
            let end = start + dur;
            self.die_avail[d] = end;
            self.plane_avail[p] = end;
            self.plane_busy_ns[p] += dur.as_nanos();
            return (start, end);
        }
        let end = start + dur;
        self.plane_avail[p] = end;
        self.plane_busy_ns[p] += dur.as_nanos();
        (start, end)
    }

    /// Hold the channel owning `plane` for `dur` starting no earlier than
    /// `t`; returns the phase (start, end).
    fn hold_channel(&mut self, plane: PlaneId, t: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let c = self.channel_of(plane);
        let start = t.max(self.channel_avail[c]);
        let end = start + dur;
        self.channel_avail[c] = end;
        self.channel_busy_ns[c] += dur.as_nanos();
        (start, end)
    }

    /// Earliest time `plane`'s array is free.
    pub fn plane_ready_at(&self, plane: PlaneId) -> SimTime {
        self.plane_avail[plane as usize]
    }

    /// Earliest time the channel serving `plane` is free.
    pub fn channel_ready_at(&self, plane: PlaneId) -> SimTime {
        self.channel_avail[self.channel_of(plane)]
    }

    /// Host/GC page read on `plane` at `at` (array read, then bus out).
    pub fn exec_read(&mut self, plane: PlaneId, at: SimTime) -> Completion {
        self.counters.reads += 1;
        let t = self.timing.command_overhead + self.timing.page_read;
        let (start, after_read) = self.hold_plane(plane, at, t);
        let (_, end) =
            self.hold_channel(plane, after_read, self.timing.page_transfer(self.page_size));
        Completion { start, end }
    }

    /// Page read on `plane` at `at` that needed `steps` read-retry ladder
    /// steps before the ECC converged: the plane is additionally held for
    /// each step's re-sense + soft decode before the bus transfer. With
    /// `steps == 0` this is exactly [`HardwareModel::exec_read`], so
    /// perfect media pays nothing for the fault machinery.
    pub fn exec_read_retry(&mut self, plane: PlaneId, at: SimTime, steps: u32) -> Completion {
        self.counters.reads += 1;
        self.counters.read_retry_steps += steps as u64;
        let extra = self.timing.read_retry_overhead(steps);
        self.retry_ns += extra.as_nanos();
        let t = self.timing.command_overhead + self.timing.page_read + extra;
        let (start, after_read) = self.hold_plane(plane, at, t);
        let (_, end) =
            self.hold_channel(plane, after_read, self.timing.page_transfer(self.page_size));
        Completion { start, end }
    }

    /// Host/GC page program on `plane` at `at` (bus in, then array program).
    pub fn exec_write(&mut self, plane: PlaneId, at: SimTime) -> Completion {
        self.counters.writes += 1;
        let xfer = self.timing.command_overhead + self.timing.page_transfer(self.page_size);
        let (start, after_xfer) = self.hold_channel(plane, at, xfer);
        let (_, end) = self.hold_plane(plane, after_xfer, self.timing.page_program);
        Completion { start, end }
    }

    /// Block erase on `plane` at `at`.
    pub fn exec_erase(&mut self, plane: PlaneId, at: SimTime) -> Completion {
        self.counters.erases += 1;
        let (start, end) = self.hold_plane(
            plane,
            at,
            self.timing.command_overhead + self.timing.block_erase,
        );
        Completion { start, end }
    }

    /// Intra-plane copy-back on `plane` at `at`: read into the plane data
    /// register and program back — the external channel is never touched.
    pub fn exec_copyback(&mut self, plane: PlaneId, at: SimTime) -> Completion {
        self.counters.copybacks += 1;
        let (start, end) = self.hold_plane(plane, at, self.timing.copyback_service());
        Completion { start, end }
    }

    /// Traditional inter-plane copy from `src` to `dst` at `at`: the page
    /// travels source plane → bus → controller → bus → destination plane.
    pub fn exec_interplane_copy(&mut self, src: PlaneId, dst: PlaneId, at: SimTime) -> Completion {
        self.counters.interplane_copies += 1;
        let (start, t) = self.hold_plane(
            src,
            at,
            self.timing.command_overhead + self.timing.page_read,
        );
        let (_, t) = self.hold_channel(src, t, self.timing.page_transfer(self.page_size));
        let (_, t) = self.hold_channel(dst, t, self.timing.page_transfer(self.page_size));
        let (_, end) = self.hold_plane(dst, t, self.timing.page_program);
        Completion { start, end }
    }

    /// Per-channel bus utilisation over `elapsed` simulated time.
    pub fn channel_utilisation(&self, elapsed: SimDuration) -> Vec<f64> {
        let total = elapsed.as_nanos().max(1) as f64;
        self.channel_busy_ns
            .iter()
            .map(|&b| b as f64 / total)
            .collect()
    }

    /// Per-plane array utilisation over `elapsed` simulated time.
    pub fn plane_utilisation(&self, elapsed: SimDuration) -> Vec<f64> {
        let total = elapsed.as_nanos().max(1) as f64;
        self.plane_busy_ns
            .iter()
            .map(|&b| b as f64 / total)
            .collect()
    }

    /// Busy nanoseconds accumulated per plane.
    pub fn plane_busy_ns(&self) -> &[u64] {
        &self.plane_busy_ns
    }

    /// Plane-array nanoseconds spent purely on read-retry ladders (the
    /// added latency of correctable media errors).
    pub fn retry_ns(&self) -> u64 {
        self.retry_ns
    }

    /// Busy nanoseconds accumulated per channel.
    pub fn channel_busy_ns(&self) -> &[u64] {
        &self.channel_busy_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn hw() -> HardwareModel {
        let g = Geometry::paper_default();
        HardwareModel::new(&g, TimingConfig::paper_default(), false)
    }

    #[test]
    fn isolated_read_latency() {
        let mut h = hw();
        let c = h.exec_read(0, SimTime::ZERO);
        // cmd 0.2 + read 25 + xfer 51.2 us.
        assert_eq!(c.latency().as_nanos(), 200 + 25_000 + 51_200);
        assert_eq!(h.counters.reads, 1);
    }

    #[test]
    fn isolated_copyback_latency_matches_paper() {
        let mut h = hw();
        let c = h.exec_copyback(5, SimTime::ZERO);
        assert_eq!(c.latency().as_micros_f64(), 225.2);
        // Channel untouched.
        assert_eq!(h.channel_ready_at(5), SimTime::ZERO);
    }

    #[test]
    fn interplane_copy_holds_the_bus() {
        let mut h = hw();
        let c = h.exec_interplane_copy(0, 1, SimTime::ZERO);
        assert!((c.latency().as_micros_f64() - 327.6).abs() < 1e-9);
        // Planes 0 and 1 share channel 0; its bus was held twice.
        assert!(h.channel_ready_at(0) > SimTime::ZERO);
    }

    #[test]
    fn copybacks_on_different_planes_run_in_parallel() {
        let mut h = hw();
        let a = h.exec_copyback(0, SimTime::ZERO);
        let b = h.exec_copyback(1, SimTime::ZERO);
        // Fully overlapping: same start, same end.
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn same_plane_operations_serialise() {
        let mut h = hw();
        let a = h.exec_copyback(0, SimTime::ZERO);
        let b = h.exec_copyback(0, SimTime::ZERO);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn copyback_leaves_bus_free_for_reads() {
        // A read on plane 1 (same channel as plane 0) is NOT delayed by a
        // concurrent copy-back on plane 0.
        let mut h = hw();
        h.exec_copyback(0, SimTime::ZERO);
        let r = h.exec_read(1, SimTime::ZERO);
        assert_eq!(r.start, SimTime::ZERO);
        assert_eq!(r.latency().as_nanos(), 200 + 25_000 + 51_200);
    }

    #[test]
    fn interplane_copy_delays_bus_users() {
        // The same scenario with an inter-plane copy instead: the read's
        // transfer phase must queue behind the copy's bus phases.
        let mut h = hw();
        h.exec_interplane_copy(0, 2, SimTime::ZERO);
        let r = h.exec_read(1, SimTime::ZERO);
        assert!(
            r.latency().as_nanos() > 200 + 25_000 + 51_200,
            "read should have been delayed by bus contention"
        );
    }

    #[test]
    fn writes_on_same_channel_serialise_on_the_bus() {
        let mut h = hw();
        let a = h.exec_write(0, SimTime::ZERO);
        let b = h.exec_write(1, SimTime::ZERO); // same channel, other plane
                                                // b's transfer waits for a's transfer, but programs overlap.
        let xfer = 200 + 51_200;
        assert_eq!(b.start.as_nanos(), xfer);
        assert!(b.end.as_nanos() < a.end.as_nanos() + xfer + 200_000);
    }

    #[test]
    fn writes_on_different_channels_are_independent() {
        let mut h = hw();
        let a = h.exec_write(0, SimTime::ZERO);
        let b = h.exec_write(8, SimTime::ZERO); // planes/channel = 8 -> channel 1
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn die_serialization_ablation() {
        let g = Geometry::paper_default();
        let mut h = HardwareModel::new(&g, TimingConfig::paper_default(), true);
        let a = h.exec_copyback(0, SimTime::ZERO);
        let b = h.exec_copyback(1, SimTime::ZERO); // same die (planes 0-3)
        assert_eq!(b.start, a.end, "die-serialised planes must not overlap");
        let c = h.exec_copyback(4, SimTime::ZERO); // next die
        assert_eq!(c.start, SimTime::ZERO);
    }

    #[test]
    fn read_retry_zero_steps_equals_plain_read() {
        let mut a = hw();
        let mut b = hw();
        let ca = a.exec_read(0, SimTime::ZERO);
        let cb = b.exec_read_retry(0, SimTime::ZERO, 0);
        assert_eq!(ca, cb);
        assert_eq!(a.plane_busy_ns(), b.plane_busy_ns());
        assert_eq!(a.channel_busy_ns(), b.channel_busy_ns());
        assert_eq!(b.retry_ns(), 0);
        assert_eq!(b.counters.read_retry_steps, 0);
    }

    #[test]
    fn read_retry_steps_hold_the_plane_not_the_bus() {
        let mut h = hw();
        let base = h.exec_read_retry(0, SimTime::ZERO, 0).latency();
        let mut h2 = hw();
        let retried = h2.exec_read_retry(0, SimTime::ZERO, 3).latency();
        let extra = h2.timing().read_retry_overhead(3);
        assert_eq!(retried.as_nanos(), base.as_nanos() + extra.as_nanos());
        assert_eq!(h2.counters.read_retry_steps, 3);
        assert_eq!(h2.retry_ns(), extra.as_nanos());
        // The bus phase is identical — retries live inside the plane.
        assert_eq!(h.channel_busy_ns(), h2.channel_busy_ns());
    }

    #[test]
    fn utilisation_accounting() {
        let mut h = hw();
        let c = h.exec_read(0, SimTime::ZERO);
        let util = h.channel_utilisation(c.end - c.start);
        assert!(util[0] > 0.0 && util[0] <= 1.0);
        assert_eq!(util[1], 0.0);
    }
}

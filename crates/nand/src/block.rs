//! A single NAND block: page states, the sequential write pointer, and the
//! erase counter.
//!
//! NAND constraints modelled here:
//! * pages within a block are programmed strictly sequentially (the paper:
//!   "The pages can only be written sequentially in the current free
//!   block");
//! * a programmed page cannot be reprogrammed until the whole block is
//!   erased (erase-before-write);
//! * a free page may be deliberately *skipped* (marked invalid without a
//!   program) — DLOOP does this to satisfy the copy-back same-parity rule.

/// Lifecycle state of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageState {
    /// Erased, never programmed since the last erase.
    Free = 0,
    /// Holds live data.
    Valid = 1,
    /// Held data that has been superseded (or was skipped for parity).
    Invalid = 2,
}

/// One physical block.
#[derive(Debug, Clone)]
pub struct Block {
    states: Box<[PageState]>,
    /// Next programmable page offset; `== len` when the block is full.
    write_ptr: u32,
    valid: u32,
    erase_count: u32,
}

impl Block {
    /// A freshly erased block with `pages` pages.
    pub fn new(pages: u32) -> Self {
        Block {
            states: vec![PageState::Free; pages as usize].into_boxed_slice(),
            write_ptr: 0,
            valid: 0,
            erase_count: 0,
        }
    }

    /// Pages per block.
    pub fn len(&self) -> u32 {
        self.states.len() as u32
    }

    /// A block always has pages; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// True when no page has been programmed or skipped since erase.
    pub fn is_pristine(&self) -> bool {
        self.write_ptr == 0
    }

    /// True when the write pointer has reached the end.
    pub fn is_full(&self) -> bool {
        self.write_ptr == self.len()
    }

    /// Offset the next program will land on (`None` if full).
    pub fn next_free_page(&self) -> Option<u32> {
        (!self.is_full()).then_some(self.write_ptr)
    }

    /// Remaining programmable pages.
    pub fn free_pages(&self) -> u32 {
        self.len() - self.write_ptr
    }

    /// Live pages.
    pub fn valid_pages(&self) -> u32 {
        self.valid
    }

    /// Dead pages (programmed-then-superseded plus parity-skipped).
    pub fn invalid_pages(&self) -> u32 {
        self.write_ptr - self.valid
    }

    /// Times this block has been erased (wear).
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// State of page `offset`.
    pub fn state(&self, offset: u32) -> PageState {
        self.states[offset as usize]
    }

    /// Offsets of all valid pages, in ascending order.
    pub fn valid_offsets(&self) -> impl Iterator<Item = u32> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == PageState::Valid)
            .map(|(i, _)| i as u32)
    }

    /// Program the next sequential page, returning its offset.
    pub fn program_next(&mut self) -> Option<u32> {
        let off = self.next_free_page()?;
        self.states[off as usize] = PageState::Valid;
        self.write_ptr += 1;
        self.valid += 1;
        Some(off)
    }

    /// Mark the next sequential free page invalid *without* programming it
    /// (the parity-waste move of §III.C / Fig. 5b). Returns the skipped
    /// offset.
    pub fn skip_next(&mut self) -> Option<u32> {
        let off = self.next_free_page()?;
        self.states[off as usize] = PageState::Invalid;
        self.write_ptr += 1;
        Some(off)
    }

    /// Invalidate a previously valid page. Returns false if the page was
    /// not valid (caller turns that into an error).
    pub fn invalidate(&mut self, offset: u32) -> bool {
        let s = &mut self.states[offset as usize];
        if *s != PageState::Valid {
            return false;
        }
        *s = PageState::Invalid;
        self.valid -= 1;
        true
    }

    /// Erase the block: all pages become free, the write pointer rewinds,
    /// wear increments. Any remaining valid pages are destroyed — callers
    /// must have relocated them (GC asserts this).
    pub fn erase(&mut self) {
        for s in self.states.iter_mut() {
            *s = PageState::Free;
        }
        self.write_ptr = 0;
        self.valid = 0;
        self.erase_count += 1;
    }

    /// Internal consistency check: counters must match the state array.
    pub fn check(&self) -> Result<(), String> {
        let valid = self
            .states
            .iter()
            .filter(|s| **s == PageState::Valid)
            .count() as u32;
        let free = self
            .states
            .iter()
            .filter(|s| **s == PageState::Free)
            .count() as u32;
        if valid != self.valid {
            return Err(format!("valid count {} != actual {}", self.valid, valid));
        }
        if free != self.len() - self.write_ptr {
            return Err(format!(
                "write_ptr {} inconsistent with {} free pages",
                self.write_ptr, free
            ));
        }
        // Sequential programming: no free page may precede the write ptr.
        for (i, s) in self.states.iter().enumerate() {
            let before_ptr = (i as u32) < self.write_ptr;
            if before_ptr && *s == PageState::Free {
                return Err(format!("free page {i} before write_ptr {}", self.write_ptr));
            }
            if !before_ptr && *s != PageState::Free {
                return Err(format!(
                    "non-free page {i} at/after write_ptr {}",
                    self.write_ptr
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_pristine() {
        let b = Block::new(64);
        assert!(b.is_pristine());
        assert!(!b.is_full());
        assert_eq!(b.free_pages(), 64);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.invalid_pages(), 0);
        assert_eq!(b.next_free_page(), Some(0));
        b.check().unwrap();
    }

    #[test]
    fn sequential_programming() {
        let mut b = Block::new(4);
        assert_eq!(b.program_next(), Some(0));
        assert_eq!(b.program_next(), Some(1));
        assert_eq!(b.program_next(), Some(2));
        assert_eq!(b.program_next(), Some(3));
        assert!(b.is_full());
        assert_eq!(b.program_next(), None);
        assert_eq!(b.valid_pages(), 4);
        b.check().unwrap();
    }

    #[test]
    fn skip_marks_invalid_without_valid_count() {
        let mut b = Block::new(4);
        assert_eq!(b.skip_next(), Some(0));
        assert_eq!(b.state(0), PageState::Invalid);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.invalid_pages(), 1);
        assert_eq!(b.program_next(), Some(1));
        b.check().unwrap();
    }

    #[test]
    fn invalidate_transitions() {
        let mut b = Block::new(4);
        b.program_next();
        assert!(b.invalidate(0));
        assert_eq!(b.state(0), PageState::Invalid);
        // Double invalidate is rejected.
        assert!(!b.invalidate(0));
        // Invalidate of a free page is rejected.
        assert!(!b.invalidate(2));
        b.check().unwrap();
    }

    #[test]
    fn erase_resets_and_counts_wear() {
        let mut b = Block::new(4);
        b.program_next();
        b.program_next();
        b.invalidate(0);
        b.erase();
        assert!(b.is_pristine());
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.valid_pages(), 0);
        b.erase();
        assert_eq!(b.erase_count(), 2);
        b.check().unwrap();
    }

    #[test]
    fn valid_offsets_iterates_live_pages() {
        let mut b = Block::new(6);
        for _ in 0..5 {
            b.program_next();
        }
        b.invalidate(1);
        b.invalidate(3);
        let got: Vec<_> = b.valid_offsets().collect();
        assert_eq!(got, vec![0, 2, 4]);
    }

    #[test]
    fn check_catches_corruption() {
        let mut b = Block::new(4);
        b.program_next();
        // Simulate corruption through direct state poking.
        b.valid = 2;
        assert!(b.check().is_err());
    }
}

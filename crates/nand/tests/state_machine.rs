//! Property-based tests of the NAND state machine: arbitrary sequences of
//! program/skip/invalidate/erase operations can never violate the flash
//! invariants, and the checked API rejects every illegal transition.
//!
//! Runs on `dloop_simkit::check` (the in-tree property harness); failures
//! print a `SIMKIT_CHECK_REPLAY` seed for deterministic replay.

use dloop_nand::{BlockAddr, FlashState, Geometry, NandError, PageState};
use dloop_simkit::check::{self, Checker, Generator};
use dloop_simkit::{check_assert, check_assert_eq};

#[derive(Debug, Clone)]
enum Action {
    Allocate { plane: u8 },
    Program { slot: u8 },
    Skip { slot: u8 },
    Invalidate { slot: u8, page: u8 },
    EraseIfDead { slot: u8 },
}

fn action() -> check::BoxedGenerator<Action> {
    check::weighted(vec![
        (
            1,
            check::u8s(0..4)
                .map(|plane| Action::Allocate { plane })
                .boxed(),
        ),
        (
            4,
            check::u8s(0..8)
                .map(|slot| Action::Program { slot })
                .boxed(),
        ),
        (
            1,
            check::u8s(0..8).map(|slot| Action::Skip { slot }).boxed(),
        ),
        (
            3,
            (check::u8s(0..8), check::u8s(0..64))
                .map(|(slot, page)| Action::Invalidate { slot, page })
                .boxed(),
        ),
        (
            1,
            check::u8s(0..8)
                .map(|slot| Action::EraseIfDead { slot })
                .boxed(),
        ),
    ])
    .boxed()
}

#[test]
fn arbitrary_action_sequences_preserve_invariants() {
    let gen = check::vec_of(action(), 1..300);
    Checker::new().cases(64).run(&gen, |actions| {
        let mut g = Geometry::build_with_hierarchy(1, 2, 5.0, 2, 1, 1, 1, 2);
        // Keep the state tiny so the per-step full audit stays cheap.
        g.data_blocks_per_plane = 8;
        g.blocks_per_plane = 10;
        let mut fs = FlashState::new(g.clone());
        // Slots: blocks we've allocated, across planes.
        let mut slots: Vec<BlockAddr> = Vec::new();
        let mut expected_valid = 0u64;

        for (step, a) in actions.iter().enumerate() {
            match *a {
                Action::Allocate { plane } => {
                    let plane = plane as u32 % g.total_planes();
                    if let Ok(idx) = fs.allocate_free_block(plane) {
                        slots.push(BlockAddr { plane, index: idx });
                    }
                }
                Action::Program { slot } => {
                    if slots.is_empty() {
                        continue;
                    }
                    let blk = slots[slot as usize % slots.len()];
                    match fs.program_next(blk) {
                        Ok(addr) => {
                            expected_valid += 1;
                            check_assert_eq!(fs.page_state(g.ppn_of(addr)), PageState::Valid);
                        }
                        Err(NandError::BlockFull(_)) => {
                            check_assert!(fs.plane(blk.plane).block(blk.index).is_full());
                        }
                        Err(e) => return Err(format!("{e}")),
                    }
                }
                Action::Skip { slot } => {
                    if slots.is_empty() {
                        continue;
                    }
                    let blk = slots[slot as usize % slots.len()];
                    match fs.skip_next(blk) {
                        Ok(_) | Err(NandError::BlockFull(_)) => {}
                        Err(e) => return Err(format!("{e}")),
                    }
                }
                Action::Invalidate { slot, page } => {
                    if slots.is_empty() {
                        continue;
                    }
                    let blk = slots[slot as usize % slots.len()];
                    let addr = dloop_nand::PageAddr {
                        plane: blk.plane,
                        block: blk.index,
                        page: page as u32 % g.pages_per_block,
                    };
                    let ppn = g.ppn_of(addr);
                    let was_valid = fs.page_state(ppn) == PageState::Valid;
                    match fs.invalidate(ppn) {
                        Ok(()) => {
                            check_assert!(was_valid, "invalidate succeeded on non-valid page");
                            expected_valid -= 1;
                        }
                        Err(NandError::NotValid(_)) => check_assert!(!was_valid),
                        Err(e) => return Err(format!("{e}")),
                    }
                }
                Action::EraseIfDead { slot } => {
                    if slots.is_empty() {
                        continue;
                    }
                    let i = slot as usize % slots.len();
                    let blk = slots[i];
                    if fs.plane(blk.plane).block(blk.index).valid_pages() == 0
                        && !fs.plane(blk.plane).in_free_pool(blk.index)
                    {
                        fs.erase_and_pool(blk).map_err(|e| format!("{e}"))?;
                        slots.remove(i);
                    }
                }
            }
            if step % 16 == 0 {
                fs.check()?;
            }
        }
        fs.check()?;
        check_assert_eq!(fs.total_valid_pages(), expected_valid);
        Ok(())
    });
}

#[test]
fn geometry_round_trip() {
    let gen = (
        check::u32s(1..8),
        check::elements(vec![2u32, 4, 8, 16]),
        check::f64s(0.0..12.0),
        check::f64s(0.0..1.0),
    );
    Checker::new()
        .cases(256)
        .run(&gen, |&(capacity, page_kb, extra, ppn_frac)| {
            let g = Geometry::build(capacity, page_kb, extra);
            let ppn =
                (g.total_physical_pages() as f64 * ppn_frac) as u64 % g.total_physical_pages();
            let addr = g.addr_of(ppn);
            check_assert_eq!(g.ppn_of(addr), ppn);
            check_assert!(addr.plane < g.total_planes());
            check_assert!(addr.block < g.blocks_per_plane);
            check_assert!(addr.page < g.pages_per_block);
            check_assert_eq!(g.plane_of_ppn(ppn), addr.plane);
            Ok(())
        });
}

//! Property-based tests of the NAND state machine: arbitrary sequences of
//! program/skip/invalidate/erase operations can never violate the flash
//! invariants, and the checked API rejects every illegal transition.

use dloop_nand::{BlockAddr, FlashState, Geometry, NandError, PageState};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Allocate { plane: u8 },
    Program { slot: u8 },
    Skip { slot: u8 },
    Invalidate { slot: u8, page: u8 },
    EraseIfDead { slot: u8 },
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        1 => (0u8..4).prop_map(|plane| Action::Allocate { plane }),
        4 => (0u8..8).prop_map(|slot| Action::Program { slot }),
        1 => (0u8..8).prop_map(|slot| Action::Skip { slot }),
        3 => (0u8..8, 0u8..64).prop_map(|(slot, page)| Action::Invalidate { slot, page }),
        1 => (0u8..8).prop_map(|slot| Action::EraseIfDead { slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_action_sequences_preserve_invariants(
        actions in proptest::collection::vec(action(), 1..300),
    ) {
        let mut g = Geometry::build_with_hierarchy(1, 2, 5.0, 2, 1, 1, 1, 2);
        // Keep the state tiny so the per-step full audit stays cheap.
        g.data_blocks_per_plane = 8;
        g.blocks_per_plane = 10;
        let mut fs = FlashState::new(g.clone());
        // Slots: blocks we've allocated, across planes.
        let mut slots: Vec<BlockAddr> = Vec::new();
        let mut expected_valid = 0u64;

        for (step, a) in actions.into_iter().enumerate() {
            match a {
                Action::Allocate { plane } => {
                    let plane = plane as u32 % g.total_planes();
                    if let Ok(idx) = fs.allocate_free_block(plane) {
                        slots.push(BlockAddr { plane, index: idx });
                    }
                }
                Action::Program { slot } => {
                    if slots.is_empty() { continue; }
                    let blk = slots[slot as usize % slots.len()];
                    match fs.program_next(blk) {
                        Ok(addr) => {
                            expected_valid += 1;
                            prop_assert_eq!(
                                fs.page_state(g.ppn_of(addr)),
                                PageState::Valid
                            );
                        }
                        Err(NandError::BlockFull(_)) => {
                            prop_assert!(fs.plane(blk.plane).block(blk.index).is_full());
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Action::Skip { slot } => {
                    if slots.is_empty() { continue; }
                    let blk = slots[slot as usize % slots.len()];
                    match fs.skip_next(blk) {
                        Ok(_) | Err(NandError::BlockFull(_)) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Action::Invalidate { slot, page } => {
                    if slots.is_empty() { continue; }
                    let blk = slots[slot as usize % slots.len()];
                    let addr = dloop_nand::PageAddr {
                        plane: blk.plane,
                        block: blk.index,
                        page: page as u32 % g.pages_per_block,
                    };
                    let ppn = g.ppn_of(addr);
                    let was_valid = fs.page_state(ppn) == PageState::Valid;
                    match fs.invalidate(ppn) {
                        Ok(()) => {
                            prop_assert!(was_valid, "invalidate succeeded on non-valid page");
                            expected_valid -= 1;
                        }
                        Err(NandError::NotValid(_)) => prop_assert!(!was_valid),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Action::EraseIfDead { slot } => {
                    if slots.is_empty() { continue; }
                    let i = slot as usize % slots.len();
                    let blk = slots[i];
                    if fs.plane(blk.plane).block(blk.index).valid_pages() == 0
                        && !fs.plane(blk.plane).in_free_pool(blk.index)
                    {
                        fs.erase_and_pool(blk).unwrap();
                        slots.remove(i);
                    }
                }
            }
            if step % 16 == 0 {
                fs.check().map_err(TestCaseError::fail)?;
            }
        }
        fs.check().map_err(TestCaseError::fail)?;
        prop_assert_eq!(fs.total_valid_pages(), expected_valid);
    }

    #[test]
    fn geometry_round_trip(
        capacity in 1u32..8,
        page_kb in prop_oneof![Just(2u32), Just(4), Just(8), Just(16)],
        extra in 0.0f64..12.0,
        ppn_frac in 0.0f64..1.0,
    ) {
        let g = Geometry::build(capacity, page_kb, extra);
        let ppn = (g.total_physical_pages() as f64 * ppn_frac) as u64
            % g.total_physical_pages();
        let addr = g.addr_of(ppn);
        prop_assert_eq!(g.ppn_of(addr), ppn);
        prop_assert!(addr.plane < g.total_planes());
        prop_assert!(addr.block < g.blocks_per_plane);
        prop_assert!(addr.page < g.pages_per_block);
        prop_assert_eq!(g.plane_of_ppn(ppn), addr.plane);
    }
}

//! Endurance and bad-block retirement behaviour.

use dloop_nand::{BlockAddr, FlashState, Geometry};

fn tiny() -> Geometry {
    let mut g = Geometry::build_with_hierarchy(1, 2, 5.0, 2, 1, 1, 1, 2);
    g.data_blocks_per_plane = 4;
    g.blocks_per_plane = 6;
    g
}

fn cycle(fs: &mut FlashState, blk: BlockAddr) {
    let addr = fs.program_next(blk).unwrap();
    fs.invalidate(fs.geometry().ppn_of(addr)).unwrap();
    fs.erase_and_pool(blk).unwrap();
}

#[test]
fn block_retires_at_limit() {
    let mut fs = FlashState::with_endurance(tiny(), 3);
    let idx = fs.allocate_free_block(0).unwrap();
    let blk = BlockAddr {
        plane: 0,
        index: idx,
    };
    // Two cycles: still serviceable (pool regains it each time).
    for _ in 0..2 {
        cycle(&mut fs, blk);
        assert!(fs.plane(0).in_free_pool(idx));
        // Re-allocate the same block (FIFO drain).
        while fs.allocate_free_block(0).unwrap() != idx {}
    }
    // Third erase hits the limit: retired, not pooled.
    cycle(&mut fs, blk);
    assert!(!fs.plane(0).in_free_pool(idx));
    assert!(fs.plane(0).is_retired(idx));
    assert_eq!(fs.retired_blocks(), 1);
    assert_eq!(fs.plane(0).retired_blocks(), 1);
    fs.check().unwrap();
}

#[test]
fn infinite_endurance_never_retires() {
    let mut fs = FlashState::new(tiny());
    let idx = fs.allocate_free_block(0).unwrap();
    let blk = BlockAddr {
        plane: 0,
        index: idx,
    };
    for _ in 0..50 {
        cycle(&mut fs, blk);
        while fs.allocate_free_block(0).unwrap() != idx {}
    }
    assert_eq!(fs.retired_blocks(), 0);
    assert_eq!(fs.plane(0).block(idx).erase_count(), 50);
}

#[test]
fn retired_blocks_shrink_the_pool_permanently() {
    let mut fs = FlashState::with_endurance(tiny(), 1);
    let total = fs.geometry().blocks_per_plane;
    // Wear out two blocks on plane 1.
    for _ in 0..2 {
        let idx = fs.allocate_free_block(1).unwrap();
        cycle(
            &mut fs,
            BlockAddr {
                plane: 1,
                index: idx,
            },
        );
    }
    assert_eq!(fs.retired_blocks(), 2);
    // The pool can only ever hold the remaining blocks.
    let mut remaining = 0;
    while fs.allocate_free_block(1).is_ok() {
        remaining += 1;
    }
    assert_eq!(remaining, total - 2);
    fs.check().unwrap();
}

//! `dloop-host` — the host I/O path in front of the simulated SSD.
//!
//! Every replay driver in `dloop-ftl-kit` feeds the device raw page
//! operations; this crate models the layer a real application actually
//! talks through — NVMe-style submission/completion queue pairs with
//! doorbell batching and interrupt coalescing, a write-back host page
//! cache with dirty-ratio write-back, and block-layer request
//! splitting/merging — and drives the existing device **unchanged**
//! underneath.
//!
//! ```text
//! syscall → page cache → block layer → SQ doorbell ⇄ device session
//!                                          ▲              │
//! interrupt ← CQ coalescing ← per-command completions ────┘
//!            (a delivery frees an SQ slot: the loops interleave)
//! ```
//!
//! The entry point is [`HostStack::run`]. Under the open replay mode the
//! host and device event loops are *interleaved*: each submission queue
//! holds at most [`HostConfig::queue_depth`] in-flight commands, a
//! doorbell ring admits a command only when its queue has a free slot,
//! and an interrupt delivery (via the CQ coalescer) frees a slot and
//! triggers the next submission — backpressure from a full SQ delays the
//! syscall-visible `submit` instant. Device-queued modes run the staged
//! pipeline over one [`SsdDevice::run`](dloop_ftl_kit::device::SsdDevice::run).
//! Either way the result is a [`HostRunReport`]: the wrapped device
//! report plus a five-instant timeline per host request
//! (`arrival ≤ cache_done ≤ submit ≤ done ≤ deliver`) whose phase
//! differences tile end-to-end residence exactly, cache / host-queue /
//! completion [`Span`](dloop_simkit::trace::Span)s ready to join a
//! device flight recording, an SQ occupancy log, and cache / queue-pair
//! counters.
//!
//! Three contracts pin the model down (claims C13/C14 in `dloop-bench`):
//!
//! - **Pass-through identity** — [`HostConfig::passthrough`] makes every
//!   pipeline stage the identity, so the device sees the input trace
//!   bit-for-bit and its report is fingerprint-identical to calling the
//!   device directly. There is no shortcut branch; the identity is a
//!   property of the generic pipeline, interleaved loop included.
//! - **Exact phase tiling** — per request, `cache + host_queue + device
//!   + completion == end_to_end` in integer nanoseconds.
//! - **Windows hold** — per-queue in-flight occupancy never exceeds the
//!   configured depth at any instant of the SQ occupancy log, and an
//!   unbounded depth reproduces the staged pipeline bit-for-bit
//!   ([`HostStack::run_staged`]).
//!
//! Determinism: the stack holds no global state, iterates no hash map,
//! and derives every decision from the (config, trace) pair — equal
//! inputs give byte-identical [`HostRunReport`]s across reruns.

pub mod block;
pub mod cache;
pub mod config;
pub mod queue;
pub mod report;
pub mod stack;

pub use cache::{CacheStats, PageCache, Writeback};
pub use config::HostConfig;
pub use queue::CqState;
pub use report::{report_fingerprint, HostRequestLog, HostRunReport, QueueStats};
pub use stack::HostStack;

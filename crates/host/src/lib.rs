//! `dloop-host` — the host I/O path in front of the simulated SSD.
//!
//! Every replay driver in `dloop-ftl-kit` feeds the device raw page
//! operations; this crate models the layer a real application actually
//! talks through — NVMe-style submission/completion queue pairs with
//! doorbell batching and interrupt coalescing, a write-back host page
//! cache with dirty-ratio write-back, and block-layer request
//! splitting/merging — and drives the existing device **unchanged**
//! underneath.
//!
//! ```text
//! syscall → page cache → block layer → SQ doorbell → SsdDevice::run
//!                                                          │
//! interrupt ← CQ coalescing ← per-command completion log ──┘
//! ```
//!
//! The entry point is [`HostStack::run`], which wraps one
//! [`SsdDevice::run`](dloop_ftl_kit::device::SsdDevice::run) and returns
//! a [`HostRunReport`]: the wrapped device report plus a four-instant
//! timeline per host request (`arrival ≤ submit ≤ done ≤ deliver`) whose
//! phase differences tile end-to-end residence exactly, host-queue and
//! cache [`Span`](dloop_simkit::trace::Span)s ready to join a device
//! flight recording, and cache / queue-pair counters.
//!
//! Two contracts pin the model down (claim C13 in `dloop-bench`):
//!
//! - **Pass-through identity** — [`HostConfig::passthrough`] makes every
//!   pipeline stage the identity, so the device sees the input trace
//!   bit-for-bit and its report is fingerprint-identical to calling the
//!   device directly. There is no shortcut branch; the identity is a
//!   property of the generic pipeline.
//! - **Exact phase tiling** — per request, `host_queue + cache + device
//!   + completion == end_to_end` in integer nanoseconds.
//!
//! Determinism: the stack holds no global state, iterates no hash map,
//! and derives every decision from the (config, trace) pair — equal
//! inputs give byte-identical [`HostRunReport`]s across reruns.

pub mod block;
pub mod cache;
pub mod config;
pub mod queue;
pub mod report;
pub mod stack;

pub use cache::{CacheStats, PageCache, Writeback};
pub use config::HostConfig;
pub use report::{report_fingerprint, HostRequestLog, HostRunReport, QueueStats};
pub use stack::HostStack;

//! What a host-stack run reports: the wrapped device report, per-request
//! syscall-to-cell timestamps, cache and queue-pair counters, and the
//! host-phase spans ready to join a device flight recording.
//!
//! The per-request timeline is five monotone instants —
//! `arrival ≤ cache_done ≤ submit ≤ done ≤ deliver` — and the phase
//! durations are their exact integer-nanosecond differences, so cache +
//! host-queue + device + completion *tiles* each request's end-to-end
//! residence with no rounding slack. Claim C13 re-checks that identity
//! request by request.

use crate::cache::CacheStats;
use dloop_ftl_kit::metrics::RunReport;
use dloop_simkit::trace::{QueueDepthProbe, Span, TraceSink};
use dloop_simkit::SimTime;

/// The syscall-to-cell timeline of one host request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostRequestLog {
    /// When the host issued the request (trace arrival).
    pub arrival: SimTime,
    /// When the cache finished its per-page DRAM copies for this request
    /// (`arrival` when the cache touched no page). For a cache-served
    /// request this is the acknowledgement instant (`== done`); for a
    /// partial read hit the miss commands stage only after it.
    pub cache_done: SimTime,
    /// When its first device command entered the device (doorbell ring,
    /// or later under a finite per-queue depth: the instant a free SQ
    /// slot admitted it). Cache-served requests never submit; their
    /// `submit == done`.
    pub submit: SimTime,
    /// When its last device command completed (cache-served: when the
    /// cache acknowledged).
    pub done: SimTime,
    /// When the completion interrupt reached the host (cache-served:
    /// same as `done` — no interrupt is involved).
    pub deliver: SimTime,
    /// Whether the cache served the request without any device command.
    pub cache_served: bool,
}

impl HostRequestLog {
    /// Nanoseconds spent between cache service and device admission
    /// (doorbell batching plus SQ backpressure).
    pub fn host_queue_ns(&self) -> u64 {
        (self.submit - self.cache_done).as_nanos()
    }

    /// Nanoseconds of cache service: the per-page DRAM copy cost, for
    /// fully served requests and for the hit pages of a partial miss
    /// alike.
    pub fn cache_ns(&self) -> u64 {
        (self.cache_done - self.arrival).as_nanos()
    }

    /// Nanoseconds between device admission and last device completion.
    pub fn device_ns(&self) -> u64 {
        (self.done - self.submit).as_nanos()
    }

    /// Nanoseconds the completion sat coalescing before its interrupt.
    pub fn completion_ns(&self) -> u64 {
        (self.deliver - self.done).as_nanos()
    }

    /// End-to-end residence: arrival to interrupt delivery. Equals the
    /// sum of the four phase durations exactly (integer nanoseconds).
    pub fn end_to_end_ns(&self) -> u64 {
        (self.deliver - self.arrival).as_nanos()
    }
}

/// Queue-pair counters over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Device commands submitted across all queues (after the block
    /// layer, including cache write-backs).
    pub submissions: u64,
    /// Doorbell rings across all submission queues.
    pub doorbells: u64,
    /// Completion interrupts delivered across all completion queues.
    pub interrupts: u64,
    /// Commands whose device admission was delayed past their doorbell
    /// ring because their submission queue was at `queue_depth` — the
    /// backpressure count of the interleaved driver (always zero when the
    /// depth is unbounded or unenforced).
    pub depth_stalls: u64,
}

impl QueueStats {
    /// Mean submissions released per doorbell ring.
    pub fn mean_batch(&self) -> f64 {
        if self.doorbells == 0 {
            0.0
        } else {
            self.submissions as f64 / self.doorbells as f64
        }
    }

    /// Mean completions aggregated per interrupt.
    pub fn mean_coalesced(&self) -> f64 {
        if self.interrupts == 0 {
            0.0
        } else {
            self.submissions as f64 / self.interrupts as f64
        }
    }
}

/// Everything a [`HostStack::run`](crate::HostStack::run) measures.
#[derive(Debug, Clone)]
pub struct HostRunReport {
    /// The wrapped device report (exactly what `SsdDevice::run` returned
    /// for the forwarded command stream).
    pub device: RunReport,
    /// One timeline per host request, trace order.
    pub requests: Vec<HostRequestLog>,
    /// Page-cache counters.
    pub cache: CacheStats,
    /// Queue-pair counters.
    pub queues: QueueStats,
    /// Device commands forwarded (host-mapped + write-backs).
    pub forwarded: u64,
    /// Commands the block layer split out of oversized host I/Os.
    pub split_commands: u64,
    /// Commands the block layer absorbed into a neighbour.
    pub merged_commands: u64,
    /// Background write-back commands the cache emitted.
    pub writeback_commands: u64,
    /// The per-queue depth bound this run was configured with (`None` =
    /// unbounded), echoed so no mode can silently drop it.
    pub queue_depth: Option<u32>,
    /// Whether the driver actually enforced `queue_depth` as per-queue SQ
    /// windows (the interleaved open-mode event loop). `false` means the
    /// run used a device-queued replay mode whose own window is the only
    /// bound — the configured host depth was *surfaced but not applied*.
    pub depth_enforced: bool,
    /// Host-side SQ occupancy probe, one record per forwarded command:
    /// tenant tag = submission-queue index, `arrival` = doorbell ring,
    /// `issue` = device admission, `done` = interrupt delivery (the
    /// instant the SQ slot frees). Records are in canonical
    /// `(deliver, command)` order, so equal runs log identically;
    /// zero-page commands occupy no slot and are omitted, making the
    /// per-queue gauge exactly the window occupancy.
    pub sq_log: QueueDepthProbe,
    /// Host-phase spans (host-queue waits, cache service, completion
    /// coalescing), ready to be replayed into the same sink as the device
    /// spans via [`HostRunReport::emit_spans`].
    pub host_spans: Vec<Span>,
}

impl HostRunReport {
    /// Mean end-to-end (syscall-to-interrupt) latency in milliseconds.
    pub fn mean_end_to_end_ms(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let total: u64 = self.requests.iter().map(|r| r.end_to_end_ns()).sum();
        total as f64 / 1e6 / self.requests.len() as f64
    }

    /// Summed phase durations over all requests, in nanoseconds:
    /// `(host_queue, cache, device, completion, end_to_end)`. The first
    /// four tile the fifth exactly.
    pub fn phase_totals_ns(&self) -> (u64, u64, u64, u64, u64) {
        let mut t = (0u64, 0u64, 0u64, 0u64, 0u64);
        for r in &self.requests {
            t.0 += r.host_queue_ns();
            t.1 += r.cache_ns();
            t.2 += r.device_ns();
            t.3 += r.completion_ns();
            t.4 += r.end_to_end_ns();
        }
        t
    }

    /// Fraction of host requests the cache served without any device
    /// command.
    pub fn cache_served_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let served = self.requests.iter().filter(|r| r.cache_served).count();
        served as f64 / self.requests.len() as f64
    }

    /// Replay the host-phase spans into `sink` (typically the same
    /// recorder that captured the device spans, so the attribution table
    /// telescopes from syscall to cell).
    pub fn emit_spans(&self, sink: &mut dyn TraceSink) {
        for span in &self.host_spans {
            sink.record(span);
        }
    }

    /// Order-sensitive digest of the whole host report (device
    /// fingerprint, per-request timelines, counters, the SQ occupancy
    /// log, and the full contents of every host-phase span — not just
    /// their count, so a span relabelled to the wrong phase changes the
    /// digest). Equal digests ⇒ same observable run; used by the
    /// determinism leg of claim C13.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(report_fingerprint(&self.device));
        h.write(self.requests.len() as u64);
        for r in &self.requests {
            h.write(r.arrival.as_nanos());
            h.write(r.cache_done.as_nanos());
            h.write(r.submit.as_nanos());
            h.write(r.done.as_nanos());
            h.write(r.deliver.as_nanos());
            h.write(r.cache_served as u64);
        }
        for v in [
            self.cache.read_hits,
            self.cache.read_misses,
            self.cache.writes_absorbed,
            self.cache.flushed,
            self.cache.evicted_dirty,
            self.cache.evicted_clean,
            self.cache.drained,
            self.queues.submissions,
            self.queues.doorbells,
            self.queues.interrupts,
            self.queues.depth_stalls,
            self.forwarded,
            self.split_commands,
            self.merged_commands,
            self.writeback_commands,
            self.queue_depth.map(|d| d as u64 + 1).unwrap_or(0),
            self.depth_enforced as u64,
            self.sq_log.len() as u64,
            self.host_spans.len() as u64,
        ] {
            h.write(v);
        }
        for &(queue, arrival, issue, done) in self.sq_log.tracked() {
            h.write(queue as u64);
            h.write(arrival.as_nanos());
            h.write(issue.as_nanos());
            h.write(done.as_nanos());
        }
        for s in &self.host_spans {
            h.write_bytes(s.phase.name().as_bytes());
            h.write_bytes(s.kind.name().as_bytes());
            h.write(s.lpn.map(|l| l + 1).unwrap_or(0));
            h.write(s.req.map(|r| r + 1).unwrap_or(0));
            h.write(s.issue.as_nanos());
            h.write(s.start.as_nanos());
            h.write(s.end.as_nanos());
        }
        h.finish()
    }
}

/// Order-sensitive digest of a device [`RunReport`]: the locked metrics
/// CSV row, the queue-depth timeline, and the per-request completion log.
/// Two reports with equal digests agree on every surfaced measurement —
/// this is the fingerprint claim C13's pass-through identity compares
/// (the exhaustive field-by-field fingerprint lives in
/// `tests/replay_modes.rs`).
pub fn report_fingerprint(report: &RunReport) -> u64 {
    let mut h = Fnv::new();
    h.write_bytes(report.csv_row().as_bytes());
    h.write_bytes(report.queue_depth_csv(64).as_bytes());
    h.write(report.completions.len() as u64);
    for &(req, arrival, done) in &report.completions {
        h.write(req);
        h.write(arrival.as_nanos());
        h.write(done.as_nanos());
    }
    h.finish()
}

/// Minimal FNV-1a accumulator (the workspace is dependency-free).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(arrival_us: u64, submit_us: u64, done_us: u64, deliver_us: u64) -> HostRequestLog {
        HostRequestLog {
            arrival: SimTime::from_micros(arrival_us),
            cache_done: SimTime::from_micros(arrival_us),
            submit: SimTime::from_micros(submit_us),
            done: SimTime::from_micros(done_us),
            deliver: SimTime::from_micros(deliver_us),
            cache_served: false,
        }
    }

    #[test]
    fn phases_tile_end_to_end_exactly() {
        let r = log(10, 25, 90, 140);
        assert_eq!(r.host_queue_ns(), 15_000);
        assert_eq!(r.device_ns(), 65_000);
        assert_eq!(r.completion_ns(), 50_000);
        assert_eq!(r.cache_ns(), 0);
        assert_eq!(
            r.host_queue_ns() + r.cache_ns() + r.device_ns() + r.completion_ns(),
            r.end_to_end_ns()
        );
    }

    #[test]
    fn partial_hit_charges_the_cache_phase_before_submission() {
        // arrival 10, DRAM copies for the hit pages until 13, doorbell at
        // 25, device work until 90, interrupt at 140.
        let mut r = log(10, 25, 90, 140);
        r.cache_done = SimTime::from_micros(13);
        assert_eq!(r.cache_ns(), 3_000);
        assert_eq!(r.host_queue_ns(), 12_000);
        assert_eq!(r.device_ns(), 65_000);
        assert_eq!(r.completion_ns(), 50_000);
        assert_eq!(
            r.host_queue_ns() + r.cache_ns() + r.device_ns() + r.completion_ns(),
            r.end_to_end_ns()
        );
    }

    #[test]
    fn cache_served_charges_only_the_cache_phase() {
        let mut r = log(10, 12, 12, 12);
        r.cache_done = r.done;
        r.cache_served = true;
        assert_eq!(r.host_queue_ns(), 0);
        assert_eq!(r.device_ns(), 0);
        assert_eq!(r.completion_ns(), 0);
        assert_eq!(r.cache_ns(), 2_000);
        assert_eq!(r.end_to_end_ns(), 2_000);
    }

    #[test]
    fn queue_stats_means() {
        let q = QueueStats {
            submissions: 12,
            doorbells: 3,
            interrupts: 4,
            depth_stalls: 0,
        };
        assert_eq!(q.mean_batch(), 4.0);
        assert_eq!(q.mean_coalesced(), 3.0);
        assert_eq!(QueueStats::default().mean_batch(), 0.0);
    }

    #[test]
    fn fnv_distinguishes_order() {
        let mut a = Fnv::new();
        a.write(1);
        a.write(2);
        let mut b = Fnv::new();
        b.write(2);
        b.write(1);
        assert_ne!(a.finish(), b.finish());
    }
}

//! NVMe-style queue-pair timing primitives: doorbell batching on the
//! submission side and interrupt coalescing on the completion side.
//!
//! Both follow the same *threshold or timeout* shape. A doorbell batch
//! rings when it fills (`batch` submissions) or when the oldest pending
//! submission has waited `timeout`, whichever comes first; an interrupt
//! fires when `threshold` completions have aggregated or the oldest
//! pending completion has waited `timeout`. With threshold 1 and no
//! timeout both collapse to the identity (ring/deliver immediately) —
//! the pass-through contract.
//!
//! Items are fed in nondecreasing time order (arrival order on the
//! submission side, completion order on the completion side) and the
//! timeout check runs *before* each push, so every pending item is
//! strictly younger than the expiry it might be released at — ring and
//! delivery times never precede the items they release.

use dloop_simkit::{SimDuration, SimTime};

/// One submission-side doorbell batcher (one per submission queue).
#[derive(Debug)]
pub struct DoorbellQueue {
    batch: usize,
    timeout: Option<SimDuration>,
    /// Pending `(arrival, command id)` submissions, arrival-ordered.
    pending: Vec<(SimTime, u64)>,
    /// Doorbell rings this queue has produced.
    pub rings: u64,
}

/// A doorbell ring: the commands released and the time the device learns
/// about them (their effective device arrival).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// When the doorbell was rung.
    pub at: SimTime,
    /// The released command ids, submission order.
    pub commands: Vec<u64>,
}

impl DoorbellQueue {
    /// A batcher ringing after `batch` submissions or `timeout` of wait.
    pub fn new(batch: u32, timeout: Option<SimDuration>) -> Self {
        DoorbellQueue {
            batch: batch.max(1) as usize,
            timeout,
            pending: Vec::new(),
            rings: 0,
        }
    }

    fn ring(&mut self, at: SimTime, out: &mut Vec<Ring>) {
        if self.pending.is_empty() {
            return;
        }
        self.rings += 1;
        out.push(Ring {
            at,
            commands: self.pending.drain(..).map(|(_, id)| id).collect(),
        });
    }

    /// Submit command `id` at `arrival`; any rings this causes (a timeout
    /// expiring before it, or the batch filling) are appended to `out`.
    pub fn push(&mut self, arrival: SimTime, id: u64, out: &mut Vec<Ring>) {
        if let (Some(t), Some(&(first, _))) = (self.timeout, self.pending.first()) {
            let expiry = first + t;
            if expiry <= arrival {
                self.ring(expiry, out);
            }
        }
        self.pending.push((arrival, id));
        if self.pending.len() >= self.batch {
            self.ring(arrival, out);
        }
    }

    /// End of trace: ring whatever is still pending. With a timeout the
    /// partial batch rings at its natural expiry (which is after every
    /// pending arrival — expired batches were flushed on push); without
    /// one there is no later arrival to wait for, so it rings at the last
    /// pending arrival.
    pub fn flush(&mut self, out: &mut Vec<Ring>) {
        if self.pending.is_empty() {
            return;
        }
        let first = self.pending[0].0;
        let last = self.pending.last().expect("non-empty").0;
        let at = match self.timeout {
            Some(t) => (first + t).max(last),
            None => last,
        };
        self.ring(at, out);
    }
}

/// One completion-side interrupt coalescer (one per completion queue).
#[derive(Debug)]
pub struct Coalescer {
    threshold: usize,
    timeout: Option<SimDuration>,
    /// Pending `(done, command id)` completions, done-ordered.
    pending: Vec<(SimTime, u64)>,
    /// Interrupts this queue has delivered.
    pub interrupts: u64,
}

impl Coalescer {
    /// A coalescer interrupting after `threshold` completions or
    /// `timeout` of aggregation.
    pub fn new(threshold: u32, timeout: Option<SimDuration>) -> Self {
        Coalescer {
            threshold: threshold.max(1) as usize,
            timeout,
            pending: Vec::new(),
            interrupts: 0,
        }
    }

    fn deliver(&mut self, at: SimTime, out: &mut Vec<(u64, SimTime)>) {
        if self.pending.is_empty() {
            return;
        }
        self.interrupts += 1;
        out.extend(self.pending.drain(..).map(|(_, id)| (id, at)));
    }

    /// Record command `id` completing at `done`; `(command, delivery)`
    /// pairs for every interrupt this fires are appended to `out`.
    pub fn push(&mut self, done: SimTime, id: u64, out: &mut Vec<(u64, SimTime)>) {
        if let (Some(t), Some(&(first, _))) = (self.timeout, self.pending.first()) {
            let expiry = first + t;
            if expiry <= done {
                self.deliver(expiry, out);
            }
        }
        self.pending.push((done, id));
        if self.pending.len() >= self.threshold {
            self.deliver(done, out);
        }
    }

    /// End of run: deliver whatever is still aggregating (at its timeout
    /// expiry if one is set, else at the final completion — no further
    /// completion will ever trip the threshold).
    pub fn flush(&mut self, out: &mut Vec<(u64, SimTime)>) {
        if self.pending.is_empty() {
            return;
        }
        let first = self.pending[0].0;
        let last = self.pending.last().expect("non-empty").0;
        let at = match self.timeout {
            Some(t) => (first + t).max(last),
            None => last,
        };
        self.deliver(at, out);
    }
}

/// Completion-side coalescing state for the interleaved event loop
/// (`HostStack::run` under the open replay mode), where timeout expiries
/// are *scheduled* as timer events on the host's event heap instead of
/// being discovered by the next push — the push-driven [`Coalescer`]
/// only learns an expiry passed when a later completion arrives, which
/// is too late when the freed SQ slot should have admitted a command at
/// the expiry instant.
///
/// Semantics are identical to [`Coalescer`] fed in global completion
/// order: a timer armed at `first_pending + timeout` firing before any
/// completion at a time `>= expiry` reproduces the push-driven
/// `expiry <= done` pre-push check, and `flush` uses the same
/// end-of-run rule. The interleaved/staged fingerprint-equivalence test
/// in `tests/replay_modes.rs` leans on this equivalence.
#[derive(Debug)]
pub struct CqState {
    threshold: usize,
    timeout: Option<SimDuration>,
    /// Pending `(done, command id)` completions, done-ordered.
    pending: Vec<(SimTime, u64)>,
    /// Bumped on every delivery. An armed timer carries the epoch it was
    /// armed in and fires only if no delivery happened since — stale
    /// timers are no-ops.
    epoch: u64,
    /// Interrupts this queue has delivered.
    pub interrupts: u64,
}

impl CqState {
    /// A coalescer interrupting after `threshold` completions or
    /// `timeout` of aggregation.
    pub fn new(threshold: u32, timeout: Option<SimDuration>) -> Self {
        CqState {
            threshold: threshold.max(1) as usize,
            timeout,
            pending: Vec::new(),
            epoch: 0,
            interrupts: 0,
        }
    }

    fn deliver(&mut self, at: SimTime, out: &mut Vec<(u64, SimTime)>) {
        if self.pending.is_empty() {
            return;
        }
        self.epoch += 1;
        self.interrupts += 1;
        out.extend(self.pending.drain(..).map(|(_, id)| (id, at)));
    }

    /// Record command `id` completing at `done`. Delivers into `out` if
    /// the threshold filled; otherwise, if this push started a new
    /// aggregate and a timeout is configured, returns the `(expiry,
    /// epoch)` timer the caller must schedule (pass both back to
    /// [`CqState::timer`] when it fires).
    pub fn push(
        &mut self,
        done: SimTime,
        id: u64,
        out: &mut Vec<(u64, SimTime)>,
    ) -> Option<(SimTime, u64)> {
        self.pending.push((done, id));
        if self.pending.len() >= self.threshold {
            self.deliver(done, out);
            return None;
        }
        match self.timeout {
            Some(t) if self.pending.len() == 1 => Some((done + t, self.epoch)),
            _ => None,
        }
    }

    /// A timer armed in `epoch` fired at `at`: deliver the aggregate it
    /// was armed for, unless a threshold delivery already drained it.
    pub fn timer(&mut self, at: SimTime, epoch: u64, out: &mut Vec<(u64, SimTime)>) {
        if epoch == self.epoch {
            self.deliver(at, out);
        }
    }

    /// End of run (or SQ-window deadlock rescue): deliver whatever is
    /// still aggregating, at the same instant [`Coalescer::flush`] would.
    pub fn flush(&mut self, out: &mut Vec<(u64, SimTime)>) {
        if self.pending.is_empty() {
            return;
        }
        let first = self.pending[0].0;
        let last = self.pending.last().expect("non-empty").0;
        let at = match self.timeout {
            Some(t) => (first + t).max(last),
            None => last,
        };
        self.deliver(at, out);
    }

    /// Whether completions are still aggregating.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn batch_of_one_rings_immediately() {
        let mut q = DoorbellQueue::new(1, None);
        let mut out = Vec::new();
        for (i, t) in [3u64, 9, 10].iter().enumerate() {
            q.push(us(*t), i as u64, &mut out);
        }
        q.flush(&mut out);
        assert_eq!(
            out,
            vec![
                Ring {
                    at: us(3),
                    commands: vec![0]
                },
                Ring {
                    at: us(9),
                    commands: vec![1]
                },
                Ring {
                    at: us(10),
                    commands: vec![2]
                },
            ]
        );
        assert_eq!(q.rings, 3);
    }

    #[test]
    fn full_batch_rings_at_filling_arrival() {
        let mut q = DoorbellQueue::new(3, None);
        let mut out = Vec::new();
        q.push(us(1), 0, &mut out);
        q.push(us(2), 1, &mut out);
        assert!(out.is_empty());
        q.push(us(5), 2, &mut out);
        assert_eq!(
            out,
            vec![Ring {
                at: us(5),
                commands: vec![0, 1, 2]
            }]
        );
    }

    #[test]
    fn timeout_rings_partial_batch_at_expiry() {
        let mut q = DoorbellQueue::new(8, Some(SimDuration::from_micros(10)));
        let mut out = Vec::new();
        q.push(us(0), 0, &mut out);
        q.push(us(4), 1, &mut out);
        assert!(out.is_empty());
        q.push(us(25), 2, &mut out); // expiry at 10 µs precedes this arrival
        assert_eq!(
            out,
            vec![Ring {
                at: us(10),
                commands: vec![0, 1]
            }]
        );
        q.flush(&mut out);
        assert_eq!(
            out[1],
            Ring {
                at: us(35),
                commands: vec![2]
            }
        );
    }

    #[test]
    fn flush_without_timeout_rings_at_last_arrival() {
        let mut q = DoorbellQueue::new(8, None);
        let mut out = Vec::new();
        q.push(us(2), 0, &mut out);
        q.push(us(7), 1, &mut out);
        q.flush(&mut out);
        assert_eq!(
            out,
            vec![Ring {
                at: us(7),
                commands: vec![0, 1]
            }]
        );
    }

    #[test]
    fn threshold_one_delivers_at_completion_time() {
        let mut c = Coalescer::new(1, None);
        let mut out = Vec::new();
        c.push(us(5), 7, &mut out);
        c.push(us(6), 8, &mut out);
        c.flush(&mut out);
        assert_eq!(out, vec![(7, us(5)), (8, us(6))]);
        assert_eq!(c.interrupts, 2);
    }

    #[test]
    fn coalesced_completions_share_one_delivery() {
        let mut c = Coalescer::new(3, None);
        let mut out = Vec::new();
        c.push(us(1), 0, &mut out);
        c.push(us(2), 1, &mut out);
        assert!(out.is_empty());
        c.push(us(9), 2, &mut out);
        assert_eq!(out, vec![(0, us(9)), (1, us(9)), (2, us(9))]);
        assert_eq!(c.interrupts, 1);
        // Delivery never precedes any coalesced completion.
        assert!(out.iter().all(|&(_, d)| d >= us(1)));
    }

    #[test]
    fn coalescer_timeout_bounds_the_added_latency() {
        let mut c = Coalescer::new(16, Some(SimDuration::from_micros(50)));
        let mut out = Vec::new();
        c.push(us(10), 0, &mut out);
        c.push(us(30), 1, &mut out);
        c.push(us(100), 2, &mut out); // 10+50=60 µs expiry fires first
        assert_eq!(out, vec![(0, us(60)), (1, us(60))]);
        c.flush(&mut out);
        assert_eq!(out[2], (2, us(150)));
    }

    #[test]
    fn cq_state_threshold_delivery_matches_push_driven() {
        let mut c = CqState::new(3, None);
        let mut out = Vec::new();
        assert_eq!(c.push(us(1), 0, &mut out), None); // no timeout: no timer
        assert_eq!(c.push(us(2), 1, &mut out), None);
        assert!(out.is_empty());
        assert_eq!(c.push(us(9), 2, &mut out), None);
        assert_eq!(out, vec![(0, us(9)), (1, us(9)), (2, us(9))]);
        assert_eq!(c.interrupts, 1);
    }

    #[test]
    fn cq_state_timer_delivers_the_epoch_it_was_armed_for() {
        let mut c = CqState::new(16, Some(SimDuration::from_micros(50)));
        let mut out = Vec::new();
        let timer = c.push(us(10), 0, &mut out).expect("first push arms");
        assert_eq!(timer, (us(60), 0));
        assert_eq!(c.push(us(30), 1, &mut out), None); // aggregate not new
        c.timer(us(60), 0, &mut out);
        assert_eq!(out, vec![(0, us(60)), (1, us(60))]);
        assert_eq!(c.interrupts, 1);
        // The next completion starts a fresh aggregate and a fresh timer
        // epoch; the old timer replayed late is a no-op.
        let timer2 = c.push(us(100), 2, &mut out).expect("new aggregate");
        assert_eq!(timer2, (us(150), 1));
        c.timer(us(60), 0, &mut out);
        assert_eq!(out.len(), 2, "stale timer must not deliver");
        c.flush(&mut out);
        assert_eq!(out[2], (2, us(150)));
        assert!(!c.has_pending());
    }

    #[test]
    fn cq_state_threshold_fill_cancels_the_armed_timer() {
        let mut c = CqState::new(2, Some(SimDuration::from_micros(50)));
        let mut out = Vec::new();
        let timer = c.push(us(10), 0, &mut out).expect("arms");
        assert_eq!(c.push(us(20), 1, &mut out), None); // fills → delivers
        assert_eq!(out, vec![(0, us(20)), (1, us(20))]);
        c.timer(timer.0, timer.1, &mut out);
        assert_eq!(out.len(), 2, "delivered aggregate bumped the epoch");
    }
}
